//! # mptcp-streaming
//!
//! A full reproduction of **“Multipath Live Streaming via TCP: Scheme,
//! Performance and Benefits”** (Wang, Wei, Guo, Towsley — CoNEXT 2007) as a
//! set of production-quality Rust crates:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`netsim`] | discrete-event packet simulator: TCP Reno, drop-tail links, FTP/HTTP background traffic |
//! | [`dmp_core`] | the DMP-streaming scheme: schedulers, reorder buffer, late-packet metrics, stats |
//! | [`tcp_model`] | the analytical side: per-flow TCP Markov chain, CTMC solvers, PFTK formula, fluid model, startup-delay search |
//! | [`dmp_sim`] | the paper's Section 5 simulation experiments (Tables 1–3, Figs 4–5) |
//! | [`dmp_live`] | DMP-streaming over real tokio TCP sockets + path emulator (Fig 7) |
//!
//! The reproduction binaries live in the `dmp-bench` crate: one target per
//! table and figure (`cargo run --release -p dmp-bench --bin fig8`, …,
//! `repro_all`).
//!
//! ## Thirty-second tour
//!
//! Ask the model whether two ADSL lines can carry a video that neither could
//! alone — the paper's headline use case:
//!
//! ```
//! use mptcp_streaming::prelude::*;
//!
//! // One path: 2% loss, 150 ms RTT, timeout ratio 4.
//! let path = PathSpec::from_ms(0.02, 150.0, 4.0);
//! // Achievable TCP throughput of the model's chain on that path:
//! let sigma = tcp_model::calibrate::chain_throughput_pps(&path, DmpModel::DEFAULT_WMAX);
//!
//! // A video at σa/µ = 1.6 over TWO such paths (the paper's rule)…
//! let mu = 2.0 * sigma / 1.6;
//! let model = DmpModel::new(vec![path; 2], mu, 10.0); // τ = 10 s
//! let f = model.late_fraction(200_000, 42).f;
//! // …streams with a tiny fraction of late packets,
//! assert!(f < 1e-2, "late fraction {f}");
//!
//! // while a single such path cannot even carry the bitrate (σ < µ).
//! assert!(sigma < mu);
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` for the
//! paper-to-code map.

pub use dmp_core;
pub use dmp_live;
pub use dmp_sim;
pub use netsim;
pub use tcp_model;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use dmp_core::metrics::{LateFractions, LatenessReport};
    pub use dmp_core::scheme::{DynamicQueue, ReorderBuffer, StaticSplitter, StreamPacket};
    pub use dmp_core::spec::{PathSpec, SchedulerKind, VideoSpec};
    pub use dmp_core::trace::StreamTrace;
    pub use dmp_live::{LiveConfig, LiveExperiment, PathProfile};
    pub use dmp_sim::{run as run_sim_experiment, ExperimentSpec};
    pub use tcp_model::{
        required_startup_delay, DmpModel, LateFracEstimate, SearchOptions, TcpChain,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable_end_to_end() {
        let path = PathSpec::from_ms(0.02, 100.0, 2.0);
        let model = DmpModel::new(vec![path; 2], 20.0, 6.0);
        let est = model.late_fraction(50_000, 1);
        assert!(est.f >= 0.0 && est.f <= 1.0);
    }
}
