//! Live streaming over **real TCP sockets**: a server stripes a CBR video
//! over two emulated access paths (different bandwidths), and the client
//! reassembles and scores it. Runs in real time (~15 s).
//!
//! ```sh
//! cargo run --release --example live_streaming
//! ```

use std::time::Duration;

use mptcp_streaming::dmp_live::{run_experiment, LiveExperiment, PathProfile};
use mptcp_streaming::prelude::*;

fn main() -> std::io::Result<()> {
    tokio::runtime::Runtime::new().unwrap().block_on(async {
    // Two asymmetric "ADSL" paths: 700 kbps and 450 kbps, with fluctuating
    // service rate (±35%) — together ≈1.4× the video bitrate.
    let video = VideoSpec {
        rate_pps: 70.0,
        packet_bytes: 1448,
    }; // ≈ 810 kbps
    let exp = LiveExperiment {
        video,
        packets: 1_000, // ≈ 14 s of video
        paths: vec![
            PathProfile {
                rate_bps: 700_000.0,
                variability: 0.35,
                resample_every: Duration::from_millis(800),
                delay: Duration::from_millis(30),
                queue_bytes: 48 * 1024,
            },
            PathProfile {
                rate_bps: 450_000.0,
                variability: 0.35,
                resample_every: Duration::from_millis(800),
                delay: Duration::from_millis(70),
                queue_bytes: 48 * 1024,
            },
        ],
        send_buf_bytes: 16 * 1024,
        seed: 7,
        // Run the emulation 4× faster than real time (timestamps are scaled
        // back): ~14 s of video streams in ~3.5 s of wall clock.
        time_dilation: 4.0,
        schedules: None,
        trace_label: None,
    };

    println!(
        "streaming {:.0} kbps over 700 + 450 kbps emulated paths (σa/µ ≈ {:.2})…",
        video.bitrate_bps() / 1e3,
        exp.aggregate_ratio()
    );
    let run = run_experiment(&exp, &[1.0, 2.0, 4.0, 8.0]).await?;

    let trace = &run.output.trace;
    println!(
        "\ndelivered {}/{} packets in {:.1} s",
        trace.delivered(),
        trace.generated(),
        run.output.elapsed.as_secs_f64()
    );
    let shares = trace.path_shares(2);
    println!(
        "path shares: {:.0}% / {:.0}%  (DMP inferred the 61/39 bandwidth split from backpressure alone)",
        shares[0] * 100.0,
        shares[1] * 100.0
    );
    println!("\nstartup delay → fraction of late packets:");
    for lf in &run.report.per_tau {
        println!("  τ = {:>4.1} s → {:>9.2e}", lf.tau_s, lf.playback_order);
    }
    Ok(())
})
}
