//! Capacity planner: a downstream-user tool built on the model. Given the
//! TCP-level characteristics of your paths (loss, RTT, timeout ratio), it
//! reports the maximum video bitrate each startup-delay budget supports —
//! for single-path, static multipath, and DMP streaming.
//!
//! ```sh
//! cargo run --release --example capacity_planner [loss] [rtt_ms] [to_ratio]
//! ```

use mptcp_streaming::prelude::*;
use mptcp_streaming::tcp_model::{calibrate, static_streaming_late_fraction};

const THRESHOLD: f64 = 1e-4;

fn arg(n: usize, default: f64) -> f64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Largest µ (pkt/s) whose late fraction stays below the threshold at τ,
/// found by bisection over `[mu_lo, mu_hi]`.
///
/// Note the lower bracket: the buffer cap is `N_max = µτ`, so a *very* small
/// µ also means a tiny client buffer and the late fraction is not monotone
/// near zero — the planner starts the search at a fifth of the aggregate
/// throughput, where the buffer is meaningful.
fn max_mu(f_of_mu: impl Fn(f64) -> f64, mu_lo: f64, mu_hi: f64) -> Option<f64> {
    let (mut lo, mut hi) = (mu_lo, mu_hi);
    if f_of_mu(lo) >= THRESHOLD {
        return None;
    }
    for _ in 0..18 {
        let mid = 0.5 * (lo + hi);
        if f_of_mu(mid) < THRESHOLD {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

fn main() {
    let path = PathSpec::from_ms(arg(1, 0.02), arg(2, 150.0), arg(3, 3.0));
    let wmax = DmpModel::DEFAULT_WMAX;
    let sigma = calibrate::chain_throughput_pps(&path, wmax);
    let pkt_kbps = 1500.0 * 8.0 / 1e3;

    println!(
        "path: loss {:.3}, RTT {:.0} ms, T_O {:.1}  →  achievable TCP throughput ≈ {:.1} pkt/s ({:.0} kbps)",
        path.loss,
        path.rtt_s * 1e3,
        path.to_ratio,
        sigma,
        sigma * pkt_kbps
    );
    println!("\nmax supported video bitrate (kbps at 1500 B packets), f < 1e-4:\n");
    println!(
        "{:>8}  {:>12}  {:>16}  {:>12}",
        "τ (s)", "single path", "static 2-path", "DMP 2-path"
    );

    let kbps = |m: Option<f64>| m.map_or("-".to_string(), |mu| format!("{:.0}", mu * pkt_kbps));
    for tau in [6.0, 10.0, 16.0, 24.0] {
        let single = max_mu(
            |mu| {
                DmpModel::new(vec![path], mu, tau)
                    .late_fraction(250_000, 11)
                    .f
            },
            0.2 * sigma,
            2.0 * sigma,
        );
        let dmp = max_mu(
            |mu| {
                DmpModel::new(vec![path; 2], mu, tau)
                    .late_fraction(250_000, 11)
                    .f
            },
            0.4 * sigma,
            3.0 * sigma,
        );
        let stat = max_mu(
            |mu| static_streaming_late_fraction(&[path; 2], mu, tau, 250_000, 11).f,
            0.4 * sigma,
            3.0 * sigma,
        );
        println!(
            "{:>8.0}  {:>12}  {:>16}  {:>12}",
            tau,
            kbps(single),
            kbps(stat),
            kbps(dmp)
        );
    }
    println!(
        "\nDMP-streaming turns the second path into usable capacity: its supported\n\
         bitrate approaches the full aggregate (σa/µ → 1.6) while static splitting\n\
         keeps per-path reserves and single-path needs σ/µ ≈ 2."
    );
}
