//! Quickstart: stream a live video over two simulated paths with
//! DMP-streaming and inspect what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mptcp_streaming::prelude::*;

fn main() {
    // Setting 2-2 of the paper: two independent paths, each a 3.7 Mbps
    // bottleneck shared with 9 FTP + 40 HTTP background flows; a 600 kbps
    // video (50 packets/s of 1500 B).
    let setting = *mptcp_streaming::dmp_sim::setting("2-2").expect("built-in setting");
    let mut spec = ExperimentSpec::new(setting, SchedulerKind::Dynamic, 300.0, 7);
    spec.warmup_s = 15.0;

    println!(
        "simulating {} s of live video over two congested paths…",
        spec.duration_s
    );
    let out = run_sim_experiment(&spec);

    println!(
        "\ndelivered {}/{} packets",
        out.trace.delivered(),
        out.trace.generated()
    );
    for (k, p) in out.paths.iter().enumerate() {
        println!(
            "path {k}: loss {:.3}, RTT {:.0} ms, T_O {:.2}, carried {:.0}% of the stream",
            p.loss,
            p.rtt_s * 1e3,
            p.to_ratio,
            p.share * 100.0
        );
    }

    // The fraction of late packets for a range of startup delays — the
    // paper's performance metric. One trace answers for every τ at once.
    let report = LatenessReport::from_trace(&out.trace, &[2.0, 4.0, 6.0, 8.0, 10.0]);
    println!("\nstartup delay → fraction of late packets:");
    for lf in &report.per_tau {
        println!(
            "  τ = {:>4.1} s → {:>9.2e}  (in arrival order: {:.2e})",
            lf.tau_s, lf.playback_order, lf.arrival_order
        );
    }
    if let Some(tau) = report.required_startup_delay(1e-3) {
        println!("\nsmallest evaluated τ with < 0.1% late packets: {tau} s");
        // How much client memory does that delay actually need? (§2.1: never
        // more than µτ packets.)
        let occ = mptcp_streaming::dmp_core::buffer_occupancy(out.trace.records(), tau);
        println!(
            "client buffer at τ = {tau} s: peak {} packets ({:.0} KiB), mean {:.1}",
            occ.peak_pkts,
            occ.peak_pkts as f64 * 1500.0 / 1024.0,
            occ.mean_pkts
        );
    }
}
