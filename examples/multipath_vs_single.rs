//! The paper's two motivating questions, answered with the analytical model:
//!
//! **(i)** If one access link supports a video, can it be replaced by two
//! links of half the bandwidth?
//!
//! **(ii)** If a user subscribes to a *second* access link like the first,
//! can they watch videos of twice the bitrate?
//!
//! ```sh
//! cargo run --release --example multipath_vs_single
//! ```

use mptcp_streaming::prelude::*;
use mptcp_streaming::tcp_model::calibrate;

const THRESHOLD: f64 = 1e-4; // "satisfactory": < 0.01% late packets

fn required_tau(paths: Vec<PathSpec>, mu: f64) -> Option<f64> {
    let opts = SearchOptions {
        threshold: THRESHOLD,
        max_consumptions: 600_000,
        block: 150_000,
        ..SearchOptions::default()
    };
    required_startup_delay(|tau| DmpModel::new(paths.clone(), mu, tau), &opts)
}

fn main() {
    let (p, to) = (0.02, 4.0);
    let wmax = DmpModel::DEFAULT_WMAX;

    // A single path dialled to σ/µ = 2 — the single-path rule of thumb of
    // Wang et al. 2004 — for a 25 pkt/s (300 kbps) video.
    let mu = 25.0;
    let rtt_single = calibrate::rtt_for_ratio(p, to, wmax, 1, mu, 2.0);
    let single = PathSpec {
        loss: p,
        rtt_s: rtt_single,
        to_ratio: to,
    };
    let sigma_single = calibrate::chain_throughput_pps(&single, wmax);
    println!(
        "single path: σ = {:.1} pkt/s at p = {p}, R = {:.0} ms (σ/µ = 2.0)",
        sigma_single,
        rtt_single * 1e3
    );
    println!(
        "  required startup delay: {:?} s",
        required_tau(vec![single], mu)
    );

    // (i) Two paths with HALF the achievable throughput each (same aggregate).
    let half = PathSpec {
        loss: p,
        rtt_s: 2.0 * rtt_single,
        to_ratio: to,
    };
    println!(
        "\n(i) two half-rate paths (σ_k = {:.1} pkt/s each, same aggregate):",
        sigma_single / 2.0
    );
    println!(
        "  required startup delay: {:?} s",
        required_tau(vec![half; 2], mu)
    );
    println!("  → yes: the same video streams over two half-rate links.");

    // (ii) Two paths like the original, video bitrate DOUBLED.
    println!(
        "\n(ii) two full-rate paths, video bitrate doubled (µ = {} pkt/s):",
        2.0 * mu
    );
    println!(
        "  required startup delay: {:?} s",
        required_tau(vec![single; 2], 2.0 * mu)
    );
    println!("  → yes: doubling the subscription doubles the watchable bitrate.");

    // The reason: multipath needs σa/µ ≈ 1.6, single path ≈ 2. Show the
    // margin at the multipath rule.
    let mu_at_1_6 = calibrate::mu_for_ratio(p, rtt_single, to, wmax, 2, 1.6);
    println!(
        "\nat σa/µ = 1.6 the same two paths even support µ = {:.1} pkt/s (> 2×{mu}):",
        mu_at_1_6
    );
    println!(
        "  required startup delay: {:?} s",
        required_tau(vec![single; 2], mu_at_1_6)
    );
}
