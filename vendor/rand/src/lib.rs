//! Minimal offline stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: [`RngCore`], [`Rng::gen_range`]/[`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::SmallRng`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it needs. `SmallRng` matches upstream's
//! 64-bit implementation (xoshiro256++ seeded through SplitMix64), so seeded
//! streams are of the same family and quality, though exact values are not
//! guaranteed to match upstream bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator interface (subset of `rand_core`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that knows how to sample a `T` uniformly from an [`RngCore`].
pub trait SampleRange<T> {
    /// Draw one sample; panics on an empty range, mirroring `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1), as in rand's Standard distribution.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform integer in `[0, n)` by rejection sampling (unbiased).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 as upstream does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast RNG: xoshiro256++ (what `rand` 0.8 uses on 64-bit).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // All-zero is a fixed point of xoshiro; nudge it.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v), "{v}");
            let w = rng.gen_range(0.9..=1.1);
            assert!((0.9..=1.1).contains(&w), "{w}");
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn mean_of_unit_samples_is_half() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
