//! Minimal offline stand-in for the subset of `parking_lot` this workspace
//! uses: a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`). Backed by `std::sync::Mutex`; a poisoned lock is recovered
//! rather than propagated, matching `parking_lot`'s no-poisoning semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// Mutual exclusion lock (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// New lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 1);
    }
}
