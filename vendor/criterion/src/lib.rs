//! Minimal offline stand-in for the subset of `criterion` this workspace
//! uses: [`Criterion::bench_function`] with [`Bencher::iter`], plus the
//! `criterion_group!`/`criterion_main!` macros. Reports mean wall-clock per
//! iteration on stdout; no statistical analysis or HTML reports.

use std::time::Instant;

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run `routine` with a [`Bencher`] and print per-iteration timing.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            iterations: 0,
            total: std::time::Duration::ZERO,
        };
        routine(&mut bencher);
        if bencher.iterations > 0 {
            let per_iter = bencher.total / bencher.iterations as u32;
            println!(
                "bench {id}: {per_iter:?}/iter over {} iterations",
                bencher.iterations
            );
        } else {
            println!("bench {id}: no iterations recorded");
        }
        self
    }

    /// Finalise (no-op; exists for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// Timing harness passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    iterations: u64,
    total: std::time::Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iterations += 1;
            black_box(out);
        }
    }
}

/// Define a benchmark group function (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary entry point (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert_eq!(calls, 3);
    }
}
