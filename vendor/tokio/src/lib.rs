//! Minimal offline stand-in for the subset of tokio this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides the
//! same *interface* with a deliberately simple execution model:
//!
//! * [`runtime::Runtime::block_on`] drives a future on the current thread
//!   with a park/unpark waker;
//! * [`spawn`] runs each task on its **own OS thread** (thread-per-task), so
//!   futures that block inside `poll` — all socket and channel operations
//!   here are plain blocking calls — still make progress concurrently;
//! * [`net`] wraps `std::net` blocking sockets in `async fn` clothing;
//! * [`time::timeout`] supports waker-driven futures (e.g. [`task::JoinHandle`])
//!   via a one-shot timer thread.
//!
//! This model is correct for the streaming code in `dmp-live`, which never
//! multiplexes blocking I/O futures inside a single task. It is **not** a
//! general tokio replacement.

pub mod runtime;
pub mod task;

pub use task::spawn;

pub mod io;
pub mod net;
pub mod sync;
pub mod time;

#[cfg(test)]
mod tests {
    use crate::io::{AsyncReadExt, AsyncWriteExt};
    use std::time::Duration;

    #[test]
    fn block_on_runs_simple_future() {
        let rt = crate::runtime::Runtime::new().unwrap();
        assert_eq!(rt.block_on(async { 2 + 2 }), 4);
    }

    #[test]
    fn spawned_tasks_run_concurrently_and_join() {
        let rt = crate::runtime::Runtime::new().unwrap();
        let total = rt.block_on(async {
            let handles: Vec<_> = (0..8u64)
                .map(|i| crate::spawn(async move { i * i }))
                .collect();
            let mut total = 0;
            for h in handles {
                total += h.await.unwrap();
            }
            total
        });
        assert_eq!(total, (0..8u64).map(|i| i * i).sum());
    }

    #[test]
    fn timeout_elapses_on_stuck_task() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let h = crate::spawn(async {
                std::thread::sleep(Duration::from_secs(5));
            });
            let r = crate::time::timeout(Duration::from_millis(50), h).await;
            assert!(r.is_err(), "timeout should elapse");
        });
    }

    #[test]
    fn tcp_echo_end_to_end() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (mut sock, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 5];
                sock.read_exact(&mut buf).await.unwrap();
                sock.write_all(&buf).await.unwrap();
            });
            let mut client = crate::net::TcpStream::connect(addr).await.unwrap();
            client.write_all(b"hello").await.unwrap();
            let mut back = [0u8; 5];
            client.read_exact(&mut back).await.unwrap();
            assert_eq!(&back, b"hello");
            server.await.unwrap();
        });
    }

    #[test]
    fn mpsc_backpressure_and_close() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::channel::<u64>(2);
            let producer = crate::spawn(async move {
                for i in 0..100 {
                    tx.send(i).await.unwrap();
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            producer.await.unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn notify_wakes_waiter() {
        use std::sync::Arc;
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let n = Arc::new(crate::sync::Notify::new());
            let n2 = Arc::clone(&n);
            let waiter = crate::spawn(async move {
                n2.notified().await;
                7u32
            });
            std::thread::sleep(Duration::from_millis(20));
            n.notify_waiters();
            assert_eq!(waiter.await.unwrap(), 7);
        });
    }

    #[test]
    fn send_buffer_size_socket_connects() {
        let rt = crate::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let acceptor = crate::spawn(async move { listener.accept().await.map(|_| ()) });
            let sock = crate::net::TcpSocket::new_v4().unwrap();
            sock.set_send_buffer_size(16 * 1024).unwrap();
            let mut s = sock.connect(addr).await.unwrap();
            s.write_all(b"x").await.unwrap();
            acceptor.await.unwrap().unwrap();
        });
    }
}
