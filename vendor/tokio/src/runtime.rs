//! Current-thread `block_on` executor with a park/unpark waker.

use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Waker that unparks a captured thread; `notified` absorbs wakes that land
/// between a `Pending` poll result and the corresponding park.
struct ThreadWaker {
    thread: Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::SeqCst);
        self.thread.unpark();
    }
}

/// Drive `future` to completion on the current thread.
pub(crate) fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = pin!(future);
    let waker_state = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&waker_state));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => {
                while !waker_state.notified.swap(false, Ordering::SeqCst) {
                    std::thread::park();
                }
            }
        }
    }
}

/// Handle to the (trivial) runtime. Tasks are thread-per-task, so the
/// runtime itself holds no state; it exists for API compatibility.
#[derive(Debug)]
pub struct Runtime {
    _priv: (),
}

impl Runtime {
    /// Create a runtime. Never fails in this stand-in; the `Result` mirrors
    /// tokio's signature.
    pub fn new() -> std::io::Result<Self> {
        Ok(Self { _priv: () })
    }

    /// Run a future to completion on the calling thread.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        block_on(future)
    }
}
