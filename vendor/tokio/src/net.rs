//! Async-signature wrappers over `std::net` blocking sockets.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};

/// TCP listener (subset of `tokio::net::TcpListener`).
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Bind to `addr`.
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Ok(Self {
            inner: std::net::TcpListener::bind(addr)?,
        })
    }

    /// Accept one connection (blocks the calling task's thread).
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, peer) = self.inner.accept()?;
        Ok((TcpStream { inner: stream }, peer))
    }

    /// Local address the listener is bound to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

/// TCP stream (subset of `tokio::net::TcpStream`). I/O methods live on the
/// [`crate::io::AsyncReadExt`]/[`crate::io::AsyncWriteExt`] traits.
#[derive(Debug)]
pub struct TcpStream {
    pub(crate) inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connect to `addr`.
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Ok(Self {
            inner: std::net::TcpStream::connect(addr)?,
        })
    }

    /// Enable/disable Nagle's algorithm.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// Peer address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

/// Unconnected IPv4 TCP socket that can set options (`SO_SNDBUF`) before
/// connecting. Implemented with direct libc syscalls on Unix because
/// `std::net` exposes no `setsockopt`.
#[derive(Debug)]
pub struct TcpSocket {
    #[cfg(unix)]
    fd: std::os::fd::RawFd,
    #[cfg(not(unix))]
    send_buffer_size: std::cell::Cell<Option<u32>>,
    #[cfg(not(unix))]
    bind_addr: std::cell::Cell<Option<SocketAddr>>,
}

#[cfg(unix)]
mod sys {
    use std::os::fd::RawFd;

    pub const AF_INET: i32 = 2;
    pub const SOCK_STREAM: i32 = 1;
    // Linux values; this workspace only targets Linux.
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_SNDBUF: i32 = 7;
    pub const SO_RCVBUF: i32 = 8;
    pub const SO_REUSEADDR: i32 = 2;

    /// `struct sockaddr_in` — fields stored in network byte order.
    #[repr(C)]
    pub struct SockaddrIn {
        pub sin_family: u16,
        pub sin_port: u16,
        pub sin_addr: u32,
        pub sin_zero: [u8; 8],
    }

    extern "C" {
        pub fn socket(domain: i32, ty: i32, protocol: i32) -> RawFd;
        pub fn setsockopt(
            fd: RawFd,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
        pub fn connect(fd: RawFd, addr: *const SockaddrIn, len: u32) -> i32;
        pub fn bind(fd: RawFd, addr: *const SockaddrIn, len: u32) -> i32;
        pub fn listen(fd: RawFd, backlog: i32) -> i32;
        pub fn close(fd: RawFd) -> i32;
    }
}

#[cfg(unix)]
impl TcpSocket {
    /// Create a new IPv4 socket.
    pub fn new_v4() -> io::Result<Self> {
        let fd = unsafe { sys::socket(sys::AF_INET, sys::SOCK_STREAM, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    fn set_opt_i32(&self, optname: i32, val: i32) -> io::Result<()> {
        let rc = unsafe {
            sys::setsockopt(
                self.fd,
                sys::SOL_SOCKET,
                optname,
                &val as *const i32 as *const core::ffi::c_void,
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Set `SO_SNDBUF` before connecting.
    pub fn set_send_buffer_size(&self, size: u32) -> io::Result<()> {
        self.set_opt_i32(sys::SO_SNDBUF, size as i32)
    }

    /// Set `SO_RCVBUF` before connecting or listening (listeners pass the
    /// value on to accepted connections).
    pub fn set_recv_buffer_size(&self, size: u32) -> io::Result<()> {
        self.set_opt_i32(sys::SO_RCVBUF, size as i32)
    }

    /// Allow rebinding a recently used local address.
    pub fn set_reuseaddr(&self, reuse: bool) -> io::Result<()> {
        self.set_opt_i32(sys::SO_REUSEADDR, i32::from(reuse))
    }

    fn sockaddr_of(&self, addr: SocketAddr) -> io::Result<sys::SockaddrIn> {
        let SocketAddr::V4(v4) = addr else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "TcpSocket::new_v4 cannot use an IPv6 address",
            ));
        };
        Ok(sys::SockaddrIn {
            sin_family: sys::AF_INET as u16,
            sin_port: v4.port().to_be(),
            // Octets are already network-ordered; keep their memory layout.
            sin_addr: u32::from_ne_bytes(v4.ip().octets()),
            sin_zero: [0u8; 8],
        })
    }

    /// Bind the socket to a local address (port 0 = ephemeral).
    pub fn bind(&self, addr: SocketAddr) -> io::Result<()> {
        let sockaddr = self.sockaddr_of(addr)?;
        let rc = unsafe {
            sys::bind(
                self.fd,
                &sockaddr,
                std::mem::size_of::<sys::SockaddrIn>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start listening, consuming the socket. Options set beforehand
    /// (e.g. `SO_RCVBUF`) are inherited by accepted connections.
    pub fn listen(self, backlog: u32) -> io::Result<TcpListener> {
        use std::os::fd::FromRawFd;
        let rc = unsafe { sys::listen(self.fd, backlog.min(i32::MAX as u32) as i32) };
        if rc != 0 {
            let err = io::Error::last_os_error();
            unsafe { sys::close(self.fd) };
            return Err(err);
        }
        let inner = unsafe { std::net::TcpListener::from_raw_fd(self.fd) };
        Ok(TcpListener { inner })
    }

    /// Connect to `addr`, consuming the socket.
    pub async fn connect(self, addr: SocketAddr) -> io::Result<TcpStream> {
        use std::os::fd::FromRawFd;
        let sockaddr = match self.sockaddr_of(addr) {
            Ok(sa) => sa,
            Err(e) => {
                unsafe { sys::close(self.fd) };
                return Err(e);
            }
        };
        let rc = unsafe {
            sys::connect(
                self.fd,
                &sockaddr,
                std::mem::size_of::<sys::SockaddrIn>() as u32,
            )
        };
        if rc != 0 {
            let err = io::Error::last_os_error();
            unsafe { sys::close(self.fd) };
            return Err(err);
        }
        let inner = unsafe { std::net::TcpStream::from_raw_fd(self.fd) };
        Ok(TcpStream { inner })
    }
}

#[cfg(not(unix))]
impl TcpSocket {
    /// Create a new IPv4 socket (option-less fallback).
    pub fn new_v4() -> io::Result<Self> {
        Ok(Self {
            send_buffer_size: std::cell::Cell::new(None),
            bind_addr: std::cell::Cell::new(None),
        })
    }

    /// Recorded but not applied on non-Unix fallback.
    pub fn set_send_buffer_size(&self, size: u32) -> io::Result<()> {
        self.send_buffer_size.set(Some(size));
        Ok(())
    }

    /// Recorded but not applied on non-Unix fallback.
    pub fn set_recv_buffer_size(&self, _size: u32) -> io::Result<()> {
        Ok(())
    }

    /// Recorded but not applied on non-Unix fallback.
    pub fn set_reuseaddr(&self, _reuse: bool) -> io::Result<()> {
        Ok(())
    }

    /// Remember the bind address for `listen`.
    pub fn bind(&self, addr: SocketAddr) -> io::Result<()> {
        self.bind_addr.set(Some(addr));
        Ok(())
    }

    /// Start listening at the previously bound address.
    pub fn listen(self, _backlog: u32) -> io::Result<TcpListener> {
        let addr = self.bind_addr.get().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "TcpSocket::listen before bind")
        })?;
        Ok(TcpListener {
            inner: std::net::TcpListener::bind(addr)?,
        })
    }

    /// Connect to `addr`, consuming the socket.
    pub async fn connect(self, addr: SocketAddr) -> io::Result<TcpStream> {
        TcpStream::connect(addr).await
    }
}
