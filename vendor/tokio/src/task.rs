//! Thread-per-task `spawn` with a waker-driven [`JoinHandle`].

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Why a task's result is unavailable.
#[derive(Debug)]
pub struct JoinError {
    panic_msg: Option<String>,
    cancelled: bool,
}

impl JoinError {
    /// True if the task panicked.
    pub fn is_panic(&self) -> bool {
        self.panic_msg.is_some()
    }

    /// True if the task was aborted.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.panic_msg, self.cancelled) {
            (Some(msg), _) => write!(f, "task panicked: {msg}"),
            (None, true) => write!(f, "task was cancelled"),
            (None, false) => write!(f, "task failed"),
        }
    }
}

impl std::error::Error for JoinError {}

enum State<T> {
    Pending(Option<Waker>),
    Done(Result<T, JoinError>),
    Taken,
}

struct Shared<T> {
    state: Mutex<State<T>>,
}

impl<T> Shared<T> {
    fn complete(&self, result: Result<T, JoinError>) {
        let waker = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            match &mut *state {
                State::Pending(w) => {
                    let w = w.take();
                    *state = State::Done(result);
                    w
                }
                // Already completed (can't happen) or taken: drop the result.
                _ => None,
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Handle to a spawned task; a future resolving to the task's output.
pub struct JoinHandle<T> {
    shared: Arc<Shared<T>>,
    aborted: Arc<std::sync::atomic::AtomicBool>,
}

impl<T> JoinHandle<T> {
    /// Request cancellation. Best-effort in this stand-in: the underlying
    /// thread is not killed, but `await` returns `Err(cancelled)` once the
    /// task would otherwise have been joined, and tasks blocked on sockets
    /// exit via the shutdown cascade of their peers. The flag is observable
    /// so cooperative tasks could check it; none currently do.
    pub fn abort(&self) {
        self.aborted
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// True once the task has produced a result.
    pub fn is_finished(&self) -> bool {
        !matches!(
            &*self.shared.state.lock().unwrap_or_else(|e| e.into_inner()),
            State::Pending(_)
        )
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *state {
            State::Pending(waker) => {
                *waker = Some(cx.waker().clone());
                Poll::Pending
            }
            State::Done(_) => {
                let done = std::mem::replace(&mut *state, State::Taken);
                match done {
                    State::Done(result) => Poll::Ready(result),
                    _ => unreachable!(),
                }
            }
            State::Taken => panic!("JoinHandle polled after completion"),
        }
    }
}

/// Spawn `future` on its own OS thread and return a handle to its output.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let shared = Arc::new(Shared {
        state: Mutex::new(State::Pending(None)),
    });
    let aborted = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let worker_shared = Arc::clone(&shared);
    std::thread::spawn(move || {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::runtime::block_on(future)
        }));
        let result = outcome.map_err(|payload| JoinError {
            // `&*payload`: pass the payload itself, not the Box (which also
            // implements Any and would defeat the downcasts).
            panic_msg: Some(panic_message(&*payload)),
            cancelled: false,
        });
        worker_shared.complete(result);
    });
    JoinHandle { shared, aborted }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
