//! `AsyncReadExt`/`AsyncWriteExt` traits backed by blocking I/O.
//!
//! Each method performs the blocking `std::io` call inside its `async fn`
//! body; because every task runs on its own thread, a blocked read only
//! stalls its own task.

use std::io::{self, Read, Write};

/// Read-side async extension methods (subset of `tokio::io::AsyncReadExt`).
#[allow(async_fn_in_trait)]
pub trait AsyncReadExt {
    /// Read up to `buf.len()` bytes; `Ok(0)` signals EOF.
    async fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Read exactly `buf.len()` bytes or fail with `UnexpectedEof`.
    async fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<usize>;
}

/// Write-side async extension methods (subset of `tokio::io::AsyncWriteExt`).
#[allow(async_fn_in_trait)]
pub trait AsyncWriteExt {
    /// Write the whole buffer.
    async fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flush buffered data.
    async fn flush(&mut self) -> io::Result<()>;

    /// Gracefully shut down the write side.
    async fn shutdown(&mut self) -> io::Result<()>;
}

impl AsyncReadExt for crate::net::TcpStream {
    async fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }

    async fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read_exact(buf)?;
        Ok(buf.len())
    }
}

impl AsyncWriteExt for crate::net::TcpStream {
    async fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_all(buf)
    }

    async fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    async fn shutdown(&mut self) -> io::Result<()> {
        match self.inner.shutdown(std::net::Shutdown::Write) {
            Ok(()) => Ok(()),
            // Peer already gone: treat like tokio, which surfaces NotConnected
            // only from the syscall; callers here ignore shutdown errors.
            Err(e) if e.kind() == io::ErrorKind::NotConnected => Ok(()),
            Err(e) => Err(e),
        }
    }
}
