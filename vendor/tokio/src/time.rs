//! Time utilities: blocking sleeps plus a timer-thread-backed [`timeout`].

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

/// Re-export: `tokio::time::Instant`'s used surface (now/elapsed/arithmetic)
/// matches `std::time::Instant`.
pub use std::time::Instant;

/// Timeout error types.
pub mod error {
    /// The deadline elapsed before the wrapped future completed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Elapsed(pub(crate) ());

    impl std::fmt::Display for Elapsed {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "deadline has elapsed")
        }
    }

    impl std::error::Error for Elapsed {}
}

/// Sleep for `dur` (blocks the calling task's thread).
pub async fn sleep(dur: Duration) {
    std::thread::sleep(dur);
}

/// Sleep until `deadline` (blocks the calling task's thread).
pub async fn sleep_until(deadline: Instant) {
    let now = Instant::now();
    if deadline > now {
        std::thread::sleep(deadline - now);
    }
}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    future: F,
    dur: Duration,
    deadline: Option<Instant>,
    timer_started: bool,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, error::Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: `future` is structurally pinned; we never move it out, and
        // the other fields are Unpin plain data.
        let this = unsafe { self.get_unchecked_mut() };
        let future = unsafe { Pin::new_unchecked(&mut this.future) };
        if let Poll::Ready(v) = future.poll(cx) {
            return Poll::Ready(Ok(v));
        }
        let deadline = *this
            .deadline
            .get_or_insert_with(|| Instant::now() + this.dur);
        if Instant::now() >= deadline {
            return Poll::Ready(Err(error::Elapsed(())));
        }
        if !this.timer_started {
            this.timer_started = true;
            let waker = cx.waker().clone();
            std::thread::spawn(move || {
                let now = Instant::now();
                if deadline > now {
                    std::thread::sleep(deadline - now);
                }
                waker.wake();
            });
        }
        Poll::Pending
    }
}

/// Require `future` to complete within `dur`.
///
/// The wrapped future must be waker-driven (e.g. a [`crate::task::JoinHandle`]);
/// wrapping a future that *blocks* inside `poll` would defeat the timeout.
pub fn timeout<F: Future>(dur: Duration, future: F) -> Timeout<F> {
    Timeout {
        future,
        dur,
        deadline: None,
        timer_started: false,
    }
}
