//! Synchronisation primitives: [`Notify`] and bounded [`mpsc`] channels,
//! both condvar-backed (blocking waits are safe under thread-per-task).

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Notify a set of waiting tasks (subset of `tokio::sync::Notify`).
///
/// `notified().await` may complete spuriously (waits are chunked with a
/// condvar timeout to guarantee liveness across the create/notify race);
/// callers follow the usual pattern of re-checking their condition in a
/// loop, which all users in this workspace do.
#[derive(Debug, Default)]
pub struct Notify {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl Notify {
    /// New notifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Future completing at the next notification (or spuriously).
    pub fn notified(&self) -> Notified<'_> {
        Notified {
            notify: self,
            start_epoch: *self.epoch.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Wake all current waiters.
    pub fn notify_waiters(&self) {
        let mut epoch = self.epoch.lock().unwrap_or_else(|e| e.into_inner());
        *epoch += 1;
        self.cv.notify_all();
    }

    /// Wake one waiter (same as `notify_waiters` in this stand-in).
    pub fn notify_one(&self) {
        self.notify_waiters();
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified<'a> {
    notify: &'a Notify,
    start_epoch: u64,
}

impl std::future::Future for Notified<'_> {
    type Output = ();

    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        let guard = self.notify.epoch.lock().unwrap_or_else(|e| e.into_inner());
        if *guard != self.start_epoch {
            return std::task::Poll::Ready(());
        }
        // Bounded wait, then complete (possibly spuriously): guarantees
        // liveness even if a notification landed between `notified()` and
        // this poll.
        let _ = self
            .notify
            .cv
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap_or_else(|e| e.into_inner());
        std::task::Poll::Ready(())
    }
}

/// Bounded multi-producer single-consumer channel.
pub mod mpsc {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Channel error types.
    pub mod error {
        /// The receiver was dropped; the unsent value is returned.
        #[derive(Debug)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }

        impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}
    }

    pub use error::SendError;

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receiver_alive: bool,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        not_full: Condvar,
        not_empty: Condvar,
    }

    /// Create a bounded channel with room for `buffer` queued values.
    pub fn channel<T>(buffer: usize) -> (Sender<T>, Receiver<T>) {
        assert!(buffer > 0, "mpsc bounded channel requires buffer > 0");
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity: buffer,
                senders: 1,
                receiver_alive: true,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Sending half.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Send `value`, waiting for capacity; fails if the receiver is gone.
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !inner.receiver_alive {
                    return Err(SendError(value));
                }
                if inner.queue.len() < inner.capacity {
                    inner.queue.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .chan
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            if inner.senders == 0 {
                self.chan.not_empty.notify_all();
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Receive the next value; `None` once all senders are dropped and
        /// the queue is drained.
        pub async fn recv(&mut self) -> Option<T> {
            let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Some(v);
                }
                if inner.senders == 0 {
                    return None;
                }
                inner = self
                    .chan
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receiver_alive = false;
            self.chan.not_full.notify_all();
        }
    }
}
