//! Minimal offline stand-in for the subset of the `bytes` crate this
//! workspace uses: [`BytesMut`] as a growable byte buffer with cheap front
//! consumption, plus the [`Buf`]/[`BufMut`] accessor traits (big-endian, as
//! upstream).

use std::ops::{Deref, DerefMut};

/// Read-side accessors over a byte buffer (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The readable bytes.
    fn chunk(&self) -> &[u8];
    /// Discard the first `cnt` readable bytes.
    fn advance(&mut self, cnt: usize);

    /// Read a big-endian `u32` and advance.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64` and advance.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
}

/// Write-side accessors over a byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }
}

/// Growable byte buffer with an amortised-O(1) consumed front.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Index of the first unconsumed byte in `buf`.
    head: usize,
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", &self[..])
    }
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether no readable bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensure room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.buf.reserve(additional);
    }

    /// Drop all content.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact_if_large();
        self.buf.extend_from_slice(src);
    }

    /// Split off and return the first `at` readable bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = self[..at].to_vec();
        self.head += at;
        BytesMut {
            buf: front,
            head: 0,
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        self.compact();
        Bytes(self.buf)
    }

    fn compact(&mut self) {
        if self.head > 0 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }

    fn compact_if_large(&mut self) {
        // Reclaim consumed space once it dominates the allocation.
        if self.head > 4096 && self.head > self.buf.len() / 2 {
            self.compact();
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.head..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.head..]
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
        self.compact_if_large();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte container (subset of `bytes::Bytes`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut b = BytesMut::new();
        b.put_u32(0xdead_beef);
        b.put_u64(42);
        b.put_bytes(7, 3);
        assert_eq!(b.len(), 15);
        assert_eq!(b.get_u32(), 0xdead_beef);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(&b[..], &[7, 7, 7]);
        b.advance(3);
        assert!(b.is_empty());
    }

    #[test]
    fn split_and_freeze() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(&[1, 2, 3, 4, 5]);
        let front = b.split_to(2);
        assert_eq!(&front[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[3, 4, 5]);
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn interleaved_consume_and_append() {
        let mut b = BytesMut::new();
        for round in 0u8..100 {
            b.extend_from_slice(&[round; 64]);
            if b.len() >= 48 {
                b.advance(48);
            }
        }
        // Only length/ordering matter; exercise the compaction paths.
        assert!(b.len() < 64 * 100);
    }
}
