//! Differential test for the simulation engine: every figure configuration
//! (all twelve paper settings: homogeneous, heterogeneous, and correlated)
//! is run under both the reference binary-heap scheduler and the calendar
//! queue, and the rendered result JSON must be **byte-identical**. The
//! calendar queue is a pure scheduling-order-preserving optimisation; any
//! divergence here is a bug in it.
//!
//! The `engine` field is part of `ExperimentSpec::config_repr`, so when a
//! cache is configured (`DMP_CACHE_DIR`) the two engines can never be served
//! each other's cached summaries.

use dmp_core::resilience::ResilienceSpec;
use dmp_core::spec::{PullStrategy, SchedulerKind};
use dmp_runner::{Cache, JsonCodec, Runner};
use dmp_sim::configs::{setting, CORRELATED, HETEROGENEOUS, HOMOGENEOUS};
use dmp_sim::experiment::{batch_jobs, scenario_batch_jobs, ExperimentSpec, RunSummary, TraceSpec};
use netsim::EngineKind;
use scenario::Scenario;

/// One shortened replication of every setting with the given engine and
/// scenario, executed through the runner (so the content-addressed cache,
/// when enabled, is exercised with engine- and scenario-tagged keys),
/// rendered to JSON bytes.
fn all_settings_rendered(engine: EngineKind, scenario: &Scenario) -> Vec<(String, String)> {
    let runner = Runner::new(1, Cache::from_env()).with_progress(false);
    let mut jobs = Vec::new();
    let mut names = Vec::new();
    for s in HOMOGENEOUS.iter().chain(&HETEROGENEOUS).chain(&CORRELATED) {
        let mut spec = ExperimentSpec::new(*s, SchedulerKind::Dynamic, 60.0, 2007);
        spec.warmup_s = 10.0;
        spec.engine = engine;
        spec.scenario = scenario.clone();
        names.push(s.name.to_string());
        jobs.extend(batch_jobs(&spec, 1, &[2.0, 6.0]));
    }
    let cells = runner.run_all(jobs);
    names
        .into_iter()
        .zip(cells)
        .map(|(name, cell)| {
            let summary: &RunSummary = cell.ok().expect("simulation job must not fail");
            (name, summary.to_json().render())
        })
        .collect()
}

#[test]
fn calendar_queue_matches_heap_reference_on_every_setting() {
    let heap = all_settings_rendered(EngineKind::Heap, &Scenario::default());
    let calendar = all_settings_rendered(EngineKind::Calendar, &Scenario::default());
    assert_eq!(heap.len(), 12);
    for ((name_h, bytes_h), (name_c, bytes_c)) in heap.iter().zip(&calendar) {
        assert_eq!(name_h, name_c);
        assert_eq!(
            bytes_h, bytes_c,
            "setting {name_h}: calendar-queue artifact diverges from the heap reference"
        );
    }
}

/// A shortened failover scenario batch (two replications), traced or not.
/// Returns the rendered per-run summaries and, for traced runs, each run's
/// trace file contents keyed by job label (the process-wide obs registry is
/// drained, so callers must not run concurrently with other registry users).
fn failover_batch(
    engine: EngineKind,
    threads: usize,
    trace_dir: Option<&std::path::Path>,
) -> (Vec<String>, Vec<(String, Vec<u8>)>) {
    let scn = Scenario::named("failover")
        .at(20.0, 0, scenario::Event::PathDown)
        .at(30.0, 0, scenario::Event::PathUp);
    let mut spec = ExperimentSpec::new(*setting("2-2").unwrap(), SchedulerKind::Dynamic, 60.0, 77);
    spec.warmup_s = 10.0;
    spec.engine = engine;
    spec.scenario = scn;
    if let Some(dir) = trace_dir {
        spec.trace = TraceSpec::on(""); // per-run labels come from the jobs
        spec.trace.dir = Some(dir.to_path_buf());
    }
    let res = ResilienceSpec {
        tau_s: 4.0,
        window_s: 10.0,
        fail_at_s: Some(20.0),
    };
    let runner = Runner::new(threads, Cache::disabled()).with_progress(false);
    let cells = runner.run_all(scenario_batch_jobs(&spec, 2, &[4.0], res));
    let rendered = cells
        .iter()
        .map(|c| {
            c.ok()
                .expect("simulation job must not fail")
                .to_json()
                .render()
        })
        .collect();
    let traces = obs::drain_trace_files()
        .into_iter()
        .map(|f| {
            let bytes = std::fs::read(&f.path).expect("trace file exists");
            assert_eq!(
                bytes.iter().filter(|&&b| b == b'\n').count() as u64,
                f.events,
                "registered event count must match the file"
            );
            // Labels carry an `:<engine>` suffix (one file per job even in
            // mixed-engine batches); strip it so the cross-engine compare
            // pairs up the same run.
            let label = f
                .label
                .strip_suffix(&format!(":{engine:?}"))
                .expect("trace label ends with the engine")
                .to_string();
            (label, bytes)
        })
        .collect();
    (rendered, traces)
}

/// The flight recorder must be invisible in every deterministic result and
/// the trace itself must be byte-identical across scheduler engines and
/// runner thread counts. One test function, because the obs registry is
/// process-global and tests in one binary run concurrently.
#[test]
fn tracing_is_result_neutral_and_trace_bytes_are_engine_and_thread_invariant() {
    let base = std::env::temp_dir().join(format!("dmp-sim-trace-diff-{}", std::process::id()));
    let dir_cal = base.join("cal");
    let dir_heap = base.join("heap");
    let dir_mt = base.join("mt");

    let (untraced, none) = failover_batch(EngineKind::Calendar, 1, None);
    assert!(
        none.is_empty(),
        "untraced runs must register no trace files"
    );

    let (traced, cal) = failover_batch(EngineKind::Calendar, 1, Some(&dir_cal));
    assert_eq!(
        untraced, traced,
        "tracing changed a deterministic result (it must be behaviour-neutral)"
    );
    assert_eq!(cal.len(), 2, "one trace file per replication");

    // Engine invariance: the heap reference dispatches the same events in
    // the same order, so the trace bytes cannot differ.
    let (_, heap) = failover_batch(EngineKind::Heap, 1, Some(&dir_heap));
    assert_eq!(cal, heap, "trace bytes diverge between scheduler engines");

    // Thread-count invariance: each run writes its own file and the registry
    // drain sorts by label, so 8 workers produce the same bytes as 1.
    let (_, mt) = failover_batch(EngineKind::Calendar, 8, Some(&dir_mt));
    assert_eq!(cal, mt, "trace bytes depend on runner thread count");

    // The trace actually contains the layers' events: header, TCP state,
    // queue samples, scheduler decisions, deliveries, and the scripted fault.
    let text = String::from_utf8(cal[0].1.clone()).unwrap();
    for needle in [
        "\"ev\":\"path_conn\"",
        "\"ev\":\"cwnd\"",
        "\"ev\":\"link_q\"",
        "\"ev\":\"pull\"",
        "\"ev\":\"gen\"",
        "\"ev\":\"dlv\"",
        "\"ev\":\"path_ev\"",
        "\"action\":\"down\"",
        "\"action\":\"up\"",
    ] {
        assert!(text.contains(needle), "trace is missing {needle}");
    }

    std::fs::remove_dir_all(&base).ok();
}

/// A named-but-empty scenario takes a different cache key (so it never
/// collides with the scenario-free baseline) but must not perturb a single
/// byte of any rendered artifact, under either engine.
#[test]
fn noop_scenario_is_byte_identical_to_baseline_on_every_setting() {
    let noop = Scenario::named("noop");
    for engine in [EngineKind::Calendar, EngineKind::Heap] {
        let baseline = all_settings_rendered(engine, &Scenario::default());
        let scripted = all_settings_rendered(engine, &noop);
        assert_eq!(baseline.len(), 12);
        for ((name_b, bytes_b), (name_s, bytes_s)) in baseline.iter().zip(&scripted) {
            assert_eq!(name_b, name_s);
            assert_eq!(
                bytes_b, bytes_s,
                "setting {name_b} ({engine:?}): a no-op scenario changed the artifact"
            );
        }
    }
}

/// One shortened "2-2" run with the given engine, congestion control, and
/// pull strategy, rendered to JSON bytes.
fn rendered_22(engine: EngineKind, kind: cc::CcKind, strategy: PullStrategy) -> String {
    let mut spec =
        ExperimentSpec::new(*setting("2-2").unwrap(), SchedulerKind::Dynamic, 60.0, 2007);
    spec.warmup_s = 10.0;
    spec.engine = engine;
    spec.cc = kind;
    spec.strategy = strategy;
    let runner = Runner::new(1, Cache::disabled()).with_progress(false);
    let cells = runner.run_all(batch_jobs(&spec, 1, &[2.0, 6.0]));
    cells[0]
        .ok()
        .expect("simulation job must not fail")
        .to_json()
        .render()
}

/// Every congestion-control algorithm must be engine-invariant: the cc logic
/// consumes only simulated time and the ACK stream, so any divergence between
/// the heap reference and the calendar queue is an engine bug. The grid also
/// proves the `cc` knob is actually wired through: the three algorithms must
/// not all produce the same artifact.
#[test]
fn cc_algorithms_are_engine_invariant_and_distinct() {
    let mut by_kind = Vec::new();
    for kind in cc::CcKind::all() {
        let heap = rendered_22(EngineKind::Heap, kind, PullStrategy::RoundRobin);
        let calendar = rendered_22(EngineKind::Calendar, kind, PullStrategy::RoundRobin);
        assert_eq!(
            heap, calendar,
            "cc {kind:?}: calendar-queue artifact diverges from the heap reference"
        );
        by_kind.push(heap);
    }
    assert!(
        by_kind.windows(2).any(|w| w[0] != w[1]),
        "all congestion-control algorithms rendered identical artifacts — the knob is not wired"
    );
}

/// Every pull strategy must be engine-invariant, and the non-default
/// strategies must actually change scheduling (RoundRobin is the historical
/// baseline; RedundantDuplicate at minimum must differ, since it duplicates
/// packets across paths).
#[test]
fn pull_strategies_are_engine_invariant_and_wired() {
    let mut by_strategy = Vec::new();
    for strategy in PullStrategy::all() {
        let heap = rendered_22(EngineKind::Heap, cc::CcKind::Reno, strategy);
        let calendar = rendered_22(EngineKind::Calendar, cc::CcKind::Reno, strategy);
        assert_eq!(
            heap, calendar,
            "strategy {strategy:?}: calendar-queue artifact diverges from the heap reference"
        );
        by_strategy.push((strategy, heap));
    }
    let rr = &by_strategy[0].1;
    assert_eq!(by_strategy[0].0, PullStrategy::RoundRobin);
    let dup = by_strategy
        .iter()
        .find(|(s, _)| *s == PullStrategy::RedundantDuplicate)
        .map(|(_, b)| b)
        .expect("grid covers RedundantDuplicate");
    assert_ne!(
        rr, dup,
        "redundant duplication rendered the round-robin artifact — the strategy is not wired"
    );
}
