//! Differential test for the simulation engine: every figure configuration
//! (all twelve paper settings: homogeneous, heterogeneous, and correlated)
//! is run under both the reference binary-heap scheduler and the calendar
//! queue, and the rendered result JSON must be **byte-identical**. The
//! calendar queue is a pure scheduling-order-preserving optimisation; any
//! divergence here is a bug in it.
//!
//! The `engine` field is part of `ExperimentSpec::config_repr`, so when a
//! cache is configured (`DMP_CACHE_DIR`) the two engines can never be served
//! each other's cached summaries.

use dmp_core::spec::SchedulerKind;
use dmp_runner::{Cache, JsonCodec, Runner};
use dmp_sim::configs::{CORRELATED, HETEROGENEOUS, HOMOGENEOUS};
use dmp_sim::experiment::{batch_jobs, ExperimentSpec, RunSummary};
use netsim::EngineKind;
use scenario::Scenario;

/// One shortened replication of every setting with the given engine and
/// scenario, executed through the runner (so the content-addressed cache,
/// when enabled, is exercised with engine- and scenario-tagged keys),
/// rendered to JSON bytes.
fn all_settings_rendered(engine: EngineKind, scenario: &Scenario) -> Vec<(String, String)> {
    let runner = Runner::new(1, Cache::from_env()).with_progress(false);
    let mut jobs = Vec::new();
    let mut names = Vec::new();
    for s in HOMOGENEOUS.iter().chain(&HETEROGENEOUS).chain(&CORRELATED) {
        let mut spec = ExperimentSpec::new(*s, SchedulerKind::Dynamic, 60.0, 2007);
        spec.warmup_s = 10.0;
        spec.engine = engine;
        spec.scenario = scenario.clone();
        names.push(s.name.to_string());
        jobs.extend(batch_jobs(&spec, 1, &[2.0, 6.0]));
    }
    let cells = runner.run_all(jobs);
    names
        .into_iter()
        .zip(cells)
        .map(|(name, cell)| {
            let summary: &RunSummary = cell.ok().expect("simulation job must not fail");
            (name, summary.to_json().render())
        })
        .collect()
}

#[test]
fn calendar_queue_matches_heap_reference_on_every_setting() {
    let heap = all_settings_rendered(EngineKind::Heap, &Scenario::default());
    let calendar = all_settings_rendered(EngineKind::Calendar, &Scenario::default());
    assert_eq!(heap.len(), 12);
    for ((name_h, bytes_h), (name_c, bytes_c)) in heap.iter().zip(&calendar) {
        assert_eq!(name_h, name_c);
        assert_eq!(
            bytes_h, bytes_c,
            "setting {name_h}: calendar-queue artifact diverges from the heap reference"
        );
    }
}

/// A named-but-empty scenario takes a different cache key (so it never
/// collides with the scenario-free baseline) but must not perturb a single
/// byte of any rendered artifact, under either engine.
#[test]
fn noop_scenario_is_byte_identical_to_baseline_on_every_setting() {
    let noop = Scenario::named("noop");
    for engine in [EngineKind::Calendar, EngineKind::Heap] {
        let baseline = all_settings_rendered(engine, &Scenario::default());
        let scripted = all_settings_rendered(engine, &noop);
        assert_eq!(baseline.len(), 12);
        for ((name_b, bytes_b), (name_s, bytes_s)) in baseline.iter().zip(&scripted) {
            assert_eq!(name_b, name_s);
            assert_eq!(
                bytes_b, bytes_s,
                "setting {name_b} ({engine:?}): a no-op scenario changed the artifact"
            );
        }
    }
}
