//! End-to-end experiment runner: builds a topology for a paper setting,
//! streams a video with the chosen scheduler, and reports the delivery trace
//! plus the measured per-path TCP parameters (the `p`, `R`, `T_O`, µ columns
//! of Tables 2 and 3).

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

use dmp_core::metrics::{LateFractions, LatenessReport};
use dmp_core::resilience::{ResilienceReport, ResilienceSpec};
use dmp_core::spec::{PathSpec, PullStrategy, SchedulerKind};
use dmp_core::stats::OnlineStats;
use dmp_core::trace::StreamTrace;
use dmp_runner::{JobSpec, Json, JsonCodec};
use netsim::{secs, EngineKind, Sim, SimTracer};
use obs::{Recorder, TraceConfig};
use scenario::{PathBinding, Scenario, ScenarioDriver};

use crate::configs::{config, Setting};
use crate::topology::{attach_background, build_correlated_scenario, video_tcp, Topology};
use crate::video::{shared_trace, DmpServer, StaticServer, VideoClient};

/// Flight-recorder configuration for one run.
///
/// When `enabled`, the run records an [`obs`] event trace — TCP state
/// transitions of the video flows, bottleneck/server queue occupancy,
/// pull/stripe decisions, deliveries, and scripted path events — and writes
/// it as `<sanitised-label>.jsonl` under `dir` (default
/// [`obs::default_trace_dir`]), registering the file in the process-wide
/// [`obs::registry`](obs::drain_trace_files) for harnesses to reference from
/// their `.meta.json` sidecars.
///
/// `Debug` (and therefore [`ExperimentSpec::config_repr`]) prints only the
/// semantic fields: the label and directory name the output file, not the
/// simulation. Trace-enabled jobs are marked uncacheable by [`batch_jobs`] /
/// [`scenario_batch_jobs`] anyway — a cached summary would skip the
/// simulation and write no trace.
#[derive(Clone)]
pub struct TraceSpec {
    /// Record a trace for this run.
    pub enabled: bool,
    /// In-memory ring capacity before spilling to the file, events.
    pub ring: usize,
    /// Emit every Nth queue-occupancy change per queue.
    pub decimation: u32,
    /// Run label; the trace file stem is `obs::sanitize_label(label)` plus
    /// the `scope`, if any. When empty a label is derived from
    /// setting/scheduler/seed/engine.
    pub label: String,
    /// Disambiguating suffix appended to the trace stem (`<label>:<scope>`)
    /// — the engine for differential batches, a session/shard component for
    /// fleet runs. Keeping it out of `label` lets callers keep semantic
    /// labels while concurrent runs in one batch never collide on a file.
    pub scope: String,
    /// Output directory (`None`: [`obs::default_trace_dir`]).
    pub dir: Option<PathBuf>,
}

impl TraceSpec {
    /// Tracing disabled (the default; runs behave exactly as before the
    /// flight recorder existed, byte for byte).
    pub fn off() -> Self {
        let cfg = TraceConfig::default();
        Self {
            enabled: false,
            ring: cfg.ring_capacity,
            decimation: cfg.queue_decimation,
            label: String::new(),
            scope: String::new(),
            dir: None,
        }
    }

    /// Tracing enabled under `label` with default tuning.
    pub fn on(label: impl Into<String>) -> Self {
        Self {
            enabled: true,
            label: label.into(),
            ..Self::off()
        }
    }

    /// Set the stem-disambiguating scope (builder style).
    pub fn with_scope(mut self, scope: impl Into<String>) -> Self {
        self.scope = scope.into();
        self
    }
}

impl std::fmt::Debug for TraceSpec {
    /// Only semantic fields: `config_repr` embeds this, and the label/dir
    /// must not fragment the cache key space.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSpec")
            .field("enabled", &self.enabled)
            .field("ring", &self.ring)
            .field("decimation", &self.decimation)
            .finish()
    }
}

/// Specification of one simulation run.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Which paper setting to simulate.
    pub setting: Setting,
    /// Scheduler to drive the video (DMP / static / single-path).
    pub scheduler: SchedulerKind,
    /// Video duration, seconds (paper: 10 000 s; tests use less).
    pub duration_s: f64,
    /// Background warm-up before the video starts, seconds.
    pub warmup_s: f64,
    /// Video TCP socket send buffer, packets.
    pub send_buf_pkts: usize,
    /// Static-streaming path weights (defaults to equal when `None`).
    pub static_weights: Option<Vec<f64>>,
    /// Use RED instead of drop-tail on the bottlenecks (ablation; the paper
    /// always uses drop-tail).
    pub red: bool,
    /// Loss-recovery flavour of the video TCP flows (ablation; the paper
    /// uses Reno).
    pub video_flavor: netsim::tcp::TcpFlavor,
    /// Congestion-control algorithm of the video TCP flows (extension; the
    /// paper derives everything under Reno). Background traffic always runs
    /// Reno — the question is how the *video* flows behave among it.
    pub cc: cc::CcKind,
    /// Striping strategy layered on the scheduler (extension; the paper's
    /// implicit policy is `RoundRobin`).
    pub strategy: PullStrategy,
    /// Simulation engine (scheduler implementation). Both engines produce
    /// identical results — the heap exists for differential testing — but
    /// the choice is part of the cache key so differential runs never serve
    /// each other's cached summaries.
    pub engine: EngineKind,
    /// Scripted path dynamics replayed during the run (empty = steady-state,
    /// exactly the paper's setups). Event times are relative to the start of
    /// the video, i.e. `warmup_s` is added on top.
    pub scenario: Scenario,
    /// Flight-recorder configuration (off by default; recording is
    /// behaviour-neutral, so traced and untraced runs produce identical
    /// results).
    pub trace: TraceSpec,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentSpec {
    /// A spec with the defaults used throughout the reproduction.
    pub fn new(setting: Setting, scheduler: SchedulerKind, duration_s: f64, seed: u64) -> Self {
        Self {
            setting,
            scheduler,
            duration_s,
            warmup_s: 20.0,
            send_buf_pkts: 32,
            static_weights: None,
            red: false,
            video_flavor: netsim::tcp::TcpFlavor::Reno,
            cc: cc::CcKind::Reno,
            strategy: PullStrategy::RoundRobin,
            engine: EngineKind::default(),
            scenario: Scenario::default(),
            trace: TraceSpec::off(),
            seed,
        }
    }
}

impl ExperimentSpec {
    /// Stable, complete textual representation of this spec for
    /// content-addressed caching. Every field that influences the simulation
    /// appears (via `Debug`, which round-trips `f64` exactly); the leading
    /// version tag invalidates old entries if the representation or the
    /// simulation semantics change. The scenario's stable hash is appended
    /// explicitly (`scenario#<hex>`), so two runs with different fault
    /// scripts can never be served each other's cached results.
    pub fn config_repr(&self) -> String {
        // v2: lazy timer-event deferral changed event sequence numbers (and
        // therefore tie-break order) relative to v1, and the spec gained the
        // `engine` field.
        // v3: the spec gained the `scenario` field and topologies gained
        // flash-flow provisioning.
        // v4: the spec gained the `trace` field (semantic knobs only; labels
        // and output paths are excluded from `TraceSpec`'s `Debug`).
        // v5: fleet-scale multi-session runs joined the shared runner cache
        // namespace and trace stems gained a scope component; bumped so no
        // pre-fleet entry can be served to a post-fleet batch.
        // v6: coalesced link delivery and per-link RNG streams — event
        // sequence numbers and the random-loss draws both changed, so no v5
        // summary can be byte-compatible with a v6 run.
        // v7: the spec gained the `cc` and `strategy` fields (pluggable
        // congestion control + pull strategies), and RFC 2861 window
        // validation is re-evaluated per ACK instead of latched per send —
        // application-limited windows now stop growing, which shifts the
        // physics of every video flow relative to v6.
        // v8: run summaries carry an always-on metrics snapshot; cached v7
        // payloads lack the `metrics` section and must not be replayed.
        format!(
            "dmp-sim/v8/{self:?}/scenario#{:016x}",
            self.scenario.stable_hash()
        )
    }
}

/// Per-path measurements extracted from a run (one row of Table 2/3).
#[derive(Debug, Clone, Copy)]
pub struct MeasuredPath {
    /// Loss probability `p` (drops / transmissions of the video flow).
    pub loss: f64,
    /// Average RTT `R`, seconds.
    pub rtt_s: f64,
    /// Timeout ratio `T_O = R_TO / R`.
    pub to_ratio: f64,
    /// Fraction of the delivered video carried by this path.
    pub share: f64,
}

impl MeasuredPath {
    /// Convert to the model's path description.
    pub fn to_path_spec(&self) -> PathSpec {
        PathSpec {
            loss: self.loss.max(1e-6),
            rtt_s: self.rtt_s,
            to_ratio: self.to_ratio,
        }
    }
}

/// Everything one run produces.
#[derive(Debug)]
pub struct RunOutput {
    /// The per-packet delivery trace.
    pub trace: StreamTrace,
    /// Measured per-path TCP parameters.
    pub paths: Vec<MeasuredPath>,
    /// Always-on metrics: netsim sender/link distributions plus frame-level
    /// delivery metrics, labelled with the run's `cc`/`strategy` (engine
    /// deliberately excluded — both engines produce the identical snapshot,
    /// and differential targets assert exactly that).
    pub metrics: obs::MetricsSnapshot,
}

/// An experiment built but not yet run: topology, background traffic,
/// scheduler/client apps, scripted scenario, and (optionally) the flight
/// recorder, all wired into a [`Sim`]. [`run`] is [`build`] + drive +
/// [`BuiltExperiment::finish`]; the phases are public so harnesses can
/// instrument the event loop itself — the zero-allocation gate in
/// `bench_profile` builds first (arena growth allowed), warms up, then
/// asserts the steady-state loop never touches the heap.
pub struct BuiltExperiment {
    sim: Sim,
    end: netsim::SimTime,
    trace: Rc<RefCell<StreamTrace>>,
    flows: Vec<netsim::FlowId>,
    recording: Option<(Rc<RefCell<Recorder>>, PathBuf, String)>,
    /// `cc`/`strategy` label values stamped into the metrics snapshot.
    labels: [(&'static str, String); 2],
}

impl BuiltExperiment {
    /// End of the run (warmup + video) on the simulation clock.
    pub fn end(&self) -> netsim::SimTime {
        self.end
    }

    /// Events processed so far (progress/perf metric).
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Packet transits delivered so far.
    pub fn transits(&self) -> u64 {
        self.sim.transits()
    }

    /// Drive the event loop to simulated time `t`, capped at [`end`]
    /// (self's, not the trait's). Call repeatedly to split a run into
    /// instrumented phases; the split points change nothing — the event
    /// sequence is identical to one uninterrupted run.
    ///
    /// [`end`]: Self::end
    pub fn advance_to(&mut self, t: netsim::SimTime) {
        self.sim.run_until(t.min(self.end));
    }

    /// Extract the delivery trace and per-path measurements, flushing the
    /// flight-recorder file if one was attached. The caller is expected to
    /// have driven the run to [`Self::end`] (an early finish just reports
    /// the partial trace).
    pub fn finish(self) -> RunOutput {
        let BuiltExperiment {
            sim,
            trace,
            flows,
            recording,
            labels,
            ..
        } = self;
        let trace = trace.borrow().clone();
        let shares = trace.path_shares(flows.len());
        let paths = flows
            .iter()
            .zip(shares)
            .map(|(&f, share)| {
                let sender = sim.sender(f);
                MeasuredPath {
                    loss: sim.flow_loss_rate(f),
                    rtt_s: sender.rtt.mean_rtt_secs().unwrap_or(0.0),
                    to_ratio: sender.rtt.to_ratio().unwrap_or(0.0),
                    share,
                }
            })
            .collect();

        let mut metrics = sim.metrics_snapshot();
        obs::record_frame_metrics(&mut metrics, &trace);
        for (k, v) in labels {
            metrics.set_label(k, v);
        }

        if let Some((rec, path, label)) = recording {
            // The Sim's tracer holds the other recorder handle; drop it first.
            drop(sim);
            let rec = Rc::try_unwrap(rec)
                .ok()
                .expect("sim dropped its recorder handle")
                .into_inner();
            let out = rec.finish().expect("flush trace file");
            obs::record_trace_file(label, path, out.events);
        }

        RunOutput {
            trace,
            paths,
            metrics,
        }
    }
}

/// Run one experiment.
pub fn run(spec: &ExperimentSpec) -> RunOutput {
    let mut built = build(spec);
    built.advance_to(built.end());
    built.finish()
}

/// Build one experiment (topology, apps, tracer) without running it.
pub fn build(spec: &ExperimentSpec) -> BuiltExperiment {
    let setting = &spec.setting;
    let k = match spec.scheduler {
        SchedulerKind::SinglePath => 1,
        _ => 2,
    };
    spec.scenario
        .validate(k)
        .expect("scenario does not fit this experiment's path count");
    let flash_per_path: Vec<usize> = (0..k).map(|p| spec.scenario.flash_flows_for(p)).collect();

    let mut sim = Sim::with_engine(spec.seed, spec.engine);
    let mut video_cfg = video_tcp(setting.video.packet_bytes, spec.send_buf_pkts);
    video_cfg.flavor = spec.video_flavor;
    video_cfg.cc = spec.cc;

    let topo: Topology = if setting.correlated {
        // Correlated paths share one bottleneck: provision the union of all
        // paths' flash crowds on it.
        let flash_total: usize = flash_per_path.iter().sum();
        build_correlated_scenario(
            &mut sim,
            config(setting.configs[0]),
            k,
            video_cfg,
            flash_total,
        )
    } else {
        let cfgs: Vec<_> = (0..k).map(|i| config(setting.configs[i])).collect();
        crate::topology::build_independent_scenario(
            &mut sim,
            &cfgs,
            video_cfg,
            spec.red,
            &flash_per_path,
        )
    };
    let cfgs: Vec<_> = if setting.correlated {
        vec![config(setting.configs[0])]
    } else {
        (0..k).map(|i| config(setting.configs[i])).collect()
    };
    attach_background(&mut sim, &topo, &cfgs, spec.seed);

    // Flight recorder: every flow and link exists by now, so the tracer can
    // opt the video flows and bottlenecks in before anything runs. Recording
    // is behaviour-neutral — it reads state but never mutates it, draws no
    // randomness, and schedules no events.
    let recording = if spec.trace.enabled {
        let base = if spec.trace.label.is_empty() {
            // The engine belongs in the derived label: a differential run
            // (same setting/scheduler/seed on both engines) must not have
            // two simulations writing one file.
            format!(
                "{}_{:?}_seed{}_{:?}",
                setting.name, spec.scheduler, spec.seed, spec.engine
            )
        } else {
            spec.trace.label.clone()
        };
        // The scope disambiguates concurrent runs sharing a semantic label
        // — per-session/per-shard components of a fleet batch, the engine
        // of a differential batch.
        let label = if spec.trace.scope.is_empty() {
            base
        } else {
            format!("{base}:{}", spec.trace.scope)
        };
        let dir = spec
            .trace
            .dir
            .clone()
            .unwrap_or_else(obs::default_trace_dir);
        let path = dir.join(format!("{}.jsonl", obs::sanitize_label(&label)));
        let cfg = TraceConfig {
            ring_capacity: spec.trace.ring,
            queue_decimation: spec.trace.decimation,
        };
        let rec = Rc::new(RefCell::new(
            Recorder::to_file(cfg, &path).expect("create trace file"),
        ));
        let mut tracer = SimTracer::new(Rc::clone(&rec));
        for (k, h) in topo.paths.iter().enumerate() {
            tracer.trace_flow(h.video_flow);
            tracer.trace_link(h.bottleneck);
            tracer.emit(
                0,
                obs::EventKind::PathConn {
                    path: k as u32,
                    conn: h.video_flow,
                },
            );
            tracer.emit(
                0,
                obs::EventKind::CcAlgo {
                    conn: h.video_flow,
                    algo: spec.cc.name().to_string(),
                },
            );
        }
        tracer.emit(
            0,
            obs::EventKind::Strategy {
                name: spec.strategy.name().to_string(),
            },
        );
        sim.set_tracer(tracer);
        Some((rec, path, label))
    } else {
        None
    };

    if !spec.scenario.is_empty() {
        // On correlated topologies every path shares one flash-flow pool;
        // hand out disjoint slices so concurrent crowds don't collide.
        let mut flash_cursor = topo.paths[0].first_flash_flow;
        let bindings: Vec<PathBinding> = topo
            .paths
            .iter()
            .enumerate()
            .map(|(p, h)| {
                let n = flash_per_path[p] as u32;
                let first = if setting.correlated {
                    let f = flash_cursor;
                    flash_cursor += n;
                    f
                } else {
                    h.first_flash_flow
                };
                PathBinding {
                    links: vec![h.bottleneck, h.bottleneck_rev],
                    flash_flows: (first..first + n).collect(),
                }
            })
            .collect();
        sim.add_app(Box::new(ScenarioDriver::new(
            &spec.scenario,
            bindings,
            secs(spec.warmup_s),
        )));
    }

    let end = secs(spec.warmup_s + spec.duration_s);
    let trace = shared_trace(setting.video, end);
    let flows: Vec<_> = topo.paths.iter().map(|p| p.video_flow).collect();
    let n_packets = (spec.duration_s * setting.video.rate_pps) as u64;

    match spec.scheduler {
        SchedulerKind::Dynamic | SchedulerKind::SinglePath => {
            let weights = spec
                .static_weights
                .clone()
                .unwrap_or_else(|| vec![1.0; flows.len()]);
            sim.add_app(Box::new(
                DmpServer::new(
                    flows.clone(),
                    setting.video,
                    trace.clone(),
                    secs(spec.warmup_s),
                    n_packets,
                )
                .with_strategy(spec.strategy)
                .with_weights(&weights),
            ));
        }
        SchedulerKind::Static => {
            let weights = spec
                .static_weights
                .clone()
                .unwrap_or_else(|| vec![1.0; flows.len()]);
            sim.add_app(Box::new(
                StaticServer::new(
                    flows.clone(),
                    &weights,
                    setting.video,
                    trace.clone(),
                    secs(spec.warmup_s),
                    n_packets,
                )
                .with_strategy(spec.strategy),
            ));
        }
    }
    sim.add_app(Box::new(VideoClient::new(&flows, trace.clone())));

    BuiltExperiment {
        sim,
        end,
        trace,
        flows,
        recording,
        labels: [
            ("cc", spec.cc.name().to_string()),
            ("strategy", spec.strategy.name().to_string()),
        ],
    }
}

/// Compact, serialisable result of one run: everything `BatchOutput` needs,
/// nothing it does not. This is what [`batch_jobs`] jobs return, so it is
/// also what the runner's content-addressed cache stores — a few hundred
/// bytes per run instead of the multi-megabyte packet trace.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Measured per-path TCP parameters.
    pub paths: Vec<MeasuredPath>,
    /// Late fractions at each requested τ (in request order).
    pub per_tau: Vec<LateFractions>,
    /// Always-on metrics snapshot. Serialised with the summary, so cached
    /// jobs replay the exact metrics of the original run.
    pub metrics: obs::MetricsSnapshot,
}

impl RunSummary {
    /// Rebuild the per-run lateness report (e.g. for Fig. 4a scatters).
    pub fn report(&self) -> LatenessReport {
        LatenessReport {
            per_tau: self.per_tau.clone(),
        }
    }
}

impl JsonCodec for RunSummary {
    fn to_json(&self) -> Json {
        let paths = self
            .paths
            .iter()
            .map(|p| {
                Json::obj([
                    ("loss", Json::Num(p.loss)),
                    ("rtt_s", Json::Num(p.rtt_s)),
                    ("to_ratio", Json::Num(p.to_ratio)),
                    ("share", Json::Num(p.share)),
                ])
            })
            .collect();
        let per_tau = self
            .per_tau
            .iter()
            .map(|lf| {
                Json::obj([
                    ("tau_s", Json::Num(lf.tau_s)),
                    ("playback_order", Json::Num(lf.playback_order)),
                    ("arrival_order", Json::Num(lf.arrival_order)),
                    ("total", Json::Num(lf.total as f64)),
                ])
            })
            .collect();
        Json::obj([
            ("paths", Json::Arr(paths)),
            ("per_tau", Json::Arr(per_tau)),
            ("metrics", self.metrics.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let paths = json
            .get("paths")?
            .as_arr()?
            .iter()
            .map(|p| {
                Some(MeasuredPath {
                    loss: p.get("loss")?.as_f64()?,
                    rtt_s: p.get("rtt_s")?.as_f64()?,
                    to_ratio: p.get("to_ratio")?.as_f64()?,
                    share: p.get("share")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let per_tau = json
            .get("per_tau")?
            .as_arr()?
            .iter()
            .map(|lf| {
                Some(LateFractions {
                    tau_s: lf.get("tau_s")?.as_f64()?,
                    playback_order: lf.get("playback_order")?.as_f64()?,
                    arrival_order: lf.get("arrival_order")?.as_f64()?,
                    total: lf.get("total")?.as_f64()? as u64,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let metrics = obs::MetricsSnapshot::from_json(json.get("metrics")?)?;
        Some(Self {
            paths,
            per_tau,
            metrics,
        })
    }
}

/// Run one experiment and summarise it at the given startup delays.
pub fn run_summary(spec: &ExperimentSpec, taus_s: &[f64]) -> RunSummary {
    let out = run(spec);
    let report = LatenessReport::from_trace(&out.trace, taus_s);
    RunSummary {
        paths: out.paths,
        per_tau: report.per_tau,
        metrics: out.metrics,
    }
}

/// A [`RunSummary`] plus resilience metrics — what scenario experiments
/// cache per run.
#[derive(Debug, Clone)]
pub struct ScenarioSummary {
    /// The ordinary lateness/path summary.
    pub summary: RunSummary,
    /// Glitch/recovery metrics at the scenario's evaluation τ.
    pub resilience: ResilienceReport,
}

impl JsonCodec for ScenarioSummary {
    fn to_json(&self) -> Json {
        let r = &self.resilience;
        Json::obj([
            ("summary", self.summary.to_json()),
            (
                "resilience",
                Json::obj([
                    ("tau_s", Json::Num(r.tau_s)),
                    ("glitch_count", Json::Num(r.glitch_count as f64)),
                    ("total_glitch_s", Json::Num(r.total_glitch_s)),
                    ("max_glitch_s", Json::Num(r.max_glitch_s)),
                    ("worst_window_late", Json::Num(r.worst_window_late)),
                    ("worst_window_start_s", Json::Num(r.worst_window_start_s)),
                    (
                        "time_to_recover_s",
                        r.time_to_recover_s.map_or(Json::Null, Json::Num),
                    ),
                    ("recovered", Json::Bool(r.recovered)),
                ]),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let summary = RunSummary::from_json(json.get("summary")?)?;
        let r = json.get("resilience")?;
        let resilience = ResilienceReport {
            tau_s: r.get("tau_s")?.as_f64()?,
            glitch_count: r.get("glitch_count")?.as_f64()? as u64,
            total_glitch_s: r.get("total_glitch_s")?.as_f64()?,
            max_glitch_s: r.get("max_glitch_s")?.as_f64()?,
            worst_window_late: r.get("worst_window_late")?.as_f64()?,
            worst_window_start_s: r.get("worst_window_start_s")?.as_f64()?,
            time_to_recover_s: match r.get("time_to_recover_s")? {
                Json::Null => None,
                v => Some(v.as_f64()?),
            },
            recovered: r.get("recovered")?.as_bool()?,
        };
        Some(Self {
            summary,
            resilience,
        })
    }
}

/// Run one experiment and evaluate both lateness and resilience.
///
/// `resilience.fail_at_s` is interpreted on the scenario clock (seconds after
/// video start) and shifted by `spec.warmup_s` internally, matching how the
/// trace records generation times.
pub fn run_scenario_summary(
    spec: &ExperimentSpec,
    taus_s: &[f64],
    resilience: ResilienceSpec,
) -> ScenarioSummary {
    let out = run(spec);
    let report = LatenessReport::from_trace(&out.trace, taus_s);
    let shifted = ResilienceSpec {
        fail_at_s: resilience.fail_at_s.map(|t| t + spec.warmup_s),
        ..resilience
    };
    let records = out.trace.stable_records(resilience.tau_s);
    let res = ResilienceReport::from_records(records, spec.setting.video.rate_pps, shifted);
    ScenarioSummary {
        summary: RunSummary {
            paths: out.paths,
            per_tau: report.per_tau,
            metrics: out.metrics,
        },
        resilience: res,
    }
}

/// Like [`batch_jobs`], but for scenario experiments: each job returns a
/// [`ScenarioSummary`]. The τ grid and the resilience spec are both part of
/// the cache key (the scenario itself already is, via
/// [`ExperimentSpec::config_repr`]).
pub fn scenario_batch_jobs(
    spec: &ExperimentSpec,
    runs: usize,
    taus_s: &[f64],
    resilience: ResilienceSpec,
) -> Vec<JobSpec<ScenarioSummary>> {
    (0..runs)
        .map(|i| {
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(i as u64);
            let taus: Vec<f64> = taus_s.to_vec();
            let config_repr = format!("{}/taus{:?}/res{:?}", s.config_repr(), taus, resilience);
            let label = format!(
                "scn:{}:{}:{:?}:run{}",
                spec.scenario.name, spec.setting.name, spec.scheduler, i
            );
            if s.trace.enabled {
                // The engine goes into the stem scope (not the job label): a
                // mixed-engine batch — the differential targets — would
                // otherwise have two concurrent jobs writing the same path.
                s.trace.label = label.clone();
                s.trace.scope = format!("{:?}", s.engine);
            }
            let traced = s.trace.enabled;
            let job = JobSpec::new(label, config_repr, s.seed, move || {
                run_scenario_summary(&s, &taus, resilience)
            });
            // A cache hit would skip the simulation and write no trace file.
            if traced {
                job.uncacheable()
            } else {
                job
            }
        })
        .collect()
}

/// Build one cacheable [`JobSpec`] per replication of `spec` (seeds
/// `spec.seed + i`), for submission to a [`dmp_runner::Runner`]. The τ grid
/// is part of the cache key — a run evaluated at different startup delays is
/// a different result.
pub fn batch_jobs(spec: &ExperimentSpec, runs: usize, taus_s: &[f64]) -> Vec<JobSpec<RunSummary>> {
    (0..runs)
        .map(|i| {
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(i as u64);
            let taus: Vec<f64> = taus_s.to_vec();
            let config_repr = format!("{}/taus{:?}", s.config_repr(), taus);
            let label = format!("sim:{}:{:?}:run{}", spec.setting.name, spec.scheduler, i);
            if s.trace.enabled {
                // Engine in the stem scope, as in `scenario_batch_jobs`.
                s.trace.label = label.clone();
                s.trace.scope = format!("{:?}", s.engine);
            }
            let traced = s.trace.enabled;
            let job = JobSpec::new(label, config_repr, s.seed, move || run_summary(&s, &taus));
            // A cache hit would skip the simulation and write no trace file.
            if traced {
                job.uncacheable()
            } else {
                job
            }
        })
        .collect()
}

/// Aggregates over a batch of independent runs (the paper's "30 runs with
/// 95% confidence intervals").
#[derive(Debug)]
pub struct BatchOutput {
    /// Mean/CI of the loss rate per path.
    pub loss: Vec<OnlineStats>,
    /// Mean/CI of the RTT per path (seconds).
    pub rtt: Vec<OnlineStats>,
    /// Mean/CI of `T_O` per path.
    pub to_ratio: Vec<OnlineStats>,
    /// Mean/CI of the delivered share per path.
    pub share: Vec<OnlineStats>,
    /// For each requested τ: mean/CI of the playback-order late fraction.
    pub late_playback: Vec<(f64, OnlineStats)>,
    /// For each requested τ: mean/CI of the arrival-order late fraction.
    pub late_arrival: Vec<(f64, OnlineStats)>,
    /// Each run's lateness report (for scatter plots like Fig. 4a).
    pub reports: Vec<LatenessReport>,
    /// All runs' metrics merged into one snapshot (order-invariant).
    pub metrics: obs::MetricsSnapshot,
}

impl BatchOutput {
    /// Aggregate per-run summaries (in submission order) into batch
    /// statistics. This is the reduce step of a batch: [`batch_jobs`] fans
    /// out, the runner executes, `from_summaries` folds the results back.
    pub fn from_summaries(taus_s: &[f64], summaries: &[RunSummary]) -> Self {
        let k = summaries.first().map_or(0, |s| s.paths.len());
        let mut out = BatchOutput {
            loss: vec![OnlineStats::new(); k],
            rtt: vec![OnlineStats::new(); k],
            to_ratio: vec![OnlineStats::new(); k],
            share: vec![OnlineStats::new(); k],
            late_playback: taus_s.iter().map(|&t| (t, OnlineStats::new())).collect(),
            late_arrival: taus_s.iter().map(|&t| (t, OnlineStats::new())).collect(),
            reports: Vec::with_capacity(summaries.len()),
            metrics: obs::MetricsSnapshot::new(),
        };
        for summary in summaries {
            out.metrics.merge(&summary.metrics);
            for (j, p) in summary.paths.iter().enumerate() {
                out.loss[j].push(p.loss);
                out.rtt[j].push(p.rtt_s);
                out.to_ratio[j].push(p.to_ratio);
                out.share[j].push(p.share);
            }
            for (slot, lf) in out.late_playback.iter_mut().zip(&summary.per_tau) {
                slot.1.push(lf.playback_order);
            }
            for (slot, lf) in out.late_arrival.iter_mut().zip(&summary.per_tau) {
                slot.1.push(lf.arrival_order);
            }
            out.reports.push(summary.report());
        }
        out
    }
}

/// Run `runs` independent replications (seeds `spec.seed + i`), evaluating
/// the late fraction at each startup delay in `taus_s`. Serial; parallel
/// callers should submit [`batch_jobs`] to a [`dmp_runner::Runner`] and
/// reduce with [`BatchOutput::from_summaries`].
pub fn run_batch(spec: &ExperimentSpec, runs: usize, taus_s: &[f64]) -> BatchOutput {
    let summaries: Vec<RunSummary> = (0..runs)
        .map(|i| {
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(i as u64);
            run_summary(&s, taus_s)
        })
        .collect();
    BatchOutput::from_summaries(taus_s, &summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::setting;

    fn quick_spec(name: &str, scheduler: SchedulerKind, seed: u64) -> ExperimentSpec {
        let mut s = ExperimentSpec::new(*setting(name).unwrap(), scheduler, 120.0, seed);
        s.warmup_s = 10.0;
        s
    }

    #[test]
    fn dmp_run_delivers_nearly_everything() {
        let out = run(&quick_spec("2-2", SchedulerKind::Dynamic, 11));
        let generated = out.trace.generated();
        assert_eq!(generated, 6_000); // 120 s × 50 pkt/s
        let delivered = out.trace.delivered();
        assert!(
            delivered as f64 > 0.97 * generated as f64,
            "delivered {delivered}/{generated}"
        );
        // Both paths carry a nontrivial share under DMP.
        for p in &out.paths {
            assert!(p.share > 0.15, "share {:?}", out.paths);
        }
    }

    #[test]
    fn measured_parameters_are_in_paper_ballpark() {
        let out = run(&quick_spec("2-2", SchedulerKind::Dynamic, 13));
        for p in &out.paths {
            // Table 2 row 2-2: p ≈ 0.037, R ≈ 150 ms, TO ≈ 1.7. Accept wide
            // bands — our background traffic is a reconstruction.
            assert!(p.loss > 0.002 && p.loss < 0.15, "loss {}", p.loss);
            assert!(p.rtt_s > 0.015 && p.rtt_s < 0.5, "rtt {}", p.rtt_s);
            assert!(p.to_ratio > 1.0 && p.to_ratio < 8.0, "TO {}", p.to_ratio);
        }
    }

    #[test]
    fn single_path_uses_one_flow() {
        let out = run(&quick_spec("2-2", SchedulerKind::SinglePath, 17));
        assert_eq!(out.paths.len(), 1);
        assert!((out.paths[0].share - 1.0).abs() < 1e-12);
        assert!(out.trace.delivered() > 0);
    }

    #[test]
    fn static_split_is_even_for_equal_weights() {
        let out = run(&quick_spec("2-2", SchedulerKind::Static, 19));
        // Static assignment is 50/50 by generation; delivered share can only
        // deviate through losses in flight at the end.
        for p in &out.paths {
            assert!((p.share - 0.5).abs() < 0.02, "share {}", p.share);
        }
    }

    #[test]
    fn correlated_setting_runs() {
        let out = run(&quick_spec("corr-2", SchedulerKind::Dynamic, 23));
        assert!(out.trace.delivered() > 0);
        assert_eq!(out.paths.len(), 2);
    }

    #[test]
    fn batch_jobs_match_serial_run_batch() {
        let mut spec = quick_spec("2-2", SchedulerKind::Dynamic, 31);
        spec.duration_s = 60.0;
        let taus = [2.0, 6.0];
        let serial = run_batch(&spec, 2, &taus);

        let runner = dmp_runner::Runner::new(2, dmp_runner::Cache::disabled()).with_progress(false);
        let cells = runner.run_all(batch_jobs(&spec, 2, &taus));
        let summaries: Vec<RunSummary> = cells
            .into_iter()
            .map(|c| c.ok().expect("job should not fail").clone())
            .collect();
        let parallel = BatchOutput::from_summaries(&taus, &summaries);

        for j in 0..2 {
            assert_eq!(serial.loss[j].mean(), parallel.loss[j].mean());
            assert_eq!(serial.share[j].mean(), parallel.share[j].mean());
        }
        for i in 0..taus.len() {
            assert_eq!(
                serial.late_playback[i].1.mean(),
                parallel.late_playback[i].1.mean()
            );
        }
    }

    #[test]
    fn run_summary_json_roundtrip() {
        let mut spec = quick_spec("2-2", SchedulerKind::Dynamic, 37);
        spec.duration_s = 30.0;
        let summary = run_summary(&spec, &[2.0, 6.0]);
        let json = summary.to_json();
        let back = RunSummary::from_json(&dmp_runner::json::parse(&json.render()).unwrap())
            .expect("roundtrip");
        assert_eq!(summary.paths.len(), back.paths.len());
        for (a, b) in summary.paths.iter().zip(&back.paths) {
            assert_eq!(a.loss, b.loss);
            assert_eq!(a.share, b.share);
        }
        for (a, b) in summary.per_tau.iter().zip(&back.per_tau) {
            assert_eq!(a.playback_order, b.playback_order);
            assert_eq!(a.total, b.total);
        }
        // The metrics snapshot rides in the cached payload: it must survive
        // the round trip bit-for-bit, or cached jobs would replay different
        // metrics than the original run.
        assert_eq!(summary.metrics, back.metrics);
        assert_eq!(summary.metrics.labels["cc"], "reno");
        assert!(summary.metrics.counters["frame.delivered"] > 0);
        assert!(summary.metrics.histograms["net.rtt_us"].count() > 0);
        assert!(summary.metrics.histograms["frame.delay_ms"].count() > 0);
    }

    #[test]
    fn noop_scenario_matches_scenario_free_run() {
        // A named-but-empty scenario changes the cache key, not the results.
        let base = quick_spec("2-2", SchedulerKind::Dynamic, 41);
        let mut noop = base.clone();
        noop.scenario = Scenario::named("noop");
        assert_ne!(base.config_repr(), noop.config_repr());
        let a = run_summary(&base, &[2.0, 6.0]);
        let b = run_summary(&noop, &[2.0, 6.0]);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn identity_rate_step_is_behavior_neutral() {
        // A RateStep{1.0} attaches the driver and injects real AppTimer
        // events; they shift `event_seq` but must not change any outcome.
        let base = quick_spec("2-2", SchedulerKind::Dynamic, 43);
        let mut ident = base.clone();
        ident.scenario = Scenario::named("ident")
            .at(30.0, 0, scenario::Event::RateStep { factor: 1.0 })
            .at(60.0, 1, scenario::Event::RateStep { factor: 1.0 });
        let a = run_summary(&base, &[2.0, 6.0]);
        let b = run_summary(&ident, &[2.0, 6.0]);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn scripted_failure_hurts_single_path_but_dmp_recovers() {
        let fail_at = 40.0;
        let scn = Scenario::named("failover")
            .at(fail_at, 0, scenario::Event::PathDown)
            .at(fail_at + 15.0, 0, scenario::Event::PathUp);
        let res = ResilienceSpec {
            tau_s: 4.0,
            window_s: 10.0,
            fail_at_s: Some(fail_at),
        };

        let mut single = quick_spec("2-2", SchedulerKind::SinglePath, 47);
        single.scenario = scn.clone();
        let s = run_scenario_summary(&single, &[4.0], res);
        assert!(
            s.resilience.worst_window_late > 0.9,
            "single path should collapse during the outage: {:?}",
            s.resilience
        );

        let mut dmp = quick_spec("2-2", SchedulerKind::Dynamic, 47);
        dmp.scenario = scn;
        // With per-ACK cwnd validation (RFC 2861) the video flows hold no
        // inflated window going into the outage, so draining the backlog
        // happens at fair share and needs more post-restore runway than the
        // 120 s quick scale allows.
        dmp.duration_s = 240.0;
        let d = run_scenario_summary(&dmp, &[4.0], res);
        assert!(
            d.resilience.recovered,
            "DMP should recover after the outage: {:?}",
            d.resilience
        );
        assert!(
            d.resilience.total_glitch_s < s.resilience.total_glitch_s,
            "DMP should stall less than single path: {:?} vs {:?}",
            d.resilience,
            s.resilience
        );
    }

    #[test]
    fn scenario_summary_json_roundtrip() {
        let mut spec = quick_spec("2-2", SchedulerKind::Dynamic, 53);
        spec.duration_s = 30.0;
        spec.scenario =
            Scenario::named("rt").at(10.0, 0, scenario::Event::RateStep { factor: 0.5 });
        let res = ResilienceSpec {
            fail_at_s: Some(10.0),
            ..ResilienceSpec::default()
        };
        let summary = run_scenario_summary(&spec, &[2.0, 6.0], res);
        let json = summary.to_json();
        let back = ScenarioSummary::from_json(&dmp_runner::json::parse(&json.render()).unwrap())
            .expect("roundtrip");
        assert_eq!(
            format!("{:?}", summary.resilience),
            format!("{:?}", back.resilience)
        );
        assert_eq!(summary.summary.paths.len(), back.summary.paths.len());
    }

    #[test]
    fn batch_aggregates_runs() {
        let spec = quick_spec("2-2", SchedulerKind::Dynamic, 29);
        let batch = run_batch(&spec, 3, &[2.0, 6.0]);
        assert_eq!(batch.reports.len(), 3);
        assert_eq!(batch.loss[0].count(), 3);
        let (tau, stats) = &batch.late_playback[1];
        assert_eq!(*tau, 6.0);
        assert_eq!(stats.count(), 3);
        // Late fraction at τ=6 should not exceed the one at τ=2.
        assert!(batch.late_playback[1].1.mean() <= batch.late_playback[0].1.mean() + 1e-9);
    }
}
