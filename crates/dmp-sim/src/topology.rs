//! Topology builders for the paper's validation setups: independent paths
//! (Fig. 3) and correlated paths sharing one bottleneck (Fig. 6).
//!
//! Each path's bottleneck `(r_k1, r_k2)` is crossed by the video stream plus
//! FTP and HTTP background flows; all other links are fast (100 Mbps) and
//! deep-buffered, so losses happen only at the bottleneck — as in the paper.
//!
//! For independent paths the video server is multihomed and, mirroring the
//! paper's Internet methodology ("we emulate multipath streaming by streaming
//! from a server to two clients and combining the traces"), the client side
//! is one *logical* client with one node per path.

use netsim::link::LinkSpec;
use netsim::tcp::{SinkConfig, TcpConfig};
use netsim::{FlowId, NodeId, Sim};

use crate::configs::BottleneckConfig;

/// Handles to one built path.
#[derive(Debug, Clone, Copy)]
pub struct PathHandles {
    /// The video stream's TCP flow on this path.
    pub video_flow: FlowId,
    /// Forward bottleneck link (for queue statistics).
    pub bottleneck: netsim::LinkId,
    /// Reverse bottleneck link (so scenario faults can cut both directions).
    pub bottleneck_rev: netsim::LinkId,
    /// Background flows crossing this bottleneck.
    pub first_bg_flow: FlowId,
    /// Number of background flows.
    pub bg_flows: usize,
    /// First pre-provisioned flash-crowd flow (idle until a scenario starts
    /// it); meaningless when `flash_flows == 0`.
    pub first_flash_flow: FlowId,
    /// Number of pre-provisioned flash-crowd flows.
    pub flash_flows: usize,
}

/// A built validation topology.
#[derive(Debug)]
pub struct Topology {
    /// The video server node.
    pub server: NodeId,
    /// Client node(s): one per path for independent paths, a single node for
    /// correlated paths.
    pub clients: Vec<NodeId>,
    /// Per-path handles.
    pub paths: Vec<PathHandles>,
}

/// Fast access/edge link used everywhere except the bottleneck.
fn access(delay_ms: f64) -> LinkSpec {
    LinkSpec::from_table(100.0, delay_ms, 4_000)
}

fn duplex_with_routes(sim: &mut Sim, a: NodeId, b: NodeId, spec: LinkSpec) -> (u32, u32) {
    sim.add_duplex(a, b, spec)
}

/// TCP configuration for the video stream: payload sized so packets are the
/// video packet size on the wire, finite send buffer (the DMP mechanism).
pub fn video_tcp(packet_bytes: u32, send_buf_pkts: usize) -> TcpConfig {
    TcpConfig {
        payload_bytes: packet_bytes - netsim::packet::HEADER_BYTES,
        send_buf_pkts,
        ..TcpConfig::default()
    }
}

/// Build one path's infrastructure (routers, bottleneck, background hosts &
/// flows) between `server` and a fresh client node. Returns the handles.
#[allow(clippy::too_many_arguments)]
fn build_path(
    sim: &mut Sim,
    server: NodeId,
    client: NodeId,
    cfg: &BottleneckConfig,
    video_flows: usize,
    video_tcp_cfg: TcpConfig,
    red: bool,
    flash_flows: usize,
) -> Vec<PathHandles> {
    let r1 = sim.add_node(format!("r{}1", cfg.id));
    let r2 = sim.add_node(format!("r{}2", cfg.id));

    let (srv_r1, r1_srv) = duplex_with_routes(sim, server, r1, access(10.0));
    let mut bottleneck_spec =
        LinkSpec::from_table(cfg.bandwidth_mbps, cfg.delay_ms, cfg.buffer_pkts);
    if red {
        bottleneck_spec =
            bottleneck_spec.with_red(netsim::red::RedParams::for_buffer(cfg.buffer_pkts));
    }
    let (r1_r2, r2_r1) = duplex_with_routes(sim, r1, r2, bottleneck_spec);
    let (r2_cl, cl_r2) = duplex_with_routes(sim, r2, client, access(10.0));

    // Background hosts come in several tiers with different access delays:
    // RTT diversity desynchronises the background flows (with identical
    // RTTs, ack-clocked flows lock a drop-tail queue at full occupancy and
    // starve any paced newcomer — a well-known drop-tail artefact).
    const BG_TIER_DELAY_MS: [f64; 5] = [2.0, 5.0, 10.0, 20.0, 35.0];
    let mut bg_pairs = Vec::new();
    for (t, &d) in BG_TIER_DELAY_MS.iter().enumerate() {
        let bg_src = sim.add_node(format!("bgsrc{}t{t}", cfg.id));
        let bg_dst = sim.add_node(format!("bgdst{}t{t}", cfg.id));
        let (bgs_r1, r1_bgs) = duplex_with_routes(sim, bg_src, r1, access(d));
        let (r2_bgd, bgd_r2) = duplex_with_routes(sim, r2, bg_dst, access(d));
        sim.add_route(r1, bg_dst, r1_r2);
        sim.add_route(r1, bg_src, r1_bgs);
        sim.add_route(r2, bg_dst, r2_bgd);
        sim.add_route(r2, bg_src, r2_r1);
        sim.set_default_route(bg_src, bgs_r1);
        sim.set_default_route(bg_dst, bgd_r2);
        bg_pairs.push((bg_src, bg_dst));
    }

    // Routes. Stub hosts use defaults; routers route by destination.
    sim.add_route(server, client, srv_r1);
    sim.add_route(r1, client, r1_r2);
    sim.add_route(r1, server, r1_srv);
    sim.add_route(r2, client, r2_cl);
    sim.add_route(r2, server, r2_r1);
    sim.set_default_route(client, cl_r2);

    // Video flow(s) over this path.
    let mut handles = Vec::new();
    let bg_total = cfg.ftp_flows + cfg.http_flows;
    for _ in 0..video_flows {
        let video_flow = sim.add_flow(server, client, video_tcp_cfg, SinkConfig::default());
        handles.push(PathHandles {
            video_flow,
            bottleneck: r1_r2,
            bottleneck_rev: r2_r1,
            first_bg_flow: 0, // patched below
            bg_flows: bg_total,
            first_flash_flow: 0, // patched below
            flash_flows,
        });
    }

    // Background flows (FTP first, then HTTP) spread round-robin over the
    // delay tiers. The window cap is calibrated per configuration (ns-2's
    // default was 20).
    let bg_tcp = TcpConfig {
        max_wnd: cfg.bg_wnd,
        ..TcpConfig::default()
    };
    let mut first_bg = None;
    for i in 0..bg_total {
        let (bg_src, bg_dst) = bg_pairs[i % bg_pairs.len()];
        let f = sim.add_flow(bg_src, bg_dst, bg_tcp, SinkConfig::default());
        first_bg.get_or_insert(f);
    }
    let first_bg = first_bg.unwrap_or(0);
    // Flash-crowd flows: same hosts and TCP config as the background FTPs,
    // but idle until a scenario back-logs them mid-run.
    let mut first_flash = None;
    for i in 0..flash_flows {
        let (bg_src, bg_dst) = bg_pairs[i % bg_pairs.len()];
        let f = sim.add_flow(bg_src, bg_dst, bg_tcp, SinkConfig::default());
        first_flash.get_or_insert(f);
    }
    let first_flash = first_flash.unwrap_or(0);
    for h in &mut handles {
        h.first_bg_flow = first_bg;
        h.first_flash_flow = first_flash;
    }
    handles
}

/// Build the independent-paths topology of Fig. 3: one bottleneck per path,
/// a shared multihomed server, one client node per path.
pub fn build_independent(
    sim: &mut Sim,
    cfgs: &[&BottleneckConfig],
    video_tcp_cfg: TcpConfig,
) -> Topology {
    build_independent_with(sim, cfgs, video_tcp_cfg, false)
}

/// [`build_independent`] with optional RED queues on the bottlenecks (the
/// ablation of the paper's drop-tail loss process).
pub fn build_independent_with(
    sim: &mut Sim,
    cfgs: &[&BottleneckConfig],
    video_tcp_cfg: TcpConfig,
    red: bool,
) -> Topology {
    build_independent_scenario(sim, cfgs, video_tcp_cfg, red, &[])
}

/// [`build_independent_with`] plus pre-provisioned flash-crowd flows:
/// `flash_per_path[k]` idle TCP flows are created across path `k`'s
/// bottleneck (missing entries mean zero), for a scenario to start mid-run.
pub fn build_independent_scenario(
    sim: &mut Sim,
    cfgs: &[&BottleneckConfig],
    video_tcp_cfg: TcpConfig,
    red: bool,
    flash_per_path: &[usize],
) -> Topology {
    let server = sim.add_node("video-server");
    let mut clients = Vec::new();
    let mut paths = Vec::new();
    for cfg in cfgs {
        let k = paths.len();
        let client = sim.add_node(format!("client{}", k + 1));
        let flash = flash_per_path.get(k).copied().unwrap_or(0);
        let hs = build_path(sim, server, client, cfg, 1, video_tcp_cfg, red, flash);
        paths.extend(hs);
        clients.push(client);
    }
    Topology {
        server,
        clients,
        paths,
    }
}

/// Build the correlated-paths topology of Fig. 6: `k_flows` video TCP flows
/// from the server to a single client over **one** bottleneck.
pub fn build_correlated(
    sim: &mut Sim,
    cfg: &BottleneckConfig,
    k_flows: usize,
    video_tcp_cfg: TcpConfig,
) -> Topology {
    build_correlated_scenario(sim, cfg, k_flows, video_tcp_cfg, 0)
}

/// [`build_correlated`] plus `flash_flows` pre-provisioned idle flash-crowd
/// flows across the shared bottleneck (every path handle reports the same
/// set, since correlated paths share their infrastructure).
pub fn build_correlated_scenario(
    sim: &mut Sim,
    cfg: &BottleneckConfig,
    k_flows: usize,
    video_tcp_cfg: TcpConfig,
    flash_flows: usize,
) -> Topology {
    let server = sim.add_node("video-server");
    let client = sim.add_node("client");
    let paths = build_path(
        sim,
        server,
        client,
        cfg,
        k_flows,
        video_tcp_cfg,
        false,
        flash_flows,
    );
    Topology {
        server,
        clients: vec![client],
        paths,
    }
}

/// Attach the background applications (FTP + HTTP with staggered starts) for
/// every path of a topology. `cfgs[k]` must be the configuration used to
/// build path `k` (for correlated topologies pass one entry).
pub fn attach_background(sim: &mut Sim, topo: &Topology, cfgs: &[&BottleneckConfig], seed: u64) {
    use netsim::apps::{Ftp, HttpParams, HttpSession};
    use rand::Rng;
    use rand::SeedableRng;
    // Stagger times are derived from the run seed: every replication gets a
    // fresh background phase, so per-path parameters average out across a
    // batch (homogeneous paths must look homogeneous in the mean).
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xb06_0ff5e7);
    // Deduplicate: correlated topologies share one bottleneck (one bg set).
    let mut seen = std::collections::HashSet::new();
    for (k, path) in topo.paths.iter().enumerate() {
        if !seen.insert(path.first_bg_flow) {
            continue;
        }
        let cfg = cfgs[k.min(cfgs.len() - 1)];
        let mut flow = path.first_bg_flow;
        for _ in 0..cfg.ftp_flows {
            let start = netsim::secs(rng.gen_range(0.0..5.0));
            sim.add_app(Box::new(Ftp::new(flow, start)));
            flow += 1;
        }
        for _ in 0..cfg.http_flows {
            let start = netsim::secs(rng.gen_range(0.0..10.0));
            sim.add_app(Box::new(HttpSession::new(
                flow,
                HttpParams::default(),
                start,
            )));
            flow += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::config;
    use netsim::SECOND;

    #[test]
    fn independent_topology_has_one_client_per_path() {
        let mut sim = Sim::new(1);
        let topo = build_independent(&mut sim, &[config(1), config(2)], video_tcp(1500, 32));
        assert_eq!(topo.clients.len(), 2);
        assert_eq!(topo.paths.len(), 2);
        assert_ne!(topo.paths[0].video_flow, topo.paths[1].video_flow);
    }

    #[test]
    fn correlated_topology_shares_one_client_and_bottleneck() {
        let mut sim = Sim::new(1);
        let topo = build_correlated(&mut sim, config(2), 2, video_tcp(1500, 32));
        assert_eq!(topo.clients.len(), 1);
        assert_eq!(topo.paths.len(), 2);
        assert_eq!(topo.paths[0].bottleneck, topo.paths[1].bottleneck);
        assert_eq!(topo.paths[0].first_bg_flow, topo.paths[1].first_bg_flow);
    }

    #[test]
    fn background_saturates_the_bottleneck() {
        let mut sim = Sim::new(5);
        let topo = build_independent(&mut sim, &[config(2)], video_tcp(1500, 32));
        attach_background(&mut sim, &topo, &[config(2)], 5);
        sim.run_until(60 * SECOND);
        let link = sim.link(topo.paths[0].bottleneck);
        let util = link.utilization(60 * SECOND);
        assert!(util > 0.75, "bottleneck utilisation {util}");
        assert!(link.stats.dropped > 0, "expected congestion losses");
    }
}
