//! Video applications for the simulator: the DMP-streaming server, the
//! static-streaming server, and the recording client.
//!
//! Both servers layer a [`PullStrategy`] on top of their queue structure:
//! `RoundRobin` reproduces the paper's implicit rotation byte-for-byte; the
//! other strategies (deficit-weighted, best-path, redundant duplication,
//! deadline-aware dropping) are extensions evaluated by the `ext_cc_matrix`
//! bench target.

use std::cell::RefCell;
use std::rc::Rc;

use dmp_core::scheme::{DynamicQueue, StaticSplitter, StreamPacket};
use dmp_core::spec::{PullStrategy, VideoSpec};
use dmp_core::trace::StreamTrace;
use netsim::packet::AppChunk;
use netsim::{App, FlowId, SimApi, SimTime};

/// Shared, interiorly mutable delivery trace: written by both the server
/// (generation) and the client (arrivals).
pub type SharedTrace = Rc<RefCell<StreamTrace>>;

/// Packets older than this at pull time are dropped by the
/// [`PullStrategy::DeadlineAware`] strategies: a packet stuck at the server
/// this long has already missed any practical playout deadline, so spending
/// path capacity on it only delays rescuable packets behind it.
pub const PULL_DEADLINE_S: f64 = 10.0;

/// Create a fresh shared trace for a run ending at `end_ns`.
pub fn shared_trace(video: VideoSpec, end_ns: SimTime) -> SharedTrace {
    Rc::new(RefCell::new(StreamTrace::new(video, end_ns)))
}

fn chunk_of(p: StreamPacket) -> AppChunk {
    AppChunk {
        stream_seq: p.seq,
        gen_ns: p.gen_ns,
    }
}

/// Sort key for [`PullStrategy::BestPath`]: lowest smoothed RTT first
/// (unmeasured paths last), congestion-window headroom breaking ties, path
/// index as the final deterministic tie-break.
fn best_path_key(api: &SimApi<'_>, flow: FlowId, path: usize) -> (u64, i64, usize) {
    let s = api.sender(flow);
    let srtt_ns = s
        .rtt
        .srtt_secs()
        .map_or(u64::MAX, |x| (x * 1e9).round() as u64);
    let headroom = s.cwnd().floor() as i64 - s.unacked() as i64;
    (srtt_ns, -headroom, path)
}

/// The DMP-streaming server (Fig. 2 of the paper): a CBR generator feeding a
/// single shared queue; every TCP sender pulls from the head whenever its
/// send buffer has room. The [`PullStrategy`] decides which sender gets the
/// head packet when several could take it.
pub struct DmpServer {
    flows: Vec<FlowId>,
    queue: DynamicQueue,
    video: VideoSpec,
    trace: SharedTrace,
    start_at: SimTime,
    stop_after: u64,
    interval: SimTime,
    next_seq: u64,
    rr: usize,
    strategy: PullStrategy,
    /// Normalised per-path shares for [`PullStrategy::Weighted`].
    weights: Vec<f64>,
    /// Packets pulled per path (the deficit counters of `Weighted`).
    pulled: Vec<u64>,
    /// Stale packets dropped by [`PullStrategy::DeadlineAware`].
    dropped_late: u64,
    deadline_ns: SimTime,
}

impl DmpServer {
    /// A server striping over `flows` with the baseline round-robin
    /// strategy, generating from `start_at` until `stop_after` packets have
    /// been produced.
    pub fn new(
        flows: Vec<FlowId>,
        video: VideoSpec,
        trace: SharedTrace,
        start_at: SimTime,
        stop_after: u64,
    ) -> Self {
        let interval = netsim::secs(video.gen_interval_s());
        let k = flows.len();
        Self {
            flows,
            queue: DynamicQueue::new(),
            video,
            trace,
            start_at,
            stop_after,
            interval,
            next_seq: 0,
            rr: 0,
            strategy: PullStrategy::RoundRobin,
            weights: vec![1.0 / k as f64; k],
            pulled: vec![0; k],
            dropped_late: 0,
            deadline_ns: netsim::secs(PULL_DEADLINE_S),
        }
    }

    /// Select the pull strategy (builder style; default `RoundRobin`).
    pub fn with_strategy(mut self, strategy: PullStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Per-path bandwidth shares for [`PullStrategy::Weighted`] (normalised
    /// internally; ignored by the other strategies).
    ///
    /// # Panics
    /// Panics if `weights` length mismatches the flows or a weight is not
    /// positive.
    pub fn with_weights(mut self, weights: &[f64]) -> Self {
        assert_eq!(weights.len(), self.flows.len());
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let sum: f64 = weights.iter().sum();
        self.weights = weights.iter().map(|w| w / sum).collect();
        self
    }

    /// Stale packets dropped by the deadline-aware strategy so far.
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    /// Trace one pull decision and hand the packet to `path`'s sender.
    fn send_one(&mut self, api: &mut SimApi<'_>, path: usize, p: StreamPacket) {
        if api.trace_enabled() {
            api.trace_emit(obs::EventKind::Pull {
                path: path as u32,
                seq: p.seq,
                queued: self.queue.len() as u32,
            });
        }
        let ok = api.push_chunk(self.flows[path], chunk_of(p));
        debug_assert!(ok, "space was checked");
    }

    /// Pop queue heads until one is young enough to still matter.
    fn pull_fresh(&mut self, now: SimTime) -> Option<StreamPacket> {
        while let Some(p) = self.queue.pull_one() {
            if now.saturating_sub(p.gen_ns) <= self.deadline_ns {
                return Some(p);
            }
            self.dropped_late += 1;
        }
        None
    }

    fn fill(&mut self, api: &mut SimApi<'_>, start: usize) {
        match self.strategy {
            PullStrategy::RoundRobin => self.fill_rotation(api, start),
            PullStrategy::Weighted => self.fill_weighted(api),
            PullStrategy::BestPath => self.fill_best_path(api),
            PullStrategy::RedundantDuplicate => self.fill_redundant(api, start),
            PullStrategy::DeadlineAware => self.fill_deadline(api, start),
        }
    }

    /// One sender takes the lock and drains the head of the queue until its
    /// buffer fills; then the next sender gets a chance (the rotation models
    /// which blocked sender wins the lock first on a generation event).
    /// This is the paper baseline and must stay byte-identical to the
    /// historical implementation.
    fn fill_rotation(&mut self, api: &mut SimApi<'_>, start: usize) {
        let k = self.flows.len();
        for i in 0..k {
            let path = (start + i) % k;
            let flow = self.flows[path];
            loop {
                let space = api.free_space(flow);
                if space == 0 || self.queue.is_empty() {
                    break;
                }
                // Pull one packet at a time (allocation-free; the batch
                // `pull` would build a Vec per lock acquisition). Each pull
                // decision is traced before its data enters the stack.
                for _ in 0..space {
                    let Some(p) = self.queue.pull_one() else {
                        break;
                    };
                    if api.trace_enabled() {
                        api.trace_emit(obs::EventKind::Pull {
                            path: path as u32,
                            seq: p.seq,
                            queued: self.queue.len() as u32,
                        });
                    }
                    let ok = api.push_chunk(flow, chunk_of(p));
                    debug_assert!(ok, "space was checked");
                }
                if api.trace_enabled() {
                    api.trace_srv_queue(self.queue.len());
                }
            }
            if self.queue.is_empty() {
                break;
            }
        }
    }

    /// Deficit-weighted: each packet goes to the path (with buffer space)
    /// furthest behind its configured share, i.e. minimising
    /// `(pulled + 1) / weight`.
    fn fill_weighted(&mut self, api: &mut SimApi<'_>) {
        while !self.queue.is_empty() {
            let mut best: Option<(f64, usize)> = None;
            for (p, &flow) in self.flows.iter().enumerate() {
                if api.free_space(flow) == 0 {
                    continue;
                }
                let key = (self.pulled[p] + 1) as f64 / self.weights[p];
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, p));
                }
            }
            let Some((_, p)) = best else {
                break;
            };
            let Some(pkt) = self.queue.pull_one() else {
                break;
            };
            self.send_one(api, p, pkt);
            self.pulled[p] += 1;
        }
        if api.trace_enabled() {
            api.trace_srv_queue(self.queue.len());
        }
    }

    /// Greedy path quality: each packet goes to the best-looking path with
    /// buffer space (lowest srtt, then most cwnd headroom).
    fn fill_best_path(&mut self, api: &mut SimApi<'_>) {
        while !self.queue.is_empty() {
            let mut best: Option<((u64, i64, usize), usize)> = None;
            for (p, &flow) in self.flows.iter().enumerate() {
                if api.free_space(flow) == 0 {
                    continue;
                }
                let key = best_path_key(api, flow, p);
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, p));
                }
            }
            let Some((_, p)) = best else {
                break;
            };
            let Some(pkt) = self.queue.pull_one() else {
                break;
            };
            self.send_one(api, p, pkt);
        }
        if api.trace_enabled() {
            api.trace_srv_queue(self.queue.len());
        }
    }

    /// Redundant duplication: the head packet goes to the first path in
    /// rotation order with space, and a copy to every other path that can
    /// take one (the client keeps the first arrival).
    fn fill_redundant(&mut self, api: &mut SimApi<'_>, start: usize) {
        let k = self.flows.len();
        while !self.queue.is_empty() {
            let Some(primary) = (0..k)
                .map(|i| (start + i) % k)
                .find(|&p| api.free_space(self.flows[p]) > 0)
            else {
                break;
            };
            let Some(pkt) = self.queue.pull_one() else {
                break;
            };
            self.send_one(api, primary, pkt);
            for i in 0..k {
                let p = (start + i) % k;
                if p != primary && api.free_space(self.flows[p]) > 0 {
                    self.send_one(api, p, pkt);
                }
            }
        }
        if api.trace_enabled() {
            api.trace_srv_queue(self.queue.len());
        }
    }

    /// Rotation order like the baseline, but stale heads (older than
    /// [`PULL_DEADLINE_S`]) are dropped instead of transmitted, freeing the
    /// window for packets that can still make their playout slot.
    fn fill_deadline(&mut self, api: &mut SimApi<'_>, start: usize) {
        let now = api.now();
        let k = self.flows.len();
        for i in 0..k {
            let path = (start + i) % k;
            let flow = self.flows[path];
            loop {
                let space = api.free_space(flow);
                if space == 0 || self.queue.is_empty() {
                    break;
                }
                for _ in 0..space {
                    let Some(p) = self.pull_fresh(now) else {
                        break;
                    };
                    self.send_one(api, path, p);
                }
                if api.trace_enabled() {
                    api.trace_srv_queue(self.queue.len());
                }
            }
            if self.queue.is_empty() {
                break;
            }
        }
    }

    fn flow_index(&self, flow: FlowId) -> usize {
        self.flows
            .iter()
            .position(|&f| f == flow)
            .expect("owned flow")
    }
}

impl App for DmpServer {
    fn start(&mut self, api: &mut SimApi<'_>) {
        let _ = self.video;
        for &f in &self.flows {
            api.own_flow(f);
        }
        api.schedule_in(self.start_at, 0);
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, _tag: u64) {
        if self.next_seq >= self.stop_after {
            return;
        }
        let now = api.now();
        self.trace.borrow_mut().on_generated(self.next_seq, now);
        self.queue.push(StreamPacket {
            seq: self.next_seq,
            gen_ns: now,
        });
        if api.trace_enabled() {
            api.trace_emit(obs::EventKind::Generated { seq: self.next_seq });
            api.trace_srv_queue(self.queue.len());
        }
        self.next_seq += 1;
        let start = self.rr;
        self.rr = (self.rr + 1) % self.flows.len();
        self.fill(api, start);
        api.schedule_in(self.interval, 0);
    }

    fn on_send_space(&mut self, api: &mut SimApi<'_>, flow: FlowId) {
        // The sender that freed space grabs the queue lock first.
        let k = self.flow_index(flow);
        self.fill(api, k);
    }
}

/// The static-streaming baseline (Section 7.4): packets are pre-assigned to
/// paths; each sender only ever pulls from its own queue. The default
/// (`RoundRobin`/`Weighted`) assignment is the weighted round-robin split of
/// the paper; the extension strategies change where a packet is *assigned*
/// (the per-path queues stay private to their senders).
pub struct StaticServer {
    flows: Vec<FlowId>,
    splitter: StaticSplitter,
    trace: SharedTrace,
    start_at: SimTime,
    stop_after: u64,
    interval: SimTime,
    next_seq: u64,
    strategy: PullStrategy,
    dropped_late: u64,
    deadline_ns: SimTime,
}

impl StaticServer {
    /// A static server with per-path `weights` (long-term average path
    /// bandwidths, measured beforehand — equal for homogeneous paths).
    pub fn new(
        flows: Vec<FlowId>,
        weights: &[f64],
        video: VideoSpec,
        trace: SharedTrace,
        start_at: SimTime,
        stop_after: u64,
    ) -> Self {
        assert_eq!(flows.len(), weights.len());
        let interval = netsim::secs(video.gen_interval_s());
        Self {
            flows,
            splitter: StaticSplitter::new(weights),
            trace,
            start_at,
            stop_after,
            interval,
            next_seq: 0,
            strategy: PullStrategy::RoundRobin,
            dropped_late: 0,
            deadline_ns: netsim::secs(PULL_DEADLINE_S),
        }
    }

    /// Select the assignment strategy (builder style; default the paper's
    /// weighted round-robin, which `RoundRobin` and `Weighted` both map to).
    pub fn with_strategy(mut self, strategy: PullStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Stale packets dropped by the deadline-aware strategy so far.
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    fn pull_fresh(&mut self, k: usize, now: SimTime) -> Option<StreamPacket> {
        if self.strategy != PullStrategy::DeadlineAware {
            return self.splitter.pull_one(k);
        }
        while let Some(p) = self.splitter.pull_one(k) {
            if now.saturating_sub(p.gen_ns) <= self.deadline_ns {
                return Some(p);
            }
            self.dropped_late += 1;
        }
        None
    }

    fn fill_path(&mut self, api: &mut SimApi<'_>, k: usize) {
        let now = api.now();
        loop {
            let space = api.free_space(self.flows[k]);
            if space == 0 || self.splitter.queued(k) == 0 {
                break;
            }
            for _ in 0..space {
                let Some(p) = self.pull_fresh(k, now) else {
                    break;
                };
                let ok = api.push_chunk(self.flows[k], chunk_of(p));
                debug_assert!(ok, "space was checked");
            }
        }
    }
}

impl App for StaticServer {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for &f in &self.flows {
            api.own_flow(f);
        }
        api.schedule_in(self.start_at, 0);
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, _tag: u64) {
        if self.next_seq >= self.stop_after {
            return;
        }
        let now = api.now();
        self.trace.borrow_mut().on_generated(self.next_seq, now);
        let pkt = StreamPacket {
            seq: self.next_seq,
            gen_ns: now,
        };
        match self.strategy {
            // The configured weights *are* the strategy for the baseline
            // pair; both map to the paper's weighted round-robin split.
            PullStrategy::RoundRobin | PullStrategy::Weighted | PullStrategy::DeadlineAware => {
                let k = self.splitter.push(pkt);
                if api.trace_enabled() {
                    api.trace_emit(obs::EventKind::Generated { seq: pkt.seq });
                    api.trace_emit(obs::EventKind::Stripe {
                        path: k as u32,
                        seq: pkt.seq,
                    });
                }
                self.next_seq += 1;
                self.fill_path(api, k);
            }
            // Assign to the currently best-looking path (static in the
            // sense that the assignment is final once made).
            PullStrategy::BestPath => {
                let k = (0..self.flows.len())
                    .min_by_key(|&p| best_path_key(api, self.flows[p], p))
                    .expect("at least one path");
                self.splitter.assign(k, pkt);
                if api.trace_enabled() {
                    api.trace_emit(obs::EventKind::Generated { seq: pkt.seq });
                    api.trace_emit(obs::EventKind::Stripe {
                        path: k as u32,
                        seq: pkt.seq,
                    });
                }
                self.next_seq += 1;
                self.fill_path(api, k);
            }
            // Every path gets a copy; the client keeps the first arrival.
            PullStrategy::RedundantDuplicate => {
                if api.trace_enabled() {
                    api.trace_emit(obs::EventKind::Generated { seq: pkt.seq });
                }
                for k in 0..self.flows.len() {
                    self.splitter.assign(k, pkt);
                    if api.trace_enabled() {
                        api.trace_emit(obs::EventKind::Stripe {
                            path: k as u32,
                            seq: pkt.seq,
                        });
                    }
                }
                self.next_seq += 1;
                for k in 0..self.flows.len() {
                    self.fill_path(api, k);
                }
            }
        }
        api.schedule_in(self.interval, 0);
    }

    fn on_send_space(&mut self, api: &mut SimApi<'_>, flow: FlowId) {
        let k = self
            .flows
            .iter()
            .position(|&f| f == flow)
            .expect("owned flow");
        self.fill_path(api, k);
    }
}

/// The client: subscribes to every path's sink and records arrival times
/// into the shared trace (reassembly order does not matter for the metrics;
/// `dmp_core::metrics` evaluates both playback- and arrival-order lateness).
/// Duplicate deliveries (from [`PullStrategy::RedundantDuplicate`]) keep the
/// first copy to arrive.
pub struct VideoClient {
    trace: SharedTrace,
    /// `flows[k]` is path `k`. K is tiny (2-4 paths), so a linear scan on
    /// every delivery beats hashing the flow id.
    flows: Vec<FlowId>,
}

impl VideoClient {
    /// A client receiving `flows`, where `flows[k]` is path `k`.
    pub fn new(flows: &[FlowId], trace: SharedTrace) -> Self {
        Self {
            trace,
            flows: flows.to_vec(),
        }
    }
}

impl App for VideoClient {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for k in 0..self.flows.len() {
            api.receive_flow(self.flows[k]);
        }
    }

    fn on_receive(&mut self, api: &mut SimApi<'_>, flow: FlowId, chunks: &[AppChunk]) {
        let path = self
            .flows
            .iter()
            .position(|&f| f == flow)
            .expect("subscribed flow") as u8;
        let now = api.now();
        let mut trace = self.trace.borrow_mut();
        for c in chunks {
            trace.on_arrival(c.stream_seq, now, path);
        }
        if api.trace_enabled() {
            for c in chunks {
                api.trace_emit(obs::EventKind::Delivered {
                    path: u32::from(path),
                    seq: c.stream_seq,
                });
            }
        }
    }
}
