//! Video applications for the simulator: the DMP-streaming server, the
//! static-streaming server, and the recording client.

use std::cell::RefCell;
use std::rc::Rc;

use dmp_core::scheme::{DynamicQueue, StaticSplitter, StreamPacket};
use dmp_core::spec::VideoSpec;
use dmp_core::trace::StreamTrace;
use netsim::packet::AppChunk;
use netsim::{App, FlowId, SimApi, SimTime};

/// Shared, interiorly mutable delivery trace: written by both the server
/// (generation) and the client (arrivals).
pub type SharedTrace = Rc<RefCell<StreamTrace>>;

/// Create a fresh shared trace for a run ending at `end_ns`.
pub fn shared_trace(video: VideoSpec, end_ns: SimTime) -> SharedTrace {
    Rc::new(RefCell::new(StreamTrace::new(video, end_ns)))
}

fn chunk_of(p: StreamPacket) -> AppChunk {
    AppChunk {
        stream_seq: p.seq,
        gen_ns: p.gen_ns,
    }
}

/// The DMP-streaming server (Fig. 2 of the paper): a CBR generator feeding a
/// single shared queue; every TCP sender pulls from the head whenever its
/// send buffer has room.
pub struct DmpServer {
    flows: Vec<FlowId>,
    queue: DynamicQueue,
    video: VideoSpec,
    trace: SharedTrace,
    start_at: SimTime,
    stop_after: u64,
    interval: SimTime,
    next_seq: u64,
    rr: usize,
}

impl DmpServer {
    /// A server striping over `flows`, generating from `start_at` until
    /// `stop_after` packets have been produced.
    pub fn new(
        flows: Vec<FlowId>,
        video: VideoSpec,
        trace: SharedTrace,
        start_at: SimTime,
        stop_after: u64,
    ) -> Self {
        let interval = netsim::secs(video.gen_interval_s());
        Self {
            flows,
            queue: DynamicQueue::new(),
            video,
            trace,
            start_at,
            stop_after,
            interval,
            next_seq: 0,
            rr: 0,
        }
    }

    /// One sender takes the lock and drains the head of the queue until its
    /// buffer fills; then the next sender gets a chance (the rotation models
    /// which blocked sender wins the lock first on a generation event).
    fn fill(&mut self, api: &mut SimApi<'_>, start: usize) {
        let k = self.flows.len();
        for i in 0..k {
            let path = (start + i) % k;
            let flow = self.flows[path];
            loop {
                let space = api.free_space(flow);
                if space == 0 || self.queue.is_empty() {
                    break;
                }
                // Pull one packet at a time (allocation-free; the batch
                // `pull` would build a Vec per lock acquisition). Each pull
                // decision is traced before its data enters the stack.
                for _ in 0..space {
                    let Some(p) = self.queue.pull_one() else {
                        break;
                    };
                    if api.trace_enabled() {
                        api.trace_emit(obs::EventKind::Pull {
                            path: path as u32,
                            seq: p.seq,
                            queued: self.queue.len() as u32,
                        });
                    }
                    let ok = api.push_chunk(flow, chunk_of(p));
                    debug_assert!(ok, "space was checked");
                }
                if api.trace_enabled() {
                    api.trace_srv_queue(self.queue.len());
                }
            }
            if self.queue.is_empty() {
                break;
            }
        }
    }

    fn flow_index(&self, flow: FlowId) -> usize {
        self.flows
            .iter()
            .position(|&f| f == flow)
            .expect("owned flow")
    }
}

impl App for DmpServer {
    fn start(&mut self, api: &mut SimApi<'_>) {
        let _ = self.video;
        for &f in &self.flows {
            api.own_flow(f);
        }
        api.schedule_in(self.start_at, 0);
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, _tag: u64) {
        if self.next_seq >= self.stop_after {
            return;
        }
        let now = api.now();
        self.trace.borrow_mut().on_generated(self.next_seq, now);
        self.queue.push(StreamPacket {
            seq: self.next_seq,
            gen_ns: now,
        });
        if api.trace_enabled() {
            api.trace_emit(obs::EventKind::Generated { seq: self.next_seq });
            api.trace_srv_queue(self.queue.len());
        }
        self.next_seq += 1;
        let start = self.rr;
        self.rr = (self.rr + 1) % self.flows.len();
        self.fill(api, start);
        api.schedule_in(self.interval, 0);
    }

    fn on_send_space(&mut self, api: &mut SimApi<'_>, flow: FlowId) {
        // The sender that freed space grabs the queue lock first.
        let k = self.flow_index(flow);
        self.fill(api, k);
    }
}

/// The static-streaming baseline (Section 7.4): packets are pre-assigned to
/// paths by fixed weights; each sender only ever pulls from its own queue.
pub struct StaticServer {
    flows: Vec<FlowId>,
    splitter: StaticSplitter,
    trace: SharedTrace,
    start_at: SimTime,
    stop_after: u64,
    interval: SimTime,
    next_seq: u64,
}

impl StaticServer {
    /// A static server with per-path `weights` (long-term average path
    /// bandwidths, measured beforehand — equal for homogeneous paths).
    pub fn new(
        flows: Vec<FlowId>,
        weights: &[f64],
        video: VideoSpec,
        trace: SharedTrace,
        start_at: SimTime,
        stop_after: u64,
    ) -> Self {
        assert_eq!(flows.len(), weights.len());
        let interval = netsim::secs(video.gen_interval_s());
        Self {
            flows,
            splitter: StaticSplitter::new(weights),
            trace,
            start_at,
            stop_after,
            interval,
            next_seq: 0,
        }
    }

    fn fill_path(&mut self, api: &mut SimApi<'_>, k: usize) {
        loop {
            let space = api.free_space(self.flows[k]);
            if space == 0 || self.splitter.queued(k) == 0 {
                break;
            }
            for _ in 0..space {
                let Some(p) = self.splitter.pull_one(k) else {
                    break;
                };
                let ok = api.push_chunk(self.flows[k], chunk_of(p));
                debug_assert!(ok, "space was checked");
            }
        }
    }
}

impl App for StaticServer {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for &f in &self.flows {
            api.own_flow(f);
        }
        api.schedule_in(self.start_at, 0);
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, _tag: u64) {
        if self.next_seq >= self.stop_after {
            return;
        }
        let now = api.now();
        self.trace.borrow_mut().on_generated(self.next_seq, now);
        let k = self.splitter.push(StreamPacket {
            seq: self.next_seq,
            gen_ns: now,
        });
        if api.trace_enabled() {
            api.trace_emit(obs::EventKind::Generated { seq: self.next_seq });
            api.trace_emit(obs::EventKind::Stripe {
                path: k as u32,
                seq: self.next_seq,
            });
        }
        self.next_seq += 1;
        self.fill_path(api, k);
        api.schedule_in(self.interval, 0);
    }

    fn on_send_space(&mut self, api: &mut SimApi<'_>, flow: FlowId) {
        let k = self
            .flows
            .iter()
            .position(|&f| f == flow)
            .expect("owned flow");
        self.fill_path(api, k);
    }
}

/// The client: subscribes to every path's sink and records arrival times
/// into the shared trace (reassembly order does not matter for the metrics;
/// `dmp_core::metrics` evaluates both playback- and arrival-order lateness).
pub struct VideoClient {
    trace: SharedTrace,
    /// `flows[k]` is path `k`. K is tiny (2-4 paths), so a linear scan on
    /// every delivery beats hashing the flow id.
    flows: Vec<FlowId>,
}

impl VideoClient {
    /// A client receiving `flows`, where `flows[k]` is path `k`.
    pub fn new(flows: &[FlowId], trace: SharedTrace) -> Self {
        Self {
            trace,
            flows: flows.to_vec(),
        }
    }
}

impl App for VideoClient {
    fn start(&mut self, api: &mut SimApi<'_>) {
        for k in 0..self.flows.len() {
            api.receive_flow(self.flows[k]);
        }
    }

    fn on_receive(&mut self, api: &mut SimApi<'_>, flow: FlowId, chunks: &[AppChunk]) {
        let path = self
            .flows
            .iter()
            .position(|&f| f == flow)
            .expect("subscribed flow") as u8;
        let now = api.now();
        let mut trace = self.trace.borrow_mut();
        for c in chunks {
            trace.on_arrival(c.stream_seq, now, path);
        }
        if api.trace_enabled() {
            for c in chunks {
                api.trace_emit(obs::EventKind::Delivered {
                    path: u32::from(path),
                    seq: c.stream_seq,
                });
            }
        }
    }
}
