//! Saturation throughput probe: measure the aggregate rate σ_a a
//! multipath TCP session actually achieves on a setting when the video
//! source can always outrun the network.
//!
//! The paper's Section 7.3 headroom rule is stated in multiples of σ_a/µ:
//! a live stream is safe when the paths' aggregate achievable TCP rate
//! exceeds the video rate by a comfortable margin. The fleet layer
//! approximates σ_a analytically (PFTK from measured `p`, `R`, `T_O`),
//! which is only meaningful for Reno. This module measures it empirically
//! instead — run the *same* experiment with the video generator cranked far
//! above the bottleneck capacity, so every sender is permanently backlogged,
//! and count what comes out the other side. That works identically for
//! Reno, CUBIC, and BBR-lite, and it inherits every piece of the streaming
//! machinery (background traffic, scheduler, tracing hooks), so the probe
//! measures the throughput *this* congestion-control algorithm and pull
//! strategy would get, not a modelled ideal.
//!
//! Probe results feed the `ext_cc_matrix` bench target: the headroom of a
//! (cc, strategy) cell is the smallest multiple `m` such that streaming at
//! µ = σ_a/m keeps the late-frame fraction under 1 %.

use dmp_runner::{JobSpec, Json, JsonCodec};

use crate::configs::config;
use crate::experiment::{run, ExperimentSpec};

/// How far above the aggregate bottleneck capacity the probe's video rate
/// is set. Anything comfortably above 1 keeps the shared queue non-empty
/// for the whole run; 2 leaves margin for rounding and bursts.
pub const SATURATION_FACTOR: f64 = 2.0;

/// Aggregate bottleneck capacity of a setting, in video packets per second
/// (the hard upper bound on σ_a).
pub fn capacity_pps(setting: &crate::configs::Setting) -> f64 {
    setting
        .configs
        .iter()
        .map(|&id| config(id).bandwidth_mbps * 1e6 / (8.0 * f64::from(setting.video.packet_bytes)))
        .sum()
}

/// What one saturation run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationReport {
    /// Aggregate achieved rate σ_a, packets per second.
    pub aggregate_pps: f64,
    /// σ_a split by path (aggregate × delivered share).
    pub per_path_pps: Vec<f64>,
    /// Packets delivered inside the measurement window.
    pub delivered: u64,
    /// Measurement window (the spec's video duration), seconds.
    pub duration_s: f64,
}

impl JsonCodec for SaturationReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("aggregate_pps", Json::Num(self.aggregate_pps)),
            (
                "per_path_pps",
                Json::Arr(self.per_path_pps.iter().map(|&x| Json::Num(x)).collect()),
            ),
            ("delivered", Json::Num(self.delivered as f64)),
            ("duration_s", Json::Num(self.duration_s)),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let per_path_pps = match json.get("per_path_pps")? {
            Json::Arr(xs) => xs.iter().map(Json::as_f64).collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(Self {
            aggregate_pps: json.get("aggregate_pps")?.as_f64()?,
            per_path_pps,
            delivered: json.get("delivered")?.as_f64()? as u64,
            duration_s: json.get("duration_s")?.as_f64()?,
        })
    }
}

/// The experiment the probe actually runs: `spec` with its video rate
/// replaced by `SATURATION_FACTOR ×` the setting's aggregate capacity.
/// Everything else — scheduler, congestion control, pull strategy, engine,
/// scenario, background traffic — carries over unchanged.
pub fn saturation_spec(spec: &ExperimentSpec) -> ExperimentSpec {
    let mut s = spec.clone();
    s.setting.video.rate_pps = (SATURATION_FACTOR * capacity_pps(&s.setting)).ceil();
    s
}

/// Run the saturation probe for `spec` and reduce it to a
/// [`SaturationReport`].
pub fn run_saturation(spec: &ExperimentSpec) -> SaturationReport {
    let sat = saturation_spec(spec);
    let out = run(&sat);
    let delivered = out.trace.delivered();
    let aggregate_pps = delivered as f64 / sat.duration_s;
    SaturationReport {
        aggregate_pps,
        per_path_pps: out.paths.iter().map(|p| p.share * aggregate_pps).collect(),
        delivered,
        duration_s: sat.duration_s,
    }
}

/// Build one cacheable [`JobSpec`] per probe replication (seeds
/// `spec.seed + i`), mirroring [`crate::experiment::batch_jobs`]. The key
/// lives in its own `dmp-sim-sat/` namespace so a probe can never collide
/// with a streaming summary of the same spec.
pub fn saturation_jobs(spec: &ExperimentSpec, runs: usize) -> Vec<JobSpec<SaturationReport>> {
    (0..runs)
        .map(|i| {
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(i as u64);
            // v1: initial probe (video rate forced to 2× aggregate capacity).
            let config_repr = format!("dmp-sim-sat/v1/{}", s.config_repr());
            let label = format!(
                "sat:{}:{}:{}:run{}",
                spec.setting.name,
                spec.cc.name(),
                spec.strategy.name(),
                i
            );
            JobSpec::new(label, config_repr, s.seed, move || run_saturation(&s))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::setting;
    use dmp_core::spec::SchedulerKind;
    use netsim::EngineKind;

    fn probe_spec(kind: cc::CcKind, engine: EngineKind) -> ExperimentSpec {
        let mut s = ExperimentSpec::new(*setting("2-2").unwrap(), SchedulerKind::Dynamic, 30.0, 7);
        s.warmup_s = 5.0;
        s.cc = kind;
        s.engine = engine;
        s
    }

    #[test]
    fn saturated_source_is_backlogged_and_capacity_bounded() {
        let spec = probe_spec(cc::CcKind::Reno, EngineKind::Calendar);
        let r = run_saturation(&spec);
        let cap = capacity_pps(&spec.setting);
        // The probe must push the paths hard enough to measure a nontrivial
        // rate, and it cannot exceed the physical capacity.
        assert!(r.aggregate_pps > 0.05 * cap, "σ_a = {r:?}, cap = {cap}");
        assert!(r.aggregate_pps < cap, "σ_a = {r:?}, cap = {cap}");
        assert_eq!(r.per_path_pps.len(), 2);
        let split: f64 = r.per_path_pps.iter().sum();
        assert!((split - r.aggregate_pps).abs() < 1e-6);
    }

    #[test]
    fn probe_is_engine_invariant() {
        for kind in cc::CcKind::all() {
            let cal = run_saturation(&probe_spec(kind, EngineKind::Calendar));
            let heap = run_saturation(&probe_spec(kind, EngineKind::Heap));
            assert_eq!(
                format!("{cal:?}"),
                format!("{heap:?}"),
                "{kind:?} probe diverges across engines"
            );
        }
    }

    #[test]
    fn probe_jobs_key_embeds_cc_and_strategy() {
        let mut a = probe_spec(cc::CcKind::Reno, EngineKind::Calendar);
        let mut b = a.clone();
        b.cc = cc::CcKind::Cubic;
        let mut c = a.clone();
        c.strategy = dmp_core::spec::PullStrategy::BestPath;
        a.seed = 7;
        let keys: Vec<String> = [&a, &b, &c]
            .iter()
            .map(|s| saturation_jobs(s, 1)[0].config_repr.clone())
            .collect();
        assert!(keys.iter().all(|k| k.starts_with("dmp-sim-sat/v1/")));
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
    }
}
