//! The paper's simulation configurations (Section 5, Tables 1–3).

use dmp_core::spec::VideoSpec;

/// One bottleneck-link configuration from Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottleneckConfig {
    /// Configuration number (1–4).
    pub id: u8,
    /// Long-lived FTP background flows sharing the bottleneck.
    pub ftp_flows: usize,
    /// On/off HTTP background sessions sharing the bottleneck.
    pub http_flows: usize,
    /// Propagation delay of the bottleneck link, ms.
    pub delay_ms: f64,
    /// Bottleneck bandwidth, Mbps.
    pub bandwidth_mbps: f64,
    /// Drop-tail buffer size, packets.
    pub buffer_pkts: usize,
    /// Maximum window of the background TCP flows, packets. Table 1 does not
    /// specify it; these values are calibrated so the measured loss rates and
    /// RTTs land in the band Table 2 reports (see DESIGN.md).
    pub bg_wnd: u32,
}

/// Table 1: the four bottleneck configurations.
pub const TABLE1: [BottleneckConfig; 4] = [
    BottleneckConfig {
        id: 1,
        ftp_flows: 9,
        http_flows: 40,
        delay_ms: 40.0,
        bandwidth_mbps: 3.7,
        buffer_pkts: 50,
        bg_wnd: 20,
    },
    BottleneckConfig {
        id: 2,
        ftp_flows: 9,
        http_flows: 40,
        delay_ms: 1.0,
        bandwidth_mbps: 3.7,
        buffer_pkts: 50,
        bg_wnd: 20,
    },
    BottleneckConfig {
        id: 3,
        ftp_flows: 19,
        http_flows: 40,
        delay_ms: 40.0,
        bandwidth_mbps: 5.0,
        buffer_pkts: 50,
        bg_wnd: 20,
    },
    BottleneckConfig {
        id: 4,
        ftp_flows: 5,
        http_flows: 20,
        delay_ms: 1.0,
        bandwidth_mbps: 5.0,
        buffer_pkts: 30,
        bg_wnd: 20,
    },
];

/// Look up a Table 1 configuration by its paper id (1–4).
pub fn config(id: u8) -> &'static BottleneckConfig {
    &TABLE1[(id - 1) as usize]
}

/// One validation setting: the bottleneck configuration used by each path
/// and the video played over them (Section 5.2's "Setting i-j").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Setting {
    /// Human name, e.g. "2-2" or "1-3" (or "corr-2" for correlated paths).
    pub name: &'static str,
    /// Table 1 configuration id per path.
    pub configs: [u8; 2],
    /// Video spec (paper: µ of 30–80 pkt/s, 1500-byte packets).
    pub video: VideoSpec,
    /// Whether both flows share one bottleneck (Fig. 6) instead of using
    /// independent paths (Fig. 3).
    pub correlated: bool,
}

const fn vid(mu: u32) -> VideoSpec {
    VideoSpec {
        rate_pps: mu as f64,
        packet_bytes: 1500,
    }
}

/// The independent **homogeneous** settings of Table 2 (Setting i-i).
pub const HOMOGENEOUS: [Setting; 4] = [
    Setting {
        name: "1-1",
        configs: [1, 1],
        video: vid(50),
        correlated: false,
    },
    Setting {
        name: "2-2",
        configs: [2, 2],
        video: vid(50),
        correlated: false,
    },
    Setting {
        name: "3-3",
        configs: [3, 3],
        video: vid(30),
        correlated: false,
    },
    Setting {
        name: "4-4",
        configs: [4, 4],
        video: vid(80),
        correlated: false,
    },
];

/// The independent **heterogeneous** settings of Table 2 (Setting i-j).
pub const HETEROGENEOUS: [Setting; 4] = [
    Setting {
        name: "1-2",
        configs: [1, 2],
        video: vid(50),
        correlated: false,
    },
    Setting {
        name: "1-3",
        configs: [1, 3],
        video: vid(40),
        correlated: false,
    },
    Setting {
        name: "2-3",
        configs: [2, 3],
        video: vid(40),
        correlated: false,
    },
    Setting {
        name: "3-4",
        configs: [3, 4],
        video: vid(60),
        correlated: false,
    },
];

/// The correlated-path settings of Table 3 (both flows on one bottleneck).
pub const CORRELATED: [Setting; 4] = [
    Setting {
        name: "corr-1",
        configs: [1, 1],
        video: vid(50),
        correlated: true,
    },
    Setting {
        name: "corr-2",
        configs: [2, 2],
        video: vid(50),
        correlated: true,
    },
    Setting {
        name: "corr-3",
        configs: [3, 3],
        video: vid(30),
        correlated: true,
    },
    Setting {
        name: "corr-4",
        configs: [4, 4],
        video: vid(80),
        correlated: true,
    },
];

/// Find any setting by name across all three tables.
pub fn setting(name: &str) -> Option<&'static Setting> {
    HOMOGENEOUS
        .iter()
        .chain(&HETEROGENEOUS)
        .chain(&CORRELATED)
        .find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        assert_eq!(TABLE1.len(), 4);
        assert_eq!(config(1).ftp_flows, 9);
        assert_eq!(config(3).ftp_flows, 19);
        assert_eq!(config(4).buffer_pkts, 30);
        assert!((config(2).delay_ms - 1.0).abs() < 1e-12);
        assert!((config(3).bandwidth_mbps - 5.0).abs() < 1e-12);
    }

    #[test]
    fn settings_video_rates_match_table2() {
        assert_eq!(setting("1-1").unwrap().video.rate_pps, 50.0);
        assert_eq!(setting("3-3").unwrap().video.rate_pps, 30.0);
        assert_eq!(setting("4-4").unwrap().video.rate_pps, 80.0);
        assert_eq!(setting("1-3").unwrap().video.rate_pps, 40.0);
        assert_eq!(setting("3-4").unwrap().video.rate_pps, 60.0);
    }

    #[test]
    fn correlated_settings_are_flagged() {
        assert!(setting("corr-2").unwrap().correlated);
        assert!(!setting("2-2").unwrap().correlated);
        assert!(setting("nope").is_none());
    }

    #[test]
    fn video_bitrates_span_paper_range() {
        // Paper: 360–960 kbps.
        for s in HOMOGENEOUS.iter().chain(&HETEROGENEOUS) {
            let kbps = s.video.bitrate_bps() / 1e3;
            assert!((360.0..=960.0).contains(&kbps), "{}: {kbps}", s.name);
        }
    }
}
