//! `dmp-sim` — the paper's Section 5 simulation study, rebuilt on the
//! `netsim` discrete-event simulator: topologies (independent paths, Fig. 3;
//! correlated paths, Fig. 6), Table-1 bottleneck configurations, the video
//! applications (DMP server, static server, recording client), and batch
//! experiment runners that measure the per-path TCP parameters reported in
//! Tables 2 and 3.
//!
//! # Quick start
//!
//! ```
//! use dmp_core::spec::SchedulerKind;
//! use dmp_sim::configs::setting;
//! use dmp_sim::experiment::{run, ExperimentSpec};
//!
//! let mut spec = ExperimentSpec::new(
//!     *setting("2-2").unwrap(),
//!     SchedulerKind::Dynamic,
//!     60.0, // seconds of video
//!     42,   // seed
//! );
//! spec.warmup_s = 10.0;
//! let out = run(&spec);
//! assert!(out.trace.delivered() > 0);
//! println!(
//!     "path 0: p = {:.3}, R = {:.0} ms",
//!     out.paths[0].loss,
//!     out.paths[0].rtt_s * 1e3
//! );
//! ```

#![warn(missing_docs)]

pub mod configs;
pub mod experiment;
pub mod probe;
pub mod topology;
pub mod video;

pub use configs::{
    config, setting, BottleneckConfig, Setting, CORRELATED, HETEROGENEOUS, HOMOGENEOUS, TABLE1,
};
pub use experiment::{
    batch_jobs, run, run_batch, run_scenario_summary, run_summary, scenario_batch_jobs,
    BatchOutput, ExperimentSpec, MeasuredPath, RunOutput, RunSummary, ScenarioSummary, TraceSpec,
};
