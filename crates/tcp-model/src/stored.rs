//! Stored-video streaming — the extension the paper leaves as future work
//! ("it is also applicable to stored-video streaming").
//!
//! The difference from live streaming is the producer constraint: for a
//! stored video the server holds the entire file, so the TCP flows are never
//! throttled by the generation process — the client can buffer arbitrarily
//! far ahead (`N` is unbounded above instead of capped at `µτ`). Lateness
//! is then a *transient* phenomenon over the finite video, not a stationary
//! one, so this module runs finite-horizon Monte Carlo over the same
//! per-flow chains.

use dmp_core::stats::OnlineStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::chain::TcpChain;
use crate::dmp::DmpModel;

/// Result of a stored-video analysis.
#[derive(Debug, Clone, Copy)]
pub struct StoredVideoResult {
    /// Mean fraction of late packets over the replications.
    pub f: f64,
    /// 95% CI half-width across replications.
    pub ci95: f64,
    /// Replications run.
    pub runs: u32,
}

/// Estimate the fraction of late packets when streaming a **stored** video
/// of `video_packets` packets through the model's paths with startup delay
/// `model.tau_s` (prefetch runs during the startup delay, and the sender may
/// work arbitrarily far ahead afterwards).
pub fn stored_video_late_fraction(
    model: &DmpModel,
    video_packets: u64,
    runs: u32,
    seed: u64,
) -> StoredVideoResult {
    assert!(runs >= 1 && video_packets > 0);
    let mut stats = OnlineStats::new();
    for r in 0..runs {
        let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(r) << 20));
        stats.push(one_run(model, video_packets, &mut rng));
    }
    StoredVideoResult {
        f: stats.mean(),
        ci95: stats.ci95_half_width(),
        runs,
    }
}

/// One transient run: real-time event race between the K chains (producing
/// until the file is fully transferred) and the consumer (Poisson µ,
/// starting at τ, consuming `video_packets` packets).
fn one_run(model: &DmpModel, video_packets: u64, rng: &mut SmallRng) -> f64 {
    let mut chains: Vec<TcpChain> = model
        .paths
        .iter()
        .map(|&p| TcpChain::new(p, model.wmax))
        .collect();
    let sample_exp = |rate: f64, rng: &mut SmallRng| -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / rate
    };
    let mut next_prod: Vec<f64> = chains.iter().map(|c| sample_exp(c.rate(), rng)).collect();
    let mut t_cons = model.tau_s + sample_exp(model.mu, rng);

    let mut produced = 0u64;
    let mut consumed = 0u64;
    let mut late = 0u64;
    let mut n: i64 = 0;

    while consumed < video_packets {
        // Next event: earliest production (if the file is not finished) or
        // the next consumption.
        let (k_min, t_prod) = next_prod
            .iter()
            .cloned()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
            .expect("at least one path");
        if produced < video_packets && t_prod < t_cons {
            let delivered = u64::from(chains[k_min].step(rng).delivered);
            let usable = delivered.min(video_packets - produced);
            produced += usable;
            n += usable as i64;
            next_prod[k_min] = t_prod + sample_exp(chains[k_min].rate(), rng);
        } else if produced >= video_packets && t_prod < t_cons {
            // File fully transferred: silence this producer.
            next_prod[k_min] = f64::INFINITY;
        } else {
            consumed += 1;
            n -= 1;
            if n < 0 {
                late += 1;
            }
            t_cons += sample_exp(model.mu, rng);
        }
    }
    late as f64 / video_packets as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_core::spec::PathSpec;

    fn model(ratio_hint_rtt_ms: f64, mu: f64, tau: f64) -> DmpModel {
        DmpModel::new(
            vec![PathSpec::from_ms(0.02, ratio_hint_rtt_ms, 4.0); 2],
            mu,
            tau,
        )
    }

    #[test]
    fn stored_video_is_never_worse_than_live() {
        // Same paths, same µ, same τ: the stored sender can work ahead, so
        // its late fraction cannot (statistically) exceed live streaming's.
        let m = model(180.0, 25.0, 6.0);
        let live = m.late_fraction(300_000, 3).f;
        let stored = stored_video_late_fraction(&m, 30_000, 8, 3).f;
        assert!(
            stored <= live * 1.2 + 1e-4,
            "stored {stored} should not exceed live {live}"
        );
    }

    #[test]
    fn ample_bandwidth_stored_video_is_clean() {
        let m = model(60.0, 25.0, 6.0); // short RTT → big headroom
        let r = stored_video_late_fraction(&m, 20_000, 5, 7);
        assert!(r.f < 1e-3, "f = {}", r.f);
    }

    #[test]
    fn starved_stored_video_is_still_late() {
        // Working ahead cannot create bandwidth: below ratio 1 the stored
        // video is late too.
        let m = model(700.0, 25.0, 4.0); // huge RTT → σa < µ
        let r = stored_video_late_fraction(&m, 10_000, 5, 9);
        assert!(r.f > 0.2, "f = {}", r.f);
    }

    #[test]
    fn longer_prefetch_helps_stored_video() {
        let f_short = stored_video_late_fraction(&model(240.0, 25.0, 2.0), 20_000, 8, 11).f;
        let f_long = stored_video_late_fraction(&model(240.0, 25.0, 15.0), 20_000, 8, 11).f;
        assert!(f_long <= f_short + 1e-9, "{f_long} !<= {f_short}");
    }

    #[test]
    fn deterministic_per_seed() {
        let m = model(200.0, 25.0, 4.0);
        let a = stored_video_late_fraction(&m, 5_000, 3, 42);
        let b = stored_video_late_fraction(&m, 5_000, 3, 42);
        assert_eq!(a.f, b.f);
    }
}
