//! The joint DMP-streaming model: `K` per-flow TCP chains producing packets
//! into the client buffer, a Poisson consumer draining it (Section 4.2).
//!
//! State: `(X₁(t), …, X_K(t), N(t))` where `X_k` is the k-th chain's state
//! and `N(t)` the number of early packets. Two event types:
//!
//! * **Production** (`E = P`): chain `k` makes a transition and delivers
//!   `S_k` packets: `N ← min(N + S_k, N_max)` with `N_max = µτ`. A chain does
//!   not transition while `N = N_max` (live streaming: the server cannot be
//!   more than `µτ` packets ahead of playback).
//! * **Consumption** (`E = C`): at rate `µ`, `N ← N − 1`. A consumption that
//!   leaves `N < 0` is a **late packet**.
//!
//! The fraction of late packets is `f = P(N(t) < 0 | E(t) = C)`, estimated by
//! stochastic simulation of the CTMC (statistically exact; TANGRAM-II, the
//! tool the paper used, offers the same simulation solver alongside exact
//! ones — the joint state space here is far too large for exact solution).
//! The SSA machinery is cross-validated against an exact solver on reduced
//! chains in [`crate::solver`]'s tests.

use dmp_core::spec::PathSpec;
use dmp_core::stats::OnlineStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::chain::TcpChain;

/// Parameters of the joint model.
#[derive(Debug, Clone)]
pub struct DmpModel {
    /// One entry per path (`K = paths.len()`).
    pub paths: Vec<PathSpec>,
    /// Playback rate µ, packets per second.
    pub mu: f64,
    /// Startup delay τ, seconds (`N_max = ⌈µτ⌉`).
    pub tau_s: f64,
    /// Maximum TCP window used by the per-flow chains.
    pub wmax: u32,
}

impl DmpModel {
    /// Default maximum window for the per-flow chains.
    pub const DEFAULT_WMAX: u32 = 64;

    /// A `K`-path model with the default window cap.
    pub fn new(paths: Vec<PathSpec>, mu: f64, tau_s: f64) -> Self {
        assert!(!paths.is_empty());
        assert!(mu > 0.0 && tau_s > 0.0);
        Self {
            paths,
            mu,
            tau_s,
            wmax: Self::DEFAULT_WMAX,
        }
    }

    /// The buffer cap `N_max = ⌈µτ⌉` (Section 2.1: the number of early
    /// packets can never exceed µτ in live streaming).
    pub fn nmax(&self) -> i64 {
        (self.mu * self.tau_s).ceil() as i64
    }

    /// Estimate the fraction of late packets by simulating the CTMC for
    /// `consumptions` consumption events (after a warm-up of one tenth of
    /// that). Deterministic for a fixed `seed`.
    pub fn late_fraction(&self, consumptions: u64, seed: u64) -> LateFracEstimate {
        let mut sim = DmpSsa::new(self, seed);
        sim.run(consumptions)
    }
}

/// A late-fraction estimate with a batch-means confidence interval.
#[derive(Debug, Clone, Copy)]
pub struct LateFracEstimate {
    /// Point estimate of `f`.
    pub f: f64,
    /// 95% confidence half-width from batch means (0 when too few batches).
    pub ci95: f64,
    /// Consumption events counted (after warm-up).
    pub consumptions: u64,
    /// Late consumption events counted.
    pub late: u64,
}

impl LateFracEstimate {
    /// True when the interval excludes `threshold` from above/below, i.e.
    /// we can call the comparison confidently.
    pub fn decides(&self, threshold: f64) -> Option<bool> {
        if self.f + self.ci95 < threshold {
            Some(true) // confidently below
        } else if self.f - self.ci95 > threshold {
            Some(false) // confidently above
        } else {
            None
        }
    }
}

/// The stochastic simulation (Gillespie) of the joint chain. Exposed so the
/// startup-delay search can run it incrementally.
pub struct DmpSsa {
    chains: Vec<TcpChain>,
    mu: f64,
    nmax: i64,
    n: i64,
    rng: SmallRng,
    /// Packets produced per path (to report DMP's dynamic split).
    pub produced: Vec<u64>,
}

impl DmpSsa {
    /// Build the simulation in the model's initial state (`N = 0`, all
    /// chains in slow start).
    pub fn new(model: &DmpModel, seed: u64) -> Self {
        Self {
            chains: model
                .paths
                .iter()
                .map(|&p| TcpChain::new(p, model.wmax))
                .collect(),
            mu: model.mu,
            nmax: model.nmax(),
            n: 0,
            rng: SmallRng::seed_from_u64(seed),
            produced: vec![0; model.paths.len()],
        }
    }

    /// Current buffer level `N`.
    pub fn buffer_level(&self) -> i64 {
        self.n
    }

    /// Advance by one event; returns `Some(late)` for a consumption event
    /// (`late` = it found an empty buffer), `None` for a production event.
    #[inline]
    pub fn step(&mut self) -> Option<bool> {
        // Competing exponentials: consumption at µ always; chain k at its
        // current rate unless the buffer is full (live-streaming freeze).
        let frozen = self.n >= self.nmax;
        let mut total = self.mu;
        if !frozen {
            for c in &self.chains {
                total += c.rate();
            }
        }
        // (Holding time is Exp(total) but is not needed for the embedded
        // statistics: consumptions sample the stationary law by PASTA.)
        let mut pick = self.rng.gen_range(0.0..total);
        if pick < self.mu {
            self.n -= 1;
            return Some(self.n < 0);
        }
        pick -= self.mu;
        debug_assert!(!frozen);
        for (k, c) in self.chains.iter_mut().enumerate() {
            let r = c.rate();
            if pick < r {
                let t = c.step(&mut self.rng);
                let s = i64::from(t.delivered);
                self.produced[k] += u64::from(t.delivered);
                self.n = (self.n + s).min(self.nmax);
                return None;
            }
            pick -= r;
        }
        // Floating-point edge: attribute to the last chain.
        let last = self.chains.len() - 1;
        let t = self.chains[last].step(&mut self.rng);
        self.produced[last] += u64::from(t.delivered);
        self.n = (self.n + i64::from(t.delivered)).min(self.nmax);
        None
    }

    /// Run until `consumptions` consumption events have been observed after a
    /// warm-up of `consumptions/10`; estimate `f` with batch-means CIs.
    pub fn run(&mut self, consumptions: u64) -> LateFracEstimate {
        let warmup = consumptions / 10;
        let mut seen = 0u64;
        while seen < warmup {
            if self.step().is_some() {
                seen += 1;
            }
        }
        const BATCHES: u64 = 20;
        let per_batch = (consumptions / BATCHES).max(1);
        let mut batch_stats = OnlineStats::new();
        let mut late_total = 0u64;
        let mut counted = 0u64;
        for _ in 0..BATCHES {
            let mut late = 0u64;
            let mut c = 0u64;
            while c < per_batch {
                if let Some(is_late) = self.step() {
                    c += 1;
                    if is_late {
                        late += 1;
                    }
                }
            }
            late_total += late;
            counted += c;
            batch_stats.push(late as f64 / c as f64);
        }
        LateFracEstimate {
            f: late_total as f64 / counted as f64,
            ci95: batch_stats.ci95_half_width(),
            consumptions: counted,
            late: late_total,
        }
    }
}

/// The static-streaming baseline of Section 7.4: with `K` homogeneous paths,
/// odd/even (weighted) assignment makes each path an **independent
/// single-path stream** of rate `µ/K` with its own startup buffer `(µ/K)·τ`;
/// the overall late fraction is the average of the per-path ones.
pub fn static_streaming_late_fraction(
    paths: &[PathSpec],
    mu: f64,
    tau_s: f64,
    consumptions: u64,
    seed: u64,
) -> LateFracEstimate {
    let k = paths.len() as f64;
    let mut f_sum = 0.0;
    let mut ci_sum = 0.0;
    let mut cons = 0;
    let mut late = 0;
    for (i, &p) in paths.iter().enumerate() {
        let sub = DmpModel::new(vec![p], mu / k, tau_s);
        let est = sub.late_fraction(consumptions / paths.len() as u64, seed ^ (i as u64) << 32);
        f_sum += est.f;
        ci_sum += est.ci95;
        cons += est.consumptions;
        late += est.late;
    }
    LateFracEstimate {
        f: f_sum / k,
        ci95: ci_sum / k,
        consumptions: cons,
        late,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pftk;

    fn homo(p: f64, rtt_ms: f64, to: f64) -> Vec<PathSpec> {
        vec![PathSpec::from_ms(p, rtt_ms, to); 2]
    }

    #[test]
    fn nmax_is_mu_tau() {
        let m = DmpModel::new(homo(0.02, 100.0, 4.0), 50.0, 8.0);
        assert_eq!(m.nmax(), 400);
    }

    #[test]
    fn ample_bandwidth_gives_tiny_late_fraction() {
        // σa/µ = 2.0 at p = 0.02, TO = 4 and a healthy τ.
        let mu = 25.0;
        let rtt = pftk::rtt_for_ratio(0.02, 4.0, 2, mu, 2.0);
        let m = DmpModel::new(homo(0.02, rtt * 1e3, 4.0), mu, 14.0);
        let est = m.late_fraction(400_000, 1);
        assert!(est.f < 5e-3, "f = {} should be small", est.f);
    }

    #[test]
    fn starved_stream_is_mostly_late() {
        // σa/µ < 1: TCP cannot keep up; most packets are late.
        let mu = 25.0;
        let rtt = pftk::rtt_for_ratio(0.02, 4.0, 2, mu, 0.7);
        let m = DmpModel::new(homo(0.02, rtt * 1e3, 4.0), mu, 6.0);
        let est = m.late_fraction(150_000, 2);
        assert!(est.f > 0.2, "f = {}", est.f);
    }

    #[test]
    fn late_fraction_decreases_with_tau() {
        let mu = 25.0;
        let rtt = pftk::rtt_for_ratio(0.02, 4.0, 2, mu, 1.4);
        let paths = homo(0.02, rtt * 1e3, 4.0);
        let f4 = DmpModel::new(paths.clone(), mu, 4.0)
            .late_fraction(200_000, 3)
            .f;
        let f12 = DmpModel::new(paths, mu, 12.0).late_fraction(200_000, 3).f;
        assert!(f12 < f4, "f(τ=12) = {f12} !< f(τ=4) = {f4}");
    }

    #[test]
    fn late_fraction_decreases_with_ratio() {
        let mu = 25.0;
        let mut prev = f64::INFINITY;
        for ratio in [1.2, 1.6, 2.0] {
            let rtt = pftk::rtt_for_ratio(0.02, 4.0, 2, mu, ratio);
            let m = DmpModel::new(homo(0.02, rtt * 1e3, 4.0), mu, 6.0);
            let f = m.late_fraction(300_000, 4).f;
            assert!(
                f < prev,
                "f should fall with σa/µ: ratio {ratio} gave {f} (prev {prev})"
            );
            prev = f;
        }
    }

    #[test]
    fn dynamic_split_tracks_path_throughputs() {
        // Heterogeneous paths: the faster path must carry more packets.
        let paths = vec![
            PathSpec::from_ms(0.02, 100.0, 4.0), // fast
            PathSpec::from_ms(0.02, 300.0, 4.0), // slow (3× RTT → ~1/3 σ)
        ];
        let m = DmpModel::new(paths, 40.0, 8.0);
        let mut ssa = DmpSsa::new(&m, 5);
        let mut consumed = 0;
        while consumed < 300_000 {
            if ssa.step().is_some() {
                consumed += 1;
            }
        }
        let total: u64 = ssa.produced.iter().sum();
        let share_fast = ssa.produced[0] as f64 / total as f64;
        assert!(
            (0.6..0.9).contains(&share_fast),
            "fast path share {share_fast}, expected ≈ 0.75"
        );
    }

    #[test]
    fn buffer_never_exceeds_nmax() {
        let m = DmpModel::new(homo(0.01, 50.0, 2.0), 50.0, 2.0);
        let mut ssa = DmpSsa::new(&m, 6);
        for _ in 0..200_000 {
            ssa.step();
            assert!(ssa.buffer_level() <= m.nmax());
        }
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let m = DmpModel::new(homo(0.02, 150.0, 4.0), 25.0, 4.0);
        let a = m.late_fraction(50_000, 42);
        let b = m.late_fraction(50_000, 42);
        assert_eq!(a.f, b.f);
        assert_eq!(a.late, b.late);
    }

    #[test]
    fn dmp_beats_static_streaming() {
        // Section 7.4's headline: dynamic allocation needs a smaller τ /
        // achieves a lower late fraction at the same τ.
        let mu = 30.0;
        let rtt = pftk::rtt_for_ratio(0.02, 4.0, 2, mu, 1.6);
        let paths = homo(0.02, rtt * 1e3, 4.0);
        let dmp = DmpModel::new(paths.clone(), mu, 10.0).late_fraction(400_000, 7);
        let stat = static_streaming_late_fraction(&paths, mu, 10.0, 400_000, 7);
        assert!(
            dmp.f < stat.f,
            "DMP f = {} should beat static f = {}",
            dmp.f,
            stat.f
        );
    }

    #[test]
    fn decides_uses_confidence_interval() {
        let est = LateFracEstimate {
            f: 1e-5,
            ci95: 2e-6,
            consumptions: 1_000_000,
            late: 10,
        };
        assert_eq!(est.decides(1e-4), Some(true));
        let est = LateFracEstimate {
            f: 5e-4,
            ci95: 1e-4,
            consumptions: 1_000_000,
            late: 500,
        };
        assert_eq!(est.decides(1e-4), Some(false));
        let est = LateFracEstimate {
            f: 1.1e-4,
            ci95: 5e-5,
            consumptions: 1_000_000,
            late: 110,
        };
        assert_eq!(est.decides(1e-4), None);
    }
}
