//! Required-startup-delay search: the smallest τ such that the fraction of
//! late packets drops below a threshold (the paper uses `f < 10⁻⁴`), used by
//! Figures 9, 10, and 11.
//!
//! `f(τ)` is monotonically non-increasing in τ (a larger buffer cap only
//! helps), so a bracketing + bisection search applies. Each point is
//! evaluated adaptively: simulation effort grows until the confidence
//! interval decides the comparison against the threshold or a budget is
//! exhausted.

use crate::dmp::{DmpModel, DmpSsa, LateFracEstimate};
use dmp_core::spec::PathSpec;
use dmp_runner::JobSpec;

/// Tuning of the search.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Decision threshold on the late fraction (paper: 1e-4).
    pub threshold: f64,
    /// τ resolution, seconds (bisection stops at this width).
    pub resolution_s: f64,
    /// Largest τ considered before declaring failure, seconds.
    pub tau_max_s: f64,
    /// Consumption events per evaluation block.
    pub block: u64,
    /// Maximum consumption events per τ evaluation.
    pub max_consumptions: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            threshold: 1e-4,
            resolution_s: 0.5,
            tau_max_s: 120.0,
            block: 200_000,
            max_consumptions: 2_000_000,
            seed: 0x5eed,
        }
    }
}

/// Result of one τ evaluation.
#[derive(Debug, Clone, Copy)]
pub struct TauEval {
    /// Startup delay evaluated.
    pub tau_s: f64,
    /// Estimate obtained.
    pub estimate: LateFracEstimate,
    /// Whether the point is below the threshold (by point estimate when the
    /// CI does not decide).
    pub below: bool,
}

/// Evaluate `f(τ)` adaptively for the model produced by `model_at(τ)`.
pub fn evaluate_tau(model: &DmpModel, opts: &SearchOptions) -> TauEval {
    let mut ssa = DmpSsa::new(model, opts.seed ^ (model.tau_s * 1e3) as u64);
    let mut spent = 0u64;
    let mut est = ssa.run(opts.block);
    spent += opts.block;
    while est.decides(opts.threshold).is_none() && spent < opts.max_consumptions {
        // Keep the same trajectory going: pool the counts.
        let more = ssa.run(opts.block);
        est = LateFracEstimate {
            f: (est.late + more.late) as f64 / (est.consumptions + more.consumptions) as f64,
            ci95: est.ci95 * (spent as f64 / (spent + opts.block) as f64).sqrt(),
            consumptions: est.consumptions + more.consumptions,
            late: est.late + more.late,
        };
        spent += opts.block;
    }
    let below = est
        .decides(opts.threshold)
        .unwrap_or(est.f < opts.threshold);
    TauEval {
        tau_s: model.tau_s,
        estimate: est,
        below,
    }
}

/// Find the smallest τ (to `resolution_s`) with `f(τ) < threshold`, for a
/// family of models parameterised by τ. Returns `None` if even `tau_max_s`
/// fails.
pub fn required_startup_delay(
    mut model_at: impl FnMut(f64) -> DmpModel,
    opts: &SearchOptions,
) -> Option<f64> {
    // Bracket: grow τ geometrically until below the threshold.
    let mut lo = 0.0f64; // known ≥ threshold (τ=0 ⇒ everything late)
    let mut hi = 2.0f64;
    loop {
        if hi > opts.tau_max_s {
            return None;
        }
        let eval = evaluate_tau(&model_at(hi), opts);
        if eval.below {
            break;
        }
        lo = hi;
        hi *= 2.0;
    }
    // Bisect.
    while hi - lo > opts.resolution_s {
        let mid = 0.5 * (lo + hi);
        let eval = evaluate_tau(&model_at(mid), opts);
        if eval.below {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// A self-contained, cacheable description of one required-startup-delay
/// search: the path parameters, the video rate, and the search tuning. Where
/// [`required_startup_delay`] takes an arbitrary closure, this fixes the
/// model family to `DmpModel::new(paths, mu, τ)` — which covers every search
/// in the reproduction — so the whole computation can be content-addressed.
#[derive(Debug, Clone)]
pub struct TauSearchSpec {
    /// Per-path TCP parameters.
    pub paths: Vec<PathSpec>,
    /// Video consumption rate µ, packets per second.
    pub mu: f64,
    /// Search tuning (threshold, resolution, budget, seed).
    pub opts: SearchOptions,
}

impl TauSearchSpec {
    /// Execute the search.
    pub fn run(&self) -> Option<f64> {
        let paths = self.paths.clone();
        let mu = self.mu;
        required_startup_delay(move |tau| DmpModel::new(paths.clone(), mu, tau), &self.opts)
    }

    /// Stable textual representation for content-addressed caching; every
    /// field that influences the result appears, and the version tag
    /// invalidates old entries if search semantics change.
    pub fn config_repr(&self) -> String {
        format!("tcp-model-tau/v1/{self:?}")
    }

    /// Package the search as a cacheable runner job.
    pub fn into_job(self, label: impl Into<String>) -> JobSpec<Option<f64>> {
        let config_repr = self.config_repr();
        let seed = self.opts.seed;
        JobSpec::new(label, config_repr, seed, move || self.run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pftk;
    use dmp_core::spec::PathSpec;

    fn model_family(ratio: f64, mu: f64) -> impl FnMut(f64) -> DmpModel {
        let rtt = pftk::rtt_for_ratio(0.02, 4.0, 2, mu, ratio);
        move |tau| {
            DmpModel::new(
                vec![
                    PathSpec {
                        loss: 0.02,
                        rtt_s: rtt,
                        to_ratio: 4.0
                    };
                    2
                ],
                mu,
                tau,
            )
        }
    }

    fn quick_opts() -> SearchOptions {
        SearchOptions {
            threshold: 1e-3, // coarser threshold keeps the test fast
            block: 60_000,
            max_consumptions: 240_000,
            resolution_s: 1.0,
            ..SearchOptions::default()
        }
    }

    #[test]
    fn finds_a_reasonable_delay_at_healthy_ratio() {
        let tau = required_startup_delay(model_family(1.8, 25.0), &quick_opts());
        let tau = tau.expect("ratio 1.8 must be satisfiable");
        assert!((1.0..30.0).contains(&tau), "τ = {tau}");
    }

    #[test]
    fn higher_ratio_needs_smaller_delay() {
        let t_low = required_startup_delay(model_family(1.4, 25.0), &quick_opts());
        let t_high = required_startup_delay(model_family(2.0, 25.0), &quick_opts());
        let (t_low, t_high) = (t_low.expect("1.4 ok"), t_high.expect("2.0 ok"));
        assert!(
            t_high <= t_low,
            "τ(σa/µ=2.0) = {t_high} should not exceed τ(σa/µ=1.4) = {t_low}"
        );
    }

    #[test]
    fn tau_search_spec_matches_closure_search() {
        let opts = quick_opts();
        let rtt = pftk::rtt_for_ratio(0.02, 4.0, 2, 25.0, 1.8);
        let spec = TauSearchSpec {
            paths: vec![
                PathSpec {
                    loss: 0.02,
                    rtt_s: rtt,
                    to_ratio: 4.0
                };
                2
            ],
            mu: 25.0,
            opts,
        };
        assert_eq!(
            spec.run(),
            required_startup_delay(model_family(1.8, 25.0), &opts)
        );
        // The repr must pin every input (τ-grid aside, which is the search's
        // own business).
        let repr = spec.config_repr();
        assert!(repr.contains("tcp-model-tau/v1"));
        assert!(repr.contains("25.0"));
    }

    #[test]
    fn infeasible_ratio_returns_none() {
        // σa/µ < 1 can never reach a small late fraction.
        let mut opts = quick_opts();
        opts.tau_max_s = 20.0;
        let tau = required_startup_delay(model_family(0.8, 25.0), &opts);
        assert!(tau.is_none());
    }
}
