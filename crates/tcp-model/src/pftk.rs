//! The PFTK steady-state TCP throughput formula (Padhye, Firoiu, Towsley,
//! Kurose, SIGCOMM'98) — reference \[24\] of the paper.
//!
//! The paper uses this formula in two places: to dial the knob
//! `σ_a/µ` (fixing `p` and `T_O` fixes the per-round throughput `σR = σ·R`,
//! then `R` or `µ` is varied), and to choose the second path's loss rate in
//! the heterogeneity study (Case 2) so both scenarios have the same aggregate
//! achievable throughput.

use dmp_core::spec::PathSpec;

/// Number of segments acknowledged per ACK (2 with delayed ACKs).
pub const DELAYED_ACK_B: f64 = 2.0;

/// Achievable steady-state TCP throughput in **packets per second** for a
/// backlogged Reno flow over a path with loss `p`, RTT `R` (s), and first
/// retransmission timeout `T0 = to_ratio·R` (s):
///
/// ```text
/// σ ≈ 1 / ( R·√(2bp/3) + T0 · min(1, 3·√(3bp/8)) · p · (1 + 32p²) )
/// ```
pub fn throughput_pps(path: &PathSpec) -> f64 {
    let p = path.loss;
    assert!(p > 0.0 && p < 1.0, "loss must be in (0,1), got {p}");
    let b = DELAYED_ACK_B;
    let r = path.rtt_s;
    let t0 = path.rto_s();
    let term_fast = r * (2.0 * b * p / 3.0).sqrt();
    let term_to = t0 * (1.0f64).min(3.0 * (3.0 * b * p / 8.0).sqrt()) * p * (1.0 + 32.0 * p * p);
    1.0 / (term_fast + term_to)
}

/// Per-round throughput `σR = σ·R` in **packets per round trip**. Depends
/// only on `p` and `T_O` (not on the RTT), which is why the paper can vary
/// `σ_a/µ` by scaling `R` alone.
pub fn per_round_throughput(loss: f64, to_ratio: f64) -> f64 {
    throughput_pps(&PathSpec {
        loss,
        rtt_s: 1.0,
        to_ratio,
    })
}

/// The RTT (seconds) that makes `K` homogeneous paths with loss `p` and
/// timeout ratio `T_O` reach an aggregate-throughput-to-bitrate ratio
/// `σ_a/µ = ratio` for a video of `mu` packets per second:
/// `R = K·σR / (ratio·µ)`.
pub fn rtt_for_ratio(loss: f64, to_ratio: f64, k: usize, mu: f64, ratio: f64) -> f64 {
    assert!(ratio > 0.0 && mu > 0.0);
    k as f64 * per_round_throughput(loss, to_ratio) / (ratio * mu)
}

/// The playback rate µ (packets per second) that makes `K` homogeneous paths
/// reach `σ_a/µ = ratio` at a fixed RTT.
pub fn mu_for_ratio(loss: f64, rtt_s: f64, to_ratio: f64, k: usize, ratio: f64) -> f64 {
    let sigma = throughput_pps(&PathSpec {
        loss,
        rtt_s,
        to_ratio,
    });
    k as f64 * sigma / ratio
}

/// Invert the formula: the loss rate giving throughput `target_pps` on a path
/// with the given RTT and timeout ratio. Solved by bisection on `p`
/// (throughput is strictly decreasing in `p`).
///
/// This is how the heterogeneity study's Case 2 sets `p₂`: given `p₁ = γ·pᵒ`,
/// `p₂` is chosen so that `σ(p₁) + σ(p₂) = 2σ(pᵒ)`.
pub fn loss_for_throughput(target_pps: f64, rtt_s: f64, to_ratio: f64) -> f64 {
    assert!(target_pps > 0.0);
    let f = |p: f64| {
        throughput_pps(&PathSpec {
            loss: p,
            rtt_s,
            to_ratio,
        })
    };
    let (mut lo, mut hi) = (1e-7, 0.9);
    assert!(
        f(lo) >= target_pps && f(hi) <= target_pps,
        "target {target_pps} pkt/s out of invertible range [{}, {}]",
        f(hi),
        f(lo),
    );
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) > target_pps {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hand_computed_value() {
        // p = 0.02, TO = 4, b = 2: σR ≈ 5.18 packets per round.
        let sr = per_round_throughput(0.02, 4.0);
        assert!((sr - 5.18).abs() < 0.03, "σR = {sr}");
    }

    #[test]
    fn reproduces_papers_excluded_600ms_setting() {
        // The paper omits (p = 0.004, µ = 25, σa/µ = 1.6, TO = 4) because the
        // required RTT exceeds 600 ms. Check our inversion agrees.
        let r = rtt_for_ratio(0.004, 4.0, 2, 25.0, 1.6);
        assert!(r > 0.6, "R = {r} s should exceed 600 ms");
        // …while p = 0.02 at the same point is a practical 260 ms.
        let r = rtt_for_ratio(0.02, 4.0, 2, 25.0, 1.6);
        assert!((0.2..0.32).contains(&r), "R = {r}");
    }

    #[test]
    fn throughput_decreases_with_loss_and_rtt() {
        let base = PathSpec {
            loss: 0.01,
            rtt_s: 0.1,
            to_ratio: 2.0,
        };
        let worse_loss = PathSpec { loss: 0.02, ..base };
        let worse_rtt = PathSpec { rtt_s: 0.2, ..base };
        assert!(throughput_pps(&worse_loss) < throughput_pps(&base));
        assert!(throughput_pps(&worse_rtt) < throughput_pps(&base));
    }

    #[test]
    fn per_round_is_rtt_invariant() {
        let a = throughput_pps(&PathSpec {
            loss: 0.02,
            rtt_s: 0.1,
            to_ratio: 3.0,
        }) * 0.1;
        let b = throughput_pps(&PathSpec {
            loss: 0.02,
            rtt_s: 0.3,
            to_ratio: 3.0,
        }) * 0.3;
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn inversion_round_trips() {
        for &p in &[0.004, 0.01, 0.02, 0.04, 0.1] {
            let spec = PathSpec {
                loss: p,
                rtt_s: 0.15,
                to_ratio: 4.0,
            };
            let sigma = throughput_pps(&spec);
            let p_back = loss_for_throughput(sigma, 0.15, 4.0);
            assert!((p_back - p).abs() / p < 1e-6, "p={p} back={p_back}");
        }
    }

    #[test]
    fn heterogeneity_case2_example() {
        // Paper §7.2 Case 2: pᵒ = 0.02, γ = 2 → p₁ = 0.04 and p₂ ≈ 0.012.
        let sigma_o = throughput_pps(&PathSpec {
            loss: 0.02,
            rtt_s: 0.1,
            to_ratio: 4.0,
        });
        let sigma_1 = throughput_pps(&PathSpec {
            loss: 0.04,
            rtt_s: 0.1,
            to_ratio: 4.0,
        });
        let p2 = loss_for_throughput(2.0 * sigma_o - sigma_1, 0.1, 4.0);
        assert!((p2 - 0.012).abs() < 0.002, "p₂ = {p2}");
        // γ = 1.5 → p₁ = 0.03, p₂ ≈ 0.014.
        let sigma_1 = throughput_pps(&PathSpec {
            loss: 0.03,
            rtt_s: 0.1,
            to_ratio: 4.0,
        });
        let p2 = loss_for_throughput(2.0 * sigma_o - sigma_1, 0.1, 4.0);
        assert!((p2 - 0.014).abs() < 0.002, "p₂ = {p2}");
    }

    #[test]
    fn mu_for_ratio_consistent_with_rtt_for_ratio() {
        let mu = 50.0;
        let r = rtt_for_ratio(0.02, 4.0, 2, mu, 1.6);
        let mu_back = mu_for_ratio(0.02, r, 4.0, 2, 1.6);
        assert!((mu_back - mu).abs() < 1e-9);
    }
}
