//! `tcp-model` — the analytical side of the CoNEXT'07 multipath-TCP-streaming
//! reproduction: the paper's continuous-time Markov model of DMP-streaming
//! (Section 4), the machinery to solve it, and the supporting formulas used
//! to explore the parameter space (Section 7).
//!
//! * [`chain`] — the per-flow TCP Markov chain with state `(W, C, L, E, Q)`;
//! * [`dmp`] — the joint model `(X₁…X_K, N)` with the live-streaming buffer
//!   cap `N_max = µτ`, solved by stochastic simulation; includes the
//!   static-streaming and single-path baselines;
//! * [`solver`] — an exact stationary solver for small CTMCs, used to
//!   cross-validate the stochastic solver;
//! * [`pftk`] — the Padhye et al. throughput formula, the paper's knob for
//!   setting `σ_a/µ` ratios and heterogeneous loss rates;
//! * [`search`] — required-startup-delay search (`f < 10⁻⁴`) for Figures
//!   9–11;
//! * [`fluid`] — the Section 7.3 on/off fluid comparison of DMP vs
//!   single-path streaming;
//! * [`calibrate`] — self-consistent `σ_a/µ` dialling against the chain's
//!   own backlogged throughput;
//! * [`stored`] — the stored-video extension (the paper's future work).

#![warn(missing_docs)]

pub mod calibrate;
pub mod chain;
pub mod dmp;
pub mod exact;
pub mod fluid;
pub mod pftk;
pub mod search;
pub mod solver;
pub mod stored;

pub use chain::{Phase, TcpChain, TcpChainState};
pub use dmp::{static_streaming_late_fraction, DmpModel, DmpSsa, LateFracEstimate};
pub use exact::{ExactDmp, ExactLateFraction};
pub use search::{evaluate_tau, required_startup_delay, SearchOptions, TauEval, TauSearchSpec};
pub use stored::{stored_video_late_fraction, StoredVideoResult};
