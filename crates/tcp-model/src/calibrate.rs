//! Self-consistent calibration of the `σ_a/µ` knob.
//!
//! The paper defines `σ_k` as the throughput of a **backlogged** source on
//! path `k` — i.e., the achievable throughput *of the model's own TCP
//! chain*, not of a formula. The PFTK formula ([`crate::pftk`]) tracks the
//! chain within ~±30%, which is fine for comparisons but would silently
//! shift the knob: dialling "σ_a/µ = 1.2" through PFTK can land below 1.0 in
//! chain terms and make the stream diverge.
//!
//! This module measures the chain's per-round achievable throughput
//! `σR(p, T_O)` once per parameter pair (cached, deterministic seed) and
//! derives the RTT or playback rate that hits a requested ratio exactly the
//! way [`crate::pftk::rtt_for_ratio`] does — but in the model's own units.

use std::collections::HashMap;
use std::sync::Mutex;

use dmp_core::spec::PathSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::chain::TcpChain;

/// Rounds simulated per calibration measurement (≈0.1% relative error).
const CALIBRATION_ROUNDS: u64 = 1_500_000;

/// Cache key: bit patterns of (loss, T_O) plus the window cap.
type CalKey = (u64, u64, u32);

fn cache() -> &'static Mutex<HashMap<CalKey, f64>> {
    static CACHE: std::sync::OnceLock<Mutex<HashMap<CalKey, f64>>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The chain's backlogged per-round throughput `σR = σ·R` in packets per
/// round trip, for loss `p` and timeout ratio `T_O` (RTT-invariant, like the
/// PFTK per-round value). Measured once and cached.
pub fn chain_per_round_throughput(loss: f64, to_ratio: f64, wmax: u32) -> f64 {
    let key = (loss.to_bits(), to_ratio.to_bits(), wmax);
    if let Some(&v) = cache().lock().expect("calibration cache").get(&key) {
        return v;
    }
    let spec = PathSpec {
        loss,
        rtt_s: 1.0,
        to_ratio,
    };
    let mut rng = SmallRng::seed_from_u64(0xca11b8a7e);
    let sigma_r = TcpChain::achievable_throughput(spec, wmax, CALIBRATION_ROUNDS, &mut rng);
    cache()
        .lock()
        .expect("calibration cache")
        .insert(key, sigma_r);
    sigma_r
}

/// Chain-calibrated achievable throughput in packets per second.
pub fn chain_throughput_pps(path: &PathSpec, wmax: u32) -> f64 {
    chain_per_round_throughput(path.loss, path.to_ratio, wmax) / path.rtt_s
}

/// The RTT making `K` homogeneous chain-paths hit `σ_a/µ = ratio`
/// (chain-calibrated analogue of [`crate::pftk::rtt_for_ratio`]).
pub fn rtt_for_ratio(loss: f64, to_ratio: f64, wmax: u32, k: usize, mu: f64, ratio: f64) -> f64 {
    assert!(ratio > 0.0 && mu > 0.0);
    k as f64 * chain_per_round_throughput(loss, to_ratio, wmax) / (ratio * mu)
}

/// The playback rate µ making `K` homogeneous chain-paths hit
/// `σ_a/µ = ratio` at a fixed RTT.
pub fn mu_for_ratio(loss: f64, rtt_s: f64, to_ratio: f64, wmax: u32, k: usize, ratio: f64) -> f64 {
    let sigma = chain_per_round_throughput(loss, to_ratio, wmax) / rtt_s;
    k as f64 * sigma / ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dmp::DmpModel;

    #[test]
    fn calibration_is_cached_and_deterministic() {
        let a = chain_per_round_throughput(0.02, 4.0, 64);
        let b = chain_per_round_throughput(0.02, 4.0, 64);
        assert_eq!(a, b);
        assert!(a > 1.0 && a < 20.0, "σR = {a}");
    }

    #[test]
    fn calibrated_ratio_is_self_consistent() {
        // Dial σa/µ = 1.3 through the calibration, then verify that the
        // chain really delivers ≈1.3µ when backlogged.
        let (p, to, mu) = (0.02, 4.0, 25.0);
        let rtt = rtt_for_ratio(p, to, DmpModel::DEFAULT_WMAX, 2, mu, 1.3);
        let sigma = chain_throughput_pps(
            &PathSpec {
                loss: p,
                rtt_s: rtt,
                to_ratio: to,
            },
            DmpModel::DEFAULT_WMAX,
        );
        let achieved = 2.0 * sigma / mu;
        assert!((achieved - 1.3).abs() < 0.02, "achieved ratio {achieved}");
    }

    #[test]
    fn ratio_just_above_one_converges() {
        // The acid test the PFTK-dialled knob failed: at a true σa/µ = 1.2
        // the buffer drains slower than it fills *on average*, so with a
        // large τ the late fraction must drop well below 1.
        let (p, to, mu) = (0.02, 4.0, 25.0);
        let rtt = rtt_for_ratio(p, to, DmpModel::DEFAULT_WMAX, 2, mu, 1.2);
        let paths = vec![
            PathSpec {
                loss: p,
                rtt_s: rtt,
                to_ratio: to
            };
            2
        ];
        let f = DmpModel::new(paths, mu, 30.0).late_fraction(300_000, 9).f;
        assert!(f < 0.2, "f = {f} at σa/µ = 1.2, τ = 30 s");
    }

    #[test]
    fn mu_and_rtt_forms_agree() {
        let mu = 50.0;
        let rtt = rtt_for_ratio(0.02, 4.0, 64, 2, mu, 1.6);
        let mu_back = mu_for_ratio(0.02, rtt, 4.0, 64, 2, 1.6);
        assert!((mu_back - mu).abs() < 1e-9);
    }
}
