//! Exact solution of reduced DMP models.
//!
//! The full joint model is solved by stochastic simulation ([`crate::dmp`]);
//! this module packages the exact path for **single-flow, small-window**
//! instances: it enumerates the joint chain `(X, N)` — the TCP chain state
//! plus the buffer level with the live-streaming cap `N_max = µτ` and a deep
//! deficit floor — builds the generator, and solves for the stationary law.
//!
//! Use it to validate solver changes (`tests/model_exact_vs_ssa.rs` pins the
//! SSA against it) and to get noise-free late fractions for small
//! configurations.

use dmp_core::spec::PathSpec;

use crate::chain::{TcpChain, TcpChainState};
use crate::solver::{solve_stationary, Ctmc, SolveOptions, Stationary};

/// A single-flow DMP model with an enumerable state space.
pub struct ExactDmp {
    proto: TcpChain,
    /// Playback rate µ, packets per second.
    pub mu: f64,
    /// Buffer cap `N_max = ⌈µτ⌉`.
    pub nmax: i64,
    /// Deficit floor (states below are truncated; make it deep enough that
    /// its stationary mass is negligible — the solution reports it).
    pub floor: i64,
}

impl ExactDmp {
    /// Build the model for one path with window cap `wmax` (keep it ≤ ~8:
    /// the state space grows as `O(wmax² · (nmax - floor))`).
    pub fn new(path: PathSpec, wmax: u32, mu: f64, tau_s: f64, floor: i64) -> Self {
        assert!(mu > 0.0 && tau_s > 0.0 && floor < 0);
        Self {
            proto: TcpChain::new(path, wmax),
            mu,
            nmax: (mu * tau_s).ceil() as i64,
            floor,
        }
    }

    fn chain_rate(&self, s: &TcpChainState) -> f64 {
        let mut c = self.proto.clone();
        c.set_state(*s);
        c.rate()
    }

    /// Solve for the stationary distribution.
    pub fn solve(&self, opts: SolveOptions) -> Stationary<(TcpChainState, i64)> {
        solve_stationary(self, opts)
    }

    /// The exact fraction of late packets: consumptions occur at constant
    /// rate µ, so they see the stationary law; a consumption is late iff it
    /// finds `N ≤ 0`.
    pub fn late_fraction(&self, opts: SolveOptions) -> ExactLateFraction {
        let sol = self.solve(opts);
        ExactLateFraction {
            f: sol.prob_where(|&(_, n)| n <= 0),
            floor_mass: sol.prob_where(|&(_, n)| n == self.floor),
            states: sol.states.len(),
        }
    }
}

/// Result of an exact late-fraction computation.
#[derive(Debug, Clone, Copy)]
pub struct ExactLateFraction {
    /// `P(N ≤ 0)` — the exact late fraction.
    pub f: f64,
    /// Stationary mass at the truncation floor. If this is not ≪ `f`, deepen
    /// the floor.
    pub floor_mass: f64,
    /// Size of the enumerated state space.
    pub states: usize,
}

impl Ctmc for ExactDmp {
    type State = (TcpChainState, i64);

    fn initial(&self) -> Self::State {
        (self.proto.state(), 0)
    }

    fn transitions(&self, (x, n): &Self::State) -> Vec<(Self::State, f64)> {
        let mut out = Vec::new();
        let n_next = (*n - 1).max(self.floor);
        if n_next != *n {
            out.push(((*x, n_next), self.mu));
        }
        if *n < self.nmax {
            let rate = self.chain_rate(x);
            for (x2, prob, delivered) in self.proto.outcomes(*x) {
                if prob > 0.0 {
                    let n2 = (*n + i64::from(delivered)).min(self.nmax);
                    out.push(((x2, n2), rate * prob));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> PathSpec {
        PathSpec::from_ms(0.06, 200.0, 2.0)
    }

    /// The chain's achievable throughput at wmax = 6 (measured once so the
    /// tests self-calibrate into the regime they intend).
    fn sigma6() -> f64 {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        TcpChain::achievable_throughput(path(), 6, 300_000, &mut rng)
    }

    #[test]
    fn late_fraction_is_a_probability_and_floor_is_negligible() {
        // µ at 80% of the chain's achievable throughput: marginal but
        // feasible, so deficit excursions are bounded and the truncation
        // floor carries ~no mass.
        let m = ExactDmp::new(path(), 6, 0.8 * sigma6(), 1.0, -150);
        let r = m.late_fraction(SolveOptions::default());
        assert!(r.f > 1e-6 && r.f < 0.8, "f = {}", r.f);
        assert!(
            r.floor_mass < r.f * 1e-2,
            "floor mass {} vs f {}",
            r.floor_mass,
            r.f
        );
        assert!(r.states > 1_000);
    }

    #[test]
    fn exact_f_decreases_with_tau() {
        let mu = 0.8 * sigma6();
        let f_at = |tau: f64| {
            ExactDmp::new(path(), 6, mu, tau, -150)
                .late_fraction(SolveOptions::default())
                .f
        };
        let f1 = f_at(0.5);
        let f2 = f_at(2.0);
        assert!(f2 < f1, "{f2} !< {f1}");
    }

    #[test]
    fn exact_f_increases_with_mu() {
        let sigma = sigma6();
        let f_at = |mu: f64| {
            ExactDmp::new(path(), 6, mu, 1.0, -150)
                .late_fraction(SolveOptions::default())
                .f
        };
        assert!(f_at(0.9 * sigma) > f_at(0.6 * sigma));
    }

    #[test]
    fn starved_regime_saturates_and_reports_floor_mass() {
        // µ above the chain's achievable throughput: f → 1 and the floor
        // accumulates mass — the report must expose that so callers know the
        // truncation matters.
        let m = ExactDmp::new(path(), 6, 2.0 * sigma6(), 0.6, -120);
        let r = m.late_fraction(SolveOptions::default());
        assert!(r.f > 0.9, "starved f = {}", r.f);
        assert!(
            r.floor_mass > 1e-3,
            "floor mass should be visible: {}",
            r.floor_mass
        );
    }
}
