//! Exact stationary solver for finite continuous-time Markov chains.
//!
//! The paper solved its model numerically with the TANGRAM-II environment.
//! The full joint DMP state space is far too large for exact solution, so the
//! production path uses stochastic simulation ([`crate::dmp`]); this module
//! provides the exact machinery for *small* chains so the simulation can be
//! cross-validated, and solves reduced DMP instances exactly in the tests.
//!
//! Method: enumerate the reachable state space (BFS from the initial state),
//! build the sparse generator `Q`, uniformise (`P = I + Q/Λ`), and power-
//! iterate `π ← πP` to the fixed point `πQ = 0`.

use std::collections::HashMap;
use std::hash::Hash;

/// A finite CTMC described by its transition function.
pub trait Ctmc {
    /// State type (must be hashable for the enumeration).
    type State: Clone + Eq + Hash;

    /// The state the chain starts in (used as the BFS root; every recurrent
    /// state must be reachable from it).
    fn initial(&self) -> Self::State;

    /// All outgoing transitions `(target, rate)` from `s`, with `rate > 0`.
    fn transitions(&self, s: &Self::State) -> Vec<(Self::State, f64)>;
}

/// The stationary distribution of a finite CTMC.
#[derive(Debug, Clone)]
pub struct Stationary<S> {
    /// Enumerated states.
    pub states: Vec<S>,
    /// `pi[i]` is the stationary probability of `states[i]`.
    pub pi: Vec<f64>,
    index: HashMap<S, usize>,
    /// Power iterations performed.
    pub iterations: u32,
    /// Final L1 change per iteration (convergence residual).
    pub residual: f64,
}

impl<S: Clone + Eq + Hash> Stationary<S> {
    /// Probability of a single state (0 if unreachable).
    pub fn prob(&self, s: &S) -> f64 {
        self.index.get(s).map_or(0.0, |&i| self.pi[i])
    }

    /// Total probability of all states satisfying `pred`.
    pub fn prob_where(&self, mut pred: impl FnMut(&S) -> bool) -> f64 {
        self.states
            .iter()
            .zip(&self.pi)
            .filter(|(s, _)| pred(s))
            .map(|(_, p)| p)
            .sum()
    }

    /// Expectation of `f` under the stationary law.
    pub fn expect(&self, mut f: impl FnMut(&S) -> f64) -> f64 {
        self.states
            .iter()
            .zip(&self.pi)
            .map(|(s, p)| f(s) * p)
            .sum()
    }
}

/// Options for [`solve_stationary`].
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Abort if the reachable state space exceeds this many states.
    pub max_states: usize,
    /// Maximum power iterations.
    pub max_iterations: u32,
    /// Stop when the L1 change of `π` in one sweep falls below this.
    pub tolerance: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            max_states: 2_000_000,
            max_iterations: 200_000,
            tolerance: 1e-12,
        }
    }
}

/// Solve for the stationary distribution of `chain`.
///
/// # Panics
/// Panics if the reachable state space exceeds `opts.max_states` or the
/// chain is degenerate (a state with no outgoing transitions that is not
/// absorbing-by-design).
pub fn solve_stationary<C: Ctmc>(chain: &C, opts: SolveOptions) -> Stationary<C::State> {
    // --- enumerate reachable states ---
    let mut states: Vec<C::State> = vec![chain.initial()];
    let mut index: HashMap<C::State, usize> = HashMap::new();
    index.insert(states[0].clone(), 0);
    // Sparse rows: row[i] = Vec<(j, rate)>.
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut head = 0;
    while head < states.len() {
        let s = states[head].clone();
        let ts = chain.transitions(&s);
        let mut row = Vec::with_capacity(ts.len());
        for (t, rate) in ts {
            assert!(rate > 0.0, "transition rates must be positive");
            let j = *index.entry(t.clone()).or_insert_with(|| {
                states.push(t);
                states.len() - 1
            });
            row.push((j, rate));
        }
        rows.push(row);
        head += 1;
        assert!(
            states.len() <= opts.max_states,
            "state space exceeds {} states — use the SSA solver instead",
            opts.max_states
        );
    }
    let n = states.len();

    // --- uniformisation ---
    let lambda = rows
        .iter()
        .map(|r| r.iter().map(|&(_, q)| q).sum::<f64>())
        .fold(0.0f64, f64::max)
        * 1.02
        + 1e-12;

    // P = I + Q/Λ: self-loop weight 1 - Σq/Λ.
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    while iterations < opts.max_iterations && residual > opts.tolerance {
        next.iter_mut().for_each(|x| *x = 0.0);
        for (i, row) in rows.iter().enumerate() {
            let out: f64 = row.iter().map(|&(_, q)| q).sum();
            next[i] += pi[i] * (1.0 - out / lambda);
            for &(j, q) in row {
                next[j] += pi[i] * q / lambda;
            }
        }
        residual = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        iterations += 1;
    }
    // Normalise against drift.
    let total: f64 = pi.iter().sum();
    pi.iter_mut().for_each(|x| *x /= total);

    Stationary {
        states,
        pi,
        index,
        iterations,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// M/M/1/K queue: arrivals λ, service µ, capacity K. Closed-form
    /// stationary distribution π_n ∝ ρⁿ.
    struct Mm1k {
        lambda: f64,
        mu: f64,
        k: u32,
    }

    impl Ctmc for Mm1k {
        type State = u32;
        fn initial(&self) -> u32 {
            0
        }
        fn transitions(&self, &s: &u32) -> Vec<(u32, f64)> {
            let mut t = Vec::new();
            if s < self.k {
                t.push((s + 1, self.lambda));
            }
            if s > 0 {
                t.push((s - 1, self.mu));
            }
            t
        }
    }

    #[test]
    fn mm1k_matches_closed_form() {
        let q = Mm1k {
            lambda: 3.0,
            mu: 5.0,
            k: 10,
        };
        let sol = solve_stationary(&q, SolveOptions::default());
        let rho: f64 = 3.0 / 5.0;
        let norm: f64 = (0..=10).map(|n| rho.powi(n)).sum();
        for n in 0..=10u32 {
            let expect = rho.powi(n as i32) / norm;
            let got = sol.prob(&n);
            assert!((got - expect).abs() < 1e-9, "π_{n}: {got} vs {expect}");
        }
        // Blocking probability = π_K.
        let block = sol.prob(&10);
        assert!((block - rho.powi(10) / norm).abs() < 1e-9);
    }

    #[test]
    fn two_state_chain() {
        // on→off at rate a, off→on at rate b ⇒ π_on = b/(a+b).
        struct OnOff;
        impl Ctmc for OnOff {
            type State = bool;
            fn initial(&self) -> bool {
                true
            }
            fn transitions(&self, &s: &bool) -> Vec<(bool, f64)> {
                if s {
                    vec![(false, 2.0)]
                } else {
                    vec![(true, 6.0)]
                }
            }
        }
        let sol = solve_stationary(&OnOff, SolveOptions::default());
        assert!((sol.prob(&true) - 0.75).abs() < 1e-10);
        assert!((sol.prob_where(|&s| !s) - 0.25).abs() < 1e-10);
        assert!((sol.expect(|&s| if s { 1.0 } else { 0.0 }) - 0.75).abs() < 1e-10);
    }

    /// Cross-validate the SSA against the exact solver on a birth–death
    /// chain that mimics the buffer process: producer bursts of size 2 at
    /// rate a (capped at Nmax), consumer at rate µ, floor at -F.
    struct BurstBuffer {
        a: f64,
        mu: f64,
        nmax: i64,
        floor: i64,
    }
    impl Ctmc for BurstBuffer {
        type State = i64;
        fn initial(&self) -> i64 {
            0
        }
        fn transitions(&self, &n: &i64) -> Vec<(i64, f64)> {
            let mut t = Vec::new();
            if n < self.nmax {
                t.push(((n + 2).min(self.nmax), self.a));
            }
            if n > self.floor {
                t.push((n - 1, self.mu));
            }
            t
        }
    }

    #[test]
    fn ssa_matches_exact_on_burst_buffer() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let model = BurstBuffer {
            a: 3.0,
            mu: 5.0,
            nmax: 12,
            floor: -30,
        };
        let sol = solve_stationary(&model, SolveOptions::default());
        // "Late" = consumption leaving n < 0 ⇔ consumption seen at n ≤ 0.
        // Consumption is active only above the floor; with the floor deep
        // enough it is effectively Poisson, so PASTA applies.
        let f_exact = sol.prob_where(|&n| n <= 0);

        // Jump-chain SSA with the same event-picking logic as DmpSsa.
        let mut rng = SmallRng::seed_from_u64(123);
        let mut n = 0i64;
        let (mut late, mut cons) = (0u64, 0u64);
        for _ in 0..4_000_000u64 {
            let prod_rate = if n < model.nmax { model.a } else { 0.0 };
            let cons_rate = if n > model.floor { model.mu } else { 0.0 };
            let total = prod_rate + cons_rate;
            let pick = rng.gen_range(0.0..total);
            if pick < cons_rate {
                n -= 1;
                cons += 1;
                if n < 0 {
                    late += 1;
                }
            } else {
                n = (n + 2).min(model.nmax);
            }
        }
        let f_ssa = late as f64 / cons as f64;
        assert!(
            (f_ssa - f_exact).abs() / f_exact < 0.05,
            "SSA {f_ssa:.5} vs exact {f_exact:.5}"
        );
    }
}
