//! The per-flow TCP Markov chain of the paper's analytical model (Section 4).
//!
//! The paper describes each flow's state as the tuple `(W, C, L, E, Q)` and
//! defers the transition rates to its technical report \[32\]. We reconstruct
//! them following the stated ingredients — the loss process of Padhye et al.
//! \[23\] and Figueiredo et al. \[10\] (losses independent across rounds;
//! within a round, once a packet is lost all remaining packets of the round
//! are lost), rounds of mean duration `R`, timeouts with exponential backoff
//! capped at 2⁶, and delayed-ACK window growth — organised as phases:
//!
//! * **Slow start** (`W` below `ssthresh`): a round sends `W` packets; on a
//!   fully successful round the window grows by a factor 1.5 (delayed ACKs:
//!   one ACK per two segments, +1 segment per ACK).
//! * **Congestion avoidance**: the delayed-ACK toggle `C` gives `W → W + 1`
//!   every second successful round.
//! * **Loss handling**: if the first loss of a round leaves ≥ 3 later
//!   packets delivered, the flow detects it by triple duplicate ACK and
//!   halves the window (`W → max(W/2, 1)`) without a dead round, as in
//!   Padhye et al. — the retransmissions ride along in subsequent rounds'
//!   windows. Otherwise the flow times out.
//! * **Timeout** (`E = e ≥ 1`): the flow waits `Exp(2^{e-1}·T_O·R)`, then
//!   sends one retransmission (the paper's `Q = 1` case). If it is lost the
//!   backoff exponent increases (cap 6); on success the flow re-enters slow
//!   start at `W = 1` with `ssthresh = W_loss/2`.
//!
//! Each transition reports how many packets were **successfully delivered**,
//! which is what feeds the client-buffer process `N(t)` in
//! [`crate::dmp`]. The paper's argument for ignoring packet identity (its
//! Section 4.1 out-of-order analysis) is what lets the chain track only
//! delivery *counts*.
//!
//! Reconstruction notes (documented deviations): we carry `ssthresh`
//! explicitly (the paper's 5-tuple has no slot for it; some earlier models
//! skip slow start entirely), and the timeout retransmission flag `Q` is
//! implicit — the first packet sent in the timeout phase is always the
//! retransmission. Fidelity is checked two ways in the tests: backlogged
//! throughput against the PFTK formula, and the full chain against the
//! `netsim` packet-level TCP in the integration suite.

use dmp_core::spec::PathSpec;
use rand::Rng;

/// Phase of the per-flow chain (encodes the paper's `L`, `E`, `Q`
/// components together with the window `W`, toggle `C`, and `ssthresh`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Exponential window growth up to `ssthresh`.
    SlowStart,
    /// Linear growth: +1 segment every two rounds (toggle `C`).
    CongAvoid,
    /// One Reno recovery round after a triple-duplicate-ACK detection;
    /// `lost` packets are retransmitted during it.
    Recovery {
        /// Packets lost in the previous round (`L`), delivered by recovery.
        lost: u32,
    },
    /// Timeout with current backoff exponent `exp` (`E = exp + 1` in the
    /// paper's encoding; wait time `2^exp · T_O · R`).
    Timeout {
        /// Backoff exponent, capped at [`TcpChain::MAX_BACKOFF_EXP`].
        exp: u8,
    },
}

/// Complete chain state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpChainState {
    /// Congestion window `W`, segments.
    pub w: u32,
    /// Delayed-ACK toggle `C` (congestion avoidance grows `W` when it flips
    /// from 1 to 0).
    pub c: bool,
    /// Slow-start threshold.
    pub ssthresh: u32,
    /// Current phase.
    pub phase: Phase,
    /// Erlang stage within the current round/timeout (0-based; the round's
    /// outcome happens when the last stage completes).
    pub stage: u8,
}

/// Outcome of one chain transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Packets successfully delivered to the receiver by this transition
    /// (the `S_k` of the paper's buffer recursion).
    pub delivered: u32,
}

/// The per-flow TCP chain: parameters plus current state.
///
/// Round durations are **Erlang-k** distributed (k = [`TcpChain::STAGES`]
/// exponential stages with mean `R/k` each): a real TCP round lasts
/// approximately one RTT with modest jitter, and a plain exponential holding
/// time would roughly double the variance of the delivery process and fatten
/// the buffer-deficit tail that the late-packet metric lives on. Erlang
/// stages keep the process a CTMC (as the paper's solver requires) while
/// matching the near-deterministic round timing of packet-level TCP.
#[derive(Debug, Clone)]
pub struct TcpChain {
    path: PathSpec,
    /// Maximum window, segments.
    pub wmax: u32,
    state: TcpChainState,
    /// Precomputed `(1-p)^w` for w = 0..=wmax.
    no_loss_prob: Vec<f64>,
    ln_1mp: f64,
}

impl TcpChain {
    /// Backoff exponent cap: timeouts back off up to `2⁶ = 64×` (the model's
    /// `E` component has seven values).
    pub const MAX_BACKOFF_EXP: u8 = 6;

    /// Erlang stages per round (variance of a round's duration is `R²/k`).
    pub const STAGES: u8 = 4;

    /// Create a chain for a path, starting in slow start with `W = 1`.
    pub fn new(path: PathSpec, wmax: u32) -> Self {
        assert!(path.loss > 0.0 && path.loss < 1.0, "loss must be in (0,1)");
        assert!(wmax >= 2);
        let no_loss_prob = (0..=wmax)
            .map(|w| (1.0 - path.loss).powi(w as i32))
            .collect();
        Self {
            path,
            wmax,
            state: TcpChainState {
                w: 1,
                c: false,
                ssthresh: wmax,
                phase: Phase::SlowStart,
                stage: 0,
            },
            no_loss_prob,
            ln_1mp: (1.0 - path.loss).ln(),
        }
    }

    /// The path parameters this chain models.
    pub fn path(&self) -> PathSpec {
        self.path
    }

    /// Current state (for inspection/tests).
    pub fn state(&self) -> TcpChainState {
        self.state
    }

    /// Rate (events per second) at which this chain currently makes stage
    /// transitions: `k/R` in normal phases, `k/(2^e·T_O·R)` in timeout, so a
    /// full round (k stages) has mean duration `R` (resp. the backoff time).
    pub fn rate(&self) -> f64 {
        let k = f64::from(Self::STAGES);
        match self.state.phase {
            Phase::Timeout { exp } => k / (f64::from(1u32 << exp) * self.path.rto_s()),
            _ => k / self.path.rtt_s,
        }
    }

    /// Number of successes before the first loss in a round of `w` packets:
    /// `w` with probability `(1-p)^w`, otherwise `G < w` geometric.
    fn sample_first_loss(&self, w: u32, rng: &mut impl Rng) -> u32 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u <= self.no_loss_prob[w as usize] {
            return w; // no loss this round
        }
        // Inverse-CDF geometric conditioned on < w: G = floor(ln(v)/ln(1-p)).
        loop {
            let v: f64 = rng.gen_range(f64::EPSILON..1.0);
            let g = (v.ln() / self.ln_1mp).floor() as u32;
            if g < w {
                return g;
            }
        }
    }

    /// Execute one transition of the chain (the caller has already waited
    /// `Exp(1/rate)`); returns the number of packets delivered. The first
    /// `k − 1` stage transitions of a round deliver nothing; the round's
    /// outcome materialises on the last stage.
    pub fn step(&mut self, rng: &mut impl Rng) -> Transition {
        if self.state.stage + 1 < Self::STAGES {
            self.state.stage += 1;
            return Transition { delivered: 0 };
        }
        self.state.stage = 0;
        let s = self.state;
        match s.phase {
            Phase::SlowStart | Phase::CongAvoid => {
                let succ = self.sample_first_loss(s.w, rng);
                if succ == s.w {
                    self.on_clean_round();
                } else {
                    self.on_lossy_round(succ);
                }
                Transition { delivered: succ }
            }
            Phase::Recovery { lost } => {
                // Legacy state kept for exact-solver compatibility; the live
                // chain no longer enters it (triple-dup-ack detection halves
                // the window without a dead round, as in Padhye et al.).
                self.state.phase = Phase::CongAvoid;
                Transition { delivered: lost }
            }
            Phase::Timeout { exp } => {
                if rng.gen_range(0.0..1.0) < self.path.loss {
                    // Retransmission lost: double the backoff (capped).
                    self.state.phase = Phase::Timeout {
                        exp: (exp + 1).min(Self::MAX_BACKOFF_EXP),
                    };
                    Transition { delivered: 0 }
                } else {
                    // Retransmission delivered: slow-start restart.
                    self.state.w = 1;
                    self.state.c = false;
                    self.state.phase = if self.state.ssthresh <= 1 {
                        Phase::CongAvoid
                    } else {
                        Phase::SlowStart
                    };
                    Transition { delivered: 1 }
                }
            }
        }
    }

    /// Enumerate the outcome distribution of one stage transition from
    /// `state`: `(next_state, probability, delivered)` triples summing to 1.
    /// This is the analytical counterpart of [`TcpChain::step`], used by the
    /// exact CTMC solver on reduced models and to cross-validate the sampler.
    pub fn outcomes(&self, state: TcpChainState) -> Vec<(TcpChainState, f64, u32)> {
        // Intermediate Erlang stages advance deterministically.
        if state.stage + 1 < Self::STAGES {
            let mut next = state;
            next.stage += 1;
            return vec![(next, 1.0, 0)];
        }
        let base = TcpChainState { stage: 0, ..state };
        let p = self.path.loss;
        match state.phase {
            Phase::SlowStart | Phase::CongAvoid => {
                let w = state.w;
                let mut v = Vec::with_capacity(w as usize + 1);
                // Clean round.
                let mut clean = self.clone();
                clean.state = base;
                clean.on_clean_round();
                v.push((clean.state, self.no_loss_prob[w as usize], w));
                // First loss after `g` successes (g = 0..w-1).
                for g in 0..w {
                    let mut lossy = self.clone();
                    lossy.state = base;
                    lossy.on_lossy_round(g);
                    v.push((lossy.state, (1.0 - p).powi(g as i32) * p, g));
                }
                v
            }
            Phase::Recovery { lost } => {
                vec![(
                    TcpChainState {
                        phase: Phase::CongAvoid,
                        ..base
                    },
                    1.0,
                    lost,
                )]
            }
            Phase::Timeout { exp } => {
                let fail = TcpChainState {
                    phase: Phase::Timeout {
                        exp: (exp + 1).min(Self::MAX_BACKOFF_EXP),
                    },
                    ..base
                };
                let ok = TcpChainState {
                    w: 1,
                    c: false,
                    phase: if base.ssthresh <= 1 {
                        Phase::CongAvoid
                    } else {
                        Phase::SlowStart
                    },
                    ..base
                };
                vec![(fail, p, 0), (ok, 1.0 - p, 1)]
            }
        }
    }

    /// Force the chain into `state` (test/solver support).
    pub fn set_state(&mut self, state: TcpChainState) {
        self.state = state;
    }

    fn on_clean_round(&mut self) {
        let s = self.state;
        match s.phase {
            Phase::SlowStart => {
                // Delayed ACKs: W grows 1.5× per round in slow start.
                let grown = (s.w + s.w.div_ceil(2)).min(self.wmax);
                if grown >= s.ssthresh {
                    self.state.w = grown.min(s.ssthresh).min(self.wmax);
                    self.state.phase = Phase::CongAvoid;
                    self.state.c = false;
                } else {
                    self.state.w = grown;
                }
            }
            Phase::CongAvoid => {
                if s.c {
                    self.state.w = (s.w + 1).min(self.wmax);
                    self.state.c = false;
                } else {
                    self.state.c = true;
                }
            }
            _ => unreachable!("clean round only in sending phases"),
        }
    }

    fn on_lossy_round(&mut self, succ: u32) {
        let s = self.state;
        let lost = s.w - succ;
        let _ = lost; // lost packets re-enter later rounds' windows
        self.state.ssthresh = (s.w / 2).max(2);
        if succ >= 3 {
            // Enough duplicate ACKs for fast retransmit: Reno halves the
            // window and keeps going (the retransmissions ride along in the
            // next rounds' windows; no dead round, following Padhye et al.).
            self.state.w = (s.w / 2).max(1);
            self.state.c = false;
            self.state.phase = Phase::CongAvoid;
        } else {
            self.state.phase = Phase::Timeout { exp: 0 };
        }
    }

    /// Empirical achievable throughput of a **backlogged** source driving
    /// this chain, in packets per second, estimated over `rounds` transitions
    /// (the paper's `σ_k`). Scales as `σR/R`, so callers can cache per-round
    /// values.
    pub fn achievable_throughput(
        path: PathSpec,
        wmax: u32,
        rounds: u64,
        rng: &mut impl Rng,
    ) -> f64 {
        let mut chain = TcpChain::new(path, wmax);
        // Warm up past slow start.
        for _ in 0..1_000 {
            chain.step(rng);
        }
        let mut time = 0.0;
        let mut delivered: u64 = 0;
        for _ in 0..rounds {
            // Mean holding time suffices for a throughput estimate (the
            // holding times are exponential with this mean and independent
            // of the outcome draw).
            time += 1.0 / chain.rate();
            delivered += u64::from(chain.step(rng).delivered);
        }
        delivered as f64 / time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pftk;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn path(p: f64, rtt_ms: f64, to: f64) -> PathSpec {
        PathSpec::from_ms(p, rtt_ms, to)
    }

    /// Run one full Erlang round (k stages) and return its outcome.
    fn round(c: &mut TcpChain, rng: &mut SmallRng) -> Transition {
        let mut t = Transition { delivered: 0 };
        for _ in 0..TcpChain::STAGES {
            t = c.step(rng);
        }
        t
    }

    #[test]
    fn starts_in_slow_start_and_grows() {
        let mut rng = SmallRng::seed_from_u64(1);
        // Negligible loss: the window should climb.
        let mut c = TcpChain::new(path(1e-6, 100.0, 2.0), 32);
        for _ in 0..20 {
            round(&mut c, &mut rng);
        }
        assert_eq!(c.state().w, 32, "window should reach wmax");
        assert_eq!(c.state().phase, Phase::CongAvoid);
    }

    #[test]
    fn congestion_avoidance_needs_two_rounds_per_increment() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut c = TcpChain::new(path(1e-9, 100.0, 2.0), 1000);
        // Force CA at a known window.
        c.state.phase = Phase::CongAvoid;
        c.state.w = 10;
        c.state.c = false;
        c.state.ssthresh = 5;
        round(&mut c, &mut rng);
        assert_eq!(c.state().w, 10);
        assert!(c.state().c);
        round(&mut c, &mut rng);
        assert_eq!(c.state().w, 11);
        assert!(!c.state().c);
    }

    #[test]
    fn big_window_loss_goes_to_recovery_small_to_timeout() {
        let mut rng = SmallRng::seed_from_u64(3);
        // p = 0.9: the first packet almost surely dies → succ < 3 → timeout.
        let mut c = TcpChain::new(path(0.9, 100.0, 2.0), 32);
        c.state.phase = Phase::CongAvoid;
        c.state.w = 2;
        let _ = round(&mut c, &mut rng);
        assert!(
            matches!(c.state().phase, Phase::Timeout { exp: 0 }),
            "{:?}",
            c.state()
        );
    }

    #[test]
    fn timeout_backoff_caps_at_six() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut c = TcpChain::new(path(0.999, 100.0, 2.0), 32);
        c.state.phase = Phase::Timeout { exp: 0 };
        for _ in 0..20 {
            round(&mut c, &mut rng);
            if let Phase::Timeout { exp } = c.state().phase {
                assert!(exp <= TcpChain::MAX_BACKOFF_EXP);
            }
        }
        assert_eq!(
            c.state().phase,
            Phase::Timeout {
                exp: TcpChain::MAX_BACKOFF_EXP
            }
        );
        // Rate in deep backoff is 64× slower than the first timeout.
        let deep = c.rate();
        c.state.phase = Phase::Timeout { exp: 0 };
        assert!((c.rate() / deep - 64.0).abs() < 1e-9);
    }

    #[test]
    fn triple_dupack_loss_halves_window_without_dead_round() {
        let mut rng = SmallRng::seed_from_u64(5);
        // p = 0.35 with W = 16 makes the first loss land at position >= 3
        // reasonably often; find such a draw and check the transition.
        let mut c = TcpChain::new(path(0.35, 100.0, 2.0), 32);
        loop {
            c.state.phase = Phase::CongAvoid;
            c.state.w = 16;
            c.state.c = false;
            c.state.stage = 0;
            let t = round(&mut c, &mut rng);
            if t.delivered >= 3 && t.delivered < 16 {
                assert_eq!(c.state().w, 8, "window halves on TD loss");
                assert_eq!(c.state().phase, Phase::CongAvoid);
                break;
            }
        }
    }

    /// The chain's backlogged throughput should track the PFTK formula — the
    /// same sanity check Padhye et al. run against measurements. Model-to-
    /// formula agreement within ±35% across the paper's parameter range is
    /// what the literature reports; we assert that band.
    #[test]
    fn backlogged_throughput_tracks_pftk() {
        let mut rng = SmallRng::seed_from_u64(6);
        for &(p, to) in &[
            (0.004, 4.0),
            (0.02, 2.0),
            (0.02, 4.0),
            (0.04, 4.0),
            (0.01, 1.0),
        ] {
            let spec = path(p, 200.0, to);
            let sigma_model = TcpChain::achievable_throughput(spec, 64, 300_000, &mut rng);
            let sigma_pftk = pftk::throughput_pps(&spec);
            let ratio = sigma_model / sigma_pftk;
            assert!(
                (0.65..1.35).contains(&ratio),
                "p={p} TO={to}: model {sigma_model:.2} vs PFTK {sigma_pftk:.2} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn throughput_scales_inversely_with_rtt() {
        let mut rng = SmallRng::seed_from_u64(7);
        let s1 = TcpChain::achievable_throughput(path(0.02, 100.0, 4.0), 64, 200_000, &mut rng);
        let s2 = TcpChain::achievable_throughput(path(0.02, 300.0, 4.0), 64, 200_000, &mut rng);
        let ratio = s1 / s2;
        assert!((ratio - 3.0).abs() < 0.25, "σ(100ms)/σ(300ms) = {ratio}");
    }

    #[test]
    fn outcomes_probabilities_sum_to_one() {
        let c = TcpChain::new(path(0.03, 100.0, 2.0), 8);
        let states = [
            TcpChainState {
                w: 4,
                c: false,
                ssthresh: 8,
                phase: Phase::CongAvoid,
                stage: TcpChain::STAGES - 1,
            },
            TcpChainState {
                w: 2,
                c: true,
                ssthresh: 4,
                phase: Phase::SlowStart,
                stage: TcpChain::STAGES - 1,
            },
            TcpChainState {
                w: 1,
                c: false,
                ssthresh: 2,
                phase: Phase::Timeout { exp: 3 },
                stage: TcpChain::STAGES - 1,
            },
            TcpChainState {
                w: 4,
                c: false,
                ssthresh: 8,
                phase: Phase::CongAvoid,
                stage: 0,
            },
        ];
        for st in states {
            let total: f64 = c.outcomes(st).iter().map(|&(_, pr, _)| pr).sum();
            assert!((total - 1.0).abs() < 1e-12, "{st:?}: {total}");
        }
    }

    #[test]
    fn sampler_matches_enumerated_distribution() {
        use std::collections::HashMap;
        let mut rng = SmallRng::seed_from_u64(77);
        let proto = TcpChain::new(path(0.08, 100.0, 2.0), 6);
        let start = TcpChainState {
            w: 5,
            c: false,
            ssthresh: 6,
            phase: Phase::CongAvoid,
            stage: TcpChain::STAGES - 1,
        };
        let expected: HashMap<_, f64> = proto
            .outcomes(start)
            .into_iter()
            .map(|(st, pr, d)| ((st, d), pr))
            .collect();
        let n = 400_000;
        let mut counts: HashMap<_, u64> = HashMap::new();
        let mut c = proto.clone();
        for _ in 0..n {
            c.set_state(start);
            let t = c.step(&mut rng);
            *counts.entry((c.state(), t.delivered)).or_default() += 1;
        }
        for (key, pr) in &expected {
            let got = *counts.get(key).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (got - pr).abs() < 0.01 + 0.1 * pr,
                "{key:?}: sampled {got:.4} vs exact {pr:.4}"
            );
        }
        // No outcome outside the enumerated support.
        for key in counts.keys() {
            assert!(expected.contains_key(key), "unexpected outcome {key:?}");
        }
    }

    /// In steady congestion avoidance, the mean window should sit near the
    /// square-root law E[W] ≈ √(3/(2bp)) + O(1) (Padhye et al., b = 2).
    #[test]
    fn mean_window_follows_square_root_law() {
        let mut rng = SmallRng::seed_from_u64(10);
        for &p in &[0.01, 0.02, 0.05] {
            let mut c = TcpChain::new(path(p, 150.0, 2.0), 64);
            // Warm up, then average W over sending-phase rounds.
            for _ in 0..2_000 {
                c.step(&mut rng);
            }
            let (mut sum, mut n) = (0.0, 0u64);
            for _ in 0..400_000 {
                let st = c.state();
                if matches!(st.phase, Phase::SlowStart | Phase::CongAvoid) && st.stage == 0 {
                    sum += f64::from(st.w);
                    n += 1;
                }
                c.step(&mut rng);
            }
            let mean_w = sum / n as f64;
            let law = (3.0 / (2.0 * 2.0 * p)).sqrt();
            let ratio = mean_w / law;
            assert!(
                (0.7..1.6).contains(&ratio),
                "p={p}: E[W] = {mean_w:.1} vs law {law:.1} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn delivered_never_exceeds_window() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut c = TcpChain::new(path(0.05, 100.0, 4.0), 24);
        for _ in 0..100_000 {
            let w_before = c.state().w;
            let phase = c.state().phase;
            let t = round(&mut c, &mut rng);
            match phase {
                Phase::SlowStart | Phase::CongAvoid => assert!(t.delivered <= w_before),
                Phase::Recovery { lost } => assert_eq!(t.delivered, lost),
                Phase::Timeout { .. } => assert!(t.delivered <= 1),
            }
            assert!(!matches!(c.state().phase, Phase::Recovery { .. }));
            assert!(c.state().w >= 1 && c.state().w <= 24);
        }
    }
}
