//! The fleet determinism contract: the deterministic artifact is a pure
//! function of the [`FleetSpec`] — byte-identical across runner thread
//! counts, shard-per-job chunking, and both scheduler engines — and the
//! churn plan is a pure function of the spec seed.

use dmp_fleet::{run_fleet, shard_plans, FleetOptions, FleetSpec};
use dmp_runner::{Cache, Runner};
use netsim::EngineKind;

/// Small enough to run in tier-1 debug builds (these tests execute the full
/// packet simulation many times over), large enough to exercise multiple
/// shards, a remainder shard, and contention on shared bottlenecks.
fn spec(engine: EngineKind) -> FleetSpec {
    let mut spec = FleetSpec::new("det", 5, 2, 2007);
    spec.duration_s = 10.0;
    spec.warmup_s = 1.0;
    spec.arrival_rate_per_s = 0.5;
    spec.mean_hold_s = 5.0;
    spec.video = dmp_core::spec::VideoSpec::new(25.0);
    spec.engine = engine;
    spec
}

fn artifact(threads: usize, engine: EngineKind, shards_per_job: u32) -> String {
    let runner = Runner::new(threads, Cache::disabled());
    let spec = spec(engine);
    let opts = FleetOptions {
        shards_per_job,
        ..FleetOptions::default()
    };
    run_fleet(&runner, &spec, &opts).artifact(&spec).render()
}

#[test]
fn artifact_is_byte_identical_across_threads_and_chunking() {
    let reference = artifact(1, EngineKind::Calendar, 1);
    // Three shards chunked 1, 2 and 3 per job cover split, partial-merge and
    // single-job paths; 2 and 8 threads cover contended and oversubscribed
    // pools (this box may have fewer cores than 8).
    for (threads, shards_per_job) in [(2, 1), (8, 2), (8, 3)] {
        let other = artifact(threads, EngineKind::Calendar, shards_per_job);
        assert_eq!(
            reference, other,
            "artifact changed at threads={threads} shards_per_job={shards_per_job}"
        );
    }
}

#[test]
fn engines_produce_identical_fleets_up_to_the_config_line() {
    // The engine is in the cache key (and hence the artifact's `config`
    // string) by design; everything else must agree byte for byte.
    let strip = |text: &str| -> String {
        let doc = dmp_runner::json::parse(text).expect("artifact parses");
        let dmp_runner::Json::Obj(pairs) = doc else {
            panic!("artifact is an object");
        };
        dmp_runner::Json::Obj(pairs.into_iter().filter(|(k, _)| k != "config").collect()).render()
    };
    let heap = artifact(2, EngineKind::Heap, 2);
    let cal = artifact(2, EngineKind::Calendar, 2);
    assert_ne!(heap, cal, "config strings should differ");
    assert_eq!(strip(&heap), strip(&cal), "fleet physics diverged");
}

#[test]
fn churn_is_a_pure_function_of_the_spec_seed() {
    let a = spec(EngineKind::Calendar);
    for shard in 0..a.shard_count() {
        assert_eq!(shard_plans(&a, shard), shard_plans(&a, shard));
    }
    let mut b = a.clone();
    b.seed = a.seed + 1;
    assert_ne!(shard_plans(&a, 0), shard_plans(&b, 0));
}

#[test]
fn cache_round_trip_reproduces_the_artifact() {
    let dir = std::env::temp_dir().join(format!("fleet-det-cache-{}", std::process::id()));
    let spec = spec(EngineKind::Calendar);
    let opts = FleetOptions::default();
    let cold = {
        let runner = Runner::new(2, Cache::new(&dir));
        run_fleet(&runner, &spec, &opts).artifact(&spec).render()
    };
    let warm_runner = Runner::new(2, Cache::new(&dir));
    let warm = run_fleet(&warm_runner, &spec, &opts)
        .artifact(&spec)
        .render();
    let stats = warm_runner.stats();
    assert_eq!(cold, warm, "cache hit changed the artifact");
    assert_eq!(
        stats.cache_misses, 0,
        "second run should be served entirely from cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
