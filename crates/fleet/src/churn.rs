//! Poisson session churn: when each session arrives and how long it stays.
//!
//! Arrivals follow an inhomogeneous Poisson process whose rate is the spec's
//! base per-shard rate modulated by the fleet's [`scenario::FleetTimeline`]
//! (flash-crowd spikes multiply the rate inside their windows). Sampling uses
//! the classic inversion method: draw unit-rate exponential increments and
//! map the running sum through the inverse cumulative rate `Λ⁻¹`. Hold times
//! are exponential with the spec's mean.
//!
//! The plan for a shard is a **pure function of `(spec.seed, shard)`** — no
//! global state, no dependence on thread count, shard chunking, or execution
//! order — which is what makes fleet artifacts byte-identical however the
//! shards are fanned out.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::FleetSpec;

/// Golden-ratio odd constant used to decorrelate per-shard RNG streams.
const SHARD_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Domain tag so churn draws never collide with other derived RNG streams.
const CHURN_TAG: u64 = 0xf1ee_7c04_11e7_c0de;

/// One session's lifecycle, relative to the end of warm-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionPlan {
    /// Arrival time within the experiment window, seconds.
    pub arrival_s: f64,
    /// Streaming (hold) time, seconds. The session generates packets from
    /// `arrival_s` until `arrival_s + hold_s` (or the window closes).
    pub hold_s: f64,
}

/// Deterministic RNG for shard-local draws in domain `tag`.
pub fn shard_rng(seed: u64, shard: u32, tag: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ tag ^ u64::from(shard).wrapping_mul(SHARD_SALT))
}

/// Sample the arrival/hold plan for every session in `shard`.
///
/// Exactly `spec.sessions_in_shard(shard)` plans are returned, in arrival
/// order. The shard holds a fixed session population (the physical partition
/// is part of the spec), so the process is the inhomogeneous Poisson process
/// *conditioned on N arrivals in the window*: by the order-statistics
/// property, the arrival times are then i.i.d. with density `λ(t)/Λ(T)` —
/// each is `Λ⁻¹(u·Λ(T))` for a uniform `u` — sorted ascending. A rate spike
/// therefore concentrates exactly its share of the total rate mass, and the
/// whole plan stays a pure function of `(seed, shard)`.
pub fn shard_plans(spec: &FleetSpec, shard: u32) -> Vec<SessionPlan> {
    let n = spec.sessions_in_shard(shard) as usize;
    let mut rng = shard_rng(spec.seed, shard, CHURN_TAG);
    // Total Λ over the window; a uniform slice of it inverts to an arrival.
    let window_mass = spec
        .timeline
        .cumulative(spec.arrival_rate_per_s, spec.duration_s);
    let mut plans: Vec<SessionPlan> = (0..n)
        .map(|_| {
            let mass = rng.gen_range(0.0_f64..1.0) * window_mass;
            let arrival_s = spec
                .timeline
                .inverse_cumulative(spec.arrival_rate_per_s, mass);
            // gen_range(0.0..1.0) never returns 1.0, so ln's argument stays
            // strictly positive.
            let hold_s = spec.mean_hold_s * -(1.0 - rng.gen_range(0.0_f64..1.0)).ln();
            SessionPlan { arrival_s, hold_s }
        })
        .collect();
    plans.sort_by(|a, b| {
        a.arrival_s
            .partial_cmp(&b.arrival_s)
            .expect("arrival times are finite")
    });
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::FleetTimeline;

    #[test]
    fn plans_are_pure_function_of_seed_and_shard() {
        let spec = FleetSpec::new("churn", 32, 8, 42);
        let a = shard_plans(&spec, 1);
        let b = shard_plans(&spec, 1);
        assert_eq!(a, b);
        // Different shard or seed → different draws.
        assert_ne!(a, shard_plans(&spec, 2));
        let mut other = spec.clone();
        other.seed = 43;
        assert_ne!(a, shard_plans(&other, 1));
    }

    #[test]
    fn plan_count_matches_partition_and_window() {
        let spec = FleetSpec::new("churn", 10, 4, 7);
        for shard in 0..spec.shard_count() {
            let plans = shard_plans(&spec, shard);
            assert_eq!(plans.len(), spec.sessions_in_shard(shard) as usize);
            for p in &plans {
                assert!(p.arrival_s >= 0.0 && p.arrival_s < spec.duration_s);
                assert!(p.hold_s > 0.0);
            }
        }
    }

    #[test]
    fn spike_concentrates_arrivals_in_its_window() {
        let mut calm = FleetSpec::new("calm", 400, 400, 9);
        calm.duration_s = 100.0;
        calm.arrival_rate_per_s = 4.0;
        let mut surge = calm.clone();
        surge.name = "surge".into();
        // 20× arrival rate on [40, 60): over half of all mass sits there.
        surge.timeline = FleetTimeline::named("flash").spike(40.0, 20.0, 20.0);
        let in_window = |plans: &[SessionPlan]| {
            plans
                .iter()
                .filter(|p| (40.0..60.0).contains(&p.arrival_s))
                .count()
        };
        let calm_hits = in_window(&shard_plans(&calm, 0));
        let surge_hits = in_window(&shard_plans(&surge, 0));
        // Calm: ~20% of 400. Surge: 400/480 of the mass → ~83% of 400.
        assert!(calm_hits < 150, "calm fleet put {calm_hits} in the window");
        assert!(
            surge_hits > 250,
            "flash crowd put only {surge_hits} in the window"
        );
    }
}
