//! Fleet-scale DMP streaming: many concurrent multipath sessions with churn.
//!
//! The paper evaluates one DMP-streaming session at a time. This crate asks
//! the operational question that follows: what happens when a *service* runs
//! thousands of such sessions — arriving and departing as a Poisson process,
//! possibly in flash crowds, contending on shared bottlenecks? The answer is
//! organised as:
//!
//! - [`spec::FleetSpec`] — the experiment: session count, the physical
//!   partition into shards, bottleneck dimensions, churn rates, an optional
//!   [`scenario::FleetTimeline`] of arrival-rate spikes.
//! - [`churn`] — Poisson arrival / exponential hold sampling, a pure
//!   function of `(seed, shard)`.
//! - [`shard`] — one shard = one self-contained [`netsim::Sim`] with
//!   arena-backed state, run to completion, read out as per-session
//!   [`dmp_core::SessionOutcome`]s.
//! - [`run`] — fans shards across a [`dmp_runner::Runner`] pool and merges
//!   outputs in shard-index order, so the fleet artifact is byte-identical
//!   across thread counts, shard-per-job chunking, and both scheduler
//!   engines.
//!
//! Determinism contract: everything in [`run::FleetResult::artifact`] is a
//! pure function of the [`spec::FleetSpec`]; engine-shaped telemetry (wheel
//! and far-heap high-water marks differ between engines by design) is kept
//! in the volatile meta sidecar via [`run::FleetResult::shards_meta`].

#![warn(missing_docs)]

pub mod churn;
pub mod run;
pub mod shard;
pub mod spec;

pub use churn::{shard_plans, SessionPlan};
pub use run::{run_fleet, FleetOptions, FleetResult};
pub use shard::{run_shard, ShardOutput};
pub use spec::FleetSpec;
