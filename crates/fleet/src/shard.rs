//! One shard: a self-contained netsim `Sim` hosting a slice of the fleet.
//!
//! Every shard builds its own topology — `bottlenecks_per_shard` shared
//! router pairs, one server node per session, one client node per path (the
//! multihoming idiom `dmp-sim` uses for independent paths) — attaches one
//! [`DmpServer`]/[`VideoClient`] pair per session according to the shard's
//! churn plan, runs to the end of the window, and reads per-session
//! [`SessionOutcome`]s off the delivery traces. Congestion is *endogenous*:
//! sessions contend with each other on the shared bottlenecks (no synthetic
//! background flows), so a flash-crowd arrival spike directly translates
//! into loss, lateness, and headroom erosion for the sessions caught in it.
//!
//! A shard is a **pure function of `(spec, shard index)`**: its RNG streams
//! derive from the spec seed and the shard index alone, and nothing in here
//! reads clocks, thread IDs, or global state — which is what lets the run
//! layer fan shards across any number of worker threads and still merge
//! byte-identical results.

use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;

use dmp_core::metrics::late_fraction_playback;
use dmp_core::resilience::{ResilienceReport, ResilienceSpec};
use dmp_core::spec::PathSpec;
use dmp_core::SessionOutcome;
use dmp_runner::{Json, JsonCodec};
use dmp_sim::topology::video_tcp;
use dmp_sim::video::{shared_trace, DmpServer, SharedTrace, VideoClient};
use netsim::link::LinkSpec;
use netsim::tcp::SinkConfig;
use netsim::trace::SimTracer;
use netsim::{secs, App, EngineTelemetry, FlowId, Sim, SimApi, SimTime};
use obs::{EventKind, Recorder, TraceConfig};

use crate::churn::{shard_plans, SessionPlan};
use crate::spec::FleetSpec;

/// Domain tag for the shard's simulation seed (TCP tie-breaks, random loss
/// draws), distinct from the churn sampler's stream.
const SIM_TAG: u64 = 0x51ad_a51d_5eed_f00d;

/// Access-link one-way delays, ms: sessions cycle through these so paths in
/// one shard have diverse RTTs (identical-RTT flows synchronise on a
/// drop-tail queue and the contention model collapses).
const ACCESS_TIERS_MS: [f64; 5] = [2.0, 5.0, 10.0, 20.0, 35.0];

/// Extra simulated time after the arrival window closes, seconds, so
/// sessions that arrived late can drain their queues before measurement
/// stops. Scaled with τ because the stable-record margin is τ-derived.
fn drain_s(spec: &FleetSpec) -> f64 {
    spec.tau_s + 6.0
}

/// One fleet shard's results: everything the run layer needs to merge the
/// fleet, split into the deterministic part (`outcomes`, `events_processed`
/// — byte-identical across engines, thread counts, and shard chunking) and
/// the engine-shaped part (`telemetry` — HWM fields differ between engines
/// by design and must only ever reach volatile meta sidecars).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutput {
    /// Which shard this is.
    pub shard: u32,
    /// Per-session outcomes, in global session order.
    pub outcomes: Vec<SessionOutcome>,
    /// Events the shard's simulation dispatched (engine-invariant).
    pub events_processed: u64,
    /// The shard simulation's engine counters (engine-dependent; volatile
    /// meta only).
    pub telemetry: EngineTelemetry,
    /// Always-on metrics: the shard sim's sender/link distributions, frame
    /// metrics over every session's delivery trace, and per-session
    /// lateness/headroom/glitch histograms. Engine-invariant (no HWMs), so
    /// it merges and serialises byte-identically across engines.
    pub metrics: obs::MetricsSnapshot,
}

/// Marks a session's lifecycle in the flight-recorder stream. Attached to
/// every session whether or not the run is traced: the marker schedules
/// timers, and a traced run must process exactly the event sequence an
/// untraced one does.
struct SessionMarker {
    session: u32,
    start_at: SimTime,
    stop_at: SimTime,
}

impl App for SessionMarker {
    fn start(&mut self, api: &mut SimApi<'_>) {
        api.schedule_in(self.start_at, 0);
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, tag: u64) {
        if api.trace_enabled() {
            api.trace_emit(EventKind::Session {
                session: self.session,
                up: tag == 0,
            });
        }
        if tag == 0 {
            api.schedule_in(self.stop_at - self.start_at, 1);
        }
    }
}

/// Per-session handles needed after the simulation finishes.
struct SessionHandles {
    session: u32,
    plan: SessionPlan,
    budget: u64,
    flows: Vec<FlowId>,
    trace: SharedTrace,
}

/// Run shard `shard` of `spec`. When `trace` is given, a flight recorder
/// writes the shard's JSONL trace to that path and registers it under the
/// given label (see [`obs::record_trace_file`]).
pub fn run_shard(spec: &FleetSpec, shard: u32, trace: Option<(&Path, &str)>) -> ShardOutput {
    let n = spec.sessions_in_shard(shard) as usize;
    let k = spec.paths_per_session as usize;
    let b = spec.bottlenecks_per_shard as usize;
    let plans = shard_plans(spec, shard);

    // Exact entity counts: 2 router nodes and one duplex per bottleneck,
    // plus per session one server node, K client nodes, and 2K access
    // duplexes (server side + client side).
    let sim_seed = spec.seed ^ SIM_TAG ^ u64::from(shard).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut sim = Sim::with_capacity(
        sim_seed,
        spec.engine,
        2 * b + n * (1 + k),
        2 * (b + n * 2 * k),
        n * k,
    );

    // Shared bottlenecks: b router pairs r1[i] --bottleneck--> r2[i].
    let bneck_spec = LinkSpec::from_table(
        spec.bottleneck_mbps,
        spec.bottleneck_delay_ms,
        spec.buffer_pkts,
    );
    let mut r1 = Vec::with_capacity(b);
    let mut r2 = Vec::with_capacity(b);
    let mut bnecks = Vec::with_capacity(b);
    for i in 0..b {
        let a = sim.add_node(format!("r{i}1"));
        let z = sim.add_node(format!("r{i}2"));
        let (fwd, rev) = sim.add_duplex(a, z, bneck_spec);
        r1.push(a);
        r2.push(z);
        bnecks.push((fwd, rev));
    }

    let access = |delay_ms: f64| LinkSpec::from_table(100.0, delay_ms, 4_000);
    let mut tcp = video_tcp(spec.video.packet_bytes, spec.send_buf_pkts);
    tcp.cc = spec.cc;
    let first = spec.first_session(shard);
    let mut sessions = Vec::with_capacity(n);
    for (local, plan) in plans.iter().enumerate() {
        let g = first + local as u32;
        let server = sim.add_node(format!("srv{g}"));
        let mut flows = Vec::with_capacity(k);
        for path in 0..k {
            // Paths of one session land on distinct bottlenecks (validate()
            // guarantees b ≥ k); the global session index rotates the
            // assignment so bottleneck populations are balanced and
            // heterogeneous across sessions.
            let bi = (g as usize + path) % b;
            let tier = ACCESS_TIERS_MS[(g as usize * k + path) % ACCESS_TIERS_MS.len()];
            let client = sim.add_node(format!("cl{g}p{path}"));
            let (sv_r1, r1_sv) = sim.add_duplex(server, r1[bi], access(tier));
            let (r2_cl, cl_r2) = sim.add_duplex(r2[bi], client, access(tier));
            // Destination routing: data sv→r1→r2→cl, ACKs cl→r2→r1→sv.
            sim.add_route(server, client, sv_r1);
            sim.add_route(r1[bi], client, bnecks[bi].0);
            sim.add_route(r1[bi], server, r1_sv);
            sim.add_route(r2[bi], client, r2_cl);
            sim.add_route(r2[bi], server, bnecks[bi].1);
            sim.set_default_route(client, cl_r2);
            flows.push(sim.add_flow(server, client, tcp, SinkConfig::default()));
        }
        sessions.push(SessionHandles {
            session: g,
            plan: *plan,
            budget: ((plan.hold_s * spec.video.rate_pps).ceil() as u64).max(1),
            flows,
            trace: shared_trace(
                spec.video,
                secs(spec.warmup_s + spec.duration_s + drain_s(spec)),
            ),
        });
    }

    let recording = trace.map(|(path, label)| {
        let rec = Rc::new(RefCell::new(
            Recorder::to_file(TraceConfig::default(), path).expect("create trace file"),
        ));
        let mut tracer = SimTracer::new(Rc::clone(&rec));
        for (fwd, _) in &bnecks {
            tracer.trace_link(*fwd);
        }
        for s in &sessions {
            for (path, &f) in s.flows.iter().enumerate() {
                tracer.trace_flow(f);
                tracer.emit(
                    0,
                    EventKind::PathConn {
                        path: path as u32,
                        conn: f,
                    },
                );
                tracer.emit(
                    0,
                    EventKind::CcAlgo {
                        conn: f,
                        algo: spec.cc.name().to_string(),
                    },
                );
            }
        }
        tracer.emit(
            0,
            EventKind::Strategy {
                name: spec.strategy.name().to_string(),
            },
        );
        sim.set_tracer(tracer);
        (rec, path.to_path_buf(), label.to_string())
    });

    for s in &sessions {
        let start_at = secs(spec.warmup_s + s.plan.arrival_s);
        sim.add_app(Box::new(
            DmpServer::new(
                s.flows.clone(),
                spec.video,
                s.trace.clone(),
                start_at,
                s.budget,
            )
            .with_strategy(spec.strategy),
        ));
        sim.add_app(Box::new(VideoClient::new(&s.flows, s.trace.clone())));
        sim.add_app(Box::new(SessionMarker {
            session: s.session,
            start_at,
            stop_at: start_at + secs(s.plan.hold_s),
        }));
    }

    sim.run_until(secs(spec.warmup_s + spec.duration_s + drain_s(spec)));

    // Bottleneck capacity in packets/s bounds each path's achievable rate:
    // PFTK with near-zero measured loss otherwise predicts throughputs the
    // link could never carry.
    let capacity_pps = spec.bottleneck_mbps * 1e6 / 8.0 / f64::from(spec.video.packet_bytes);
    let outcomes: Vec<SessionOutcome> = sessions
        .iter()
        .map(|s| outcome_of(&sim, spec, s, capacity_pps))
        .collect();

    let events_processed = sim.events_processed();
    let telemetry = EngineTelemetry::from(&sim.counters());

    // Always-on metrics: netsim distributions plus frame metrics over every
    // session's trace and per-session outcome histograms (lateness in ppm,
    // PFTK headroom in milli-multiples, glitch counts — integer units so the
    // buckets merge exactly). Sessions are visited in global session order,
    // and every operation is commutative, so the snapshot is identical
    // however shards are chunked into jobs.
    let mut metrics = sim.metrics_snapshot();
    for (s, o) in sessions.iter().zip(&outcomes) {
        obs::record_frame_metrics(&mut metrics, &s.trace.borrow());
        if o.started {
            metrics.counter_add("fleet.sessions_started", 1);
            metrics
                .histogram("fleet.session_late_ppm")
                .record((o.late_fraction * 1e6).round() as u64);
            metrics
                .histogram("fleet.session_headroom_milli")
                .record((o.headroom.max(0.0) * 1e3).round() as u64);
            metrics
                .histogram("fleet.session_glitches")
                .record(o.glitch_count);
        }
        if o.completed {
            metrics.counter_add("fleet.sessions_completed", 1);
        }
    }
    metrics.set_label("cc", spec.cc.name());
    metrics.set_label("strategy", spec.strategy.name());

    if let Some((rec, path, label)) = recording {
        // The Sim's tracer holds the other recorder handle; drop it first.
        drop(sim);
        let rec = Rc::try_unwrap(rec)
            .ok()
            .expect("sim dropped its recorder handle")
            .into_inner();
        let out = rec.finish().expect("flush trace file");
        obs::record_trace_file(label, path, out.events);
    }

    ShardOutput {
        shard,
        outcomes,
        events_processed,
        telemetry,
        metrics,
    }
}

/// Read one session's outcome off its delivery trace and its flows' TCP
/// state.
fn outcome_of(
    sim: &Sim,
    spec: &FleetSpec,
    s: &SessionHandles,
    capacity_pps: f64,
) -> SessionOutcome {
    let trace = s.trace.borrow();
    let generated = trace.generated();
    let delivered = trace.delivered();
    let started = generated > 0;
    let stable = trace.stable_records(spec.tau_s);
    let resilience = ResilienceReport::from_records(
        stable,
        spec.video.rate_pps,
        ResilienceSpec {
            tau_s: spec.tau_s,
            ..ResilienceSpec::default()
        },
    );
    // Aggregate achievable throughput over the session's paths, from the
    // *measured* per-flow loss and RTT through the PFTK model — the same
    // σ_a/µ the paper's Section 7.3 headroom rule is stated in.
    let headroom = if started {
        s.flows
            .iter()
            .filter_map(|&f| {
                let sender = sim.sender(f);
                let rtt_s = sender.rtt.mean_rtt_secs()?;
                let path = PathSpec {
                    loss: sim.flow_loss_rate(f).clamp(1e-6, 0.5),
                    rtt_s,
                    to_ratio: sender.rtt.to_ratio().unwrap_or(1.0).max(1.0),
                };
                Some(tcp_model::pftk::throughput_pps(&path).min(capacity_pps))
            })
            .sum::<f64>()
            / spec.video.rate_pps
    } else {
        0.0
    };
    SessionOutcome {
        session: s.session,
        arrival_s: s.plan.arrival_s,
        hold_s: s.plan.hold_s,
        started,
        completed: generated == s.budget,
        generated,
        delivered,
        late_fraction: late_fraction_playback(stable, spec.tau_s),
        glitch_count: resilience.glitch_count,
        headroom,
    }
}

impl JsonCodec for ShardOutput {
    fn to_json(&self) -> Json {
        let outcomes = self.outcomes.iter().map(|o| {
            Json::obj([
                ("session", Json::Num(f64::from(o.session))),
                ("arrival_s", Json::Num(o.arrival_s)),
                ("hold_s", Json::Num(o.hold_s)),
                ("started", Json::Bool(o.started)),
                ("completed", Json::Bool(o.completed)),
                ("generated", Json::Num(o.generated as f64)),
                ("delivered", Json::Num(o.delivered as f64)),
                ("late_fraction", Json::Num(o.late_fraction)),
                ("glitches", Json::Num(o.glitch_count as f64)),
                ("headroom", Json::Num(o.headroom)),
            ])
        });
        let t = &self.telemetry;
        Json::obj([
            ("shard", Json::Num(f64::from(self.shard))),
            ("events", Json::Num(self.events_processed as f64)),
            ("metrics", self.metrics.to_json()),
            ("outcomes", Json::arr(outcomes)),
            (
                "telemetry",
                Json::obj([
                    ("events_processed", Json::Num(t.events_processed as f64)),
                    ("transits", Json::Num(t.transits as f64)),
                    ("stale_timer_pops", Json::Num(t.stale_timer_pops as f64)),
                    (
                        "deferred_timer_pushes",
                        Json::Num(t.deferred_timer_pushes as f64),
                    ),
                    ("wheel_hwm", Json::Num(t.wheel_hwm as f64)),
                    ("far_hwm", Json::Num(t.far_hwm as f64)),
                    ("ring_hwm", Json::Num(t.ring_hwm as f64)),
                    ("random_loss_drops", Json::Num(t.random_loss_drops as f64)),
                ]),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let outcomes = json
            .get("outcomes")?
            .as_arr()?
            .iter()
            .map(|o| {
                Some(SessionOutcome {
                    session: o.get("session")?.as_u64()? as u32,
                    arrival_s: o.get("arrival_s")?.as_f64()?,
                    hold_s: o.get("hold_s")?.as_f64()?,
                    started: o.get("started")?.as_bool()?,
                    completed: o.get("completed")?.as_bool()?,
                    generated: o.get("generated")?.as_u64()?,
                    delivered: o.get("delivered")?.as_u64()?,
                    late_fraction: o.get("late_fraction")?.as_f64()?,
                    glitch_count: o.get("glitches")?.as_u64()?,
                    headroom: o.get("headroom")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let t = json.get("telemetry")?;
        let field = |name: &str| t.get(name).and_then(Json::as_u64);
        Some(ShardOutput {
            shard: json.get("shard")?.as_u64()? as u32,
            events_processed: json.get("events")?.as_u64()?,
            metrics: obs::MetricsSnapshot::from_json(json.get("metrics")?)?,
            outcomes,
            telemetry: EngineTelemetry {
                events_processed: field("events_processed")?,
                transits: field("transits")?,
                stale_timer_pops: field("stale_timer_pops")?,
                deferred_timer_pushes: field("deferred_timer_pushes")?,
                wheel_hwm: field("wheel_hwm")?,
                far_hwm: field("far_hwm")?,
                ring_hwm: field("ring_hwm")?,
                random_loss_drops: field("random_loss_drops")?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::EngineKind;

    fn tiny_spec() -> FleetSpec {
        let mut spec = FleetSpec::new("tiny", 4, 2, 11);
        spec.duration_s = 20.0;
        spec.warmup_s = 1.0;
        spec.arrival_rate_per_s = 0.5;
        spec.mean_hold_s = 8.0;
        spec.video = dmp_core::spec::VideoSpec::new(25.0);
        spec
    }

    #[test]
    fn shard_sessions_stream_and_deliver() {
        let out = run_shard(&tiny_spec(), 0, None);
        assert_eq!(out.outcomes.len(), 2);
        assert!(out.events_processed > 0);
        for o in &out.outcomes {
            assert!(o.started, "session {} never started", o.session);
            assert!(o.generated > 0);
            assert!(o.delivered > 0, "session {} delivered nothing", o.session);
            assert!(o.delivered <= o.generated);
            assert!(o.headroom > 0.0);
        }
        // Global session indices: shard 0 holds sessions 0 and 1.
        assert_eq!(out.outcomes[0].session, 0);
        assert_eq!(out.outcomes[1].session, 1);
    }

    #[test]
    fn engines_agree_byte_for_byte_on_outcomes() {
        let spec = tiny_spec();
        let mut heap = spec.clone();
        heap.engine = EngineKind::Heap;
        let mut cal = spec;
        cal.engine = EngineKind::Calendar;
        let a = run_shard(&heap, 1, None);
        let b = run_shard(&cal, 1, None);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.events_processed, b.events_processed);
        // Telemetry is engine-shaped (far heap vs wheel) and may differ;
        // only the deterministic half must agree. Metrics are part of that
        // deterministic half: snapshots must serialise byte-identically.
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(
            a.metrics.to_json().render(),
            b.metrics.to_json().render(),
            "metric snapshots must be byte-identical across engines"
        );
    }

    #[test]
    fn shard_output_json_round_trips() {
        let out = run_shard(&tiny_spec(), 0, None);
        let back = ShardOutput::from_json(&out.to_json()).expect("round-trip");
        assert_eq!(out, back);
    }

    #[test]
    fn traced_run_matches_untraced() {
        let dir = std::env::temp_dir().join("fleet-shard-trace-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("shard0.jsonl");
        let spec = tiny_spec();
        let plain = run_shard(&spec, 0, None);
        let traced = run_shard(&spec, 0, Some((&path, "fleet:tiny:shard0")));
        assert_eq!(plain.outcomes, traced.outcomes);
        assert_eq!(plain.events_processed, traced.events_processed);
        assert_eq!(
            plain.metrics, traced.metrics,
            "enabling the flight recorder must not perturb metrics"
        );
        let text = std::fs::read_to_string(&path).expect("trace written");
        assert!(
            text.contains("\"ev\":\"session\""),
            "trace should carry session markers"
        );
        let _ = std::fs::remove_file(&path);
    }
}
