//! Fan a fleet's shards across the runner pool and merge the results.
//!
//! Each job runs a contiguous range of shards serially in shard-index order;
//! ranges are chunked by [`FleetOptions::shards_per_job`] and submitted to
//! [`dmp_runner::Runner::run_all`], which preserves submission order however
//! many worker threads drain the queue. Merging is therefore a flatten: the
//! concatenation of shard outputs in shard-index order, independent of
//! thread count and of how shards were chunked into jobs. Per-shard
//! simulations are pure functions of `(spec, shard)`, so the merged fleet is
//! byte-identical across all execution choices — the property the
//! determinism suite in `tests/determinism.rs` locks down.

use std::path::PathBuf;

use dmp_core::{FleetReport, SessionOutcome};
use dmp_runner::{JobSpec, Json, Runner};
use netsim::EngineTelemetry;

use crate::shard::{run_shard, ShardOutput};
use crate::spec::FleetSpec;

/// Execution-level knobs: everything here changes *how* a fleet runs, never
/// *what* it produces, so none of it reaches the cache key or the
/// deterministic artifact.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Shards per runner job. 1 maximises parallelism; larger values
    /// amortise job overhead when shards are tiny.
    pub shards_per_job: u32,
    /// Write flight-recorder traces (one JSONL file per shard, stems
    /// `fleet:<name>:shard<i>:<engine>`). Traced jobs are not cached —
    /// their value is the side-effect file.
    pub trace: bool,
    /// Where traces go; defaults to [`obs::default_trace_dir`].
    pub trace_dir: Option<PathBuf>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            shards_per_job: 1,
            trace: false,
            trace_dir: None,
        }
    }
}

/// A merged fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-session outcomes in global session order.
    pub outcomes: Vec<SessionOutcome>,
    /// The fleet-level verdict folded from the outcomes.
    pub report: FleetReport,
    /// Events dispatched by each shard's simulation, shard-index order
    /// (engine-invariant, part of the deterministic artifact).
    pub shard_events: Vec<u64>,
    /// Each shard's engine counters, shard-index order (engine-shaped;
    /// volatile meta sidecars only).
    pub shard_telemetry: Vec<EngineTelemetry>,
    /// Every shard's metrics merged in shard-index order — the same merge
    /// discipline as [`EngineTelemetry::absorb`], but over the exact integer
    /// histogram arithmetic, so the result is also chunking- and
    /// thread-invariant.
    pub metrics: obs::MetricsSnapshot,
}

impl FleetResult {
    /// Total simulation events across all shards.
    pub fn total_events(&self) -> u64 {
        self.shard_events.iter().sum()
    }

    /// All shard telemetry folded into one reading (counts sum, peaks max).
    pub fn merged_telemetry(&self) -> EngineTelemetry {
        let mut total = EngineTelemetry::default();
        for t in &self.shard_telemetry {
            total.absorb(t);
        }
        total
    }

    /// The deterministic artifact document: spec identity, per-session
    /// outcomes, the fleet report, and per-shard event counts. Everything in
    /// here is byte-identical across thread counts, shard chunking, and both
    /// scheduler engines; telemetry deliberately stays out (its high-water
    /// marks are engine-shaped).
    pub fn artifact(&self, spec: &FleetSpec) -> Json {
        let r = &self.report;
        let dist = |d: &dmp_core::Distribution| {
            Json::obj([
                ("mean", Json::Num(d.mean)),
                ("p50", Json::Num(d.p50)),
                ("p90", Json::Num(d.p90)),
                ("p99", Json::Num(d.p99)),
                ("max", Json::Num(d.max)),
                ("stddev", Json::Num(d.stddev)),
            ])
        };
        Json::obj([
            ("name", Json::Str(spec.name.clone())),
            ("config", Json::Str(spec.config_repr())),
            ("sessions", Json::Num(r.sessions as f64)),
            ("started", Json::Num(r.started as f64)),
            ("completed", Json::Num(r.completed as f64)),
            ("generated", Json::Num(r.generated as f64)),
            ("delivered", Json::Num(r.delivered as f64)),
            ("goodput_pps", Json::Num(r.goodput_pps)),
            ("late", dist(&r.late)),
            ("glitches", dist(&r.glitches)),
            ("headroom", dist(&r.headroom)),
            ("headroom_ok", Json::Num(r.headroom_ok)),
            (
                "shard_events",
                Json::nums(self.shard_events.iter().map(|&e| e as f64)),
            ),
            (
                "sessions_detail",
                Json::arr(self.outcomes.iter().map(|o| {
                    Json::obj([
                        ("session", Json::Num(f64::from(o.session))),
                        ("arrival_s", Json::Num(o.arrival_s)),
                        ("hold_s", Json::Num(o.hold_s)),
                        ("started", Json::Bool(o.started)),
                        ("completed", Json::Bool(o.completed)),
                        ("generated", Json::Num(o.generated as f64)),
                        ("delivered", Json::Num(o.delivered as f64)),
                        ("late_fraction", Json::Num(o.late_fraction)),
                        ("glitches", Json::Num(o.glitch_count as f64)),
                        ("headroom", Json::Num(o.headroom)),
                    ])
                })),
            ),
        ])
    }

    /// Volatile per-shard breakdown for the `.meta.json` sidecar: each
    /// shard's engine counters plus the absorbed fleet total.
    pub fn shards_meta(&self) -> Json {
        let shard = |t: &EngineTelemetry| {
            Json::obj([
                ("events_processed", Json::Num(t.events_processed as f64)),
                ("transits", Json::Num(t.transits as f64)),
                ("stale_timer_pops", Json::Num(t.stale_timer_pops as f64)),
                (
                    "deferred_timer_pushes",
                    Json::Num(t.deferred_timer_pushes as f64),
                ),
                ("wheel_hwm", Json::Num(t.wheel_hwm as f64)),
                ("far_hwm", Json::Num(t.far_hwm as f64)),
                ("ring_hwm", Json::Num(t.ring_hwm as f64)),
                ("random_loss_drops", Json::Num(t.random_loss_drops as f64)),
            ])
        };
        Json::obj([
            ("total", shard(&self.merged_telemetry())),
            (
                "per_shard",
                Json::arr(self.shard_telemetry.iter().map(shard)),
            ),
        ])
    }
}

/// Run `spec` on `runner`, fanning shards across its worker threads.
///
/// Panics if the spec fails [`FleetSpec::validate`] or any shard job fails.
pub fn run_fleet(runner: &Runner, spec: &FleetSpec, opts: &FleetOptions) -> FleetResult {
    spec.validate().expect("valid fleet spec");
    let shards = spec.shard_count();
    let chunk = opts.shards_per_job.max(1);
    let config = spec.config_repr();
    let trace_dir = opts.trace.then(|| {
        opts.trace_dir
            .clone()
            .unwrap_or_else(obs::default_trace_dir)
    });

    let mut jobs: Vec<JobSpec<Vec<ShardOutput>>> = Vec::new();
    let mut lo = 0u32;
    while lo < shards {
        let hi = (lo + chunk).min(shards);
        let job_spec = spec.clone();
        let dir = trace_dir.clone();
        let job = JobSpec::new(
            format!("fleet:{}:shards{lo}-{}", spec.name, hi - 1),
            format!("{config}/shards{lo}-{hi}"),
            spec.seed,
            move || {
                (lo..hi)
                    .map(|shard| {
                        let traced = dir.as_ref().map(|d| {
                            // Satellite of the trace-stem fix in dmp-sim: a
                            // shard component keeps concurrent shards of one
                            // batch from colliding, the engine component
                            // keeps differential batches apart.
                            let label = format!(
                                "fleet:{}:shard{shard}:{:?}",
                                job_spec.name, job_spec.engine
                            );
                            (
                                d.join(format!("{}.jsonl", obs::sanitize_label(&label))),
                                label,
                            )
                        });
                        run_shard(
                            &job_spec,
                            shard,
                            traced.as_ref().map(|(p, l)| (p.as_path(), l.as_str())),
                        )
                    })
                    .collect()
            },
        );
        // A traced job's product is the side-effect trace file, which the
        // cache would skip reproducing on a hit.
        jobs.push(if opts.trace { job.uncacheable() } else { job });
        lo = hi;
    }

    let cells = runner.run_all(jobs);
    let mut outcomes = Vec::with_capacity(spec.sessions as usize);
    let mut shard_events = Vec::with_capacity(shards as usize);
    let mut shard_telemetry = Vec::with_capacity(shards as usize);
    let mut metrics = obs::MetricsSnapshot::new();
    for cell in &cells {
        let outputs = match cell.ok() {
            Some(v) => v,
            None => panic!(
                "fleet shard job failed: {}",
                cell.failure().unwrap_or("unknown")
            ),
        };
        for out in outputs {
            debug_assert_eq!(out.shard as usize, shard_events.len(), "shard order");
            outcomes.extend(out.outcomes.iter().copied());
            shard_events.push(out.events_processed);
            shard_telemetry.push(out.telemetry);
            metrics.merge(&out.metrics);
        }
    }
    let report = FleetReport::from_outcomes(&outcomes, spec.duration_s);
    FleetResult {
        outcomes,
        report,
        shard_events,
        shard_telemetry,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_runner::{Cache, JsonCodec};

    fn small_spec() -> FleetSpec {
        let mut spec = FleetSpec::new("small", 6, 2, 21);
        spec.duration_s = 20.0;
        spec.warmup_s = 1.0;
        spec.arrival_rate_per_s = 0.5;
        spec.mean_hold_s = 8.0;
        spec.video = dmp_core::spec::VideoSpec::new(25.0);
        spec
    }

    #[test]
    fn fleet_merges_shards_in_global_session_order() {
        let runner = Runner::new(2, Cache::disabled());
        let result = run_fleet(&runner, &small_spec(), &FleetOptions::default());
        assert_eq!(result.outcomes.len(), 6);
        for (i, o) in result.outcomes.iter().enumerate() {
            assert_eq!(o.session as usize, i, "global order preserved");
        }
        assert_eq!(result.shard_events.len(), 3);
        assert_eq!(result.report.sessions, 6);
        assert!(result.report.started > 0);
        assert!(result.total_events() > 0);
        assert_eq!(
            result.merged_telemetry().events_processed,
            result
                .shard_telemetry
                .iter()
                .map(|t| t.events_processed)
                .sum::<u64>()
        );
    }

    #[test]
    fn chunking_does_not_change_the_artifact() {
        let spec = small_spec();
        let runner = Runner::new(1, Cache::disabled());
        let one = run_fleet(&runner, &spec, &FleetOptions::default());
        let chunked = run_fleet(
            &runner,
            &spec,
            &FleetOptions {
                shards_per_job: 2,
                ..FleetOptions::default()
            },
        );
        assert_eq!(
            one.artifact(&spec).render(),
            chunked.artifact(&spec).render()
        );
        assert_eq!(
            one.metrics.to_json().render(),
            chunked.metrics.to_json().render(),
            "merged metrics must be chunking-invariant"
        );
        assert!(one.metrics.histograms["fleet.session_late_ppm"].count() > 0);
    }
}
