//! The fleet experiment specification.
//!
//! A [`FleetSpec`] describes one *logical* experiment — N DMP sessions with
//! Poisson arrivals and exponential hold times, K paths each, competing on
//! shared bottlenecks — partitioned into **physical shards**. The partition
//! (`shard_sessions` sessions per shard, `bottlenecks_per_shard` shared
//! bottlenecks inside each) is part of the physics: sessions in one shard
//! contend with each other and sessions in different shards never meet, so
//! the partition belongs in the spec and in the cache key. *How shards are
//! executed* — how many runner threads, how many shards each job runs — is
//! an execution detail that must never change a result byte; that knob lives
//! in [`crate::run::FleetOptions`], not here.

use cc::CcKind;
use dmp_core::spec::{PullStrategy, VideoSpec};
use netsim::EngineKind;
use scenario::FleetTimeline;

/// Specification of one fleet-scale experiment.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Fleet name (no whitespace; names artifacts and trace stems).
    pub name: String,
    /// Total sessions across the fleet.
    pub sessions: u32,
    /// Sessions per shard — the physical partition. The last shard takes
    /// the remainder when `sessions` is not a multiple.
    pub shard_sessions: u32,
    /// Shared bottleneck links inside each shard; a session's paths are
    /// spread over distinct bottlenecks, so this must be ≥
    /// `paths_per_session`.
    pub bottlenecks_per_shard: u32,
    /// Bottleneck bandwidth, Mbps.
    pub bottleneck_mbps: f64,
    /// Bottleneck one-way propagation delay, ms.
    pub bottleneck_delay_ms: f64,
    /// Bottleneck drop-tail buffer, packets.
    pub buffer_pkts: usize,
    /// Experiment window, seconds: sessions arrive on `[0, duration_s)`.
    pub duration_s: f64,
    /// Settling time before the window opens, seconds (arrival clocks are
    /// relative to the end of warm-up).
    pub warmup_s: f64,
    /// Base Poisson session arrival rate **per shard**, sessions/second.
    /// The fleet-wide rate is this times the shard count; keeping the rate
    /// per shard keeps every shard's churn sampler independent.
    pub arrival_rate_per_s: f64,
    /// Mean session hold (streaming) time, seconds; holds are exponential.
    pub mean_hold_s: f64,
    /// The video every session streams.
    pub video: VideoSpec,
    /// Video TCP socket send buffer, packets (the DMP mechanism).
    pub send_buf_pkts: usize,
    /// Paths per session, K (the paper's scheme; 2 throughout the paper).
    pub paths_per_session: u32,
    /// Fleet-wide arrival-rate timeline (flash-crowd spikes on the base
    /// rate; empty = homogeneous Poisson arrivals).
    pub timeline: FleetTimeline,
    /// Simulation engine. Both engines produce byte-identical fleets; the
    /// choice is in the cache key so differential runs never share entries.
    pub engine: EngineKind,
    /// Startup delay τ the per-session lateness/glitch metrics evaluate at.
    pub tau_s: f64,
    /// Congestion control run by every session's video flows (background
    /// traffic, when present, always runs Reno).
    pub cc: CcKind,
    /// How each session's server picks the path serving the next packet.
    pub strategy: PullStrategy,
    /// RNG seed; churn and every shard RNG derive from it deterministically.
    pub seed: u64,
}

impl FleetSpec {
    /// A small fleet with defaults matching the paper's simulation setups
    /// (50 pkt/s × 1500 B video, 32-packet send buffers, K = 2).
    pub fn new(name: impl Into<String>, sessions: u32, shard_sessions: u32, seed: u64) -> Self {
        Self {
            name: name.into(),
            sessions,
            shard_sessions,
            bottlenecks_per_shard: 2,
            bottleneck_mbps: 3.7,
            bottleneck_delay_ms: 10.0,
            buffer_pkts: 50,
            duration_s: 120.0,
            warmup_s: 5.0,
            arrival_rate_per_s: 0.2,
            mean_hold_s: 60.0,
            video: VideoSpec::new(50.0),
            send_buf_pkts: 32,
            paths_per_session: 2,
            timeline: FleetTimeline::default(),
            engine: EngineKind::default(),
            tau_s: 4.0,
            cc: CcKind::Reno,
            strategy: PullStrategy::RoundRobin,
            seed,
        }
    }

    /// Number of physical shards the fleet partitions into.
    pub fn shard_count(&self) -> u32 {
        self.sessions.div_ceil(self.shard_sessions)
    }

    /// Global index of the first session in `shard`.
    pub fn first_session(&self, shard: u32) -> u32 {
        shard * self.shard_sessions
    }

    /// Sessions living in `shard` (the last shard takes the remainder).
    pub fn sessions_in_shard(&self, shard: u32) -> u32 {
        let first = self.first_session(shard);
        self.sessions.saturating_sub(first).min(self.shard_sessions)
    }

    /// Check the spec; returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || self.name.chars().any(char::is_whitespace) {
            return Err(format!(
                "fleet name must be non-empty and whitespace-free: {:?}",
                self.name
            ));
        }
        if self.sessions == 0 || self.shard_sessions == 0 {
            return Err("sessions and shard_sessions must be > 0".into());
        }
        if self.paths_per_session == 0 {
            return Err("paths_per_session must be ≥ 1".into());
        }
        if self.bottlenecks_per_shard < self.paths_per_session {
            return Err(format!(
                "bottlenecks_per_shard {} < paths_per_session {}: a session's \
                 paths must land on distinct bottlenecks",
                self.bottlenecks_per_shard, self.paths_per_session
            ));
        }
        if !(self.duration_s > 0.0 && self.warmup_s >= 0.0) {
            return Err("duration must be > 0 and warmup ≥ 0".into());
        }
        if !(self.arrival_rate_per_s > 0.0 && self.mean_hold_s > 0.0) {
            return Err("arrival rate and mean hold must be > 0".into());
        }
        self.timeline.validate()
    }

    /// Stable, complete textual representation for content-addressed
    /// caching. Every field that influences a shard's simulation appears via
    /// `Debug` (which round-trips `f64` exactly); the timeline's stable hash
    /// is appended explicitly so two fleets with different arrival scripts
    /// can never be served each other's cached shard outputs.
    ///
    /// Version history: v1 original; v2 coalesced link delivery (event
    /// counts shrink, per-link RNG streams, telemetry gains
    /// `transits`/`ring_hwm`); v3 pluggable congestion control + pull
    /// strategies (`cc`/`strategy` join the spec) and per-ACK RFC 2861
    /// cwnd validation in the TCP sender (app-limited flows stop growing
    /// their window, which shifts every simulated byte stream); v4 shard
    /// outputs carry an always-on metrics snapshot (cached v3 payloads
    /// lack the `metrics` section and must not be replayed).
    pub fn config_repr(&self) -> String {
        format!(
            "fleet/v4/{self:?}/timeline#{:016x}",
            self.timeline.stable_hash()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_partition_covers_all_sessions() {
        let spec = FleetSpec::new("f", 10, 4, 1);
        assert_eq!(spec.shard_count(), 3);
        assert_eq!(spec.sessions_in_shard(0), 4);
        assert_eq!(spec.sessions_in_shard(1), 4);
        assert_eq!(spec.sessions_in_shard(2), 2);
        assert_eq!(spec.first_session(2), 8);
        let total: u32 = (0..spec.shard_count())
            .map(|s| spec.sessions_in_shard(s))
            .sum();
        assert_eq!(total, spec.sessions);
    }

    #[test]
    fn validate_catches_inconsistencies() {
        assert!(FleetSpec::new("ok", 4, 2, 1).validate().is_ok());
        assert!(FleetSpec::new("bad name", 4, 2, 1).validate().is_err());
        let mut s = FleetSpec::new("f", 4, 2, 1);
        s.bottlenecks_per_shard = 1; // K = 2 paths need ≥ 2 bottlenecks
        assert!(s.validate().is_err());
        let mut s = FleetSpec::new("f", 4, 2, 1);
        s.arrival_rate_per_s = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn config_repr_discriminates_physics_fields() {
        let a = FleetSpec::new("f", 8, 4, 1);
        let mut b = a.clone();
        b.shard_sessions = 8; // a *different* fleet: contention changes
        assert_ne!(a.config_repr(), b.config_repr());
        let mut c = a.clone();
        c.engine = EngineKind::Heap;
        assert_ne!(a.config_repr(), c.config_repr());
        let mut d = a.clone();
        d.timeline = FleetTimeline::named("surge").spike(10.0, 5.0, 20.0);
        assert_ne!(a.config_repr(), d.config_repr());
        let mut e = a.clone();
        e.cc = CcKind::Cubic;
        assert_ne!(a.config_repr(), e.config_repr());
        let mut f = a.clone();
        f.strategy = PullStrategy::BestPath;
        assert_ne!(a.config_repr(), f.config_repr());
    }
}
