//! The bounded-ring recorder: events accumulate in memory and spill to a
//! JSONL sink whenever the ring fills, so tracing a long run costs a fixed
//! amount of RAM regardless of duration.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::event::{EventKind, TraceEvent};

/// Recorder tuning knobs. These are *semantic* settings: they change which
/// events a trace contains (decimation) but never how the traced system
/// behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Events buffered before a spill to the sink.
    pub ring_capacity: usize,
    /// Emit every Nth occupancy change per queue (1 = every change).
    pub queue_decimation: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 4096,
            queue_decimation: 32,
        }
    }
}

enum Sink {
    File { path: PathBuf, w: BufWriter<File> },
    Mem(Vec<u8>),
}

/// A flight recorder for one run: ring buffer plus spill sink.
pub struct Recorder {
    cfg: TraceConfig,
    ring: Vec<TraceEvent>,
    sink: Sink,
    events: u64,
}

/// What a finished recorder produced.
pub struct RecorderOutput {
    /// Total events written.
    pub events: u64,
    /// Path of the JSONL file (file-backed recorders).
    pub path: Option<PathBuf>,
    /// The raw JSONL bytes (in-memory recorders).
    pub bytes: Option<Vec<u8>>,
}

impl Recorder {
    /// Recorder spilling to a new JSONL file at `path` (parent directories
    /// are created; an existing file is truncated).
    pub fn to_file(cfg: TraceConfig, path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let w = BufWriter::new(File::create(&path)?);
        Ok(Self {
            ring: Vec::with_capacity(cfg.ring_capacity.max(1)),
            cfg,
            sink: Sink::File { path, w },
            events: 0,
        })
    }

    /// Recorder spilling to an in-memory buffer (tests, live loopback runs).
    pub fn in_memory(cfg: TraceConfig) -> Self {
        Self {
            ring: Vec::with_capacity(cfg.ring_capacity.max(1)),
            cfg,
            sink: Sink::Mem(Vec::new()),
            events: 0,
        }
    }

    /// The configuration this recorder was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Record one event. Spills the ring when it reaches capacity; I/O
    /// errors at spill time panic (a half-written trace is worse than a
    /// failed run, and the paths involved are developer-controlled).
    pub fn emit(&mut self, t: u64, kind: EventKind) {
        self.ring.push(TraceEvent { t, kind });
        if self.ring.len() >= self.cfg.ring_capacity.max(1) {
            self.spill().expect("trace spill failed");
        }
    }

    fn spill(&mut self) -> io::Result<()> {
        let w: &mut dyn Write = match &mut self.sink {
            Sink::File { w, .. } => w,
            Sink::Mem(buf) => buf,
        };
        self.events += self.ring.len() as u64;
        for ev in self.ring.drain(..) {
            writeln!(w, "{}", ev.to_line())?;
        }
        Ok(())
    }

    /// Flush the remaining ring contents and close the sink.
    pub fn finish(mut self) -> io::Result<RecorderOutput> {
        self.spill()?;
        match self.sink {
            Sink::File { path, mut w } => {
                w.flush()?;
                Ok(RecorderOutput {
                    events: self.events,
                    path: Some(path),
                    bytes: None,
                })
            }
            Sink::Mem(buf) => Ok(RecorderOutput {
                events: self.events,
                path: None,
                bytes: Some(buf),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(cap: usize) -> Recorder {
        Recorder::in_memory(TraceConfig {
            ring_capacity: cap,
            queue_decimation: 1,
        })
    }

    #[test]
    fn ring_spills_and_preserves_order() {
        let mut r = small(3);
        for seq in 0..10 {
            r.emit(seq, EventKind::Generated { seq });
        }
        let out = r.finish().unwrap();
        let text = String::from_utf8(out.bytes.unwrap()).unwrap();
        let seqs: Vec<u64> = text
            .lines()
            .map(|l| match TraceEvent::parse_line(l).unwrap().kind {
                EventKind::Generated { seq } => seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn file_sink_writes_identical_bytes_to_memory_sink() {
        let dir = std::env::temp_dir().join(format!("obs-rec-{}", std::process::id()));
        let path = dir.join("t.jsonl");
        let cfg = TraceConfig {
            ring_capacity: 4,
            queue_decimation: 1,
        };
        let mut f = Recorder::to_file(cfg, &path).unwrap();
        let mut m = Recorder::in_memory(cfg);
        for seq in 0..9 {
            f.emit(seq * 7, EventKind::Generated { seq });
            m.emit(seq * 7, EventKind::Generated { seq });
        }
        let fp = f.finish().unwrap().path.unwrap();
        let mem = m.finish().unwrap().bytes.unwrap();
        assert_eq!(std::fs::read(&fp).unwrap(), mem);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression guard for the exact-capacity boundary: writing precisely
    /// `capacity` events must spill exactly once with every event present
    /// once, and `capacity + 1` must not drop or duplicate the event that
    /// lands right after the spill.
    #[test]
    fn exact_capacity_boundary_drops_and_duplicates_nothing() {
        const CAP: u64 = 5;
        for total in [CAP, CAP + 1] {
            let mut r = small(CAP as usize);
            for seq in 0..total {
                r.emit(seq, EventKind::Generated { seq });
            }
            let out = r.finish().unwrap();
            assert_eq!(out.events, total, "event count for {total} emits");
            let text = String::from_utf8(out.bytes.unwrap()).unwrap();
            let seqs: Vec<u64> = text
                .lines()
                .map(|l| match TraceEvent::parse_line(l).unwrap().kind {
                    EventKind::Generated { seq } => seq,
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            assert_eq!(
                seqs,
                (0..total).collect::<Vec<_>>(),
                "JSONL for {total} emits at capacity {CAP} must hold every \
                 event exactly once, in order"
            );
        }
    }

    #[test]
    fn event_count_is_reported() {
        let mut r = small(2);
        for seq in 0..5 {
            r.emit(seq, EventKind::Generated { seq });
        }
        let out = r.finish().unwrap();
        let lines = out.bytes.unwrap();
        assert_eq!(String::from_utf8(lines).unwrap().lines().count(), 5);
        assert_eq!(out.events, 5);
    }
}
