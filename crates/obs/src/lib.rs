//! `obs` — the flight-recorder observability layer.
//!
//! Every layer of the stack (the `netsim` engine, the `dmp-sim` scheduler
//! apps, the `scenario` driver, and the `dmp-live` socket experiments) feeds
//! one structured event stream with a shared schema: per-connection TCP state
//! transitions, queue-occupancy samples, per-path pull/stripe decisions, and
//! scripted path events. Events are timestamped in simulation time (or
//! nominal time for live runs, so the two are directly comparable) and sink
//! into a bounded in-memory ring that spills to JSONL — one file per run.
//!
//! Three invariants make the recorder safe to leave wired into the hot path:
//!
//! * **zero-cost when off** — producers check a flag before constructing any
//!   event; a disabled run executes the exact same instruction stream and
//!   consumes the exact same RNG draws as a build that never heard of
//!   tracing, so deterministic artifacts are byte-identical either way;
//! * **deterministic when on** — emission is a pure function of simulation
//!   state, so a trace file is byte-identical across scheduler engines and
//!   across runner thread counts (each run writes its own file);
//! * **bounded memory** — the ring holds a fixed number of events and spills
//!   to its sink when full, so multi-minute traces never accumulate in RAM.
//!
//! The [`report`] module parses traces back and computes paper-style
//! diagnostics (cwnd evolution, per-path throughput timelines, queue-depth
//! percentiles); the `trace-report` binary in `dmp-bench` builds the
//! per-glitch "why" report on top.
//!
//! The [`metrics`] module is the complementary **always-on** layer: cheap
//! mergeable counters/gauges/histograms that every run records regardless of
//! tracing, snapshotted into artifact sidecars and compared across runs by
//! the `bench_diff` regression differ.

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod report;

pub use event::{EventKind, PathAction, TraceEvent};
pub use metrics::{record_frame_metrics, Histogram, MetricsSnapshot};
pub use recorder::{Recorder, TraceConfig};
pub use registry::{drain_trace_files, record_trace_file, TraceFileRef};
pub use report::Trace;

use std::path::PathBuf;

/// Default directory trace files are written into: `DMP_TRACE_DIR` if set,
/// else `traces/` under the artifact directory (`DMP_ARTIFACT_DIR`, default
/// `target/artifacts` respecting `CARGO_TARGET_DIR`) — mirroring
/// `dmp-runner`'s `ArtifactWriter::from_env` so traces land next to the
/// artifacts they explain.
pub fn default_trace_dir() -> PathBuf {
    if let Some(d) = std::env::var_os("DMP_TRACE_DIR") {
        return PathBuf::from(d);
    }
    std::env::var_os("DMP_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::var_os("CARGO_TARGET_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("target"))
                .join("artifacts")
        })
        .join("traces")
}

/// Sanitise a run label into a file stem: every character outside
/// `[A-Za-z0-9._-]` becomes `_`. Labels like `scn:failover:Dmp:run0` map to
/// stable, filesystem-safe names.
pub fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sanitise_to_file_stems() {
        assert_eq!(
            sanitize_label("scn:failover:Dmp:run0"),
            "scn_failover_Dmp_run0"
        );
        assert_eq!(sanitize_label("a b/c"), "a_b_c");
        assert_eq!(sanitize_label("ok-1.2_x"), "ok-1.2_x");
    }
}
