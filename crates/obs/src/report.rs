//! Trace post-processing: parse a JSONL trace back into events and compute
//! the paper-style diagnostics (cwnd evolution, per-path throughput
//! timelines, queue-depth percentiles, event windows around a glitch).
//!
//! The resilience-specific "why" report lives in `dmp-bench`'s `trace_report`
//! binary, which combines these primitives with `dmp-core`'s glitch model.

use crate::event::{EventKind, TraceEvent};
use dmp_core::Distribution;

const SECOND_NS: f64 = 1e9;

/// A parsed trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in file order (which is emission order).
    pub events: Vec<TraceEvent>,
}

/// Depth percentiles of one queue's occupancy samples, computed by
/// [`Distribution::from_values`] — the repo's single percentile
/// implementation (linear interpolation between order statistics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueStats {
    /// Number of samples.
    pub samples: usize,
    /// Median depth.
    pub p50: f64,
    /// 90th-percentile depth.
    pub p90: f64,
    /// 99th-percentile depth.
    pub p99: f64,
    /// Maximum sampled depth.
    pub max: f64,
}

/// One reconstructed video-packet delivery: generation and arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketTimes {
    /// Video packet sequence number.
    pub seq: u64,
    /// Generation time, seconds.
    pub gen_s: f64,
    /// Arrival time, seconds (`None`: never arrived in the trace window).
    pub arrival_s: Option<f64>,
    /// Path it arrived over (`None` until it arrives).
    pub path: Option<u32>,
}

impl Trace {
    /// Parse JSONL text. Unknown or malformed lines are skipped (forward
    /// compatibility); returns an error only if *nothing* parsed from a
    /// non-empty input, which indicates the wrong file.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut events = Vec::new();
        let mut lines = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            lines += 1;
            if let Some(ev) = TraceEvent::parse_line(line) {
                events.push(ev);
            }
        }
        if events.is_empty() && lines > 0 {
            return Err(format!("no trace events in {lines} non-empty lines"));
        }
        Ok(Trace { events })
    }

    /// Timestamp of the last event, in seconds.
    pub fn duration_s(&self) -> f64 {
        self.events.iter().map(|e| e.t).max().unwrap_or(0) as f64 / SECOND_NS
    }

    /// `(path, conn)` pairs from the header events, sorted by path.
    pub fn path_conn_map(&self) -> Vec<(u32, u32)> {
        let mut map: Vec<(u32, u32)> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::PathConn { path, conn } => Some((path, conn)),
                _ => None,
            })
            .collect();
        map.sort_unstable();
        map.dedup();
        map
    }

    /// `(conn, algorithm name)` pairs from the `cc_algo` header events,
    /// sorted by connection.
    pub fn cc_algo_map(&self) -> Vec<(u32, String)> {
        let mut map: Vec<(u32, String)> = self
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::CcAlgo { conn, algo } => Some((*conn, algo.clone())),
                _ => None,
            })
            .collect();
        map.sort_unstable();
        map.dedup();
        map
    }

    /// Pull-strategy name from the header events, if the trace recorded one.
    pub fn strategy(&self) -> Option<String> {
        self.events.iter().find_map(|e| match &e.kind {
            EventKind::Strategy { name } => Some(name.clone()),
            _ => None,
        })
    }

    /// Connection ids that have cwnd events, ascending.
    pub fn conns(&self) -> Vec<u32> {
        let mut conns: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Cwnd { conn, .. } => Some(conn),
                _ => None,
            })
            .collect();
        conns.sort_unstable();
        conns.dedup();
        conns
    }

    /// Cwnd evolution of one connection: `(t_s, cwnd, ssthresh)` per change.
    pub fn cwnd_series(&self, conn: u32) -> Vec<(f64, f64, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Cwnd {
                    conn: c,
                    cwnd,
                    ssthresh,
                } if c == conn => Some((e.t as f64 / SECOND_NS, cwnd, ssthresh)),
                _ => None,
            })
            .collect()
    }

    /// Per-path delivered-packet counts in fixed time buckets:
    /// `(path, counts)` with `counts[i]` covering
    /// `[i*bucket_s, (i+1)*bucket_s)`. Paths sorted ascending; every path
    /// gets the same number of buckets (covering the full trace).
    pub fn path_throughput(&self, bucket_s: f64) -> Vec<(u32, Vec<u64>)> {
        assert!(bucket_s > 0.0, "bucket width must be positive");
        let buckets = (self.duration_s() / bucket_s).floor() as usize + 1;
        let mut paths: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Delivered { path, .. } => Some(path),
                _ => None,
            })
            .collect();
        paths.sort_unstable();
        paths.dedup();
        let mut out: Vec<(u32, Vec<u64>)> = paths
            .into_iter()
            .map(|p| (p, vec![0u64; buckets]))
            .collect();
        for e in &self.events {
            if let EventKind::Delivered { path, .. } = e.kind {
                let b = ((e.t as f64 / SECOND_NS) / bucket_s) as usize;
                if let Some((_, counts)) = out.iter_mut().find(|(p, _)| *p == path) {
                    counts[b.min(buckets - 1)] += 1;
                }
            }
        }
        out
    }

    /// Occupancy percentiles of one link queue.
    pub fn link_queue_stats(&self, link: u32) -> QueueStats {
        self.queue_stats(|k| match k {
            EventKind::LinkQueue { link: l, depth } if *l == link => Some(*depth),
            _ => None,
        })
    }

    /// Link ids with queue samples, ascending.
    pub fn sampled_links(&self) -> Vec<u32> {
        let mut links: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::LinkQueue { link, .. } => Some(link),
                _ => None,
            })
            .collect();
        links.sort_unstable();
        links.dedup();
        links
    }

    /// Occupancy percentiles of the DMP server's shared pull queue.
    pub fn srv_queue_stats(&self) -> QueueStats {
        self.queue_stats(|k| match k {
            EventKind::SrvQueue { depth } => Some(*depth),
            _ => None,
        })
    }

    fn queue_stats(&self, f: impl Fn(&EventKind) -> Option<u32>) -> QueueStats {
        let depths: Vec<f64> = self
            .events
            .iter()
            .filter_map(|e| f(&e.kind).map(f64::from))
            .collect();
        let d = Distribution::from_values(&depths);
        QueueStats {
            samples: depths.len(),
            p50: d.p50,
            p90: d.p90,
            p99: d.p99,
            max: d.max,
        }
    }

    /// Recovery-relevant events (retransmits, RTO expirations, fast-recovery
    /// transitions, scripted path events) inside `[t0_s, t1_s]`.
    pub fn recovery_events_in(&self, t0_s: f64, t1_s: f64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| {
                let t = e.t as f64 / SECOND_NS;
                t >= t0_s
                    && t <= t1_s
                    && matches!(
                        e.kind,
                        EventKind::Retransmit { .. }
                            | EventKind::RtoTimeout { .. }
                            | EventKind::FastRecovery { .. }
                            | EventKind::PathEvent { .. }
                    )
            })
            .collect()
    }

    /// Scripted path events in file order.
    pub fn path_events(&self) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PathEvent { .. }))
            .collect()
    }

    /// Reconstruct per-packet generation/arrival times from the `gen` and
    /// `dlv` events, ordered by sequence number. Packets that arrived
    /// without a recorded generation (trace started late) are skipped.
    pub fn packet_times(&self) -> Vec<PacketTimes> {
        let mut by_seq: Vec<PacketTimes> = Vec::new();
        for e in &self.events {
            match e.kind {
                EventKind::Generated { seq } => {
                    let idx = seq as usize;
                    if by_seq.len() <= idx {
                        by_seq.resize(
                            idx + 1,
                            PacketTimes {
                                seq: 0,
                                gen_s: f64::NAN,
                                arrival_s: None,
                                path: None,
                            },
                        );
                    }
                    by_seq[idx].seq = seq;
                    by_seq[idx].gen_s = e.t as f64 / SECOND_NS;
                }
                EventKind::Delivered { path, seq } => {
                    if let Some(p) = by_seq.get_mut(seq as usize) {
                        if p.arrival_s.is_none() {
                            p.arrival_s = Some(e.t as f64 / SECOND_NS);
                            p.path = Some(path);
                        }
                    }
                }
                _ => {}
            }
        }
        by_seq.retain(|p| p.gen_s.is_finite());
        by_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PathAction;

    fn ev(t_s: f64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t: (t_s * SECOND_NS).round() as u64,
            kind,
        }
    }

    fn sample_trace() -> Trace {
        let mut events = vec![
            ev(0.0, EventKind::PathConn { path: 0, conn: 0 }),
            ev(0.0, EventKind::PathConn { path: 1, conn: 1 }),
        ];
        for i in 0..10u64 {
            let t = i as f64;
            events.push(ev(
                t,
                EventKind::Cwnd {
                    conn: 0,
                    cwnd: 2.0 + i as f64,
                    ssthresh: 8.0,
                },
            ));
            events.push(ev(t, EventKind::Generated { seq: i }));
            events.push(ev(
                t + 0.1,
                EventKind::Delivered {
                    path: (i % 2) as u32,
                    seq: i,
                },
            ));
            events.push(ev(
                t,
                EventKind::LinkQueue {
                    link: 3,
                    depth: i as u32,
                },
            ));
        }
        events.push(ev(
            5.0,
            EventKind::PathEvent {
                path: 1,
                action: PathAction::Down,
            },
        ));
        events.push(ev(
            5.2,
            EventKind::RtoTimeout {
                conn: 1,
                seq: 3,
                backoff_exp: 1,
            },
        ));
        Trace { events }
    }

    #[test]
    fn parse_round_trips_through_text() {
        let t = sample_trace();
        let text: String = t
            .events
            .iter()
            .map(|e| format!("{}\n", e.to_line()))
            .collect();
        let back = Trace::parse(&text).unwrap();
        assert_eq!(back.events, t.events);
    }

    #[test]
    fn cwnd_series_filters_by_conn() {
        let t = sample_trace();
        let s = t.cwnd_series(0);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], (0.0, 2.0, 8.0));
        assert!(t.cwnd_series(9).is_empty());
    }

    #[test]
    fn throughput_buckets_split_paths() {
        let t = sample_trace();
        let th = t.path_throughput(2.0);
        assert_eq!(th.len(), 2);
        let total: u64 = th.iter().flat_map(|(_, c)| c.iter()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn queue_percentiles_are_order_statistics() {
        let t = sample_trace();
        let q = t.link_queue_stats(3);
        assert_eq!(q.samples, 10);
        assert_eq!(q.max, 9.0);
        assert!((q.p50 - 4.5).abs() < 1e-12, "p50 {}", q.p50);
        assert!((q.p99 - 8.91).abs() < 1e-12, "p99 {}", q.p99);
        assert_eq!(t.link_queue_stats(99).samples, 0);
        assert_eq!(t.sampled_links(), vec![3]);
    }

    #[test]
    fn recovery_window_catches_path_event_and_rto() {
        let t = sample_trace();
        let w = t.recovery_events_in(4.5, 5.5);
        assert_eq!(w.len(), 2);
        assert!(matches!(w[0].kind, EventKind::PathEvent { path: 1, .. }));
        assert!(matches!(w[1].kind, EventKind::RtoTimeout { conn: 1, .. }));
        assert!(t.recovery_events_in(8.0, 9.0).is_empty());
    }

    #[test]
    fn packet_times_pair_generation_with_arrival() {
        let t = sample_trace();
        let pkts = t.packet_times();
        assert_eq!(pkts.len(), 10);
        assert_eq!(pkts[4].seq, 4);
        assert!((pkts[4].gen_s - 4.0).abs() < 1e-9);
        assert!((pkts[4].arrival_s.unwrap() - 4.1).abs() < 1e-9);
        assert_eq!(pkts[4].path, Some(0));
    }

    #[test]
    fn empty_input_parses_to_empty_trace_but_garbage_errors() {
        assert!(Trace::parse("").unwrap().events.is_empty());
        assert!(Trace::parse("junk\nmore junk\n").is_err());
    }
}
