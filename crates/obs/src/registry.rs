//! Process-wide registry of trace files written during a harness run.
//!
//! Jobs run deep inside worker threads with no channel back to the harness;
//! like `netsim::telemetry` and `dmp-live`'s timeline registry, trace writers
//! register here and the harness drains the registry into the volatile
//! `.meta.json` sidecar after each target, so every artifact references the
//! traces that explain it.

use std::path::PathBuf;
use std::sync::Mutex;

/// A reference to one written trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFileRef {
    /// The run label the trace belongs to (the runner job label).
    pub label: String,
    /// Where the JSONL file was written.
    pub path: PathBuf,
    /// Number of events in the file.
    pub events: u64,
}

static FILES: Mutex<Vec<TraceFileRef>> = Mutex::new(Vec::new());

/// Register a written trace file.
pub fn record_trace_file(label: impl Into<String>, path: impl Into<PathBuf>, events: u64) {
    FILES.lock().unwrap().push(TraceFileRef {
        label: label.into(),
        path: path.into(),
        events,
    });
}

/// Take all registered trace files, sorted by label (drain order depends on
/// worker scheduling; the sort makes sidecar contents thread-count
/// independent).
pub fn drain_trace_files() -> Vec<TraceFileRef> {
    let mut files = std::mem::take(&mut *FILES.lock().unwrap());
    files.sort_by(|a, b| a.label.cmp(&b.label));
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_empties_and_sorts() {
        // Registry is process-global; drain first so parallel tests in this
        // crate (there are none writing here) cannot interfere.
        drain_trace_files();
        record_trace_file("b", "/tmp/b.jsonl", 2);
        record_trace_file("a", "/tmp/a.jsonl", 1);
        let files = drain_trace_files();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].label, "a");
        assert_eq!(files[1].label, "b");
        assert!(drain_trace_files().is_empty());
    }
}
