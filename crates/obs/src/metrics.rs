//! Always-on mergeable metrics: counters, gauges, and fixed-log-bucket
//! histograms that every layer of the stack feeds on its hot path.
//!
//! Unlike the flight-recorder traces (heavy, uncacheable, off by default),
//! metrics are **always on** and **cache-compatible**: a snapshot is a pure
//! function of the run — no RNG draws, no scheduled events, no clocks — so
//! it rides inside cached job results and replays byte-identically from the
//! cache. Three properties make the layer safe to leave enabled everywhere:
//!
//! * **behaviour-neutral** — recording a sample is an array increment plus
//!   integer moment updates; it never perturbs the simulation, so metrics-on
//!   artifacts are byte-identical to a build that never heard of metrics;
//! * **exactly mergeable** — counters add, gauges take the max, histogram
//!   buckets and moments add as integers, so merging shard snapshots is
//!   commutative and associative: any merge order produces the identical
//!   snapshot (the same discipline as `EngineTelemetry::absorb`);
//! * **deterministic serialisation** — snapshots serialise with sorted keys
//!   and exact integer bucket counts, so two equal snapshots render the
//!   same bytes across engines, runner thread counts, and trace on/off.
//!
//! The histogram is HDR-style log-linear: values `< 8` get exact unit
//! buckets; every power-of-two octave above splits into 8 sub-buckets
//! (≤ 12.5 % relative bucket width). Alongside the buckets each histogram
//! keeps exact integer moments (`count`, `sum`, `sum_sq` in `u128`, `min`,
//! `max`), from which [`dmp_core::Distribution`] reconstructs mean, p50,
//! p90, p99, max, and stddev — the repo's single percentile implementation.

use std::collections::BTreeMap;

use dmp_core::trace::StreamTrace;
use dmp_core::Distribution;
use dmp_runner::{Json, JsonCodec};

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = SUB as usize * (64 - SUB_BITS as usize + 1);

/// Bucket index of a value: exact below [`SUB`], log-linear above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let shift = top - SUB_BITS;
        let sub = ((v >> shift) & (SUB - 1)) as usize;
        SUB as usize + shift as usize * SUB as usize + sub
    }
}

/// `[lo, hi)` value range of bucket `i` (inverse of [`bucket_index`]).
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB as usize {
        (i as u64, i as u64 + 1)
    } else {
        let j = i - SUB as usize;
        let shift = (j / SUB as usize) as u32;
        let sub = (j % SUB as usize) as u64;
        let lo = (SUB + sub) << shift;
        (lo, lo + (1u64 << shift))
    }
}

/// A mergeable fixed-log-bucket histogram over `u64` samples.
///
/// Callers pick the unit when recording (microseconds for RTTs,
/// milliseconds for frame delays, packets for queue depths, …) and encode
/// it in the metric name (`net.rtt_us`). All state is integer, so merges
/// are exact and order-independent.
#[derive(Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    sum_sq: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram. Allocates its bucket array once; recording never
    /// allocates (the steady-state event loop stays zero-alloc).
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.sum_sq += u128::from(v) * u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.sum_sq += u128::from(v) * u128::from(v) * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self`. Exact integer arithmetic: commutative and
    /// associative, so any merge order yields the identical histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Non-empty buckets as ascending `(index, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Non-empty buckets as ascending `(lo, hi, count)` value-range triples.
    pub fn bounds_buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.nonzero_buckets().map(|(i, c)| {
            let (lo, hi) = bucket_bounds(i);
            (lo as f64, hi as f64, c)
        })
    }

    /// Reconstruct the summary distribution (mean/p50/p90/p99/max/stddev)
    /// from the buckets and exact moments.
    pub fn distribution(&self) -> Distribution {
        Distribution::from_histogram(
            self.count,
            self.sum as f64,
            self.sum_sq as f64,
            self.min() as f64,
            self.max as f64,
            self.bounds_buckets(),
        )
    }
}

impl JsonCodec for Histogram {
    fn to_json(&self) -> Json {
        let d = self.distribution();
        Json::obj([
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum as f64)),
            ("sum_sq", Json::Num(self.sum_sq as f64)),
            ("min", Json::Num(self.min() as f64)),
            ("max", Json::Num(self.max as f64)),
            ("mean", Json::Num(d.mean)),
            ("p50", Json::Num(d.p50)),
            ("p90", Json::Num(d.p90)),
            ("p99", Json::Num(d.p99)),
            ("stddev", Json::Num(d.stddev)),
            (
                "buckets",
                Json::arr(
                    self.nonzero_buckets()
                        .map(|(i, c)| Json::nums([i as f64, c as f64])),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let mut h = Histogram::new();
        h.count = json.get("count")?.as_u64()?;
        if h.count == 0 {
            return Some(h);
        }
        h.sum = json.get("sum")?.as_f64()? as u128;
        h.sum_sq = json.get("sum_sq")?.as_f64()? as u128;
        h.min = json.get("min")?.as_u64()?;
        h.max = json.get("max")?.as_u64()?;
        for pair in json.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            let idx = pair.first()?.as_u64()? as usize;
            if idx >= BUCKETS {
                return None;
            }
            h.counts[idx] = pair.get(1)?.as_u64()?;
        }
        Some(h)
    }
}

/// One frozen, serialisable, mergeable metrics reading.
///
/// `labels` carry configuration identity (`cc`, `strategy`, `engine`);
/// `bench_diff` refuses to compare snapshots whose labels disagree instead
/// of reporting spurious drift. Merging two snapshots with conflicting
/// label values records the literal value `"mixed"`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Configuration identity labels, e.g. `cc → reno`.
    pub labels: BTreeMap<String, String>,
    /// Monotone event counts; merges add.
    pub counters: BTreeMap<String, u64>,
    /// Level readings; merges take the maximum (the only commutative choice
    /// without a sample count).
    pub gauges: BTreeMap<String, f64>,
    /// Sample distributions; merges add buckets and moments exactly.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Label value recorded when merged snapshots disagree on a label.
pub const MIXED_LABEL: &str = "mixed";

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Raise gauge `name` to at least `v`.
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if v > *g {
            *g = v;
        }
    }

    /// Mutable access to histogram `name` (created empty on first use).
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Set configuration label `key` to `value`.
    pub fn set_label(&mut self, key: &str, value: impl Into<String>) {
        self.labels.insert(key.to_string(), value.into());
    }

    /// Builder-style [`set_label`](Self::set_label).
    pub fn with_label(mut self, key: &str, value: impl Into<String>) -> Self {
        self.set_label(key, value);
        self
    }

    /// Fold `other` into `self`: counters add, gauges max, histograms merge
    /// exactly, and conflicting labels collapse to [`MIXED_LABEL`]. The
    /// operation is commutative and associative, so shard merges are
    /// order-deterministic — the same path `EngineTelemetry::absorb` takes
    /// for engine counters.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.labels {
            match self.labels.get(k) {
                Some(mine) if mine != v => {
                    self.labels.insert(k.clone(), MIXED_LABEL.to_string());
                }
                Some(_) => {}
                None => {
                    self.labels.insert(k.clone(), v.clone());
                }
            }
        }
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauge_max(k, v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

impl JsonCodec for MetricsSnapshot {
    /// Deterministic rendering: `BTreeMap` iteration sorts every section by
    /// key, and histograms serialise exact integer state, so equal
    /// snapshots produce identical bytes.
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "labels",
                Json::obj(
                    self.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
                ),
            ),
            (
                "counters",
                Json::obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v as f64))),
                ),
            ),
            (
                "gauges",
                Json::obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::Num(v)))),
            ),
            (
                "histograms",
                Json::obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json())),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let pairs = |key: &str| -> Option<Vec<(String, Json)>> {
            match json.get(key)? {
                Json::Obj(pairs) => Some(pairs.clone()),
                _ => None,
            }
        };
        let mut s = MetricsSnapshot::new();
        for (k, v) in pairs("labels")? {
            s.labels.insert(k, v.as_str()?.to_string());
        }
        for (k, v) in pairs("counters")? {
            s.counters.insert(k, v.as_u64()?);
        }
        for (k, v) in pairs("gauges")? {
            s.gauges.insert(k, v.as_f64()?);
        }
        for (k, v) in pairs("histograms")? {
            s.histograms.insert(k, Histogram::from_json(&v)?);
        }
        Some(s)
    }
}

/// Record the frame-level metrics every backend shares — the DMP scheme's
/// per-packet delivery trace folded into counters and histograms:
///
/// * `frame.generated` / `frame.delivered` / `frame.lost` counters;
/// * `frame.delay_ms` — delivery delay (arrival − generation) per
///   delivered packet, the τ-independent lateness distribution (a packet is
///   late at startup delay τ iff its delay exceeds τ);
/// * `sched.pull_path<k>` — delivered packets per path, counting the pull
///   scheduler's striping decisions.
///
/// Shared by `dmp-sim` (sim time), `fleet` shards (per session), and
/// `dmp-live` (nominal time), so all three layers report comparable
/// distributions.
pub fn record_frame_metrics(snap: &mut MetricsSnapshot, trace: &StreamTrace) {
    let mut delivered = 0u64;
    let hist = snap.histograms.entry("frame.delay_ms".into()).or_default();
    let mut per_path = [0u64; 16];
    for r in trace.records() {
        if let Some(arrival) = r.arrival_ns {
            delivered += 1;
            hist.record(arrival.saturating_sub(r.gen_ns) / 1_000_000);
            per_path[(r.path as usize).min(per_path.len() - 1)] += 1;
        }
    }
    let generated = trace.generated();
    snap.counter_add("frame.generated", generated);
    snap.counter_add("frame.delivered", delivered);
    snap.counter_add("frame.lost", generated.saturating_sub(delivered));
    for (k, &n) in per_path.iter().enumerate() {
        if n > 0 {
            snap.counter_add(&format!("sched.pull_path{k}"), n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        for v in (0..2048u64).chain([4095, 4096, 1 << 20, (1 << 20) + 137, u64::MAX / 2, u64::MAX])
        {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v, "lo {lo} > v {v}");
            assert!(v - lo < hi - lo, "v {v} outside [{lo}, {hi})");
        }
        // Bucket bounds tile the value space in index order.
        let mut prev_hi = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, prev_hi, "gap before bucket {i}");
            assert!(hi > lo || i == BUCKETS - 1);
            prev_hi = hi;
        }
    }

    #[test]
    fn histogram_moments_are_exact() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 10, 100] {
            h.record(v);
        }
        h.record_n(7, 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 100);
        let d = h.distribution();
        assert!((d.mean - 130.0 / 6.0).abs() < 1e-12);
        assert_eq!(d.max, 100.0);
        assert!(d.p50 >= 3.0 && d.p50 <= 8.0, "p50 {}", d.p50);
    }

    #[test]
    fn histogram_merge_is_order_invariant() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 17 % 3000);
        }
        for v in 0..300u64 {
            b.record(v * 31 % 50_000);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(
            ab.to_json().render(),
            ba.to_json().render(),
            "merged histograms must serialise identically"
        );
    }

    #[test]
    fn histogram_json_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 8, 9, 1023, 65_536, 12_345_678] {
            h.record(v);
        }
        let back = Histogram::from_json(&h.to_json()).expect("round-trip");
        assert_eq!(h, back);
        let empty = Histogram::from_json(&Histogram::new().to_json()).expect("empty");
        assert!(empty.is_empty());
    }

    #[test]
    fn snapshot_merges_and_round_trips() {
        let mut a = MetricsSnapshot::new().with_label("cc", "reno");
        a.counter_add("net.retransmits", 3);
        a.gauge_max("net.flows", 4.0);
        a.histogram("net.rtt_us").record(150_000);
        let mut b = MetricsSnapshot::new().with_label("cc", "reno");
        b.counter_add("net.retransmits", 5);
        b.gauge_max("net.flows", 2.0);
        b.histogram("net.rtt_us").record(90_000);
        b.histogram("frame.delay_ms").record(12);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters["net.retransmits"], 8);
        assert_eq!(ab.gauges["net.flows"], 4.0);
        assert_eq!(ab.labels["cc"], "reno");
        assert_eq!(ab.histograms["net.rtt_us"].count(), 2);

        let back = MetricsSnapshot::from_json(&ab.to_json()).expect("round-trip");
        assert_eq!(ab, back);
        assert_eq!(ab.to_json().render(), back.to_json().render());
    }

    #[test]
    fn conflicting_labels_merge_to_mixed() {
        let a = MetricsSnapshot::new().with_label("cc", "reno");
        let b = MetricsSnapshot::new()
            .with_label("cc", "cubic")
            .with_label("strategy", "round-robin");
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.labels["cc"], MIXED_LABEL);
        assert_eq!(m.labels["strategy"], "round-robin");
    }

    #[test]
    fn frame_metrics_fold_a_delivery_trace() {
        use dmp_core::spec::VideoSpec;
        let mut t = StreamTrace::new(VideoSpec::new(50.0), 10_000_000_000);
        for seq in 0..10u64 {
            t.on_generated(seq, seq * 20_000_000);
            if seq < 8 {
                t.on_arrival(seq, seq * 20_000_000 + 250_000_000, (seq % 2) as u8);
            }
        }
        let mut s = MetricsSnapshot::new();
        record_frame_metrics(&mut s, &t);
        assert_eq!(s.counters["frame.generated"], 10);
        assert_eq!(s.counters["frame.delivered"], 8);
        assert_eq!(s.counters["frame.lost"], 2);
        assert_eq!(s.counters["sched.pull_path0"], 4);
        assert_eq!(s.counters["sched.pull_path1"], 4);
        let h = &s.histograms["frame.delay_ms"];
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 250);
    }
}
