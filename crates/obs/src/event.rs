//! The trace event schema and its JSONL wire format.
//!
//! One event per line, one flat JSON object per event, fields in a fixed
//! order — the encoding is fully deterministic (floats use Rust's shortest
//! round-trip formatting), so byte-comparing two trace files is a valid
//! equality test. The same schema is used for simulation traces (timestamps
//! in simulated nanoseconds) and live-socket traces (nominal nanoseconds
//! since stream start, i.e. wall time divided by the dilation factor).

/// One recorded event: a timestamp in nanoseconds plus the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since run start (simulated or nominal).
    pub t: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A scripted path-dynamics action, as applied by the scenario driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathAction {
    /// Path administratively downed.
    Down,
    /// Path restored.
    Up,
    /// Bottleneck rate changed.
    Rate,
    /// Propagation delay changed.
    Delay,
    /// Bernoulli loss probability set.
    Loss,
    /// Bernoulli loss probability cleared.
    LossClear,
    /// Flash-crowd flows started.
    FlashStart,
    /// Flash-crowd flows stopped.
    FlashStop,
}

impl PathAction {
    /// Wire name of the action.
    pub fn name(self) -> &'static str {
        match self {
            PathAction::Down => "down",
            PathAction::Up => "up",
            PathAction::Rate => "rate",
            PathAction::Delay => "delay",
            PathAction::Loss => "loss",
            PathAction::LossClear => "loss_clear",
            PathAction::FlashStart => "flash_start",
            PathAction::FlashStop => "flash_stop",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "down" => PathAction::Down,
            "up" => PathAction::Up,
            "rate" => PathAction::Rate,
            "delay" => PathAction::Delay,
            "loss" => PathAction::Loss,
            "loss_clear" => PathAction::LossClear,
            "flash_start" => PathAction::FlashStart,
            "flash_stop" => PathAction::FlashStop,
            _ => return None,
        })
    }
}

/// The event payload. `conn` identifies a TCP connection (the netsim flow id
/// or the live path socket index); `path` identifies a DMP path; a
/// [`EventKind::PathConn`] header event maps one onto the other.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Header: DMP path `path` rides on TCP connection `conn`.
    PathConn {
        /// Path index (0-based).
        path: u32,
        /// Connection id.
        conn: u32,
    },
    /// Header: TCP connection `conn` runs congestion-control algorithm
    /// `algo` (`cc::CcKind::name()`); cwnd marks for the connection are
    /// interpreted against it.
    CcAlgo {
        /// Connection id.
        conn: u32,
        /// Stable algorithm name (`"reno"`, `"cubic"`, `"bbr-lite"`).
        algo: String,
    },
    /// Header: the server's pull strategy for this run
    /// (`dmp_core::spec::PullStrategy::name()`).
    Strategy {
        /// Stable strategy name (e.g. `"round-robin"`).
        name: String,
    },
    /// Congestion window or slow-start threshold changed.
    Cwnd {
        /// Connection id.
        conn: u32,
        /// New congestion window, segments (fractional in avoidance).
        cwnd: f64,
        /// Slow-start threshold, segments.
        ssthresh: f64,
    },
    /// Fast recovery entered (`entered = true`) or exited.
    FastRecovery {
        /// Connection id.
        conn: u32,
        /// Whether recovery began (false: ended).
        entered: bool,
    },
    /// A segment was retransmitted.
    Retransmit {
        /// Connection id.
        conn: u32,
        /// Segment number.
        seq: u64,
        /// Fast retransmit (true) vs timeout-driven (false).
        fast: bool,
    },
    /// The retransmission timer expired.
    RtoTimeout {
        /// Connection id.
        conn: u32,
        /// Oldest outstanding segment at expiry.
        seq: u64,
        /// Backoff exponent after this expiry (RTO multiplier is 2^exp).
        backoff_exp: u32,
    },
    /// Occupancy sample of a link's drop-tail queue (decimated: every Nth
    /// change per link).
    LinkQueue {
        /// Link id.
        link: u32,
        /// Queued packets (excluding the one in serialisation).
        depth: u32,
    },
    /// Occupancy sample of the DMP server's shared pull queue.
    SrvQueue {
        /// Queued video packets.
        depth: u32,
    },
    /// DMP pull decision: the server handed packet `seq` to `path`.
    Pull {
        /// Path index.
        path: u32,
        /// Video packet sequence number.
        seq: u64,
        /// Shared-queue depth after the pull.
        queued: u32,
    },
    /// Static-split decision: the splitter assigned packet `seq` to `path`.
    Stripe {
        /// Path index.
        path: u32,
        /// Video packet sequence number.
        seq: u64,
    },
    /// The source generated video packet `seq`.
    Generated {
        /// Video packet sequence number.
        seq: u64,
    },
    /// Video packet `seq` arrived at the client over `path`.
    Delivered {
        /// Path index.
        path: u32,
        /// Video packet sequence number.
        seq: u64,
    },
    /// The scenario driver applied a scripted action to `path`.
    PathEvent {
        /// Path index.
        path: u32,
        /// Which action.
        action: PathAction,
    },
    /// A fleet session arrived (`up = true`) or departed. `session` is the
    /// global session index, stable across shard-chunking choices.
    Session {
        /// Global session index.
        session: u32,
        /// Arrival (true) or departure (false).
        up: bool,
    },
}

/// Format an `f64` deterministically (Rust's shortest round-trip form, which
/// is valid JSON for all finite values).
fn fmt_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "trace floats must be finite");
    format!("{x:?}")
}

impl TraceEvent {
    /// Encode as one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let t = self.t;
        match &self.kind {
            EventKind::PathConn { path, conn } => {
                format!("{{\"t\":{t},\"ev\":\"path_conn\",\"path\":{path},\"conn\":{conn}}}")
            }
            EventKind::CcAlgo { conn, algo } => {
                format!("{{\"t\":{t},\"ev\":\"cc_algo\",\"conn\":{conn},\"algo\":\"{algo}\"}}")
            }
            EventKind::Strategy { name } => {
                format!("{{\"t\":{t},\"ev\":\"strategy\",\"name\":\"{name}\"}}")
            }
            EventKind::Cwnd {
                conn,
                cwnd,
                ssthresh,
            } => format!(
                "{{\"t\":{t},\"ev\":\"cwnd\",\"conn\":{conn},\"cwnd\":{},\"ssthresh\":{}}}",
                fmt_f64(*cwnd),
                fmt_f64(*ssthresh)
            ),
            EventKind::FastRecovery { conn, entered } => format!(
                "{{\"t\":{t},\"ev\":\"fastrec\",\"conn\":{conn},\"entered\":{entered}}}"
            ),
            EventKind::Retransmit { conn, seq, fast } => format!(
                "{{\"t\":{t},\"ev\":\"retx\",\"conn\":{conn},\"seq\":{seq},\"fast\":{fast}}}"
            ),
            EventKind::RtoTimeout {
                conn,
                seq,
                backoff_exp,
            } => format!(
                "{{\"t\":{t},\"ev\":\"rto\",\"conn\":{conn},\"seq\":{seq},\"backoff_exp\":{backoff_exp}}}"
            ),
            EventKind::LinkQueue { link, depth } => {
                format!("{{\"t\":{t},\"ev\":\"link_q\",\"link\":{link},\"depth\":{depth}}}")
            }
            EventKind::SrvQueue { depth } => {
                format!("{{\"t\":{t},\"ev\":\"srv_q\",\"depth\":{depth}}}")
            }
            EventKind::Pull { path, seq, queued } => format!(
                "{{\"t\":{t},\"ev\":\"pull\",\"path\":{path},\"seq\":{seq},\"queued\":{queued}}}"
            ),
            EventKind::Stripe { path, seq } => {
                format!("{{\"t\":{t},\"ev\":\"stripe\",\"path\":{path},\"seq\":{seq}}}")
            }
            EventKind::Generated { seq } => format!("{{\"t\":{t},\"ev\":\"gen\",\"seq\":{seq}}}"),
            EventKind::Delivered { path, seq } => {
                format!("{{\"t\":{t},\"ev\":\"dlv\",\"path\":{path},\"seq\":{seq}}}")
            }
            EventKind::PathEvent { path, action } => format!(
                "{{\"t\":{t},\"ev\":\"path_ev\",\"path\":{path},\"action\":\"{}\"}}",
                action.name()
            ),
            EventKind::Session { session, up } => {
                format!("{{\"t\":{t},\"ev\":\"session\",\"session\":{session},\"up\":{up}}}")
            }
        }
    }

    /// Parse one JSONL line back into an event. Returns `None` on malformed
    /// input or an unknown event name (forward compatibility: readers skip
    /// lines they do not understand).
    pub fn parse_line(line: &str) -> Option<TraceEvent> {
        let fields = parse_flat_object(line)?;
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let num = |k: &str| get(k).and_then(Value::as_f64);
        let int = |k: &str| num(k).map(|x| x as u64);
        let t = int("t")?;
        let ev = match get("ev")? {
            Value::Str(s) => s.as_str(),
            _ => return None,
        };
        let kind = match ev {
            "path_conn" => EventKind::PathConn {
                path: int("path")? as u32,
                conn: int("conn")? as u32,
            },
            "cc_algo" => EventKind::CcAlgo {
                conn: int("conn")? as u32,
                algo: match get("algo")? {
                    Value::Str(s) => s.clone(),
                    _ => return None,
                },
            },
            "strategy" => EventKind::Strategy {
                name: match get("name")? {
                    Value::Str(s) => s.clone(),
                    _ => return None,
                },
            },
            "cwnd" => EventKind::Cwnd {
                conn: int("conn")? as u32,
                cwnd: num("cwnd")?,
                ssthresh: num("ssthresh")?,
            },
            "fastrec" => EventKind::FastRecovery {
                conn: int("conn")? as u32,
                entered: get("entered")?.as_bool()?,
            },
            "retx" => EventKind::Retransmit {
                conn: int("conn")? as u32,
                seq: int("seq")?,
                fast: get("fast")?.as_bool()?,
            },
            "rto" => EventKind::RtoTimeout {
                conn: int("conn")? as u32,
                seq: int("seq")?,
                backoff_exp: int("backoff_exp")? as u32,
            },
            "link_q" => EventKind::LinkQueue {
                link: int("link")? as u32,
                depth: int("depth")? as u32,
            },
            "srv_q" => EventKind::SrvQueue {
                depth: int("depth")? as u32,
            },
            "pull" => EventKind::Pull {
                path: int("path")? as u32,
                seq: int("seq")?,
                queued: int("queued")? as u32,
            },
            "stripe" => EventKind::Stripe {
                path: int("path")? as u32,
                seq: int("seq")?,
            },
            "gen" => EventKind::Generated { seq: int("seq")? },
            "dlv" => EventKind::Delivered {
                path: int("path")? as u32,
                seq: int("seq")?,
            },
            "path_ev" => EventKind::PathEvent {
                path: int("path")? as u32,
                action: match get("action")? {
                    Value::Str(s) => PathAction::from_name(s)?,
                    _ => return None,
                },
            },
            "session" => EventKind::Session {
                session: int("session")? as u32,
                up: get("up")?.as_bool()?,
            },
            _ => return None,
        };
        Some(TraceEvent { t, kind })
    }
}

/// A scalar value in a flat JSON object.
enum Value {
    Num(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Minimal parser for one flat JSON object (`{"k":v,...}`) with number,
/// boolean, and (escape-free) string values — exactly the subset the encoder
/// produces.
fn parse_flat_object(line: &str) -> Option<Vec<(String, Value)>> {
    let s = line.trim();
    let inner = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let kend = rest.find('"')?;
        let key = rest[..kend].to_string();
        rest = rest[kend + 1..]
            .trim_start()
            .strip_prefix(':')?
            .trim_start();
        let (value, after) = if let Some(r) = rest.strip_prefix('"') {
            let vend = r.find('"')?;
            (Value::Str(r[..vend].to_string()), &r[vend + 1..])
        } else if let Some(r) = rest.strip_prefix("true") {
            (Value::Bool(true), r)
        } else if let Some(r) = rest.strip_prefix("false") {
            (Value::Bool(false), r)
        } else {
            let vend = rest
                .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
                .unwrap_or(rest.len());
            (Value::Num(rest[..vend].parse().ok()?), &rest[vend..])
        };
        fields.push((key, value));
        rest = after.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                t: 0,
                kind: EventKind::PathConn { path: 1, conn: 7 },
            },
            TraceEvent {
                t: 0,
                kind: EventKind::CcAlgo {
                    conn: 7,
                    algo: "bbr-lite".to_string(),
                },
            },
            TraceEvent {
                t: 0,
                kind: EventKind::Strategy {
                    name: "round-robin".to_string(),
                },
            },
            TraceEvent {
                t: 1_500_000_000,
                kind: EventKind::Cwnd {
                    conn: 2,
                    cwnd: 3.5,
                    ssthresh: 8.0,
                },
            },
            TraceEvent {
                t: 2,
                kind: EventKind::FastRecovery {
                    conn: 0,
                    entered: true,
                },
            },
            TraceEvent {
                t: 3,
                kind: EventKind::Retransmit {
                    conn: 0,
                    seq: 88,
                    fast: false,
                },
            },
            TraceEvent {
                t: 4,
                kind: EventKind::RtoTimeout {
                    conn: 1,
                    seq: 90,
                    backoff_exp: 3,
                },
            },
            TraceEvent {
                t: 5,
                kind: EventKind::LinkQueue { link: 3, depth: 17 },
            },
            TraceEvent {
                t: 6,
                kind: EventKind::SrvQueue { depth: 4 },
            },
            TraceEvent {
                t: 7,
                kind: EventKind::Pull {
                    path: 1,
                    seq: 402,
                    queued: 3,
                },
            },
            TraceEvent {
                t: 8,
                kind: EventKind::Stripe { path: 0, seq: 10 },
            },
            TraceEvent {
                t: 9,
                kind: EventKind::Generated { seq: 5 },
            },
            TraceEvent {
                t: 10,
                kind: EventKind::Delivered { path: 0, seq: 5 },
            },
            TraceEvent {
                t: 11,
                kind: EventKind::PathEvent {
                    path: 0,
                    action: PathAction::Down,
                },
            },
            TraceEvent {
                t: 12,
                kind: EventKind::Session {
                    session: 41,
                    up: true,
                },
            },
            TraceEvent {
                t: 13,
                kind: EventKind::Session {
                    session: 41,
                    up: false,
                },
            },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for ev in all_kinds() {
            let line = ev.to_line();
            let back =
                TraceEvent::parse_line(&line).unwrap_or_else(|| panic!("failed to parse {line}"));
            assert_eq!(back, ev, "line: {line}");
        }
    }

    #[test]
    fn fractional_cwnd_survives_exactly() {
        let ev = TraceEvent {
            t: 1,
            kind: EventKind::Cwnd {
                conn: 0,
                cwnd: 7.0 + 1.0 / 7.0,
                ssthresh: 3.5,
            },
        };
        let back = TraceEvent::parse_line(&ev.to_line()).unwrap();
        assert_eq!(back, ev, "shortest round-trip float formatting is exact");
    }

    #[test]
    fn unknown_events_and_garbage_are_skipped_not_fatal() {
        assert!(TraceEvent::parse_line("{\"t\":1,\"ev\":\"future_thing\",\"x\":2}").is_none());
        assert!(TraceEvent::parse_line("not json").is_none());
        assert!(TraceEvent::parse_line("").is_none());
    }

    #[test]
    fn encoding_is_stable() {
        // The wire format is a contract: byte-comparison of trace files is
        // the determinism test, so the exact bytes matter.
        let ev = TraceEvent {
            t: 42,
            kind: EventKind::Pull {
                path: 1,
                seq: 9,
                queued: 2,
            },
        };
        assert_eq!(
            ev.to_line(),
            "{\"t\":42,\"ev\":\"pull\",\"path\":1,\"seq\":9,\"queued\":2}"
        );
        let tag = TraceEvent {
            t: 0,
            kind: EventKind::CcAlgo {
                conn: 3,
                algo: "cubic".to_string(),
            },
        };
        assert_eq!(
            tag.to_line(),
            "{\"t\":0,\"ev\":\"cc_algo\",\"conn\":3,\"algo\":\"cubic\"}"
        );
        let strat = TraceEvent {
            t: 0,
            kind: EventKind::Strategy {
                name: "best-path".to_string(),
            },
        };
        assert_eq!(
            strat.to_line(),
            "{\"t\":0,\"ev\":\"strategy\",\"name\":\"best-path\"}"
        );
    }
}
