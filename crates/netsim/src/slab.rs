//! Free-list slab arena for in-flight packets.
//!
//! Arrival events used to carry a full `Option<Packet>` (~56 bytes) through
//! the scheduler; every push/pop and every heap sift copied it. The slab
//! keeps packet payloads in one flat arena and lets events carry a `u32`
//! slot handle instead, shrinking the scheduled event to a small `Copy`
//! struct. Slots are recycled through a free list, so steady-state
//! simulation does no allocation on the per-packet path.

use crate::packet::Packet;

/// A slab of packets currently travelling between a link's transmitter and
/// the destination node (i.e. referenced by a scheduled arrival event).
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
    hwm: usize,
}

impl PacketSlab {
    /// Create an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-grow the arena to hold `n` simultaneously resident packets
    /// without reallocating. Sizing the slab up front keeps a shard's
    /// steady-state hot path allocation-free from the first packet.
    pub fn reserve(&mut self, n: usize) {
        self.slots.reserve(n.saturating_sub(self.slots.len()));
        self.free.reserve(n.saturating_sub(self.free.len()));
    }

    /// Store a packet; returns the slot handle to embed in the event.
    #[inline]
    pub fn alloc(&mut self, pkt: Packet) -> u32 {
        self.live += 1;
        self.hwm = self.hwm.max(self.live);
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = pkt;
                slot
            }
            None => {
                self.slots.push(pkt);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Take the packet out of `slot` and recycle the slot. Each handle must
    /// be taken exactly once (the dispatch loop guarantees this: every
    /// arrival event is popped exactly once).
    #[inline]
    pub fn take(&mut self, slot: u32) -> Packet {
        debug_assert!(!self.free.contains(&slot), "double take of slab slot");
        self.live -= 1;
        self.free.push(slot);
        self.slots[slot as usize]
    }

    /// Packets currently resident.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no packets are resident.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Peak number of simultaneously resident packets.
    pub fn hwm(&self) -> usize {
        self.hwm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::AppChunk;

    fn pkt(seq: u64) -> Packet {
        Packet::data(0, seq, 1460, 0, 1, AppChunk::synthetic(seq, 0), false)
    }

    #[test]
    fn slots_are_recycled() {
        let mut slab = PacketSlab::new();
        let a = slab.alloc(pkt(1));
        let b = slab.alloc(pkt(2));
        assert_ne!(a, b);
        assert_eq!(slab.take(a).seq, 1);
        let c = slab.alloc(pkt(3));
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(slab.take(b).seq, 2);
        assert_eq!(slab.take(c).seq, 3);
        assert!(slab.is_empty());
        assert_eq!(slab.hwm(), 2);
    }
}
