//! Nodes and static routing.
//!
//! A node is a host or router with a routing table mapping destination nodes
//! to outgoing links. Routes are installed explicitly by the topology
//! builder; a default route covers the common "stub host" case.
//!
//! The table is a flat `Vec` indexed by destination node id — node ids are
//! small dense arena indices, and the lookup sits on the per-packet hot
//! path, so an array access beats hashing.

use crate::packet::{LinkId, NodeId};

/// A host or router.
#[derive(Debug, Default)]
pub struct Node {
    routes: Vec<Option<LinkId>>,
    default_route: Option<LinkId>,
    /// Optional label for debugging/reports.
    pub label: String,
}

impl Node {
    /// Create an unlabelled node with no routes.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            routes: Vec::new(),
            default_route: None,
            label: label.into(),
        }
    }

    /// Install a route: packets destined to `dst` leave on `link`.
    pub fn add_route(&mut self, dst: NodeId, link: LinkId) {
        let dst = dst as usize;
        if dst >= self.routes.len() {
            self.routes.resize(dst + 1, None);
        }
        self.routes[dst] = Some(link);
    }

    /// Install the default route used when no specific entry matches.
    pub fn set_default_route(&mut self, link: LinkId) {
        self.default_route = Some(link);
    }

    /// Next-hop link for a destination, if the node knows one.
    #[inline]
    pub fn route_to(&self, dst: NodeId) -> Option<LinkId> {
        self.routes
            .get(dst as usize)
            .copied()
            .flatten()
            .or(self.default_route)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specific_route_beats_default() {
        let mut n = Node::new("r1");
        n.set_default_route(9);
        n.add_route(3, 4);
        assert_eq!(n.route_to(3), Some(4));
        assert_eq!(n.route_to(7), Some(9));
    }

    #[test]
    fn no_route_is_none() {
        let n = Node::new("h");
        assert_eq!(n.route_to(1), None);
    }
}
