//! Pending-event queues for the simulation engine.
//!
//! Two implementations sit behind [`EventQueue`]:
//!
//! * [`HeapQueue`] — the reference `BinaryHeap` scheduler. Simple, obviously
//!   correct, `O(log n)` per operation on the *whole* queue.
//! * [`CalendarQueue`] — a two-level calendar queue in the spirit of ns-2's
//!   scheduler: a *near wheel* of fine-grained time buckets covering the next
//!   ~270 ms of simulated time, plus a *far heap* for distant timers. At the
//!   event densities of the paper's sweeps almost every event (link
//!   serialisations, arrivals, delayed ACKs) lands in the wheel, where push
//!   and pop are `O(1)` amortised; only long retransmission timeouts touch
//!   the far heap.
//!
//! Both orderings are **identical**: events pop in strictly increasing
//! `(time, seq)` order, where `seq` is the global push counter — i.e. exact
//! FIFO among simultaneous events. A differential test at the experiment
//! level (`dmp-sim/tests/scheduler_differential.rs`) and a property test
//! below hold the two implementations to byte-identical behaviour.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Which pending-event queue a [`crate::sim::Sim`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Reference binary-heap scheduler.
    Heap,
    /// Two-level calendar queue (near wheel + far heap). The default.
    #[default]
    Calendar,
}

/// One queued event: a timestamp, the global push sequence number that breaks
/// ties FIFO, and an opaque payload the queue never inspects.
#[derive(Debug, Clone, Copy)]
pub struct Entry<T> {
    /// Due time.
    pub time: SimTime,
    /// Global push counter (unique; breaks ties among simultaneous events).
    pub seq: u64,
    /// Payload.
    pub payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// High-water marks a queue reports for telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueHwm {
    /// Peak number of events resident in the near wheel (total queue size for
    /// the heap scheduler).
    pub wheel: u64,
    /// Peak number of events resident in the far heap (0 for the heap
    /// scheduler).
    pub far: u64,
}

// ---------------------------------------------------------------------------
// Reference heap
// ---------------------------------------------------------------------------

/// The reference `BinaryHeap` scheduler.
#[derive(Debug)]
pub struct HeapQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    hwm: usize,
}

impl<T: Copy> HeapQueue<T> {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            hwm: 0,
        }
    }

    fn push(&mut self, e: Entry<T>) {
        self.heap.push(Reverse(e));
        self.hwm = self.hwm.max(self.heap.len());
    }

    fn pop_at_or_before(&mut self, t_end: SimTime) -> Option<Entry<T>> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.time <= t_end => self.heap.pop().map(|Reverse(e)| e),
            _ => None,
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

/// log2 of the bucket width: 2^17 ns ≈ 131 µs per bucket.
const BUCKET_SHIFT: u32 = 17;
/// Number of wheel buckets (power of two). Span = 2048 × 131 µs ≈ 268 ms,
/// which covers serialisation times, propagation delays, and delayed-ACK
/// timers; only RTO-scale timers overflow to the far heap.
const BUCKETS: usize = 2048;
const BUCKET_MASK: u64 = (BUCKETS as u64) - 1;
const WORDS: usize = BUCKETS / 64;

/// Absolute bucket index of a timestamp.
#[inline]
fn bucket_of(t: SimTime) -> u64 {
    t >> BUCKET_SHIFT
}

/// Two-level calendar queue: near wheel + far heap.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// The near wheel. Slot `b & BUCKET_MASK` holds all wheel events whose
    /// absolute bucket is `b`; the window invariant (every resident bucket is
    /// in `[base, base + BUCKETS)`) makes the mapping unambiguous. The
    /// fixed-size array (not a slice) lets masked indexing skip the bounds
    /// check in the push/pop hot paths.
    buckets: Box<[Vec<Entry<T>>; BUCKETS]>,
    /// One bit per slot: is the bucket non-empty? Lets the pop path skip
    /// runs of empty buckets 64 at a time.
    occupied: [u64; WORDS],
    /// Absolute bucket index of the window start. Monotonically advances;
    /// never ahead of the current simulated time's bucket.
    base: u64,
    wheel_len: usize,
    /// Events too far in the future for the wheel, ordered by `(time, seq)`.
    far: BinaryHeap<Reverse<Entry<T>>>,
    wheel_hwm: usize,
    far_hwm: usize,
}

impl<T: Copy> CalendarQueue<T> {
    fn new() -> Self {
        Self {
            // A modest per-bucket reserve (16 × 32 B × 2048 buckets ≈ 1 MiB)
            // absorbs the occasional bucket that first sees its peak load
            // late in a run; heavier-than-reserved buckets still grow and
            // keep their capacity across wheel rotations.
            buckets: (0..BUCKETS)
                .map(|_| Vec::with_capacity(16))
                .collect::<Vec<_>>()
                .into_boxed_slice()
                .try_into()
                .ok()
                .expect("exactly BUCKETS buckets"),
            occupied: [0; WORDS],
            base: 0,
            wheel_len: 0,
            far: BinaryHeap::new(),
            wheel_hwm: 0,
            far_hwm: 0,
        }
    }

    #[inline]
    fn push_wheel(&mut self, e: Entry<T>) {
        let slot = (bucket_of(e.time) & BUCKET_MASK) as usize;
        self.buckets[slot].push(e);
        self.occupied[slot >> 6] |= 1u64 << (slot & 63);
        self.wheel_len += 1;
        self.wheel_hwm = self.wheel_hwm.max(self.wheel_len);
    }

    fn push(&mut self, e: Entry<T>) {
        let b = bucket_of(e.time);
        debug_assert!(b >= self.base, "event scheduled behind the wheel window");
        if b < self.base + BUCKETS as u64 {
            self.push_wheel(e);
        } else {
            self.far.push(Reverse(e));
            self.far_hwm = self.far_hwm.max(self.far.len());
        }
    }

    /// Move far-heap events that now fall inside the wheel window.
    fn drain_far(&mut self) {
        let horizon = self.base + BUCKETS as u64;
        while let Some(&Reverse(e)) = self.far.peek() {
            if bucket_of(e.time) >= horizon {
                break;
            }
            self.far.pop();
            self.push_wheel(e);
        }
    }

    /// First non-empty bucket at or after `base` in circular window order.
    /// Requires `wheel_len > 0`.
    fn first_occupied_from_base(&self) -> u64 {
        let start = (self.base & BUCKET_MASK) as usize;
        // Partial first word.
        let w = self.occupied[start >> 6] & (!0u64 << (start & 63));
        let slot = if w != 0 {
            (start & !63) + w.trailing_zeros() as usize
        } else {
            let mut found = None;
            for i in 1..=WORDS {
                let wi = ((start >> 6) + i) % WORDS;
                // The wrap-around word needs no end-masking: any bit before
                // `start` in it belongs to a bucket < base + BUCKETS too.
                let w = self.occupied[wi];
                if w != 0 {
                    found = Some((wi << 6) + w.trailing_zeros() as usize);
                    break;
                }
            }
            found.expect("wheel_len > 0 but no occupied bucket")
        };
        self.base + ((slot + BUCKETS - start) & (BUCKETS - 1)) as u64
    }

    fn pop_at_or_before(&mut self, t_end: SimTime) -> Option<Entry<T>> {
        loop {
            self.drain_far();
            if self.wheel_len == 0 {
                match self.far.peek() {
                    None => return None,
                    Some(&Reverse(e)) if e.time > t_end => return None,
                    Some(&Reverse(e)) => {
                        // Jump the window to the far heap's earliest bucket;
                        // the next drain_far pulls it (and its neighbours) in.
                        self.base = bucket_of(e.time);
                        continue;
                    }
                }
            }
            let b_min = self.first_occupied_from_base();
            if b_min > bucket_of(t_end) {
                // The earliest event is beyond the horizon. Advance the
                // window only to t_end's bucket: the caller will set
                // `now = t_end`, so later pushes stay inside the window.
                self.base = self.base.max(bucket_of(t_end));
                return None;
            }
            // The global minimum lives in bucket `b_min`: it is the wheel's
            // earliest bucket, and no far event can precede it — advancing
            // the window to it admits only far events in buckets at or past
            // the *old* horizon, which is past `b_min` (it was inside the
            // old window). They are picked up by the next pop's drain; no
            // re-drain loop is needed here.
            self.base = b_min;
            let slot = (self.base & BUCKET_MASK) as usize;
            let bucket = &mut self.buckets[slot];
            let mut mi = 0;
            for i in 1..bucket.len() {
                if (bucket[i].time, bucket[i].seq) < (bucket[mi].time, bucket[mi].seq) {
                    mi = i;
                }
            }
            if bucket[mi].time > t_end {
                return None;
            }
            let e = bucket.swap_remove(mi);
            if bucket.is_empty() {
                self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
            }
            self.wheel_len -= 1;
            return Some(e);
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.far.len()
    }
}

// ---------------------------------------------------------------------------
// The pluggable queue
// ---------------------------------------------------------------------------

/// A pending-event queue: the reference heap or the calendar queue, selected
/// at [`crate::sim::Sim`] construction.
// One instance per `Sim`, so the variant size gap is irrelevant; boxing the
// calendar queue would put a pointer chase on every push/pop instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum EventQueue<T> {
    /// Reference binary heap.
    Heap(HeapQueue<T>),
    /// Two-level calendar queue.
    Calendar(CalendarQueue<T>),
}

impl<T: Copy> EventQueue<T> {
    /// Create an empty queue of the given kind.
    pub fn new(kind: EngineKind) -> Self {
        match kind {
            EngineKind::Heap => Self::Heap(HeapQueue::new()),
            EngineKind::Calendar => Self::Calendar(CalendarQueue::new()),
        }
    }

    /// Which implementation this is.
    pub fn kind(&self) -> EngineKind {
        match self {
            Self::Heap(_) => EngineKind::Heap,
            Self::Calendar(_) => EngineKind::Calendar,
        }
    }

    /// Queue an event. `time` must be at or after the time of the last popped
    /// event (events are never scheduled in the past).
    #[inline]
    pub fn push(&mut self, time: SimTime, seq: u64, payload: T) {
        let e = Entry { time, seq, payload };
        match self {
            Self::Heap(q) => q.push(e),
            Self::Calendar(q) => q.push(e),
        }
    }

    /// Remove and return the earliest event if it is due at or before
    /// `t_end`; `None` otherwise (the event stays queued).
    #[inline]
    pub fn pop_at_or_before(&mut self, t_end: SimTime) -> Option<Entry<T>> {
        match self {
            Self::Heap(q) => q.pop_at_or_before(t_end),
            Self::Calendar(q) => q.pop_at_or_before(t_end),
        }
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        match self {
            Self::Heap(q) => q.len(),
            Self::Calendar(q) => q.len(),
        }
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy high-water marks.
    pub fn hwm(&self) -> QueueHwm {
        match self {
            Self::Heap(q) => QueueHwm {
                wheel: q.hwm as u64,
                far: 0,
            },
            Self::Calendar(q) => QueueHwm {
                wheel: q.wheel_hwm as u64,
                far: q.far_hwm as u64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn drain_all(q: &mut EventQueue<u32>) -> Vec<(SimTime, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop_at_or_before(SimTime::MAX) {
            out.push((e.time, e.seq, e.payload));
        }
        out
    }

    /// Push a random schedule into both queues, interleaving pops the way the
    /// simulator does (events scheduled relative to the last popped time),
    /// and require identical pop order — including FIFO among ties.
    #[test]
    fn heap_and_calendar_pop_identically() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut heap = EventQueue::new(EngineKind::Heap);
            let mut cal = EventQueue::new(EngineKind::Calendar);
            let mut seq = 0u64;
            let mut now: SimTime = 0;
            let mut popped_h = Vec::new();
            let mut popped_c = Vec::new();
            for _ in 0..5_000 {
                if rng.gen_bool(0.6) || heap.is_empty() {
                    // Mix of near events (sub-bucket to a few ms), deliberate
                    // ties, and far timers (beyond the wheel span).
                    let dt: u64 = match rng.gen_range(0..10u32) {
                        0..=5 => rng.gen_range(0..5_000_000),
                        6 | 7 => 0,
                        8 => rng.gen_range(0..300_000_000),
                        _ => rng.gen_range(250_000_000..5_000_000_000),
                    };
                    seq += 1;
                    heap.push(now + dt, seq, seq as u32);
                    cal.push(now + dt, seq, seq as u32);
                } else {
                    let h = heap.pop_at_or_before(SimTime::MAX).unwrap();
                    let c = cal.pop_at_or_before(SimTime::MAX).unwrap();
                    now = h.time;
                    popped_h.push((h.time, h.seq, h.payload));
                    popped_c.push((c.time, c.seq, c.payload));
                }
            }
            popped_h.extend(drain_all(&mut heap));
            popped_c.extend(drain_all(&mut cal));
            assert_eq!(popped_h, popped_c, "seed {seed}");
            let mut sorted = popped_h.clone();
            sorted.sort();
            assert_eq!(popped_h, sorted, "pop order must be (time, seq)");
        }
    }

    #[test]
    fn pop_respects_horizon() {
        let mut q = EventQueue::new(EngineKind::Calendar);
        q.push(100, 1, 1u32);
        q.push(5_000_000_000, 2, 2); // far heap
        assert!(q.pop_at_or_before(99).is_none());
        assert_eq!(q.pop_at_or_before(100).unwrap().payload, 1);
        assert!(q.pop_at_or_before(4_999_999_999).is_none());
        assert_eq!(q.pop_at_or_before(SimTime::MAX).unwrap().payload, 2);
        assert!(q.is_empty());
        // Pushing near-term events after the window advanced past a horizon
        // check must still work (base never outruns simulated time).
        q.push(5_000_000_100, 3, 3);
        assert_eq!(q.pop_at_or_before(SimTime::MAX).unwrap().payload, 3);
    }

    #[test]
    fn far_events_migrate_in_order() {
        let mut q = EventQueue::new(EngineKind::Calendar);
        // Two far events in adjacent buckets beyond the span, plus a near one.
        q.push(10, 1, 1u32);
        q.push(400_000_000, 2, 2);
        q.push(300_000_000, 3, 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_at_or_before(SimTime::MAX))
            .map(|e| e.payload)
            .collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn hwm_tracks_occupancy() {
        let mut q = EventQueue::new(EngineKind::Calendar);
        for i in 0..10u64 {
            q.push(i * 1000, i + 1, i as u32);
        }
        q.push(10_000_000_000, 99, 99);
        let hwm = q.hwm();
        assert_eq!(hwm.wheel, 10);
        assert_eq!(hwm.far, 1);
    }
}
