//! Simulated time: `u64` nanoseconds since the start of the run.
//!
//! Integer time gives the event queue a total order with no floating-point
//! drift; helpers convert to and from seconds/milliseconds for configuration
//! and reporting.

/// A point in simulated time, in nanoseconds.
pub type SimTime = u64;

/// One second of simulated time.
pub const SECOND: SimTime = 1_000_000_000;

/// One millisecond of simulated time.
pub const MILLISECOND: SimTime = 1_000_000;

/// Convert seconds (f64) to [`SimTime`]. Negative values saturate to 0.
pub fn secs(s: f64) -> SimTime {
    if s <= 0.0 {
        0
    } else {
        (s * SECOND as f64).round() as SimTime
    }
}

/// Convert milliseconds (f64) to [`SimTime`].
pub fn millis(ms: f64) -> SimTime {
    secs(ms / 1e3)
}

/// Convert a [`SimTime`] to seconds.
pub fn to_secs(t: SimTime) -> f64 {
    t as f64 / SECOND as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(secs(1.0), SECOND);
        assert_eq!(millis(250.0), 250 * MILLISECOND);
        assert!((to_secs(secs(3.25)) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn negative_saturates() {
        assert_eq!(secs(-1.0), 0);
    }
}
