//! The discrete-event simulation engine.
//!
//! The simulator owns flat arenas of nodes, links, TCP endpoints, and
//! applications; events reference entities by index, so dispatch is a match
//! plus an array access — no trait objects on the hot path (applications are
//! the exception; they are boxed but called out of band).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::app::App;
use crate::link::{Link, LinkSpec, Offer};
use crate::node::Node;
use crate::packet::{AppChunk, FlowId, LinkId, NodeId, Packet, PacketKind};
use crate::tcp::{SinkConfig, TcpConfig, TcpSender, TcpSink};
use crate::time::SimTime;

/// Index of an application in the simulator's arena.
pub type AppId = u32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A link finished serialising a packet.
    LinkTxDone(LinkId),
    /// A packet arrives at a node (after propagation).
    Arrival(NodeId),
    /// A sender's retransmission timer.
    SenderTimer { sender: u32, gen: u64 },
    /// A sink's delayed-ACK timer.
    SinkTimer { sink: u32, gen: u64 },
    /// An application timer with a user tag.
    AppTimer { app: AppId, tag: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
    /// Packet payload for Arrival events.
    pkt: Option<Packet>,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One TCP connection: sender and sink endpoints plus app subscriptions.
#[derive(Debug)]
struct Flow {
    sender: u32,
    sink: u32,
    owner_app: Option<AppId>,
    receiver_app: Option<AppId>,
}

/// Per-flow counters maintained by the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowCounters {
    /// Data packets of this flow dropped at any queue.
    pub data_dropped: u64,
    /// ACK packets of this flow dropped at any queue.
    pub acks_dropped: u64,
}

#[derive(Debug, Clone, Copy)]
enum AppCall {
    SendSpace(AppId, FlowId),
    TransferComplete(AppId, FlowId),
}

/// The simulator.
pub struct Sim {
    now: SimTime,
    events: BinaryHeap<Reverse<Event>>,
    event_seq: u64,
    nodes: Vec<Node>,
    links: Vec<Link>,
    senders: Vec<TcpSender>,
    sender_timer_gen: Vec<u64>,
    sinks: Vec<TcpSink>,
    sink_timer_gen: Vec<u64>,
    flows: Vec<Flow>,
    flow_counters: Vec<FlowCounters>,
    apps: Vec<Option<Box<dyn App>>>,
    pending_calls: Vec<AppCall>,
    rng: SmallRng,
    events_processed: u64,
}

impl Sim {
    /// Create an empty simulator with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Self {
            now: 0,
            events: BinaryHeap::new(),
            event_seq: 0,
            nodes: Vec::new(),
            links: Vec::new(),
            senders: Vec::new(),
            sender_timer_gen: Vec::new(),
            sinks: Vec::new(),
            sink_timer_gen: Vec::new(),
            flows: Vec::new(),
            flow_counters: Vec::new(),
            apps: Vec::new(),
            pending_calls: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            events_processed: 0,
        }
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Add a node; returns its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        self.nodes.push(Node::new(label));
        (self.nodes.len() - 1) as NodeId
    }

    /// Add a unidirectional link from `from` to `to`; returns its id. No
    /// route is installed automatically.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        let _ = from; // kept for call-site readability; routing is explicit
        self.links.push(Link::new(spec, to));
        (self.links.len() - 1) as LinkId
    }

    /// Add a duplex link (two unidirectional links with the same spec) and
    /// return `(forward, reverse)` link ids.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        (self.add_link(a, b, spec), self.add_link(b, a, spec))
    }

    /// Install a route on `node`: packets for `dst` leave on `link`.
    pub fn add_route(&mut self, node: NodeId, dst: NodeId, link: LinkId) {
        self.nodes[node as usize].add_route(dst, link);
    }

    /// Install `node`'s default route.
    pub fn set_default_route(&mut self, node: NodeId, link: LinkId) {
        self.nodes[node as usize].set_default_route(link);
    }

    /// Create a TCP connection from `src` to `dst`; returns the flow id.
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tcp: TcpConfig,
        sink: SinkConfig,
    ) -> FlowId {
        let flow = self.flows.len() as FlowId;
        self.senders.push(TcpSender::new(flow, src, dst, tcp));
        self.sender_timer_gen.push(0);
        self.sinks.push(TcpSink::new(flow, dst, src, sink));
        self.sink_timer_gen.push(0);
        self.flows.push(Flow {
            sender: (self.senders.len() - 1) as u32,
            sink: (self.sinks.len() - 1) as u32,
            owner_app: None,
            receiver_app: None,
        });
        self.flow_counters.push(FlowCounters::default());
        flow
    }

    /// Attach an application; `start` is invoked immediately.
    pub fn add_app(&mut self, app: Box<dyn App>) -> AppId {
        self.apps.push(Some(app));
        let id = (self.apps.len() - 1) as AppId;
        self.with_app(id, |app, api| app.start(api));
        self.drain_pending();
        id
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far (a cheap progress/perf metric).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to a link (for stats).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id as usize]
    }

    /// Immutable access to a flow's sender.
    pub fn sender(&self, flow: FlowId) -> &TcpSender {
        &self.senders[self.flows[flow as usize].sender as usize]
    }

    /// Immutable access to a flow's sink.
    pub fn sink(&self, flow: FlowId) -> &TcpSink {
        &self.sinks[self.flows[flow as usize].sink as usize]
    }

    /// Engine counters for a flow.
    pub fn flow_counters(&self, flow: FlowId) -> FlowCounters {
        self.flow_counters[flow as usize]
    }

    /// Measured loss probability of a flow: data packets dropped at queues
    /// divided by data packets transmitted (first + retransmissions).
    pub fn flow_loss_rate(&self, flow: FlowId) -> f64 {
        let tx = self.sender(flow).total_transmissions();
        if tx == 0 {
            0.0
        } else {
            self.flow_counters[flow as usize].data_dropped as f64 / tx as f64
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    fn schedule(&mut self, time: SimTime, kind: EventKind, pkt: Option<Packet>) {
        self.event_seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.event_seq,
            kind,
            pkt,
        }));
    }

    /// Run the simulation until simulated time `t_end`.
    pub fn run_until(&mut self, t_end: SimTime) {
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.time > t_end {
                break;
            }
            let Reverse(ev) = self.events.pop().expect("peeked");
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.events_processed += 1;
            self.dispatch(ev);
            self.drain_pending();
        }
        self.now = t_end;
    }

    fn dispatch(&mut self, ev: Event) {
        match ev.kind {
            EventKind::LinkTxDone(l) => {
                if let Some(pkt) = self.links[l as usize].tx_done() {
                    self.start_tx(l, pkt);
                }
            }
            EventKind::Arrival(node) => {
                let pkt = ev.pkt.expect("arrival carries a packet");
                self.handle_arrival(node, pkt);
            }
            EventKind::SenderTimer { sender, gen } => {
                if self.sender_timer_gen[sender as usize] == gen
                    && self.senders[sender as usize].timer_deadline == Some(ev.time)
                {
                    self.senders[sender as usize].on_timeout(ev.time);
                    self.flush_sender(sender);
                }
            }
            EventKind::SinkTimer { sink, gen } => {
                if self.sink_timer_gen[sink as usize] == gen
                    && self.sinks[sink as usize].timer_deadline == Some(ev.time)
                {
                    self.sinks[sink as usize].on_delack_timer();
                    self.flush_sink(sink);
                }
            }
            EventKind::AppTimer { app, tag } => {
                self.with_app(app, |a, api| a.on_timer(api, tag));
            }
        }
    }

    fn handle_arrival(&mut self, node: NodeId, pkt: Packet) {
        if pkt.dst != node {
            self.route_from(node, pkt);
            return;
        }
        match pkt.kind {
            PacketKind::Data => {
                let sink_id = self.flows[pkt.flow as usize].sink;
                self.sinks[sink_id as usize].on_data(&pkt, self.now);
                self.flush_sink(sink_id);
            }
            PacketKind::Ack => {
                let sender_id = self.flows[pkt.flow as usize].sender;
                self.senders[sender_id as usize].on_ack(pkt.seq, self.now);
                self.flush_sender(sender_id);
            }
        }
    }

    fn route_from(&mut self, node: NodeId, pkt: Packet) {
        match self.nodes[node as usize].route_to(pkt.dst) {
            Some(l) => self.offer_to_link(l, pkt),
            None => panic!(
                "no route from node {} ({}) to node {}",
                node, self.nodes[node as usize].label, pkt.dst
            ),
        }
    }

    fn offer_to_link(&mut self, l: LinkId, pkt: Packet) {
        match self.links[l as usize].offer(pkt, &mut self.rng) {
            Offer::StartTx(p) => self.start_tx(l, p),
            Offer::Queued => {}
            Offer::Dropped(p) => {
                let c = &mut self.flow_counters[p.flow as usize];
                match p.kind {
                    PacketKind::Data => c.data_dropped += 1,
                    PacketKind::Ack => c.acks_dropped += 1,
                }
            }
        }
    }

    fn start_tx(&mut self, l: LinkId, pkt: Packet) {
        let (tx, delay, to) = {
            let link = &self.links[l as usize];
            (link.spec.tx_time(pkt.size_bytes), link.spec.delay, link.to)
        };
        self.schedule(self.now + tx, EventKind::LinkTxDone(l), None);
        self.schedule(self.now + tx + delay, EventKind::Arrival(to), Some(pkt));
    }

    // ------------------------------------------------------------------
    // Endpoint flushing (outboxes, timers, app notifications)
    // ------------------------------------------------------------------

    fn flush_sender(&mut self, sender_id: u32) {
        let s = sender_id as usize;
        let (node, flow) = (self.senders[s].node, self.senders[s].flow);
        let pkts = std::mem::take(&mut self.senders[s].outbox);
        for pkt in pkts {
            self.route_from(node, pkt);
        }
        if self.senders[s].timer_dirty {
            self.senders[s].timer_dirty = false;
            self.sender_timer_gen[s] += 1;
            if let Some(t) = self.senders[s].timer_deadline {
                let gen = self.sender_timer_gen[s];
                self.schedule(
                    t,
                    EventKind::SenderTimer {
                        sender: sender_id,
                        gen,
                    },
                    None,
                );
            }
        }
        if std::mem::take(&mut self.senders[s].wake_app) {
            if let Some(app) = self.flows[flow as usize].owner_app {
                self.pending_calls.push(AppCall::SendSpace(app, flow));
            }
        }
        if std::mem::take(&mut self.senders[s].transfer_complete) {
            if let Some(app) = self.flows[flow as usize].owner_app {
                self.pending_calls
                    .push(AppCall::TransferComplete(app, flow));
            }
        }
    }

    fn flush_sink(&mut self, sink_id: u32) {
        let s = sink_id as usize;
        let (node, flow) = (self.sinks[s].node, self.sinks[s].flow);
        let pkts = std::mem::take(&mut self.sinks[s].outbox);
        for pkt in pkts {
            self.route_from(node, pkt);
        }
        if self.sinks[s].timer_dirty {
            self.sinks[s].timer_dirty = false;
            self.sink_timer_gen[s] += 1;
            if let Some(t) = self.sinks[s].timer_deadline {
                let gen = self.sink_timer_gen[s];
                self.schedule(t, EventKind::SinkTimer { sink: sink_id, gen }, None);
            }
        }
        let chunks = std::mem::take(&mut self.sinks[s].delivered);
        if !chunks.is_empty() {
            if let Some(app) = self.flows[flow as usize].receiver_app {
                self.with_app(app, |a, api| a.on_receive(api, flow, &chunks));
            }
        }
    }

    fn drain_pending(&mut self) {
        while let Some(call) = self.pending_calls.pop() {
            match call {
                AppCall::SendSpace(app, flow) => {
                    self.with_app(app, |a, api| a.on_send_space(api, flow));
                }
                AppCall::TransferComplete(app, flow) => {
                    self.with_app(app, |a, api| a.on_transfer_complete(api, flow));
                }
            }
        }
    }

    fn with_app(&mut self, id: AppId, f: impl FnOnce(&mut dyn App, &mut SimApi<'_>)) {
        let mut app = self.apps[id as usize].take().expect("app reentrancy");
        {
            let mut api = SimApi { sim: self, app: id };
            f(app.as_mut(), &mut api);
        }
        self.apps[id as usize] = Some(app);
    }
}

/// Handle through which applications interact with the simulator.
pub struct SimApi<'a> {
    sim: &'a mut Sim,
    app: AppId,
}

impl SimApi<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now
    }

    /// Deterministic RNG shared by the whole simulation.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.sim.rng
    }

    /// Schedule `on_timer(tag)` for this app after `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, tag: u64) {
        let t = self.sim.now + delay;
        self.sim
            .schedule(t, EventKind::AppTimer { app: self.app, tag }, None);
    }

    /// Subscribe this app to send-side notifications of `flow`
    /// (`on_send_space`, `on_transfer_complete`).
    pub fn own_flow(&mut self, flow: FlowId) {
        self.sim.flows[flow as usize].owner_app = Some(self.app);
    }

    /// Subscribe this app to in-order data delivered by `flow`'s sink.
    pub fn receive_flow(&mut self, flow: FlowId) {
        self.sim.flows[flow as usize].receiver_app = Some(self.app);
    }

    /// Free send-buffer space on `flow`, in segments.
    pub fn free_space(&self, flow: FlowId) -> usize {
        self.sim.sender(flow).free_space()
    }

    /// Push a chunk into `flow`'s send buffer and transmit what the window
    /// allows. Returns `false` if the buffer was full.
    pub fn push_chunk(&mut self, flow: FlowId, chunk: AppChunk) -> bool {
        let sid = self.sim.flows[flow as usize].sender;
        let now = self.sim.now;
        let ok = self.sim.senders[sid as usize].push_chunk(chunk);
        if ok {
            self.sim.senders[sid as usize].try_send(now);
            self.sim.flush_sender(sid);
        }
        ok
    }

    /// Make `flow` backlogged (infinite data or a sized transfer) and start
    /// transmitting.
    pub fn set_backlogged(&mut self, flow: FlowId, remaining: Option<u64>) {
        let sid = self.sim.flows[flow as usize].sender;
        let now = self.sim.now;
        self.sim.senders[sid as usize].set_backlogged(remaining);
        self.sim.senders[sid as usize].try_send(now);
        self.sim.flush_sender(sid);
    }

    /// Reset `flow`'s congestion state as a fresh connection (HTTP restart).
    pub fn restart_connection(&mut self, flow: FlowId) {
        let sid = self.sim.flows[flow as usize].sender;
        self.sim.senders[sid as usize].restart_connection();
    }

    /// Read-only view of the sender of `flow` (stats, RTT estimator).
    pub fn sender(&self, flow: FlowId) -> &TcpSender {
        self.sim.sender(flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{millis, secs, SECOND};

    /// Two hosts, one duplex link. An FTP transfers data; check delivery and
    /// throughput plausibility.
    fn two_host_sim(bw_mbps: f64, delay_ms: f64, queue: usize) -> (Sim, FlowId) {
        let mut sim = Sim::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (f, r) = sim.add_duplex(a, b, LinkSpec::from_table(bw_mbps, delay_ms, queue));
        sim.add_route(a, b, f);
        sim.add_route(b, a, r);
        let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        (sim, flow)
    }

    struct FtpStarter {
        flow: FlowId,
    }
    impl App for FtpStarter {
        fn start(&mut self, api: &mut SimApi<'_>) {
            api.set_backlogged(self.flow, None);
        }
    }

    #[test]
    fn backlogged_flow_fills_the_pipe() {
        let (mut sim, flow) = two_host_sim(10.0, 10.0, 100);
        sim.add_app(Box::new(FtpStarter { flow }));
        sim.run_until(10 * SECOND);
        // 10 Mbps, 1500 B packets → 833 pkt/s max. Expect ≥ 70% utilisation
        // after slow start in 10 s, and no loss (huge queue, window-limited).
        let delivered = sim.sink(flow).stats.delivered;
        assert!(delivered > 4_000, "delivered {delivered}");
        assert_eq!(sim.flow_counters(flow).data_dropped, 0);
        // RTT samples should hover around the two-way propagation delay.
        let rtt = sim.sender(flow).rtt.mean_rtt_secs().unwrap();
        assert!(rtt > 0.019 && rtt < 0.2, "rtt {rtt}");
    }

    #[test]
    fn window_limited_throughput_matches_formula() {
        // Large BDP: throughput ≈ max_wnd / RTT.
        let (mut sim, flow) = two_host_sim(100.0, 50.0, 1000);
        sim.add_app(Box::new(FtpStarter { flow }));
        sim.run_until(30 * SECOND);
        let delivered = sim.sink(flow).stats.delivered as f64 / 30.0;
        let rtt = 0.1 + 0.00012 * 2.0; // 2×50 ms + serialisation
        let expect = 64.0 / rtt;
        assert!(
            (delivered - expect).abs() / expect < 0.15,
            "delivered {delivered:.1} pkt/s, expected ≈ {expect:.1}"
        );
    }

    #[test]
    fn bottleneck_losses_trigger_recovery_not_collapse() {
        // Small queue forces drops; the flow must keep making progress.
        let (mut sim, flow) = two_host_sim(2.0, 20.0, 10);
        sim.add_app(Box::new(FtpStarter { flow }));
        sim.run_until(60 * SECOND);
        let delivered = sim.sink(flow).stats.delivered as f64 / 60.0;
        // 2 Mbps ≈ 167 pkt/s; Reno should reach at least half of that.
        assert!(delivered > 80.0, "delivered {delivered:.1} pkt/s");
        assert!(sim.flow_counters(flow).data_dropped > 0, "expected drops");
        let p = sim.flow_loss_rate(flow);
        assert!(p > 0.0 && p < 0.2, "loss {p}");
        // Everything delivered exactly once to the app despite losses.
        let sent_beyond = sim.sender(flow).acked();
        assert_eq!(sim.sink(flow).stats.delivered, sim.sink(flow).rcv_next());
        assert!(sent_beyond <= sim.sink(flow).rcv_next());
    }

    #[test]
    fn two_competing_flows_share_fairly() {
        let mut sim = Sim::new(7);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (f, r) = sim.add_duplex(a, b, LinkSpec::from_table(4.0, 20.0, 30));
        sim.add_route(a, b, f);
        sim.add_route(b, a, r);
        let f1 = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        let f2 = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        sim.add_app(Box::new(FtpStarter { flow: f1 }));
        sim.add_app(Box::new(FtpStarter { flow: f2 }));
        sim.run_until(120 * SECOND);
        let d1 = sim.sink(f1).stats.delivered as f64;
        let d2 = sim.sink(f2).stats.delivered as f64;
        let ratio = d1.max(d2) / d1.min(d2);
        assert!(ratio < 1.6, "unfair split: {d1} vs {d2}");
        // Combined they should use most of the 4 Mbps ≈ 333 pkt/s.
        assert!((d1 + d2) / 120.0 > 250.0, "aggregate too low");
    }

    #[test]
    fn app_timers_fire_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct TimerApp {
            fired: Rc<RefCell<Vec<(u64, SimTime)>>>,
        }
        impl App for TimerApp {
            fn start(&mut self, api: &mut SimApi<'_>) {
                api.schedule_in(secs(2.0), 2);
                api.schedule_in(secs(1.0), 1);
                api.schedule_in(millis(1500.0), 15);
            }
            fn on_timer(&mut self, api: &mut SimApi<'_>, tag: u64) {
                self.fired.borrow_mut().push((tag, api.now()));
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(1);
        sim.add_app(Box::new(TimerApp {
            fired: Rc::clone(&fired),
        }));
        sim.run_until(10 * SECOND);
        assert_eq!(
            *fired.borrow(),
            vec![(1, secs(1.0)), (15, millis(1500.0)), (2, secs(2.0))]
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let (mut sim, flow) = two_host_sim(2.0, 20.0, 10);
            let _ = seed;
            sim.add_app(Box::new(FtpStarter { flow }));
            sim.run_until(30 * SECOND);
            (
                sim.sink(flow).stats.delivered,
                sim.flow_counters(flow).data_dropped,
                sim.events_processed(),
            )
        };
        assert_eq!(run(1), run(1));
    }
}
