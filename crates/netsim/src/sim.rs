//! The discrete-event simulation engine.
//!
//! The simulator owns flat arenas of nodes, links, TCP endpoints, and
//! applications; events reference entities by index, so dispatch is a match
//! plus an array access — no trait objects on the hot path (applications are
//! the exception; they are boxed but called out of band).
//!
//! # Scheduling
//!
//! Pending events live in an [`EventQueue`] — by default the two-level
//! calendar queue ([`EngineKind::Calendar`]), with the reference binary heap
//! ([`EngineKind::Heap`]) selectable via [`Sim::with_engine`] for
//! differential testing. Events are tiny `Copy` payloads.
//!
//! # Coalesced link delivery
//!
//! Packet transits are *not* events. Each [`Link`] keeps its own in-flight
//! ring (queued packets plus packets on the wire, arrival-stamped and
//! monotone); the engine holds a single tracked `LinkDeliver` event per link
//! aimed at the wire head and advances the link lazily on every touch. One
//! event then delivers every packet due at that instant, instead of the
//! classic two events (`LinkTxDone` + `Arrival`) per transit. Packet-transit
//! throughput is counted separately ([`SimCounters::transits`]) so
//! events/sec comparisons across engine generations stay honest.
//!
//! # Timers
//!
//! TCP retransmission and delayed-ACK timers are *lazy*: each endpoint has at
//! most one timer event outstanding. Restarting the RTO on every ACK (the
//! common case) just moves the endpoint's desired deadline; when the old
//! event pops, it is re-queued at the new deadline (a *deferral*) or
//! discarded (a *stale pop*) — instead of pushing one event per restart and
//! letting generation-dead entries pile up in the queue.
//!
//! # Tracing
//!
//! The event loop is monomorphized over [`RecordMode`]: [`Sim::run_until`]
//! branches once on whether a tracer is installed, and the untraced
//! instantiation compiles every tracer hook out of `dispatch`,
//! `offer_to_link`, and the endpoint flushes.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::app::App;
use crate::link::{Link, LinkSpec, Offer};
use crate::node::Node;
use crate::packet::{AppChunk, FlowId, LinkId, NodeId, Packet, PacketKind};
use crate::scheduler::{EngineKind, EventQueue};
use crate::tcp::{SinkConfig, TcpConfig, TcpSender, TcpSink};
use crate::telemetry;
use crate::time::SimTime;
use crate::trace::{RecordMode, Recorded, SimTracer, Unrecorded};

/// Index of an application in the simulator's arena.
pub type AppId = u32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// The wire head of a link arrives (delivers every packet due at that
    /// instant; the engine keeps exactly one of these per link).
    LinkDeliver(LinkId),
    /// A sender's retransmission timer.
    SenderTimer(u32),
    /// A sink's delayed-ACK timer.
    SinkTimer(u32),
    /// An application timer with a user tag.
    AppTimer { app: AppId, tag: u64 },
}

#[cfg(feature = "profile")]
impl EventKind {
    /// Profiler bin, matching `telemetry::profile::KIND_NAMES` order.
    fn profile_bin(&self) -> usize {
        match self {
            EventKind::LinkDeliver(_) => 0,
            EventKind::SenderTimer(_) => 1,
            EventKind::SinkTimer(_) => 2,
            EventKind::AppTimer { .. } => 3,
        }
    }
}

/// One TCP connection: sender and sink endpoints plus app subscriptions.
#[derive(Debug)]
struct Flow {
    sender: u32,
    sink: u32,
    owner_app: Option<AppId>,
    receiver_app: Option<AppId>,
}

/// Per-flow counters maintained by the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowCounters {
    /// Data packets of this flow dropped at any queue.
    pub data_dropped: u64,
    /// ACK packets of this flow dropped at any queue.
    pub acks_dropped: u64,
}

/// Cheap engine-health counters a simulation accumulates while running.
///
/// These are merged into the process-wide [`crate::telemetry`] totals when
/// the `Sim` is dropped, and surfaced in `dmp-runner` `.meta.json` sidecars.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimCounters {
    /// Events dispatched (including stale timer pops).
    pub events_processed: u64,
    /// Packet transits delivered (one per packet per link traversed). With
    /// coalesced delivery one event can carry several transits, so this is
    /// the physical-throughput denominator; `events_processed` is the
    /// scheduler-traffic one.
    pub transits: u64,
    /// Timer events popped after cancellation or supersession.
    pub stale_timer_pops: u64,
    /// Timer events re-queued because the deadline moved later.
    pub deferred_timer_pushes: u64,
    /// Peak near-wheel occupancy (total queue size for the heap engine).
    pub wheel_hwm: u64,
    /// Peak far-heap occupancy (0 for the heap engine).
    pub far_hwm: u64,
    /// Peak single-link ring occupancy (queued + on-the-wire packets).
    pub ring_hwm: u64,
    /// Packets dropped by per-link Bernoulli random loss (fault injection).
    pub random_loss_drops: u64,
}

#[derive(Debug, Clone, Copy)]
enum AppCall {
    SendSpace(AppId, FlowId),
    TransferComplete(AppId, FlowId),
}

/// The formatted no-route panic, kept out of the hot routing path so
/// `route_from` carries no format machinery.
#[cold]
#[inline(never)]
fn no_route_panic(node: NodeId, label: &str, dst: NodeId) -> ! {
    panic!("no route from node {node} ({label}) to node {dst}")
}

/// The simulator.
pub struct Sim {
    now: SimTime,
    events: EventQueue<EventKind>,
    event_seq: u64,
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Time of the single outstanding delivery event per link (None = no
    /// event in the queue; the wire must then be empty, except transiently
    /// inside a delivery dispatch).
    link_deliver_ev: Vec<Option<SimTime>>,
    senders: Vec<TcpSender>,
    /// Time of the single outstanding timer event per sender (None = no
    /// event in the queue for this endpoint).
    sender_timer_ev: Vec<Option<SimTime>>,
    sinks: Vec<TcpSink>,
    /// Time of the single outstanding timer event per sink.
    sink_timer_ev: Vec<Option<SimTime>>,
    flows: Vec<Flow>,
    flow_counters: Vec<FlowCounters>,
    apps: Vec<Option<Box<dyn App>>>,
    pending_calls: Vec<AppCall>,
    /// Sim-wide RNG for applications (per-link loss uses each link's own
    /// stream; see [`Link::new`]).
    rng: SmallRng,
    /// Seed this sim was built with — link streams derive from it.
    base_seed: u64,
    events_processed: u64,
    transits: u64,
    stale_timer_pops: u64,
    deferred_timer_pushes: u64,
    /// Flight recorder (None = tracing off; the untraced `run_until`
    /// instantiation compiles every hook out).
    tracer: Option<SimTracer>,
    #[cfg(feature = "profile")]
    profile: telemetry::profile::SimProfile,
}

impl Sim {
    /// Create an empty simulator with a deterministic RNG seed and the
    /// default (calendar-queue) scheduler.
    pub fn new(seed: u64) -> Self {
        Self::with_engine(seed, EngineKind::default())
    }

    /// Create an empty simulator with an explicit scheduler implementation.
    /// Both engines produce identical simulations; the heap exists as a
    /// reference for differential testing.
    pub fn with_engine(seed: u64, engine: EngineKind) -> Self {
        Self {
            now: 0,
            events: EventQueue::new(engine),
            event_seq: 0,
            nodes: Vec::new(),
            links: Vec::new(),
            link_deliver_ev: Vec::new(),
            senders: Vec::new(),
            sender_timer_ev: Vec::new(),
            sinks: Vec::new(),
            sink_timer_ev: Vec::new(),
            flows: Vec::new(),
            flow_counters: Vec::new(),
            apps: Vec::new(),
            pending_calls: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            base_seed: seed,
            events_processed: 0,
            transits: 0,
            stale_timer_pops: 0,
            deferred_timer_pushes: 0,
            tracer: None,
            #[cfg(feature = "profile")]
            profile: telemetry::profile::SimProfile::default(),
        }
    }

    /// Create a simulator with pre-sized entity arenas: `nodes`, `links`,
    /// and `flows` are expected final counts (flows also size the TCP
    /// sender/sink arenas). Sharded fleet experiments know their exact
    /// topology up front; reserving once here means building a shard never
    /// reallocates an arena mid-construction. Capacity is an optimisation
    /// only — an under-estimate still grows normally and changes no
    /// simulation byte.
    pub fn with_capacity(
        seed: u64,
        engine: EngineKind,
        nodes: usize,
        links: usize,
        flows: usize,
    ) -> Self {
        let mut sim = Self::with_engine(seed, engine);
        sim.nodes.reserve(nodes);
        sim.links.reserve(links);
        sim.link_deliver_ev.reserve(links);
        sim.flows.reserve(flows);
        sim.flow_counters.reserve(flows);
        sim.senders.reserve(flows);
        sim.sender_timer_ev.reserve(flows);
        sim.sinks.reserve(flows);
        sim.sink_timer_ev.reserve(flows);
        sim
    }

    /// Install a flight recorder. Flows the tracer opted in (see
    /// [`SimTracer::trace_flow`]) have their senders flipped to mark-taking
    /// mode; register flows and links on the tracer *before* installing it.
    /// Tracing never consumes RNG draws or schedules events, so a traced run
    /// is behaviourally identical to an untraced one.
    pub fn set_tracer(&mut self, tracer: SimTracer) {
        for flow in self.flows.iter() {
            let sender = &mut self.senders[flow.sender as usize];
            if tracer.flow_traced(sender.flow) {
                sender.trace_on = true;
            }
        }
        self.tracer = Some(tracer);
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Add a node; returns its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        self.nodes.push(Node::new(label));
        (self.nodes.len() - 1) as NodeId
    }

    /// Add a unidirectional link from `from` to `to`; returns its id. No
    /// route is installed automatically. The link's private random stream is
    /// derived from the sim seed and the link index, so loss-free links
    /// consume no randomness and lossy links never perturb each other.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        let index = self.links.len() as u64;
        let seed = self
            .base_seed
            .wrapping_add((index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.links.push(Link::new(spec, from, to, seed));
        self.link_deliver_ev.push(None);
        (self.links.len() - 1) as LinkId
    }

    /// Add a duplex link (two unidirectional links with the same spec) and
    /// return `(forward, reverse)` link ids.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        (self.add_link(a, b, spec), self.add_link(b, a, spec))
    }

    /// Install a route on `node`: packets for `dst` leave on `link`. The
    /// link must originate at `node`.
    pub fn add_route(&mut self, node: NodeId, dst: NodeId, link: LinkId) {
        debug_assert_eq!(
            self.links[link as usize].from, node,
            "route on node {node} uses link {link}, which leaves node {}",
            self.links[link as usize].from
        );
        self.nodes[node as usize].add_route(dst, link);
    }

    /// Install `node`'s default route. The link must originate at `node`.
    pub fn set_default_route(&mut self, node: NodeId, link: LinkId) {
        debug_assert_eq!(
            self.links[link as usize].from, node,
            "default route on node {node} uses link {link}, which leaves node {}",
            self.links[link as usize].from
        );
        self.nodes[node as usize].set_default_route(link);
    }

    /// Create a TCP connection from `src` to `dst`; returns the flow id.
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        tcp: TcpConfig,
        sink: SinkConfig,
    ) -> FlowId {
        let flow = self.flows.len() as FlowId;
        self.senders.push(TcpSender::new(flow, src, dst, tcp));
        self.sender_timer_ev.push(None);
        self.sinks.push(TcpSink::new(flow, dst, src, sink));
        // A gap fill can deliver up to a window of buffered segments in one
        // arrival, and each arrival acks at most once; reserving here (where
        // the sender's window bound is in scope) keeps sink flushes off the
        // heap in steady state.
        {
            let sk = self.sinks.last_mut().expect("just pushed");
            sk.delivered.reserve(tcp.max_wnd as usize + 1);
            sk.outbox.reserve(8);
        }
        self.sink_timer_ev.push(None);
        self.flows.push(Flow {
            sender: (self.senders.len() - 1) as u32,
            sink: (self.sinks.len() - 1) as u32,
            owner_app: None,
            receiver_app: None,
        });
        self.flow_counters.push(FlowCounters::default());
        flow
    }

    /// Attach an application; `start` is invoked immediately.
    pub fn add_app(&mut self, app: Box<dyn App>) -> AppId {
        self.apps.push(Some(app));
        let id = (self.apps.len() - 1) as AppId;
        self.with_app(id, |app, api| app.start(api));
        self.drain_pending();
        id
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far (a cheap progress/perf metric).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Packet transits delivered so far.
    pub fn transits(&self) -> u64 {
        self.transits
    }

    /// Which scheduler implementation this simulation runs on.
    pub fn engine(&self) -> EngineKind {
        self.events.kind()
    }

    /// Engine-health counters accumulated so far.
    pub fn counters(&self) -> SimCounters {
        let hwm = self.events.hwm();
        SimCounters {
            events_processed: self.events_processed,
            transits: self.transits,
            stale_timer_pops: self.stale_timer_pops,
            deferred_timer_pushes: self.deferred_timer_pushes,
            wheel_hwm: hwm.wheel,
            far_hwm: hwm.far,
            ring_hwm: self
                .links
                .iter()
                .map(|l| l.stats.peak_ring as u64)
                .max()
                .unwrap_or(0),
            random_loss_drops: self.links.iter().map(|l| l.stats.random_dropped).sum(),
        }
    }

    /// Fold the simulation's always-on metrics into one mergeable snapshot:
    /// per-sender RTT/cwnd histograms and retransmission counters, per-link
    /// queue-depth histograms and drop counters, plus the engine event
    /// totals. Senders and links are visited in id order and histograms merge
    /// with exact integer arithmetic, so the snapshot is a pure function of
    /// the simulated system — byte-identical across scheduler engines,
    /// runner thread counts, and trace on/off.
    pub fn metrics_snapshot(&self) -> obs::MetricsSnapshot {
        let mut snap = obs::MetricsSnapshot::new();
        for s in &self.senders {
            snap.histograms
                .entry("net.rtt_us".to_string())
                .or_default()
                .merge(&s.rtt_hist);
            snap.histograms
                .entry("net.cwnd_pkts".to_string())
                .or_default()
                .merge(&s.cwnd_hist);
            snap.counter_add("net.data_sent", s.stats.data_sent);
            snap.counter_add("net.retransmits", s.stats.retransmits);
            snap.counter_add("net.rto_timeouts", s.stats.timeouts);
            snap.counter_add("net.fast_retransmits", s.stats.fast_retransmits);
        }
        for l in &self.links {
            snap.histograms
                .entry("net.queue_depth_pkts".to_string())
                .or_default()
                .merge(&l.queue_hist);
            snap.counter_add("net.queue_drops", l.stats.dropped);
            snap.counter_add("net.random_loss_drops", l.stats.random_dropped);
            snap.gauge_max("net.peak_queue_pkts", l.stats.peak_queue as f64);
        }
        snap.counter_add("engine.events", self.events_processed);
        snap.counter_add("engine.transits", self.transits);
        snap
    }

    /// Immutable access to a link (for stats).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id as usize]
    }

    /// Immutable access to a flow's sender.
    pub fn sender(&self, flow: FlowId) -> &TcpSender {
        &self.senders[self.flows[flow as usize].sender as usize]
    }

    /// Immutable access to a flow's sink.
    pub fn sink(&self, flow: FlowId) -> &TcpSink {
        &self.sinks[self.flows[flow as usize].sink as usize]
    }

    /// Engine counters for a flow.
    pub fn flow_counters(&self, flow: FlowId) -> FlowCounters {
        self.flow_counters[flow as usize]
    }

    /// Measured loss probability of a flow: data packets dropped at queues
    /// divided by data packets transmitted (first + retransmissions).
    pub fn flow_loss_rate(&self, flow: FlowId) -> f64 {
        let tx = self.sender(flow).total_transmissions();
        if tx == 0 {
            0.0
        } else {
            self.flow_counters[flow as usize].data_dropped as f64 / tx as f64
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    #[inline]
    fn schedule(&mut self, time: SimTime, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(time, self.event_seq, kind);
    }

    /// Run the simulation until simulated time `t_end`.
    pub fn run_until(&mut self, t_end: SimTime) {
        if self.tracer.is_some() {
            self.run_loop::<Recorded>(t_end);
        } else {
            self.run_loop::<Unrecorded>(t_end);
        }
    }

    fn run_loop<M: RecordMode>(&mut self, t_end: SimTime) {
        while let Some(ev) = self.events.pop_at_or_before(t_end) {
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.events_processed += 1;
            #[cfg(feature = "profile")]
            {
                let bin = ev.payload.profile_bin();
                let t0 = telemetry::profile::timestamp();
                self.dispatch::<M>(ev.time, ev.payload);
                self.drain_pending();
                self.profile
                    .record(bin, telemetry::profile::timestamp().wrapping_sub(t0));
            }
            #[cfg(not(feature = "profile"))]
            {
                self.dispatch::<M>(ev.time, ev.payload);
                self.drain_pending();
            }
        }
        self.now = t_end;
        // Settle every link to t_end: packets whose serialisation started by
        // now depart (bytes_tx, queue samples at their true times), exactly
        // as the eager per-transit design accounted them. Their arrivals are
        // provably past t_end — the delivery chain would otherwise have
        // fired — so no delivery is owed and the tracked events stay valid.
        for l in 0..self.links.len() {
            self.advance_link::<M>(l as LinkId);
        }
    }

    /// Advance `l` to the current time, retro-emitting queue-occupancy
    /// samples at the true departure times when the link is traced.
    fn advance_link<M: RecordMode>(&mut self, l: LinkId) {
        let now = self.now;
        let link = &mut self.links[l as usize];
        if M::ENABLED {
            if let Some(tr) = self.tracer.as_mut() {
                if tr.link_traced(l) {
                    link.advance(now, |t, q| tr.link_queue_changed(t, l, q));
                    return;
                }
            }
        }
        link.advance(now, |_, _| {});
    }

    /// Runtime-dispatched advance for out-of-loop callers (`SimApi` link
    /// mutation hooks).
    fn advance_link_dyn(&mut self, l: LinkId) {
        if self.tracer.is_some() {
            self.advance_link::<Recorded>(l);
        } else {
            self.advance_link::<Unrecorded>(l);
        }
    }

    /// Reconcile the link's single tracked delivery event with its wire
    /// head. Arrival stamps are monotone per link, so an outstanding event
    /// always targets the head and never goes stale; a push is needed only
    /// when no event is outstanding.
    #[inline]
    fn sync_link_deliver(&mut self, l: LinkId) {
        if self.link_deliver_ev[l as usize].is_none() {
            if let Some(at) = self.links[l as usize].next_arrival() {
                self.schedule(at, EventKind::LinkDeliver(l));
                self.link_deliver_ev[l as usize] = Some(at);
            }
        }
    }

    fn dispatch<M: RecordMode>(&mut self, time: SimTime, kind: EventKind) {
        match kind {
            EventKind::LinkDeliver(l) => {
                debug_assert_eq!(self.link_deliver_ev[l as usize], Some(time));
                self.advance_link::<M>(l);
                // Deliver everything due at this instant. The tracked slot
                // stays occupied until the loop ends so reentrant offers to
                // this link (possible through app callbacks) cannot schedule
                // a duplicate event for a head we are about to pop.
                while let Some(pkt) = self.links[l as usize].pop_due(time) {
                    self.transits += 1;
                    let node = self.links[l as usize].to;
                    self.handle_arrival::<M>(node, pkt);
                }
                self.link_deliver_ev[l as usize] = None;
                self.sync_link_deliver(l);
            }
            EventKind::SenderTimer(sender) => {
                let s = sender as usize;
                if self.sender_timer_ev[s] != Some(time) {
                    // Superseded by a later push for an earlier deadline.
                    self.stale_timer_pops += 1;
                    return;
                }
                self.sender_timer_ev[s] = None;
                match self.senders[s].timer_deadline {
                    Some(d) if d == time => {
                        self.senders[s].on_timeout(time);
                        self.flush_sender::<M>(sender);
                    }
                    Some(d) => {
                        // Deadline moved later (RTO restarted on an ACK):
                        // defer by re-queueing one event at the new deadline.
                        debug_assert!(d > time, "tracked event after its deadline");
                        self.schedule(d, EventKind::SenderTimer(sender));
                        self.sender_timer_ev[s] = Some(d);
                        self.deferred_timer_pushes += 1;
                    }
                    None => self.stale_timer_pops += 1, // cancelled
                }
            }
            EventKind::SinkTimer(sink) => {
                let s = sink as usize;
                if self.sink_timer_ev[s] != Some(time) {
                    self.stale_timer_pops += 1;
                    return;
                }
                self.sink_timer_ev[s] = None;
                match self.sinks[s].timer_deadline {
                    Some(d) if d == time => {
                        self.sinks[s].on_delack_timer();
                        self.flush_sink::<M>(sink);
                    }
                    Some(d) => {
                        debug_assert!(d > time, "tracked event after its deadline");
                        self.schedule(d, EventKind::SinkTimer(sink));
                        self.sink_timer_ev[s] = Some(d);
                        self.deferred_timer_pushes += 1;
                    }
                    None => self.stale_timer_pops += 1,
                }
            }
            EventKind::AppTimer { app, tag } => {
                self.with_app(app, |a, api| a.on_timer(api, tag));
            }
        }
    }

    fn handle_arrival<M: RecordMode>(&mut self, node: NodeId, pkt: Packet) {
        if pkt.dst != node {
            self.route_from::<M>(node, pkt);
            return;
        }
        match pkt.kind {
            PacketKind::Data => {
                let sink_id = self.flows[pkt.flow as usize].sink;
                self.sinks[sink_id as usize].on_data(&pkt, self.now);
                self.flush_sink::<M>(sink_id);
            }
            PacketKind::Ack => {
                let sender_id = self.flows[pkt.flow as usize].sender;
                self.senders[sender_id as usize].on_ack(pkt.seq, self.now);
                self.flush_sender::<M>(sender_id);
            }
        }
    }

    fn route_from<M: RecordMode>(&mut self, node: NodeId, pkt: Packet) {
        match self.nodes[node as usize].route_to(pkt.dst) {
            Some(l) => {
                debug_assert_eq!(
                    self.links[l as usize].from, node,
                    "routing table on node {node} points at a foreign link"
                );
                self.offer_to_link::<M>(l, pkt);
            }
            None => no_route_panic(node, &self.nodes[node as usize].label, pkt.dst),
        }
    }

    fn offer_to_link<M: RecordMode>(&mut self, l: LinkId, pkt: Packet) {
        self.advance_link::<M>(l);
        let now = self.now;
        match self.links[l as usize].offer(now, pkt) {
            Offer::Started => self.sync_link_deliver(l),
            Offer::Queued => {
                if M::ENABLED {
                    if let Some(tr) = self.tracer.as_mut() {
                        if tr.link_traced(l) {
                            tr.link_queue_changed(now, l, self.links[l as usize].queue_len());
                        }
                    }
                }
            }
            Offer::Dropped(p) => {
                let c = &mut self.flow_counters[p.flow as usize];
                match p.kind {
                    PacketKind::Data => c.data_dropped += 1,
                    PacketKind::Ack => c.acks_dropped += 1,
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Endpoint flushing (outboxes, timers, app notifications)
    // ------------------------------------------------------------------

    /// Reconcile an endpoint's desired deadline with its single tracked
    /// timer event. An event is pushed only when the deadline is *earlier*
    /// than the tracked event (or there is none); a later deadline is
    /// reached by deferral at pop time, a cancelled one by a stale pop.
    #[inline]
    fn sync_timer(
        events: &mut EventQueue<EventKind>,
        event_seq: &mut u64,
        tracked: &mut Option<SimTime>,
        deadline: Option<SimTime>,
        kind: EventKind,
    ) {
        if let Some(d) = deadline {
            match *tracked {
                Some(t) if t <= d => {}
                _ => {
                    *event_seq += 1;
                    events.push(d, *event_seq, kind);
                    *tracked = Some(d);
                }
            }
        }
    }

    fn flush_sender<M: RecordMode>(&mut self, sender_id: u32) {
        let s = sender_id as usize;
        let (node, flow) = (self.senders[s].node, self.senders[s].flow);
        // Drain trace marks before routing the outbox: the state transitions
        // they describe logically precede the packets they caused.
        if M::ENABLED {
            if !self.senders[s].marks.is_empty() {
                match self.tracer.as_mut() {
                    Some(tr) => tr.drain_marks(flow, &mut self.senders[s].marks),
                    None => self.senders[s].marks.clear(),
                }
            }
        } else {
            // Untraced instantiation: no tracer, so no sender takes marks.
            debug_assert!(self.senders[s].marks.is_empty());
        }
        let mut pkts = std::mem::take(&mut self.senders[s].outbox);
        for pkt in pkts.drain(..) {
            self.route_from::<M>(node, pkt);
        }
        // Nothing below route_from can touch this outbox, so hand the
        // allocation back instead of churning a fresh Vec per flush.
        std::mem::swap(&mut self.senders[s].outbox, &mut pkts);
        debug_assert!(pkts.is_empty());
        if self.senders[s].timer_dirty {
            self.senders[s].timer_dirty = false;
            Self::sync_timer(
                &mut self.events,
                &mut self.event_seq,
                &mut self.sender_timer_ev[s],
                self.senders[s].timer_deadline,
                EventKind::SenderTimer(sender_id),
            );
        }
        if std::mem::take(&mut self.senders[s].wake_app) {
            if let Some(app) = self.flows[flow as usize].owner_app {
                self.pending_calls.push(AppCall::SendSpace(app, flow));
            }
        }
        if std::mem::take(&mut self.senders[s].transfer_complete) {
            if let Some(app) = self.flows[flow as usize].owner_app {
                self.pending_calls
                    .push(AppCall::TransferComplete(app, flow));
            }
        }
    }

    /// Runtime-dispatched flush for out-of-loop callers (`SimApi` app entry
    /// points): one branch, then the monomorphized body.
    fn flush_sender_dyn(&mut self, sender_id: u32) {
        if self.tracer.is_some() {
            self.flush_sender::<Recorded>(sender_id);
        } else {
            self.flush_sender::<Unrecorded>(sender_id);
        }
    }

    fn flush_sink<M: RecordMode>(&mut self, sink_id: u32) {
        let s = sink_id as usize;
        let (node, flow) = (self.sinks[s].node, self.sinks[s].flow);
        let mut pkts = std::mem::take(&mut self.sinks[s].outbox);
        for pkt in pkts.drain(..) {
            self.route_from::<M>(node, pkt);
        }
        std::mem::swap(&mut self.sinks[s].outbox, &mut pkts);
        debug_assert!(pkts.is_empty());
        if self.sinks[s].timer_dirty {
            self.sinks[s].timer_dirty = false;
            Self::sync_timer(
                &mut self.events,
                &mut self.event_seq,
                &mut self.sink_timer_ev[s],
                self.sinks[s].timer_deadline,
                EventKind::SinkTimer(sink_id),
            );
        }
        if !self.sinks[s].delivered.is_empty() {
            let mut chunks = std::mem::take(&mut self.sinks[s].delivered);
            if let Some(app) = self.flows[flow as usize].receiver_app {
                self.with_app(app, |a, api| a.on_receive(api, flow, &chunks));
            }
            // The app may push data on *other* flows but never appends to
            // this sink's delivery buffer, so the capacity comes back too.
            chunks.clear();
            std::mem::swap(&mut self.sinks[s].delivered, &mut chunks);
            debug_assert!(chunks.is_empty());
        }
    }

    fn drain_pending(&mut self) {
        while let Some(call) = self.pending_calls.pop() {
            match call {
                AppCall::SendSpace(app, flow) => {
                    self.with_app(app, |a, api| a.on_send_space(api, flow));
                }
                AppCall::TransferComplete(app, flow) => {
                    self.with_app(app, |a, api| a.on_transfer_complete(api, flow));
                }
            }
        }
    }

    fn with_app(&mut self, id: AppId, f: impl FnOnce(&mut dyn App, &mut SimApi<'_>)) {
        let mut app = self.apps[id as usize].take().expect("app reentrancy");
        {
            let mut api = SimApi { sim: self, app: id };
            f(app.as_mut(), &mut api);
        }
        self.apps[id as usize] = Some(app);
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        telemetry::merge(&self.counters());
        #[cfg(feature = "profile")]
        telemetry::profile::merge(&self.profile);
    }
}

/// Handle through which applications interact with the simulator.
pub struct SimApi<'a> {
    sim: &'a mut Sim,
    app: AppId,
}

impl SimApi<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now
    }

    /// Deterministic RNG shared by the whole simulation (application use;
    /// link loss draws come from per-link streams).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.sim.rng
    }

    /// Schedule `on_timer(tag)` for this app after `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, tag: u64) {
        let t = self.sim.now + delay;
        self.sim
            .schedule(t, EventKind::AppTimer { app: self.app, tag });
    }

    /// Subscribe this app to send-side notifications of `flow`
    /// (`on_send_space`, `on_transfer_complete`).
    pub fn own_flow(&mut self, flow: FlowId) {
        self.sim.flows[flow as usize].owner_app = Some(self.app);
    }

    /// Subscribe this app to in-order data delivered by `flow`'s sink.
    pub fn receive_flow(&mut self, flow: FlowId) {
        self.sim.flows[flow as usize].receiver_app = Some(self.app);
    }

    /// Free send-buffer space on `flow`, in segments.
    pub fn free_space(&self, flow: FlowId) -> usize {
        self.sim.sender(flow).free_space()
    }

    /// Push a chunk into `flow`'s send buffer and transmit what the window
    /// allows. Returns `false` if the buffer was full.
    pub fn push_chunk(&mut self, flow: FlowId, chunk: AppChunk) -> bool {
        let sid = self.sim.flows[flow as usize].sender;
        let now = self.sim.now;
        let ok = self.sim.senders[sid as usize].push_chunk(chunk);
        if ok {
            self.sim.senders[sid as usize].try_send(now);
            self.sim.flush_sender_dyn(sid);
        }
        ok
    }

    /// Make `flow` backlogged (infinite data or a sized transfer) and start
    /// transmitting.
    pub fn set_backlogged(&mut self, flow: FlowId, remaining: Option<u64>) {
        let sid = self.sim.flows[flow as usize].sender;
        let now = self.sim.now;
        self.sim.senders[sid as usize].set_backlogged(remaining);
        self.sim.senders[sid as usize].try_send(now);
        self.sim.flush_sender_dyn(sid);
    }

    /// Reset `flow`'s congestion state as a fresh connection (HTTP restart).
    pub fn restart_connection(&mut self, flow: FlowId) {
        let sid = self.sim.flows[flow as usize].sender;
        self.sim.senders[sid as usize].restart_connection();
    }

    /// Read-only view of the sender of `flow` (stats, RTT estimator).
    pub fn sender(&self, flow: FlowId) -> &TcpSender {
        self.sim.sender(flow)
    }

    // ------------------------------------------------------------------
    // Flight-recorder hooks. All are no-ops when no tracer is installed,
    // so apps can call them unconditionally on the hot path.
    // ------------------------------------------------------------------

    /// Whether a flight recorder is installed (lets apps skip building
    /// event payloads entirely when tracing is off).
    pub fn trace_enabled(&self) -> bool {
        self.sim.tracer.is_some()
    }

    /// Emit a trace event stamped with the current simulated time.
    pub fn trace_emit(&mut self, kind: obs::EventKind) {
        let now = self.sim.now;
        if let Some(tr) = self.sim.tracer.as_mut() {
            tr.emit(now, kind);
        }
    }

    /// Record a depth change of the streaming server's shared pull queue
    /// (decimated per the trace configuration).
    pub fn trace_srv_queue(&mut self, depth: usize) {
        let now = self.sim.now;
        if let Some(tr) = self.sim.tracer.as_mut() {
            tr.srv_queue_changed(now, depth);
        }
    }

    // ------------------------------------------------------------------
    // Link mutation (fault injection / path dynamics). Scheduled from an
    // app timer these become ordinary engine events, so scripted scenarios
    // stay byte-identical across scheduler implementations. Every hook
    // advances the link to `now` first, so the change applies exactly to
    // packets that start serialising after this instant.
    // ------------------------------------------------------------------

    /// Current spec of `link` (base values for relative scenario factors).
    pub fn link_spec(&self, link: LinkId) -> LinkSpec {
        self.sim.links[link as usize].spec
    }

    /// Change `link`'s transmission rate; applies to future transmissions.
    pub fn set_link_rate(&mut self, link: LinkId, bps: f64) {
        self.sim.advance_link_dyn(link);
        self.sim.links[link as usize].set_bandwidth_bps(bps);
    }

    /// Change `link`'s propagation delay; applies to future transmissions.
    pub fn set_link_delay(&mut self, link: LinkId, delay: SimTime) {
        self.sim.advance_link_dyn(link);
        self.sim.links[link as usize].set_delay(delay);
    }

    /// Change `link`'s Bernoulli random-loss probability.
    pub fn set_link_loss(&mut self, link: LinkId, p: f64) {
        self.sim.advance_link_dyn(link);
        self.sim.links[link as usize].set_random_loss(p);
    }

    /// Administratively down `link`: flush its queue (the flushed packets are
    /// charged to their flows' drop counters) and blackhole every packet
    /// offered until [`SimApi::set_link_up`]. Packets already on the wire
    /// still arrive, as on a real link failure.
    pub fn set_link_down(&mut self, link: LinkId) {
        self.sim.advance_link_dyn(link);
        let flushed = self.sim.links[link as usize].set_admin_down(true);
        let emptied = !flushed.is_empty();
        for pkt in flushed {
            let c = &mut self.sim.flow_counters[pkt.flow as usize];
            match pkt.kind {
                PacketKind::Data => c.data_dropped += 1,
                PacketKind::Ack => c.acks_dropped += 1,
            }
        }
        if emptied {
            let now = self.sim.now;
            if let Some(tr) = self.sim.tracer.as_mut() {
                if tr.link_traced(link) {
                    tr.link_queue_changed(now, link, 0);
                }
            }
        }
    }

    /// Bring an administratively-downed `link` back up.
    pub fn set_link_up(&mut self, link: LinkId) {
        self.sim.advance_link_dyn(link);
        let flushed = self.sim.links[link as usize].set_admin_down(false);
        debug_assert!(flushed.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{millis, secs, SECOND};

    /// Two hosts, one duplex link. An FTP transfers data; check delivery and
    /// throughput plausibility.
    fn two_host_sim(bw_mbps: f64, delay_ms: f64, queue: usize) -> (Sim, FlowId) {
        let mut sim = Sim::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (f, r) = sim.add_duplex(a, b, LinkSpec::from_table(bw_mbps, delay_ms, queue));
        sim.add_route(a, b, f);
        sim.add_route(b, a, r);
        let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        (sim, flow)
    }

    struct FtpStarter {
        flow: FlowId,
    }
    impl App for FtpStarter {
        fn start(&mut self, api: &mut SimApi<'_>) {
            api.set_backlogged(self.flow, None);
        }
    }

    #[test]
    fn backlogged_flow_fills_the_pipe() {
        let (mut sim, flow) = two_host_sim(10.0, 10.0, 100);
        sim.add_app(Box::new(FtpStarter { flow }));
        sim.run_until(10 * SECOND);
        // 10 Mbps, 1500 B packets → 833 pkt/s max. Expect ≥ 70% utilisation
        // after slow start in 10 s, and no loss (huge queue, window-limited).
        let delivered = sim.sink(flow).stats.delivered;
        assert!(delivered > 4_000, "delivered {delivered}");
        assert_eq!(sim.flow_counters(flow).data_dropped, 0);
        // RTT samples should hover around the two-way propagation delay.
        let rtt = sim.sender(flow).rtt.mean_rtt_secs().unwrap();
        assert!(rtt > 0.019 && rtt < 0.2, "rtt {rtt}");
    }

    #[test]
    fn window_limited_throughput_matches_formula() {
        // Large BDP: throughput ≈ max_wnd / RTT.
        let (mut sim, flow) = two_host_sim(100.0, 50.0, 1000);
        sim.add_app(Box::new(FtpStarter { flow }));
        sim.run_until(30 * SECOND);
        let delivered = sim.sink(flow).stats.delivered as f64 / 30.0;
        let rtt = 0.1 + 0.00012 * 2.0; // 2×50 ms + serialisation
        let expect = 64.0 / rtt;
        assert!(
            (delivered - expect).abs() / expect < 0.15,
            "delivered {delivered:.1} pkt/s, expected ≈ {expect:.1}"
        );
    }

    #[test]
    fn bottleneck_losses_trigger_recovery_not_collapse() {
        // Small queue forces drops; the flow must keep making progress.
        let (mut sim, flow) = two_host_sim(2.0, 20.0, 10);
        sim.add_app(Box::new(FtpStarter { flow }));
        sim.run_until(60 * SECOND);
        let delivered = sim.sink(flow).stats.delivered as f64 / 60.0;
        // 2 Mbps ≈ 167 pkt/s; Reno should reach at least half of that.
        assert!(delivered > 80.0, "delivered {delivered:.1} pkt/s");
        assert!(sim.flow_counters(flow).data_dropped > 0, "expected drops");
        let p = sim.flow_loss_rate(flow);
        assert!(p > 0.0 && p < 0.2, "loss {p}");
        // Everything delivered exactly once to the app despite losses.
        let sent_beyond = sim.sender(flow).acked();
        assert_eq!(sim.sink(flow).stats.delivered, sim.sink(flow).rcv_next());
        assert!(sent_beyond <= sim.sink(flow).rcv_next());
    }

    #[test]
    fn two_competing_flows_share_fairly() {
        let mut sim = Sim::new(7);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (f, r) = sim.add_duplex(a, b, LinkSpec::from_table(4.0, 20.0, 30));
        sim.add_route(a, b, f);
        sim.add_route(b, a, r);
        let f1 = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        let f2 = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        sim.add_app(Box::new(FtpStarter { flow: f1 }));
        sim.add_app(Box::new(FtpStarter { flow: f2 }));
        sim.run_until(120 * SECOND);
        let d1 = sim.sink(f1).stats.delivered as f64;
        let d2 = sim.sink(f2).stats.delivered as f64;
        let ratio = d1.max(d2) / d1.min(d2);
        assert!(ratio < 1.6, "unfair split: {d1} vs {d2}");
        // Combined they should use most of the 4 Mbps ≈ 333 pkt/s.
        assert!((d1 + d2) / 120.0 > 250.0, "aggregate too low");
    }

    #[test]
    fn app_timers_fire_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct TimerApp {
            fired: Rc<RefCell<Vec<(u64, SimTime)>>>,
        }
        impl App for TimerApp {
            fn start(&mut self, api: &mut SimApi<'_>) {
                api.schedule_in(secs(2.0), 2);
                api.schedule_in(secs(1.0), 1);
                api.schedule_in(millis(1500.0), 15);
            }
            fn on_timer(&mut self, api: &mut SimApi<'_>, tag: u64) {
                self.fired.borrow_mut().push((tag, api.now()));
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(1);
        sim.add_app(Box::new(TimerApp {
            fired: Rc::clone(&fired),
        }));
        sim.run_until(10 * SECOND);
        assert_eq!(
            *fired.borrow(),
            vec![(1, secs(1.0)), (15, millis(1500.0)), (2, secs(2.0))]
        );
    }

    /// A lossy two-host topology that actually consumes link RNG streams
    /// (Bernoulli link loss), so outcomes are a function of the seed.
    fn lossy_run(seed: u64) -> (u64, u64, u64) {
        let mut sim = Sim::new(seed);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let spec = LinkSpec::from_table(2.0, 20.0, 30).with_random_loss(0.02);
        let (f, r) = sim.add_duplex(a, b, spec);
        sim.add_route(a, b, f);
        sim.add_route(b, a, r);
        let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        sim.add_app(Box::new(FtpStarter { flow }));
        sim.run_until(30 * SECOND);
        (
            sim.sink(flow).stats.delivered,
            sim.flow_counters(flow).data_dropped,
            sim.events_processed(),
        )
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        assert_eq!(lossy_run(1), lossy_run(1));
        assert_eq!(lossy_run(2007), lossy_run(2007));
    }

    #[test]
    fn different_seeds_diverge() {
        // With Bernoulli loss on the link, the per-link RNG streams provably
        // shape the run: different seeds must produce different loss
        // patterns and event counts. (Identical triples across 1→2 would
        // mean the seed is not wired through to the links.)
        assert_ne!(lossy_run(1), lossy_run(2));
    }

    #[test]
    fn both_engines_agree_exactly() {
        let run = |engine| {
            let mut sim = Sim::with_engine(3, engine);
            let a = sim.add_node("a");
            let b = sim.add_node("b");
            let spec = LinkSpec::from_table(2.0, 20.0, 10).with_random_loss(0.01);
            let (f, r) = sim.add_duplex(a, b, spec);
            sim.add_route(a, b, f);
            sim.add_route(b, a, r);
            let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
            sim.add_app(Box::new(FtpStarter { flow }));
            sim.run_until(60 * SECOND);
            (
                sim.sink(flow).stats.delivered,
                sim.sender(flow).stats.retransmits,
                sim.sender(flow).stats.timeouts,
                sim.flow_counters(flow).data_dropped,
                sim.events_processed(),
                sim.transits(),
            )
        };
        assert_eq!(run(EngineKind::Heap), run(EngineKind::Calendar));
    }

    #[test]
    fn zero_random_loss_is_byte_identical_to_no_knob() {
        // The Bernoulli loss process must consume no RNG when p = 0, so a
        // link configured with `.with_random_loss(0.0)` is indistinguishable
        // from one that never heard of the knob: same deliveries, same drop
        // pattern, same event count.
        let run = |zero_loss_knob: bool| {
            let mut sim = Sim::new(11);
            let a = sim.add_node("a");
            let b = sim.add_node("b");
            let mut spec = LinkSpec::from_table(2.0, 20.0, 10);
            if zero_loss_knob {
                spec = spec.with_random_loss(0.0);
            }
            let (f, r) = sim.add_duplex(a, b, spec);
            sim.add_route(a, b, f);
            sim.add_route(b, a, r);
            let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
            sim.add_app(Box::new(FtpStarter { flow }));
            sim.run_until(60 * SECOND);
            (
                sim.sink(flow).stats.delivered,
                sim.sender(flow).stats.retransmits,
                sim.flow_counters(flow).data_dropped,
                sim.events_processed(),
                sim.counters().random_loss_drops,
            )
        };
        let (without, with) = (run(false), run(true));
        assert_eq!(without, with);
        assert_eq!(with.4, 0, "p = 0 must never drop");
    }

    #[test]
    fn delivery_events_are_coalesced() {
        // The classic pipeline spent two events per transit (tx-done +
        // arrival); coalesced delivery must spend strictly less per transit,
        // even counting every timer event in the run.
        let (mut sim, flow) = two_host_sim(10.0, 10.0, 100);
        sim.add_app(Box::new(FtpStarter { flow }));
        sim.run_until(10 * SECOND);
        let c = sim.counters();
        assert!(c.transits > 8_000, "transits {}", c.transits);
        assert!(
            c.events_processed < 2 * c.transits,
            "no coalescing win: {} events for {} transits",
            c.events_processed,
            c.transits
        );
    }

    #[test]
    fn link_mutation_hooks_reshape_a_running_flow() {
        // An app timer downs the bottleneck mid-run, then restores it at a
        // lower rate: delivery must stall during the outage and resume after.
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Mutator {
            fwd: LinkId,
            rev: LinkId,
            flow: FlowId,
            delivered_at: Rc<RefCell<Vec<u64>>>,
        }
        impl App for Mutator {
            fn start(&mut self, api: &mut SimApi<'_>) {
                api.schedule_in(10 * SECOND, 0); // down
                api.schedule_in(16 * SECOND, 1); // up at half rate
                api.schedule_in(15 * SECOND, 2); // sample mid-outage
                api.schedule_in(36 * SECOND, 3); // sample after recovery
            }
            fn on_timer(&mut self, api: &mut SimApi<'_>, tag: u64) {
                match tag {
                    0 => {
                        api.set_link_down(self.fwd);
                        api.set_link_down(self.rev);
                    }
                    1 => {
                        let base = api.link_spec(self.fwd).bandwidth_bps;
                        api.set_link_up(self.fwd);
                        api.set_link_up(self.rev);
                        api.set_link_rate(self.fwd, base / 2.0);
                        api.set_link_delay(self.fwd, millis(40.0));
                    }
                    _ => {
                        let d = api.sender(self.flow).acked();
                        self.delivered_at.borrow_mut().push(d);
                    }
                }
            }
        }
        let mut sim = Sim::new(3);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (f, r) = sim.add_duplex(a, b, LinkSpec::from_table(2.0, 20.0, 30));
        sim.add_route(a, b, f);
        sim.add_route(b, a, r);
        let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        sim.add_app(Box::new(FtpStarter { flow }));
        let delivered_at = Rc::new(RefCell::new(Vec::new()));
        sim.add_app(Box::new(Mutator {
            fwd: f,
            rev: r,
            flow,
            delivered_at: Rc::clone(&delivered_at),
        }));
        sim.run_until(40 * SECOND);
        let samples = delivered_at.borrow();
        let at_10s_rate = samples[0]; // acked by t=15 (outage began at 10)
        let after = samples[1]; // acked by t=36 (the outage ended at 16)
                                // Progress after recovery (the RTO backoff delays the first
                                // successful retransmit), but at a visibly reduced pace (half rate).
        assert!(after > at_10s_rate + 400, "no recovery: {samples:?}");
        let full_rate_pps = 167.0; // 2 Mbps / 1500 B
        let resumed_pps = (after - at_10s_rate) as f64 / 21.0;
        assert!(
            resumed_pps < 0.75 * full_rate_pps,
            "rate cut not applied: {resumed_pps:.0} pkt/s"
        );
        assert!(sim.link(f).stats.admin_dropped > 0);
    }

    #[test]
    fn tracing_is_behaviour_neutral_and_engine_invariant() {
        use crate::trace::SimTracer;
        use obs::{Recorder, TraceConfig};
        use std::cell::RefCell;
        use std::rc::Rc;

        // A lossy run exercises retransmits, timeouts, and queue dynamics.
        let run = |engine: EngineKind, traced: bool| {
            let mut sim = Sim::with_engine(9, engine);
            let a = sim.add_node("a");
            let b = sim.add_node("b");
            let spec = LinkSpec::from_table(2.0, 20.0, 10).with_random_loss(0.01);
            let (f, r) = sim.add_duplex(a, b, spec);
            sim.add_route(a, b, f);
            sim.add_route(b, a, r);
            let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
            let rec = traced.then(|| {
                let rec = Rc::new(RefCell::new(Recorder::in_memory(TraceConfig {
                    ring_capacity: 64,
                    queue_decimation: 2,
                })));
                let mut tr = SimTracer::new(Rc::clone(&rec));
                tr.trace_flow(flow);
                tr.trace_link(f);
                sim.set_tracer(tr);
                rec
            });
            sim.add_app(Box::new(FtpStarter { flow }));
            sim.run_until(60 * SECOND);
            let outcome = (
                sim.sink(flow).stats.delivered,
                sim.sender(flow).stats.retransmits,
                sim.sender(flow).stats.timeouts,
                sim.flow_counters(flow).data_dropped,
                sim.events_processed(),
                sim.transits(),
            );
            drop(sim); // release the tracer's recorder handle
            let text = rec.map(|rec| {
                let rec = Rc::try_unwrap(rec).ok().expect("sole handle").into_inner();
                String::from_utf8(rec.finish().unwrap().bytes.unwrap()).unwrap()
            });
            (outcome, text)
        };

        let (plain, none) = run(EngineKind::Calendar, false);
        assert!(none.is_none());
        let (traced_cal, trace_cal) = run(EngineKind::Calendar, true);
        let (traced_heap, trace_heap) = run(EngineKind::Heap, true);
        assert_eq!(plain, traced_cal, "tracing must not perturb the run");
        assert_eq!(traced_cal, traced_heap);
        let tc = trace_cal.unwrap();
        assert_eq!(
            tc,
            trace_heap.unwrap(),
            "trace bytes must be engine-invariant"
        );
        assert!(tc.contains("\"ev\":\"cwnd\""), "missing cwnd events");
        assert!(tc.contains("\"ev\":\"link_q\""), "missing queue samples");
        assert!(tc.contains("\"ev\":\"retx\""), "missing retransmit events");
    }

    #[test]
    fn counters_reflect_timer_reclamation() {
        let (mut sim, flow) = two_host_sim(2.0, 20.0, 10);
        sim.add_app(Box::new(FtpStarter { flow }));
        sim.run_until(60 * SECOND);
        let c = sim.counters();
        assert_eq!(c.events_processed, sim.events_processed());
        assert!(c.wheel_hwm > 0);
        assert!(c.ring_hwm > 0);
        assert!(c.transits > 0);
        // A lossy Reno flow restarts its RTO on every ACK; lazy timers must
        // turn those into deferrals/stale pops instead of queued events. The
        // queue HWM staying near the pipe size (not the ACK count) is the
        // point of the scheme.
        assert!(
            c.stale_timer_pops + c.deferred_timer_pushes > 0,
            "expected reclaimed timer events: {c:?}"
        );
        assert!(
            c.wheel_hwm + c.far_hwm < 200,
            "queue should stay small: {c:?}"
        );
    }
}
