//! Packets and flow identifiers.

use crate::time::SimTime;

/// Index of a node in the simulator's arena.
pub type NodeId = u32;

/// Index of a (unidirectional) link in the simulator's arena.
pub type LinkId = u32;

/// Index of a flow (one TCP connection) in the simulator's arena.
pub type FlowId = u32;

/// TCP/IP header overhead added to every data packet, bytes.
pub const HEADER_BYTES: u32 = 40;

/// Size of a pure ACK packet, bytes.
pub const ACK_BYTES: u32 = 40;

/// Application-level payload metadata carried by a data packet: the video
/// packet's stream sequence number and generation time. Background flows
/// carry synthetic chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppChunk {
    /// Stream-level sequence number (position/playback slot for video).
    pub stream_seq: u64,
    /// Generation time at the source, ns.
    pub gen_ns: SimTime,
}

impl AppChunk {
    /// A synthetic chunk for background traffic.
    pub fn synthetic(seq: u64, now: SimTime) -> Self {
        Self {
            stream_seq: seq,
            gen_ns: now,
        }
    }
}

/// What kind of packet this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// A TCP data segment; `seq` is the segment sequence number (counted in
    /// whole segments, as ns-2 does).
    Data,
    /// A cumulative ACK; `seq` is the next expected segment.
    Ack,
}

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Data segment or ACK.
    pub kind: PacketKind,
    /// Segment number (Data) or cumulative ack (Ack), in segments.
    pub seq: u64,
    /// Total size on the wire, bytes.
    pub size_bytes: u32,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload metadata (Data packets only).
    pub chunk: Option<AppChunk>,
    /// True if this is a retransmission.
    pub is_retransmit: bool,
}

impl Packet {
    /// Build a data segment.
    pub fn data(
        flow: FlowId,
        seq: u64,
        payload_bytes: u32,
        src: NodeId,
        dst: NodeId,
        chunk: AppChunk,
        is_retransmit: bool,
    ) -> Self {
        Self {
            flow,
            kind: PacketKind::Data,
            seq,
            size_bytes: payload_bytes + HEADER_BYTES,
            src,
            dst,
            chunk: Some(chunk),
            is_retransmit,
        }
    }

    /// Build a cumulative ACK for `ack_seq`.
    pub fn ack(flow: FlowId, ack_seq: u64, src: NodeId, dst: NodeId) -> Self {
        Self {
            flow,
            kind: PacketKind::Ack,
            seq: ack_seq,
            size_bytes: ACK_BYTES,
            src,
            dst,
            chunk: None,
            is_retransmit: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_includes_header() {
        let p = Packet::data(0, 7, 1460, 1, 2, AppChunk::synthetic(7, 0), false);
        assert_eq!(p.size_bytes, 1500);
        assert_eq!(p.kind, PacketKind::Data);
        assert!(p.chunk.is_some());
    }

    #[test]
    fn ack_packet_is_small() {
        let p = Packet::ack(0, 9, 2, 1);
        assert_eq!(p.size_bytes, ACK_BYTES);
        assert_eq!(p.kind, PacketKind::Ack);
        assert!(p.chunk.is_none());
    }
}
