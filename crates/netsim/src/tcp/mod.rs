//! TCP Reno endpoints (sender, sink) and RTT estimation.

pub mod ring;
mod rtt;
mod sender;
mod sink;

pub use ring::SeqRing;
pub use rtt::RttEstimator;
pub use sender::{SenderStats, TcpConfig, TcpFlavor, TcpSender};
pub use sink::{SinkConfig, SinkStats, TcpSink};
