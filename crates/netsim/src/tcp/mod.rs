//! TCP Reno endpoints (sender, sink) and RTT estimation.

mod rtt;
mod sender;
mod sink;

pub use rtt::RttEstimator;
pub use sender::{SenderStats, TcpConfig, TcpFlavor, TcpSender};
pub use sink::{SinkConfig, SinkStats, TcpSink};
