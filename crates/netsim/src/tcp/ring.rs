//! Seq-indexed ring buffer for window-bounded TCP state.
//!
//! Both per-segment maps in the TCP endpoints — the sender's in-flight
//! segments and the sink's out-of-order buffer — key on segment sequence
//! numbers that live inside a window of at most `max_wnd` consecutive values.
//! A `BTreeMap` pays pointer chasing and node allocation for a key space
//! that is dense and bounded; this ring buffer stores value `seq` at slot
//! `seq & (capacity - 1)` in a flat `Vec<Option<T>>`.
//!
//! Invariant: every live sequence number lies in `[base, base + capacity)`,
//! so residues are collision-free and a slot unambiguously belongs to one
//! sequence number. `base` only moves forward ([`SeqRing::advance_to`]); the
//! ring grows (power-of-two doubling) if a window ever outruns the capacity.

/// A map from sequence numbers to `T` over a sliding, bounded window.
#[derive(Debug)]
pub struct SeqRing<T> {
    base: u64,
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for SeqRing<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SeqRing<T> {
    const INITIAL_CAP: usize = 64;

    /// An empty ring with `base = 0`.
    pub fn new() -> Self {
        Self {
            base: 0,
            slots: (0..Self::INITIAL_CAP).map(|_| None).collect(),
            len: 0,
        }
    }

    #[inline]
    fn slot(&self, seq: u64) -> usize {
        (seq & (self.slots.len() as u64 - 1)) as usize
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lowest sequence number the ring can currently hold.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Insert `value` at `seq`, returning the previous value at that exact
    /// sequence number (like `BTreeMap::insert`). `seq` must be `>= base`;
    /// the ring grows if `seq` is beyond the current window.
    pub fn insert(&mut self, seq: u64, value: T) -> Option<T> {
        debug_assert!(
            seq >= self.base,
            "insert below base ({seq} < {})",
            self.base
        );
        if seq - self.base >= self.slots.len() as u64 {
            self.grow(seq);
        }
        let slot = self.slot(seq);
        let old = self.slots[slot].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The value stored at `seq`, if any.
    pub fn get(&self, seq: u64) -> Option<&T> {
        if seq < self.base || seq - self.base >= self.slots.len() as u64 {
            return None;
        }
        self.slots[self.slot(seq)].as_ref()
    }

    /// Remove and return the value at `seq`, if any.
    pub fn remove(&mut self, seq: u64) -> Option<T> {
        if seq < self.base || seq - self.base >= self.slots.len() as u64 {
            return None;
        }
        let slot = self.slot(seq);
        let old = self.slots[slot].take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Slide the window forward: drop every entry with `seq < new_base` and
    /// make `new_base` the new lower bound. No-op if `new_base <= base`.
    pub fn advance_to(&mut self, new_base: u64) {
        if new_base <= self.base {
            return;
        }
        if self.len > 0 {
            let end = new_base.min(self.base + self.slots.len() as u64);
            for seq in self.base..end {
                let slot = self.slot(seq);
                if self.slots[slot].take().is_some() {
                    self.len -= 1;
                }
            }
        }
        self.base = new_base;
    }

    /// Double capacity until `seq` fits, re-placing live entries at their
    /// residues modulo the new capacity.
    fn grow(&mut self, seq: u64) {
        let old_cap = self.slots.len();
        let mut new_cap = old_cap * 2;
        while seq - self.base >= new_cap as u64 {
            new_cap *= 2;
        }
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_cap).map(|_| None).collect::<Vec<_>>(),
        );
        let old_mask = old_cap as u64 - 1;
        for (i, v) in old.into_iter().enumerate() {
            if let Some(v) = v {
                // Recover the absolute seq from the old residue: the unique
                // value ≡ i (mod old_cap) inside [base, base + old_cap).
                let offset = (i as u64).wrapping_sub(self.base) & old_mask;
                let seq = self.base + offset;
                let slot = (seq & (new_cap as u64 - 1)) as usize;
                self.slots[slot] = Some(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut r = SeqRing::new();
        assert_eq!(r.insert(5, "a"), None);
        assert_eq!(r.insert(5, "b"), Some("a"), "insert returns the old value");
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(5), Some(&"b"));
        assert_eq!(r.get(6), None);
        assert_eq!(r.remove(5), Some("b"));
        assert_eq!(r.remove(5), None);
        assert!(r.is_empty());
    }

    #[test]
    fn advance_drops_below_base() {
        let mut r = SeqRing::new();
        for s in 0..10u64 {
            r.insert(s, s);
        }
        r.advance_to(7);
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(6), None);
        assert_eq!(r.get(7), Some(&7));
        // Re-inserting at the freed residues must work after wrap-around.
        for s in 10..70u64 {
            r.insert(s, s);
        }
        assert_eq!(r.get(69), Some(&69));
        assert_eq!(r.len(), 63);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut r = SeqRing::new();
        for s in 0..500u64 {
            r.insert(s, s * 10);
        }
        assert_eq!(r.len(), 500);
        for s in 0..500u64 {
            assert_eq!(r.get(s), Some(&(s * 10)));
        }
    }

    /// Drive the ring and a `BTreeMap` reference through seeded random
    /// TCP-shaped traffic — inserts at the window head, removals at holes
    /// (retransmit fills), cumulative advances, and occasional window jumps
    /// far enough to force growth and residue wrap-around — and require
    /// identical observable behaviour throughout.
    #[test]
    fn matches_btreemap_reference_under_random_window_traffic() {
        for seed in 0..16u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut ring: SeqRing<u64> = SeqRing::new();
            let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
            let mut base = 0u64;
            let mut head = 0u64;
            for step in 0..4_000 {
                match rng.gen_range(0..10u32) {
                    // Send new segments at the head (dense insert).
                    0..=3 => {
                        let n = rng.gen_range(1..8u64);
                        for _ in 0..n {
                            let v = rng.gen_range(0..u64::MAX);
                            assert_eq!(ring.insert(head, v), reference.insert(head, v));
                            head += 1;
                        }
                    }
                    // Re-insert somewhere inside the window (retransmit
                    // bookkeeping / duplicate out-of-order segment).
                    4 | 5 => {
                        if head > base {
                            let seq = rng.gen_range(base..head);
                            let v = rng.gen_range(0..u64::MAX);
                            assert_eq!(ring.insert(seq, v), reference.insert(seq, v));
                        }
                    }
                    // Remove a specific seq (ooo drain hits a hole or not).
                    6 | 7 => {
                        if head > base {
                            let seq = rng.gen_range(base..head);
                            assert_eq!(ring.remove(seq), reference.remove(&seq));
                        }
                    }
                    // Cumulative ACK: advance the window.
                    8 => {
                        if head > base {
                            base = rng.gen_range(base..=head);
                            ring.advance_to(base);
                            reference.retain(|&k, _| k >= base);
                        }
                    }
                    // Rare: idle-period jump far ahead (forces the window
                    // across many multiples of the capacity).
                    _ => {
                        if rng.gen_bool(0.1) {
                            let jump = rng.gen_range(0..1000u64);
                            base = head.max(base) + jump;
                            head = base;
                            ring.advance_to(base);
                            reference.retain(|&k, _| k >= base);
                        }
                    }
                }
                assert_eq!(ring.len(), reference.len(), "seed {seed} step {step}");
                // Spot-check random probes across the whole window.
                for _ in 0..4 {
                    let seq = rng.gen_range(base.saturating_sub(5)..head + 5);
                    assert_eq!(
                        ring.get(seq),
                        if seq >= base {
                            reference.get(&seq)
                        } else {
                            None
                        },
                        "seed {seed} step {step} probe {seq}"
                    );
                }
            }
        }
    }
}
