//! TCP receiver (sink): cumulative ACKs with the delayed-ACK algorithm and
//! out-of-order segment buffering.
//!
//! The delayed-ACK behaviour matters for fidelity to the paper's model, whose
//! per-flow state carries an explicit delayed-ACK component `C` (window
//! growth of one segment every two rounds in congestion avoidance).

use crate::packet::{AppChunk, FlowId, NodeId, Packet};
use crate::tcp::ring::SeqRing;
use crate::time::{SimTime, MILLISECOND};

/// Sink tunables.
#[derive(Debug, Clone, Copy)]
pub struct SinkConfig {
    /// Acknowledge every `ack_every`-th in-order segment (2 = standard
    /// delayed ACKs; 1 = ack every segment).
    pub ack_every: u32,
    /// Fire a pending delayed ACK after this much time even if no second
    /// segment shows up (RFC 1122 suggests ≤ 500 ms; common stacks ~100 ms).
    pub delack_timeout: SimTime,
}

impl Default for SinkConfig {
    fn default() -> Self {
        Self {
            ack_every: 2,
            delack_timeout: 100 * MILLISECOND,
        }
    }
}

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SinkStats {
    /// In-order segments delivered to the application.
    pub delivered: u64,
    /// Segments received more than once.
    pub duplicates: u64,
    /// Segments that arrived out of order (buffered).
    pub out_of_order: u64,
}

/// A TCP sink endpoint.
#[derive(Debug)]
pub struct TcpSink {
    /// Flow this sink terminates.
    pub flow: FlowId,
    /// Node the sink lives on.
    pub node: NodeId,
    /// Sender's node (destination for ACKs).
    pub peer: NodeId,
    /// Configuration.
    pub cfg: SinkConfig,

    rcv_next: u64,
    /// Segments received ahead of `rcv_next`, keyed by segment number. The
    /// sender's window bounds how far ahead a segment can be, so a
    /// seq-indexed ring replaces the old tree map.
    ooo: SeqRing<AppChunk>,
    delack_count: u32,

    /// Statistics.
    pub stats: SinkStats,

    // --- interaction with the simulator ---
    /// ACK packets emitted since the last flush.
    pub outbox: Vec<Packet>,
    /// In-order chunks delivered to the application since the last flush.
    pub delivered: Vec<AppChunk>,
    /// Desired delayed-ACK timer deadline.
    pub timer_deadline: Option<SimTime>,
    /// Set when `timer_deadline` changed.
    pub timer_dirty: bool,
}

impl TcpSink {
    /// Create a sink for `flow` on `node` acking back to `peer`.
    pub fn new(flow: FlowId, node: NodeId, peer: NodeId, cfg: SinkConfig) -> Self {
        Self {
            flow,
            node,
            peer,
            cfg,
            rcv_next: 0,
            ooo: SeqRing::new(),
            delack_count: 0,
            stats: SinkStats::default(),
            outbox: Vec::new(),
            delivered: Vec::new(),
            timer_deadline: None,
            timer_dirty: false,
        }
    }

    /// Next expected segment number.
    pub fn rcv_next(&self) -> u64 {
        self.rcv_next
    }

    /// Segments currently buffered out of order.
    pub fn ooo_len(&self) -> usize {
        self.ooo.len()
    }

    fn send_ack(&mut self) {
        self.outbox
            .push(Packet::ack(self.flow, self.rcv_next, self.node, self.peer));
        self.delack_count = 0;
        if self.timer_deadline.is_some() {
            self.timer_deadline = None;
            self.timer_dirty = true;
        }
    }

    /// Handle an arriving data segment.
    pub fn on_data(&mut self, pkt: &Packet, now: SimTime) {
        let chunk = pkt.chunk.expect("data packets carry a chunk");
        if pkt.seq == self.rcv_next {
            let had_gap = !self.ooo.is_empty();
            self.rcv_next += 1;
            self.delivered.push(chunk);
            self.stats.delivered += 1;
            while let Some(c) = self.ooo.remove(self.rcv_next) {
                self.delivered.push(c);
                self.stats.delivered += 1;
                self.rcv_next += 1;
            }
            self.ooo.advance_to(self.rcv_next);
            if had_gap {
                // Filling (part of) a gap: ack immediately so the sender's
                // recovery makes progress (RFC 5681 §4.2).
                self.send_ack();
            } else {
                self.delack_count += 1;
                if self.delack_count >= self.cfg.ack_every {
                    self.send_ack();
                } else if self.timer_deadline.is_none() {
                    self.timer_deadline = Some(now + self.cfg.delack_timeout);
                    self.timer_dirty = true;
                }
            }
        } else if pkt.seq > self.rcv_next {
            // Out of order: buffer and emit an immediate duplicate ACK.
            if self.ooo.insert(pkt.seq, chunk).is_some() {
                self.stats.duplicates += 1;
            } else {
                self.stats.out_of_order += 1;
            }
            self.send_ack();
        } else {
            // Already received: duplicate; re-ack immediately.
            self.stats.duplicates += 1;
            self.send_ack();
        }
    }

    /// The delayed-ACK timer fired.
    pub fn on_delack_timer(&mut self) {
        self.timer_deadline = None;
        if self.delack_count > 0 {
            self.send_ack();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn data(seq: u64) -> Packet {
        Packet::data(0, seq, 1460, 0, 1, AppChunk::synthetic(seq, 0), false)
    }

    fn sink() -> TcpSink {
        TcpSink::new(0, 1, 0, SinkConfig::default())
    }

    #[test]
    fn delayed_ack_coalesces_pairs() {
        let mut s = sink();
        s.on_data(&data(0), 0);
        assert!(s.outbox.is_empty(), "first segment is delayed");
        assert!(s.timer_deadline.is_some());
        s.on_data(&data(1), 10);
        assert_eq!(s.outbox.len(), 1);
        assert_eq!(s.outbox[0].seq, 2);
        assert!(s.timer_deadline.is_none(), "ack cancels the delack timer");
    }

    #[test]
    fn delack_timer_flushes_odd_segment() {
        let mut s = sink();
        s.on_data(&data(0), 0);
        s.on_delack_timer();
        assert_eq!(s.outbox.len(), 1);
        assert_eq!(s.outbox[0].seq, 1);
    }

    #[test]
    fn out_of_order_generates_immediate_dupacks() {
        let mut s = sink();
        s.on_data(&data(0), 0);
        s.on_data(&data(1), 1); // ack 2 sent
        s.outbox.clear();
        // Segment 2 lost; 3, 4, 5 arrive.
        for seq in [3, 4, 5] {
            s.on_data(&data(seq), 10);
        }
        assert_eq!(s.outbox.len(), 3);
        assert!(s.outbox.iter().all(|a| a.seq == 2), "all dupacks for 2");
        assert_eq!(s.ooo_len(), 3);
        // Retransmission of 2 fills the gap: cumulative ack jumps to 6.
        s.outbox.clear();
        s.on_data(&data(2), 20);
        assert_eq!(s.outbox.len(), 1);
        assert_eq!(s.outbox[0].seq, 6);
        assert_eq!(s.ooo_len(), 0);
        // Application got everything in order.
        let seqs: Vec<u64> = s.delivered.iter().map(|c| c.stream_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn below_window_duplicate_is_reacked() {
        let mut s = sink();
        s.on_data(&data(0), 0);
        s.on_data(&data(1), 1);
        s.outbox.clear();
        s.on_data(&data(0), 5); // spurious retransmission
        assert_eq!(s.outbox.len(), 1);
        assert_eq!(s.outbox[0].seq, 2);
        assert_eq!(s.stats.duplicates, 1);
    }

    #[test]
    fn ack_every_one_disables_delay() {
        let mut s = TcpSink::new(
            0,
            1,
            0,
            SinkConfig {
                ack_every: 1,
                ..SinkConfig::default()
            },
        );
        s.on_data(&data(0), 0);
        assert_eq!(s.outbox.len(), 1);
    }
}
