//! TCP Reno sender with a finite socket send buffer.
//!
//! Modelled after ns-2's segment-counting TCP agents: sequence numbers count
//! whole segments, and all segments of a flow have the same payload size.
//! Implements slow start, congestion avoidance, fast retransmit / fast
//! recovery (Reno), retransmission timeouts with exponential backoff (capped
//! at 2⁶, matching the model's backoff state `E`), and Karn-compliant RTT
//! sampling.
//!
//! The **finite send buffer** is what DMP-streaming leans on: a sender whose
//! buffer (unsent + unacknowledged segments) is full blocks, and the
//! application learns about freed space through a wake notification. A path
//! with higher achievable throughput frees space faster and therefore pulls
//! more packets from the shared server queue.

use std::collections::VecDeque;

use cc::{AckCtx, Cc, CcAlgo, CcConfig, CcKind};

use crate::packet::{AppChunk, FlowId, NodeId, Packet};
use crate::tcp::ring::SeqRing;
use crate::tcp::rtt::RttEstimator;
use crate::time::{secs, SimTime};
use crate::trace::TraceMark;

/// Loss-recovery flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TcpFlavor {
    /// Classic Reno: exit fast recovery on the first new ACK (multi-loss
    /// windows often end in timeout). The paper's video streams use Reno.
    #[default]
    Reno,
    /// NewReno (RFC 3782): stay in recovery across partial ACKs,
    /// retransmitting one hole per RTT.
    NewReno,
}

/// Tunables of a TCP sender.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Segment payload size, bytes (1460 gives 1500-byte packets on the wire).
    pub payload_bytes: u32,
    /// Socket send buffer capacity, in segments (unsent + unacked).
    pub send_buf_pkts: usize,
    /// Maximum window (also stands in for the receiver's advertised window).
    pub max_wnd: u32,
    /// Initial congestion window, segments.
    pub initial_cwnd: f64,
    /// Maximum RTO backoff exponent (the model caps at 6 → factor 64).
    pub max_backoff_exp: u32,
    /// Loss-recovery flavour (Reno or NewReno).
    pub flavor: TcpFlavor,
    /// Congestion-control algorithm (window growth/decrease response).
    pub cc: CcKind,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            payload_bytes: 1460,
            send_buf_pkts: 64,
            max_wnd: 64,
            initial_cwnd: 2.0,
            max_backoff_exp: 6,
            flavor: TcpFlavor::Reno,
            cc: CcKind::Reno,
        }
    }
}

/// Where the sender's data comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AppMode {
    /// Application pushes explicit chunks into the send buffer (video).
    Buffered,
    /// Sender synthesises data: infinitely (FTP) while `remaining` is `None`,
    /// or until `remaining` segments have been handed to TCP (HTTP page).
    Backlogged { remaining: Option<u64> },
    /// No data until the application acts again (between HTTP transfers).
    Idle,
}

/// Counters a sender keeps for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct SenderStats {
    /// First transmissions of data segments.
    pub data_sent: u64,
    /// Retransmitted segments (timeout + fast retransmit).
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
}

/// A TCP Reno sender endpoint.
#[derive(Debug)]
pub struct TcpSender {
    /// Flow this sender belongs to.
    pub flow: FlowId,
    /// Node the sender lives on.
    pub node: NodeId,
    /// Node of the receiving sink.
    pub peer: NodeId,
    /// Configuration.
    pub cfg: TcpConfig,

    // --- connection state ---
    next_seq: u64,
    snd_una: u64,
    /// Pluggable congestion-control algorithm: owns cwnd/ssthresh and every
    /// growth/decrease decision (loss *detection* stays here).
    cc: Cc,
    dupacks: u32,
    in_recovery: bool,
    /// Highest sequence outstanding when recovery began (NewReno's
    /// `recover` variable: recovery ends when this is cumulatively acked).
    recover: u64,
    backoff_exp: u32,
    /// One in-flight RTT sample: (segment, first-transmission time).
    sample: Option<(u64, SimTime)>,

    // --- data ---
    mode: AppMode,
    tx_buf: VecDeque<AppChunk>,
    /// Chunks sent but not yet cumulatively acked, keyed by segment number.
    /// The key space `[snd_una, next_seq)` is dense and window-bounded, so a
    /// seq-indexed ring beats a tree map on every access.
    inflight: SeqRing<AppChunk>,

    // --- estimator & stats ---
    /// RTT estimator (public for measurement reports).
    pub rtt: RttEstimator,
    /// Counters.
    pub stats: SenderStats,
    /// Always-on metrics: RTT samples, µs. Recording is an array increment —
    /// it never alters sender behaviour or RNG draws, so metrics-on runs stay
    /// byte-identical.
    pub rtt_hist: obs::Histogram,
    /// Always-on metrics: cwnd in whole packets, sampled once per RTT
    /// measurement (same Karn-filtered cadence as `rtt_hist`).
    pub cwnd_hist: obs::Histogram,

    // --- interaction with the simulator ---
    /// Packets emitted since the last flush.
    pub outbox: Vec<Packet>,
    /// Desired retransmission-timer deadline (None = cancelled).
    pub timer_deadline: Option<SimTime>,
    /// Set when `timer_deadline` changed and must be (re)scheduled.
    pub timer_dirty: bool,
    /// Set when send-buffer space became available (Buffered mode).
    pub wake_app: bool,
    /// Set once when a sized backlogged transfer is fully acknowledged.
    pub transfer_complete: bool,
    /// Flight-recorder opt-in: when set, state transitions push
    /// [`TraceMark`]s that the engine drains on flush. Off by default, so an
    /// untraced sender takes one predictable branch per transition.
    pub trace_on: bool,
    /// Deferred trace notes since the last flush (empty unless `trace_on`).
    pub marks: Vec<TraceMark>,
}

impl TcpSender {
    /// Create an idle sender for `flow` from `node` to `peer`.
    pub fn new(flow: FlowId, node: NodeId, peer: NodeId, cfg: TcpConfig) -> Self {
        Self {
            flow,
            node,
            peer,
            cfg,
            next_seq: 0,
            snd_una: 0,
            cc: Cc::new(
                cfg.cc,
                CcConfig {
                    initial_cwnd: cfg.initial_cwnd,
                    max_wnd: f64::from(cfg.max_wnd),
                },
            ),
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            backoff_exp: 0,
            sample: None,
            mode: AppMode::Buffered,
            tx_buf: VecDeque::new(),
            inflight: SeqRing::new(),
            rtt: RttEstimator::default(),
            stats: SenderStats::default(),
            rtt_hist: obs::Histogram::new(),
            cwnd_hist: obs::Histogram::new(),
            // One flush routes at most a window's worth of segments, so
            // reserving up front keeps the steady-state loop off the heap.
            outbox: Vec::with_capacity(cfg.max_wnd as usize + 1),
            timer_deadline: None,
            timer_dirty: false,
            wake_app: false,
            transfer_complete: false,
            trace_on: false,
            marks: Vec::new(),
        }
    }

    /// Note the current cwnd/ssthresh as a trace mark (call after a change).
    fn mark_cwnd(&mut self, t: SimTime) {
        if self.trace_on {
            self.marks.push(TraceMark::Cwnd {
                t,
                cwnd: self.cc.cwnd(),
                ssthresh: self.cc.ssthresh(),
            });
        }
    }

    // ------------------------------------------------------------------
    // Application-facing API
    // ------------------------------------------------------------------

    /// Free space in the send buffer (Buffered mode), in segments.
    pub fn free_space(&self) -> usize {
        self.cfg
            .send_buf_pkts
            .saturating_sub(self.tx_buf.len() + self.unacked() as usize)
    }

    /// Push one chunk into the send buffer. Returns `false` (and drops the
    /// chunk) if the buffer is full. Call [`TcpSender::try_send`] afterwards.
    pub fn push_chunk(&mut self, chunk: AppChunk) -> bool {
        if self.free_space() == 0 {
            return false;
        }
        self.mode = AppMode::Buffered;
        self.tx_buf.push_back(chunk);
        true
    }

    /// Make the sender backlogged: infinite data (`None`) or a sized transfer
    /// of `Some(n)` segments.
    pub fn set_backlogged(&mut self, remaining: Option<u64>) {
        self.mode = AppMode::Backlogged { remaining };
    }

    /// Reset congestion state as if a fresh connection had been opened for a
    /// new transfer (used by the HTTP session generator). The RTT estimator
    /// is kept — a fresh handshake would re-measure it within one round trip.
    pub fn restart_connection(&mut self) {
        self.cc.reset();
        self.dupacks = 0;
        self.in_recovery = false;
        self.backoff_exp = 0;
    }

    /// Unacknowledged segments in flight.
    pub fn unacked(&self) -> u64 {
        self.next_seq - self.snd_una
    }

    /// Highest cumulatively acknowledged segment (i.e., segments delivered).
    pub fn acked(&self) -> u64 {
        self.snd_una
    }

    /// Current congestion window (segments, fractional).
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// Current slow-start threshold (segments).
    pub fn ssthresh(&self) -> f64 {
        self.cc.ssthresh()
    }

    /// Which congestion-control algorithm this sender runs.
    pub fn cc_kind(&self) -> CcKind {
        self.cfg.cc
    }

    /// True if a sized transfer is finished and the sender has gone idle.
    pub fn is_idle(&self) -> bool {
        self.mode == AppMode::Idle && self.unacked() == 0 && self.tx_buf.is_empty()
    }

    /// Total data transmissions (first + retransmissions); the denominator of
    /// the measured loss rate `p`.
    pub fn total_transmissions(&self) -> u64 {
        self.stats.data_sent + self.stats.retransmits
    }

    // ------------------------------------------------------------------
    // Protocol machinery
    // ------------------------------------------------------------------

    fn effective_wnd(&self) -> u64 {
        (self.cc.pacing_window().floor() as u64).clamp(1, u64::from(self.cfg.max_wnd))
    }

    /// Data the application could still hand to TCP right now, segments.
    fn pending_app_data(&self) -> u64 {
        match self.mode {
            AppMode::Buffered => self.tx_buf.len() as u64,
            AppMode::Backlogged { remaining: None } => u64::MAX,
            AppMode::Backlogged { remaining: Some(n) } => n,
            AppMode::Idle => 0,
        }
    }

    /// RFC 2861 congestion-window validation, re-evaluated per ACK: the
    /// window (not the application) is the limit iff flight plus queued data
    /// could fill it. Without this check an application-limited stream
    /// inflates its window far beyond use and becomes artificially immune to
    /// halvings; with the old latched-until-next-send variant a single
    /// window-limited transmission kept an idle flow growing across
    /// arbitrarily many ACKs.
    fn is_cwnd_limited(&self) -> bool {
        self.unacked().saturating_add(self.pending_app_data()) >= self.effective_wnd()
    }

    fn next_chunk(&mut self, now: SimTime) -> Option<AppChunk> {
        match &mut self.mode {
            AppMode::Buffered => self.tx_buf.pop_front(),
            AppMode::Backlogged { remaining } => match remaining {
                None => Some(AppChunk::synthetic(self.next_seq, now)),
                Some(0) => None,
                Some(n) => {
                    *n -= 1;
                    Some(AppChunk::synthetic(self.next_seq, now))
                }
            },
            AppMode::Idle => None,
        }
    }

    /// Transmit as much as the window and available data allow.
    pub fn try_send(&mut self, now: SimTime) {
        let wnd = self.effective_wnd();
        while self.next_seq < self.snd_una + wnd {
            let Some(chunk) = self.next_chunk(now) else {
                break;
            };
            self.inflight.insert(self.next_seq, chunk);
            self.emit(self.next_seq, chunk, false);
            if self.sample.is_none() {
                self.sample = Some((self.next_seq, now));
            }
            self.stats.data_sent += 1;
            self.next_seq += 1;
        }
        if self.unacked() > 0 && self.timer_deadline.is_none() {
            self.arm_timer(now);
        }
    }

    fn emit(&mut self, seq: u64, chunk: AppChunk, retx: bool) {
        self.outbox.push(Packet::data(
            self.flow,
            seq,
            self.cfg.payload_bytes,
            self.node,
            self.peer,
            chunk,
            retx,
        ));
    }

    fn retransmit_head(&mut self) {
        let chunk = *self
            .inflight
            .get(self.snd_una)
            .expect("snd_una must be in flight when retransmitting");
        self.emit(self.snd_una, chunk, true);
        self.stats.retransmits += 1;
        // Karn: never sample a segment that has been retransmitted.
        if let Some((s, _)) = self.sample {
            if s == self.snd_una {
                self.sample = None;
            }
        }
    }

    fn current_rto_secs(&self) -> f64 {
        (self.rtt.rto_secs() * f64::from(1u32 << self.backoff_exp)).min(self.rtt.max_rto)
    }

    fn arm_timer(&mut self, now: SimTime) {
        self.timer_deadline = Some(now + secs(self.current_rto_secs()));
        self.timer_dirty = true;
    }

    fn cancel_timer(&mut self) {
        if self.timer_deadline.is_some() {
            self.timer_deadline = None;
            self.timer_dirty = true;
        }
    }

    /// Handle a cumulative ACK for segment `ack` (next expected by the sink).
    pub fn on_ack(&mut self, ack: u64, now: SimTime) {
        // An ACK can never cover data that was not sent; clamp defensively.
        let ack = ack.min(self.next_seq);
        if ack > self.snd_una {
            self.handle_new_ack(ack, now);
        } else if ack == self.snd_una && self.unacked() > 0 {
            self.handle_dupack(now);
        }
        // ACKs below snd_una are stale; ignore.
        self.try_send(now);
        self.check_transfer_complete();
    }

    fn handle_new_ack(&mut self, ack: u64, now: SimTime) {
        // Window validation must look at the pre-ACK state: was the flight
        // that produced this ACK limited by the window?
        let cwnd_limited = self.is_cwnd_limited();
        let inflight_before = self.unacked();
        // RTT sample (Karn-compliant: sample is cleared on retransmission of
        // the timed segment and on timeouts).
        let mut rtt_sample_s = None;
        if let Some((s, t0)) = self.sample {
            if ack > s {
                self.rtt.update(now - t0);
                rtt_sample_s = Some((now - t0) as f64 / 1e9);
                self.sample = None;
                self.rtt_hist.record((now - t0) / 1_000);
                self.cwnd_hist.record(self.cc.cwnd() as u64);
            }
        }
        let newly_acked = ack - self.snd_una;
        self.inflight.advance_to(ack);
        self.snd_una = ack;
        self.dupacks = 0;
        self.backoff_exp = 0;

        if self.in_recovery {
            if self.cfg.flavor == TcpFlavor::NewReno && ack < self.recover {
                // NewReno partial ACK: the next hole is now at snd_una —
                // retransmit it, deflate by the amount acked, stay in
                // recovery.
                self.cc.on_partial_ack(newly_acked);
                self.retransmit_head();
                if self.trace_on {
                    self.marks.push(TraceMark::Retransmit {
                        t: now,
                        seq: self.snd_una,
                        fast: true,
                    });
                }
                self.mark_cwnd(now);
                self.arm_timer(now);
                self.try_send(now);
                self.wake_app = true;
                return;
            }
            // Full ACK (or classic Reno): deflate and exit.
            self.cc.on_exit_recovery();
            self.in_recovery = false;
            if self.trace_on {
                self.marks.push(TraceMark::FastRecovery {
                    t: now,
                    entered: false,
                });
            }
            self.mark_cwnd(now);
        } else {
            let before = self.cc.cwnd();
            self.cc.on_ack(&AckCtx {
                now_ns: now,
                newly_acked,
                rtt_sample_s,
                srtt_s: self.rtt.srtt_secs(),
                inflight: inflight_before,
                cwnd_limited,
            });
            if self.cc.cwnd() != before {
                self.mark_cwnd(now);
            }
        }

        if self.unacked() == 0 {
            self.cancel_timer();
        } else {
            self.arm_timer(now); // restart RTO on forward progress
        }
        self.wake_app = true;
    }

    fn handle_dupack(&mut self, now: SimTime) {
        self.dupacks += 1;
        if self.in_recovery {
            // Window inflation lets new data out during recovery.
            self.cc.on_dupack_inflate();
        } else if self.dupacks == 3 {
            self.recover = self.next_seq;
            self.retransmit_head();
            self.cc.on_dupack_loss();
            self.in_recovery = true;
            self.stats.fast_retransmits += 1;
            self.arm_timer(now);
            if self.trace_on {
                self.marks.push(TraceMark::Retransmit {
                    t: now,
                    seq: self.snd_una,
                    fast: true,
                });
                self.marks.push(TraceMark::FastRecovery {
                    t: now,
                    entered: true,
                });
            }
            self.mark_cwnd(now);
        }
    }

    /// The retransmission timer fired.
    pub fn on_timeout(&mut self, now: SimTime) {
        self.timer_deadline = None;
        if self.unacked() == 0 {
            return;
        }
        self.stats.timeouts += 1;
        self.cc.on_rto();
        self.in_recovery = false;
        self.dupacks = 0;
        self.sample = None;
        self.backoff_exp = (self.backoff_exp + 1).min(self.cfg.max_backoff_exp);
        self.retransmit_head();
        self.arm_timer(now);
        if self.trace_on {
            self.marks.push(TraceMark::Timeout {
                t: now,
                seq: self.snd_una,
                backoff_exp: self.backoff_exp,
            });
            self.marks.push(TraceMark::Retransmit {
                t: now,
                seq: self.snd_una,
                fast: false,
            });
        }
        self.mark_cwnd(now);
        self.check_transfer_complete();
    }

    fn check_transfer_complete(&mut self) {
        if let AppMode::Backlogged { remaining: Some(0) } = self.mode {
            if self.unacked() == 0 {
                self.mode = AppMode::Idle;
                self.transfer_complete = true;
            }
        }
    }

    /// Measured loss rate numerator helper: retransmissions per transmission
    /// (an upper bound on drop probability seen by this flow; queue-level
    /// counts are used by the simulator for the exact value).
    pub fn retransmit_fraction(&self) -> f64 {
        let total = self.total_transmissions();
        if total == 0 {
            0.0
        } else {
            self.stats.retransmits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use crate::time::SECOND;

    fn sender() -> TcpSender {
        TcpSender::new(0, 0, 1, TcpConfig::default())
    }

    fn drain(s: &mut TcpSender) -> Vec<Packet> {
        std::mem::take(&mut s.outbox)
    }

    #[test]
    fn initial_window_limits_burst() {
        let mut s = sender();
        s.set_backlogged(None);
        s.try_send(0);
        let pkts = drain(&mut s);
        assert_eq!(pkts.len(), 2); // initial cwnd = 2
        assert!(pkts.iter().all(|p| p.kind == PacketKind::Data));
        assert!(s.timer_deadline.is_some());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = sender();
        s.set_backlogged(None);
        s.try_send(0);
        drain(&mut s);
        // ACK both segments (one cumulative ACK as a delayed-ack sink would).
        s.on_ack(2, SECOND / 10);
        let pkts = drain(&mut s);
        // cwnd 2 → 3; window 3, nothing in flight → 3 new segments.
        assert_eq!(pkts.len(), 3);
        assert_eq!(s.cwnd().floor() as u64, 3);
    }

    #[test]
    fn buffered_mode_respects_send_buffer() {
        let mut s = TcpSender::new(
            0,
            0,
            1,
            TcpConfig {
                send_buf_pkts: 4,
                ..TcpConfig::default()
            },
        );
        for i in 0..4 {
            assert!(s.push_chunk(AppChunk::synthetic(i, 0)));
        }
        assert!(!s.push_chunk(AppChunk::synthetic(4, 0)), "buffer full");
        s.try_send(0);
        drain(&mut s);
        // Two in flight + two still buffered = 4; still no space.
        assert_eq!(s.free_space(), 0);
        s.on_ack(2, SECOND / 10);
        assert!(s.wake_app);
        assert!(s.free_space() > 0);
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut s = sender();
        s.set_backlogged(None);
        s.try_send(0);
        s.on_ack(2, SECOND / 10); // cwnd 3
        s.on_ack(5, 2 * SECOND / 10); // cwnd 4... grow window a bit
        s.on_ack(9, 3 * SECOND / 10);
        drain(&mut s);
        let cwnd_before = s.cwnd();
        // Segment 9 lost: three dupacks for 9.
        s.on_ack(9, 4 * SECOND / 10);
        s.on_ack(9, 4 * SECOND / 10 + 1);
        s.on_ack(9, 4 * SECOND / 10 + 2);
        let pkts = drain(&mut s);
        assert!(pkts.iter().any(|p| p.seq == 9 && p.is_retransmit));
        assert_eq!(s.stats.fast_retransmits, 1);
        assert!(s.in_recovery);
        // New ACK deflates to ssthresh = cwnd_before/2.
        s.on_ack(14, 5 * SECOND / 10);
        assert!(!s.in_recovery);
        assert!((s.cwnd() - (cwnd_before / 2.0).max(2.0)).abs() < 1e-9);
    }

    #[test]
    fn timeout_backs_off_exponentially() {
        let mut s = sender();
        s.set_backlogged(None);
        s.try_send(0);
        drain(&mut s);
        let d1 = s.timer_deadline.unwrap();
        s.on_timeout(d1);
        let pkts = drain(&mut s);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].is_retransmit);
        assert_eq!(pkts[0].seq, 0);
        assert!((s.cwnd() - 1.0).abs() < 1e-12);
        let gap1 = s.timer_deadline.unwrap() - d1;
        s.on_timeout(s.timer_deadline.unwrap());
        let gap2 = s.timer_deadline.unwrap() - (d1 + gap1);
        assert_eq!(gap2, gap1 * 2, "second timeout doubles the RTO");
        assert_eq!(s.stats.timeouts, 2);
    }

    #[test]
    fn backoff_caps_at_configured_exponent() {
        let mut s = sender();
        s.set_backlogged(None);
        s.try_send(0);
        drain(&mut s);
        for _ in 0..10 {
            s.on_timeout(s.timer_deadline.unwrap());
        }
        assert_eq!(s.backoff_exp, s.cfg.max_backoff_exp);
        // RTO multiplier is 64×, clamped to max_rto.
        assert!(s.current_rto_secs() <= s.rtt.max_rto);
    }

    #[test]
    fn sized_transfer_completes_once() {
        let mut s = sender();
        s.set_backlogged(Some(3));
        s.try_send(0);
        drain(&mut s);
        s.on_ack(2, SECOND / 10);
        drain(&mut s);
        assert!(!s.transfer_complete);
        s.on_ack(3, 2 * SECOND / 10);
        assert!(s.transfer_complete);
        assert!(s.is_idle());
        s.transfer_complete = false;
        s.on_ack(3, 3 * SECOND / 10);
        assert!(!s.transfer_complete, "completion latches");
    }

    #[test]
    fn new_ack_resets_backoff() {
        let mut s = sender();
        s.set_backlogged(None);
        s.try_send(0);
        drain(&mut s);
        s.on_timeout(s.timer_deadline.unwrap());
        assert_eq!(s.backoff_exp, 1);
        s.on_ack(1, SECOND);
        assert_eq!(s.backoff_exp, 0);
    }

    #[test]
    fn newreno_recovers_multiple_losses_without_timeout() {
        let mut s = TcpSender::new(
            0,
            0,
            1,
            TcpConfig {
                flavor: TcpFlavor::NewReno,
                ..TcpConfig::default()
            },
        );
        s.cc.set_ssthresh(2.0); // straight to CA for stable windows
        s.set_backlogged(None);
        s.try_send(0);
        drain(&mut s);
        // Grow a ~6-packet window.
        let mut t = SECOND / 10;
        for _ in 0..30 {
            s.on_ack(s.acked() + 1, t);
            t += SECOND / 100;
            drain(&mut s);
        }
        let una = s.acked();
        assert!(
            s.unacked() >= 5,
            "need several in flight, have {}",
            s.unacked()
        );
        // Segments una and una+1 are lost; dupacks arrive for una.
        s.on_ack(una, t);
        s.on_ack(una, t + 1);
        s.on_ack(una, t + 2);
        let pkts = drain(&mut s);
        assert!(pkts.iter().any(|p| p.seq == una && p.is_retransmit));
        assert!(s.in_recovery);
        // The retransmission of `una` is acked up to the NEXT hole (partial).
        s.on_ack(una + 1, t + 10);
        let pkts = drain(&mut s);
        assert!(
            pkts.iter().any(|p| p.seq == una + 1 && p.is_retransmit),
            "partial ACK must trigger retransmission of the next hole: {pkts:?}"
        );
        assert!(s.in_recovery, "NewReno stays in recovery on partial ACKs");
        // Acking everything outstanding ends recovery.
        let recover_point = s.acked() + s.unacked(); // == next_seq
        s.on_ack(recover_point, t + 20);
        assert!(!s.in_recovery);
        assert_eq!(s.stats.timeouts, 0, "no timeout needed");
    }

    #[test]
    fn reno_exits_recovery_on_first_new_ack() {
        let mut s = sender(); // default = Reno
        s.cc.set_ssthresh(2.0);
        s.set_backlogged(None);
        s.try_send(0);
        drain(&mut s);
        let mut t = SECOND / 10;
        for _ in 0..30 {
            s.on_ack(s.acked() + 1, t);
            t += SECOND / 100;
            drain(&mut s);
        }
        let una = s.acked();
        s.on_ack(una, t);
        s.on_ack(una, t + 1);
        s.on_ack(una, t + 2);
        drain(&mut s);
        assert!(s.in_recovery);
        s.on_ack(una + 1, t + 10); // partial in NewReno terms
        assert!(!s.in_recovery, "classic Reno deflates on any new ACK");
    }

    #[test]
    fn app_limited_flow_stops_growing_cwnd() {
        // RFC 2861 validation, re-evaluated per ACK: a buffered flow with
        // less data than its window must not grow the window, no matter how
        // many ACKs it receives.
        let mut s = sender();
        let mut t = 0;
        for burst in 0..20u64 {
            assert!(s.push_chunk(AppChunk::synthetic(burst, t)));
            s.try_send(t);
            drain(&mut s);
            t += SECOND / 10;
            s.on_ack(burst + 1, t);
        }
        assert_eq!(
            s.cwnd(),
            s.cfg.initial_cwnd,
            "one chunk in flight against a window of 2 is app-limited"
        );
        // The same flow becomes window-limited when its buffer fills; growth
        // resumes on the very next ACK burst.
        for i in 0..8u64 {
            assert!(s.push_chunk(AppChunk::synthetic(100 + i, t)));
        }
        s.try_send(t);
        drain(&mut s);
        s.on_ack(s.acked() + 2, t + SECOND / 10);
        assert!(s.cwnd() > s.cfg.initial_cwnd, "window-limited ACKs grow");
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut s = sender();
        s.cc.set_ssthresh(2.0); // force CA immediately
        s.set_backlogged(None);
        s.try_send(0);
        drain(&mut s);
        let w0 = s.cwnd();
        s.on_ack(1, SECOND / 10);
        assert!((s.cwnd() - (w0 + 1.0 / w0)).abs() < 1e-12);
    }
}
