//! Jacobson/Karels round-trip-time estimation and retransmission timeout.

use crate::time::{to_secs, SimTime};

/// RTT estimator producing the retransmission timeout
/// `RTO = SRTT + 4·RTTVAR`, clamped to `[min_rto, max_rto]`.
#[derive(Debug, Clone, Copy)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    /// Lower bound on the RTO, seconds (Linux uses 200 ms).
    pub min_rto: f64,
    /// Upper bound on the RTO, seconds.
    pub max_rto: f64,
    /// RTO used before any sample exists, seconds.
    pub initial_rto: f64,
    // Measurement accumulators (for reporting R and T_O as in Table 2).
    rtt_sum: f64,
    rtt_n: u64,
    rto_sum: f64,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self {
            srtt: None,
            rttvar: 0.0,
            min_rto: 0.2,
            max_rto: 60.0,
            initial_rto: 1.0,
            rtt_sum: 0.0,
            rtt_n: 0,
            rto_sum: 0.0,
        }
    }
}

impl RttEstimator {
    /// Fold in a new RTT measurement (Karn-compliant samples only: the caller
    /// must not sample retransmitted segments).
    pub fn update(&mut self, sample: SimTime) {
        let m = to_secs(sample);
        match self.srtt {
            None => {
                self.srtt = Some(m);
                self.rttvar = m / 2.0;
            }
            Some(srtt) => {
                let err = m - srtt;
                self.srtt = Some(srtt + err / 8.0);
                self.rttvar += (err.abs() - self.rttvar) / 4.0;
            }
        }
        self.rtt_sum += m;
        self.rtt_n += 1;
        self.rto_sum += self.rto_secs();
    }

    /// Current first (un-backed-off) retransmission timeout, in seconds.
    pub fn rto_secs(&self) -> f64 {
        match self.srtt {
            None => self.initial_rto,
            Some(srtt) => (srtt + (4.0 * self.rttvar).max(0.01)).clamp(self.min_rto, self.max_rto),
        }
    }

    /// Current smoothed RTT, seconds (if any sample was taken).
    pub fn srtt_secs(&self) -> Option<f64> {
        self.srtt
    }

    /// Number of RTT samples folded in.
    pub fn samples(&self) -> u64 {
        self.rtt_n
    }

    /// Mean of all RTT samples, seconds — the paper's `R`.
    pub fn mean_rtt_secs(&self) -> Option<f64> {
        (self.rtt_n > 0).then(|| self.rtt_sum / self.rtt_n as f64)
    }

    /// Mean first retransmission timeout, seconds — the paper's `R_TO`.
    pub fn mean_rto_secs(&self) -> Option<f64> {
        (self.rtt_n > 0).then(|| self.rto_sum / self.rtt_n as f64)
    }

    /// Mean `T_O = R_TO / R` ratio as reported in Tables 2 and 3.
    pub fn to_ratio(&self) -> Option<f64> {
        match (self.mean_rto_secs(), self.mean_rtt_secs()) {
            (Some(rto), Some(rtt)) if rtt > 0.0 => Some(rto / rtt),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn first_sample_initialises() {
        let mut e = RttEstimator::default();
        assert_eq!(e.rto_secs(), 1.0);
        e.update(secs(0.1));
        assert!((e.srtt_secs().unwrap() - 0.1).abs() < 1e-12);
        // RTO = 0.1 + 4·0.05 = 0.3
        assert!((e.rto_secs() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn constant_samples_converge_to_min_rto_bound() {
        let mut e = RttEstimator::default();
        for _ in 0..500 {
            e.update(secs(0.05));
        }
        // rttvar decays towards 0, so rto approaches max(min_rto, srtt+ε).
        assert!(e.rto_secs() >= e.min_rto);
        assert!(e.rto_secs() < 0.25);
        assert!((e.mean_rtt_secs().unwrap() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn variance_raises_rto() {
        let mut lo = RttEstimator::default();
        let mut hi = RttEstimator::default();
        for i in 0..200 {
            lo.update(secs(0.1));
            hi.update(secs(if i % 2 == 0 { 0.05 } else { 0.15 }));
        }
        assert!(hi.rto_secs() > lo.rto_secs());
        assert!(hi.to_ratio().unwrap() > lo.to_ratio().unwrap());
    }

    #[test]
    fn rto_respects_bounds() {
        let mut e = RttEstimator::default();
        e.update(secs(120.0));
        assert!(e.rto_secs() <= e.max_rto);
        let mut tiny = RttEstimator::default();
        for _ in 0..100 {
            tiny.update(secs(0.001));
        }
        assert!(tiny.rto_secs() >= tiny.min_rto);
    }
}
