//! Random Early Detection (RED) queue discipline — the ns-2-era alternative
//! to drop-tail, provided for ablations: the paper's loss comes entirely
//! from drop-tail buffer overflow, and RED changes the loss process that
//! both the scheme and the model see (more independent, less bursty).
//!
//! Classic Floyd/Jacobson RED: an EWMA of the queue length; below `min_th`
//! never drop, above `max_th` always drop, in between drop with probability
//! growing linearly to `max_p` (with the standard inter-drop count
//! correction).

use rand::Rng;

/// RED parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedParams {
    /// Minimum average-queue threshold, packets.
    pub min_th: f64,
    /// Maximum average-queue threshold, packets.
    pub max_th: f64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue size (ns-2 default 0.002).
    pub weight: f64,
}

impl RedParams {
    /// The classic rule of thumb for a buffer of `buffer_pkts`:
    /// `min_th = buffer/4`, `max_th = 3·buffer/4`, `max_p = 0.1`.
    pub fn for_buffer(buffer_pkts: usize) -> Self {
        let b = buffer_pkts as f64;
        Self {
            min_th: b / 4.0,
            max_th: 3.0 * b / 4.0,
            max_p: 0.1,
            weight: 0.002,
        }
    }
}

/// RED state attached to a queue.
#[derive(Debug, Clone, Copy)]
pub struct RedState {
    params: RedParams,
    avg: f64,
    /// Packets since the last drop (for the uniformisation correction).
    count: i64,
}

/// RED's verdict for an arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedVerdict {
    /// Enqueue normally.
    Accept,
    /// Drop early (congestion signal).
    Drop,
}

impl RedState {
    /// Fresh state.
    pub fn new(params: RedParams) -> Self {
        Self {
            params,
            avg: 0.0,
            count: -1,
        }
    }

    /// Average queue estimate (for inspection).
    pub fn avg(&self) -> f64 {
        self.avg
    }

    /// Update the average with the instantaneous queue length and decide the
    /// fate of an arriving packet.
    pub fn on_arrival(&mut self, queue_len: usize, rng: &mut impl Rng) -> RedVerdict {
        let p = self.params;
        self.avg += p.weight * (queue_len as f64 - self.avg);
        if self.avg < p.min_th {
            self.count = -1;
            return RedVerdict::Accept;
        }
        if self.avg >= p.max_th {
            self.count = 0;
            return RedVerdict::Drop;
        }
        self.count += 1;
        let pb = p.max_p * (self.avg - p.min_th) / (p.max_th - p.min_th);
        // Uniformise inter-drop gaps (Floyd/Jacobson): pa = pb / (1 - count·pb).
        let pa = (pb / (1.0 - self.count as f64 * pb)).clamp(0.0, 1.0);
        if rng.gen_range(0.0..1.0) < pa {
            self.count = 0;
            RedVerdict::Drop
        } else {
            RedVerdict::Accept
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn red() -> RedState {
        RedState::new(RedParams {
            min_th: 5.0,
            max_th: 15.0,
            max_p: 0.1,
            weight: 0.2,
        })
    }

    #[test]
    fn empty_queue_never_drops() {
        let mut r = red();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert_eq!(r.on_arrival(0, &mut rng), RedVerdict::Accept);
        }
        assert!(r.avg() < 1e-6);
    }

    #[test]
    fn saturated_queue_always_drops() {
        let mut r = red();
        let mut rng = SmallRng::seed_from_u64(2);
        // Drive the EWMA above max_th.
        for _ in 0..200 {
            r.on_arrival(30, &mut rng);
        }
        assert!(r.avg() >= 15.0);
        for _ in 0..100 {
            assert_eq!(r.on_arrival(30, &mut rng), RedVerdict::Drop);
        }
    }

    #[test]
    fn intermediate_region_drops_proportionally() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut r = red();
        // Pin the average near the middle: instantaneous queue 10.
        for _ in 0..500 {
            r.on_arrival(10, &mut rng);
        }
        let mut drops = 0;
        let n = 20_000;
        for _ in 0..n {
            if r.on_arrival(10, &mut rng) == RedVerdict::Drop {
                drops += 1;
            }
        }
        let rate = f64::from(drops) / f64::from(n);
        // pb at avg=10 is max_p/2 = 0.05; the count correction makes the
        // realised rate a bit higher. Accept a broad band.
        assert!((0.03..0.12).contains(&rate), "drop rate {rate}");
    }

    #[test]
    fn ewma_tracks_slowly() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut r = RedState::new(RedParams {
            weight: 0.01,
            ..RedParams::for_buffer(40)
        });
        r.on_arrival(40, &mut rng);
        assert!(r.avg() < 1.0, "one sample must barely move a slow EWMA");
    }

    #[test]
    fn for_buffer_thresholds() {
        let p = RedParams::for_buffer(40);
        assert!((p.min_th - 10.0).abs() < 1e-12);
        assert!((p.max_th - 30.0).abs() < 1e-12);
    }
}
