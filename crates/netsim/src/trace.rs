//! Flight-recorder integration: the hooks through which a simulation feeds
//! the `obs` event bus.
//!
//! A [`SimTracer`] is attached with [`crate::Sim::set_tracer`] and holds a
//! shared handle to the run's [`obs::Recorder`]. Tracing is strictly opt-in
//! per entity: only flows registered with [`SimTracer::trace_flow`] emit TCP
//! state transitions and only links registered with
//! [`SimTracer::trace_link`] emit queue-occupancy samples — a traced
//! experiment records its two video connections and two bottlenecks, not the
//! packet storm of forty background flows.
//!
//! Determinism: emission reads simulation state but never mutates it, never
//! touches the RNG, and never schedules events, so a traced run makes
//! exactly the same decisions as an untraced one, and the event order (hence
//! the trace bytes) is identical across scheduler engines.

use std::cell::RefCell;
use std::rc::Rc;

use obs::{EventKind, Recorder};

use crate::packet::{FlowId, LinkId};
use crate::time::SimTime;

/// Compile-time recording mode: the engine's dispatch loop is monomorphized
/// over this marker so an untraced run carries *zero* tracer branches on the
/// hot path — "zero-cost-when-off" is literal, not a predictable-branch
/// euphemism. [`crate::Sim::run_until`] branches once per call on whether a
/// tracer is installed and enters the [`Recorded`] or [`Unrecorded`]
/// instantiation of the whole event loop.
pub trait RecordMode {
    /// Whether tracer hooks are compiled into this instantiation.
    const ENABLED: bool;
}

/// Recording instantiation: tracer hooks compiled in (each still checks the
/// runtime `Option` — a sim without a tracer behaves identically here).
#[derive(Debug, Clone, Copy)]
pub struct Recorded;

/// Non-recording instantiation: tracer hooks compiled out entirely.
#[derive(Debug, Clone, Copy)]
pub struct Unrecorded;

impl RecordMode for Recorded {
    const ENABLED: bool = true;
}

impl RecordMode for Unrecorded {
    const ENABLED: bool = false;
}

/// A deferred trace note a [`crate::tcp::TcpSender`] takes while handling an
/// ACK or timeout; the engine drains these into the recorder when it flushes
/// the sender (the sender itself has no recorder handle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceMark {
    /// cwnd or ssthresh changed.
    Cwnd {
        /// When.
        t: SimTime,
        /// New congestion window, segments.
        cwnd: f64,
        /// New slow-start threshold, segments.
        ssthresh: f64,
    },
    /// Fast recovery entered or exited.
    FastRecovery {
        /// When.
        t: SimTime,
        /// Entered (true) or exited.
        entered: bool,
    },
    /// A segment was retransmitted.
    Retransmit {
        /// When.
        t: SimTime,
        /// Segment number.
        seq: u64,
        /// Triggered by dupacks (true) or by the RTO (false).
        fast: bool,
    },
    /// The retransmission timer expired.
    Timeout {
        /// When.
        t: SimTime,
        /// Oldest outstanding segment.
        seq: u64,
        /// Backoff exponent after this expiry.
        backoff_exp: u32,
    },
}

/// Per-traced-link decimation state.
#[derive(Debug, Clone, Copy, Default)]
struct LinkGate {
    traced: bool,
    /// Occupancy changes since the last emitted sample.
    pending: u32,
}

/// The simulation-side trace hook: shared recorder plus per-entity opt-in
/// and decimation state.
pub struct SimTracer {
    rec: Rc<RefCell<Recorder>>,
    decimation: u32,
    links: Vec<LinkGate>,
    flows: Vec<bool>,
    srv_pending: u32,
}

impl SimTracer {
    /// Tracer feeding `rec`; queue decimation comes from the recorder's
    /// config.
    pub fn new(rec: Rc<RefCell<Recorder>>) -> Self {
        let decimation = rec.borrow().config().queue_decimation.max(1);
        Self {
            rec,
            decimation,
            links: Vec::new(),
            flows: Vec::new(),
            srv_pending: 0,
        }
    }

    /// Opt link `id` into queue-occupancy sampling.
    pub fn trace_link(&mut self, id: LinkId) {
        let idx = id as usize;
        if self.links.len() <= idx {
            self.links.resize(idx + 1, LinkGate::default());
        }
        self.links[idx].traced = true;
    }

    /// Opt flow `id` into TCP state-transition tracing. The engine also
    /// flips the sender's `trace_on` flag when the tracer is installed.
    pub fn trace_flow(&mut self, id: FlowId) {
        let idx = id as usize;
        if self.flows.len() <= idx {
            self.flows.resize(idx + 1, false);
        }
        self.flows[idx] = true;
    }

    /// Whether `flow` is opted in.
    pub fn flow_traced(&self, flow: FlowId) -> bool {
        self.flows.get(flow as usize).copied().unwrap_or(false)
    }

    pub(crate) fn link_traced(&self, link: LinkId) -> bool {
        self.links
            .get(link as usize)
            .map(|g| g.traced)
            .unwrap_or(false)
    }

    /// Record one occupancy change of `link` (depth after the change);
    /// emits every Nth change per the decimation setting.
    pub(crate) fn link_queue_changed(&mut self, t: SimTime, link: LinkId, depth: usize) {
        let Some(gate) = self.links.get_mut(link as usize) else {
            return;
        };
        if !gate.traced {
            return;
        }
        gate.pending += 1;
        if gate.pending >= self.decimation {
            gate.pending = 0;
            self.rec.borrow_mut().emit(
                t,
                EventKind::LinkQueue {
                    link,
                    depth: depth as u32,
                },
            );
        }
    }

    /// Record one occupancy change of the DMP server's shared pull queue,
    /// decimated like link queues.
    pub fn srv_queue_changed(&mut self, t: SimTime, depth: usize) {
        self.srv_pending += 1;
        if self.srv_pending >= self.decimation {
            self.srv_pending = 0;
            self.rec.borrow_mut().emit(
                t,
                EventKind::SrvQueue {
                    depth: depth as u32,
                },
            );
        }
    }

    /// Emit an event directly (scheduler decisions, scripted path events,
    /// deliveries).
    pub fn emit(&mut self, t: SimTime, kind: EventKind) {
        self.rec.borrow_mut().emit(t, kind);
    }

    /// Drain a sender's deferred marks for connection `conn`.
    pub(crate) fn drain_marks(&mut self, conn: u32, marks: &mut Vec<TraceMark>) {
        let mut rec = self.rec.borrow_mut();
        for m in marks.drain(..) {
            match m {
                TraceMark::Cwnd { t, cwnd, ssthresh } => rec.emit(
                    t,
                    EventKind::Cwnd {
                        conn,
                        cwnd,
                        ssthresh,
                    },
                ),
                TraceMark::FastRecovery { t, entered } => {
                    rec.emit(t, EventKind::FastRecovery { conn, entered })
                }
                TraceMark::Retransmit { t, seq, fast } => {
                    rec.emit(t, EventKind::Retransmit { conn, seq, fast })
                }
                TraceMark::Timeout {
                    t,
                    seq,
                    backoff_exp,
                } => rec.emit(
                    t,
                    EventKind::RtoTimeout {
                        conn,
                        seq,
                        backoff_exp,
                    },
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::TraceConfig;

    fn tracer(decimation: u32) -> (SimTracer, Rc<RefCell<Recorder>>) {
        let rec = Rc::new(RefCell::new(Recorder::in_memory(TraceConfig {
            ring_capacity: 8,
            queue_decimation: decimation,
        })));
        (SimTracer::new(Rc::clone(&rec)), rec)
    }

    fn finish(rec: Rc<RefCell<Recorder>>) -> String {
        let rec = Rc::try_unwrap(rec)
            .ok()
            .expect("sole recorder handle")
            .into_inner();
        String::from_utf8(rec.finish().unwrap().bytes.unwrap()).unwrap()
    }

    #[test]
    fn untraced_entities_emit_nothing() {
        let (mut tr, rec) = tracer(1);
        tr.trace_link(2);
        tr.trace_flow(5);
        tr.link_queue_changed(1, 0, 9); // link 0 untraced
        assert!(!tr.flow_traced(0));
        assert!(tr.flow_traced(5));
        assert!(tr.link_traced(2));
        drop(tr);
        assert!(finish(rec).is_empty());
    }

    #[test]
    fn decimation_keeps_every_nth_change() {
        let (mut tr, rec) = tracer(4);
        tr.trace_link(0);
        for depth in 1..=10usize {
            tr.link_queue_changed(depth as u64, 0, depth);
        }
        drop(tr);
        let text = finish(rec);
        let depths: Vec<&str> = text.lines().collect();
        assert_eq!(depths.len(), 2, "10 changes / decimation 4 → 2 samples");
        assert!(depths[0].contains("\"depth\":4"));
        assert!(depths[1].contains("\"depth\":8"));
    }

    #[test]
    fn marks_drain_in_order_with_conn_id() {
        let (mut tr, rec) = tracer(1);
        let mut marks = vec![
            TraceMark::Timeout {
                t: 5,
                seq: 7,
                backoff_exp: 2,
            },
            TraceMark::Cwnd {
                t: 5,
                cwnd: 1.0,
                ssthresh: 4.0,
            },
        ];
        tr.drain_marks(3, &mut marks);
        assert!(marks.is_empty());
        drop(tr);
        let text = finish(rec);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"rto\"") && lines[0].contains("\"conn\":3"));
        assert!(lines[1].contains("\"ev\":\"cwnd\"") && lines[1].contains("\"conn\":3"));
    }
}
