//! `netsim` — a discrete-event, packet-level network simulator in the spirit
//! of *ns-2*, built as the simulation substrate for reproducing *Multipath
//! Live Streaming via TCP* (CoNEXT 2007).
//!
//! What it provides:
//!
//! * an event-driven engine with integer-nanosecond time ([`sim::Sim`]);
//! * links with finite bandwidth, propagation delay, and drop-tail FIFO
//!   queues ([`link`]), where all loss happens — as in the paper's setups;
//! * static routing over arbitrary topologies ([`node`]);
//! * TCP Reno with finite socket send buffers, delayed ACKs, fast
//!   retransmit/recovery, and exponentially backed-off retransmission
//!   timeouts ([`tcp`]);
//! * background traffic: backlogged FTP and on/off HTTP sessions ([`apps`]);
//! * an application hook trait ([`app::App`]) through which streaming
//!   schedulers (in the `dmp-sim` crate) drive their flows.
//!
//! # Example: one FTP through a bottleneck
//!
//! ```
//! use netsim::{app::App, link::LinkSpec, sim::{Sim, SimApi}, tcp::{SinkConfig, TcpConfig}};
//! use netsim::time::SECOND;
//!
//! struct Starter(u32);
//! impl App for Starter {
//!     fn start(&mut self, api: &mut SimApi<'_>) {
//!         api.set_backlogged(self.0, None); // infinite data
//!     }
//! }
//!
//! let mut sim = Sim::new(42);
//! let a = sim.add_node("server");
//! let b = sim.add_node("client");
//! let (fwd, rev) = sim.add_duplex(a, b, LinkSpec::from_table(2.0, 20.0, 30));
//! sim.add_route(a, b, fwd);
//! sim.add_route(b, a, rev);
//! let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
//! sim.add_app(Box::new(Starter(flow)));
//! sim.run_until(10 * SECOND);
//! assert!(sim.sink(flow).stats.delivered > 500);
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod apps;
pub mod link;
pub mod node;
pub mod packet;
pub mod red;
pub mod scheduler;
pub mod sim;
pub mod tcp;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use app::App;
pub use link::LinkSpec;
pub use packet::{AppChunk, FlowId, LinkId, NodeId, Packet};
pub use scheduler::EngineKind;
pub use sim::{Sim, SimApi, SimCounters};
pub use tcp::{SinkConfig, TcpConfig};
pub use telemetry::EngineTelemetry;
pub use time::{millis, secs, to_secs, SimTime, SECOND};
pub use trace::SimTracer;
