//! Unidirectional links: a transmitter serialising packets at a fixed
//! bandwidth, a drop-tail FIFO queue in front of it, and a propagation delay.
//!
//! This mirrors ns-2's `SimpleLink` + `DropTail` queue, which is where all
//! packet loss in the paper's simulations happens (buffer overflow at the
//! bottleneck).
//!
//! # Coalesced delivery
//!
//! The link keeps one ring of packets: the front segment is *on the wire*
//! (departed, each stamped with its arrival time), the back segment is
//! *queued* behind the transmitter. Nothing is scheduled per packet —
//! [`Link::advance`] lazily drains queue → wire up to the current time, and
//! the simulator keeps a single tracked delivery event per link aimed at the
//! wire head. Because serialisation is FIFO and arrivals are clamped
//! monotone, the head's arrival time never moves once stamped, so that one
//! event never goes stale. Compared to the classic two-events-per-transit
//! (`LinkTxDone` + `Arrival`) design this roughly halves scheduler traffic
//! on transit-heavy topologies.
//!
//! Laziness preserves the runtime-mutation contract exactly: every mutation
//! (and every offer/delivery) advances the link to `now` first, so rate and
//! delay changes apply to packets that start serialising after the call, and
//! an admin-down flushes precisely the packets that have not yet started.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::packet::{NodeId, Packet, PacketKind};
use crate::red::{RedParams, RedState, RedVerdict};
use crate::time::SimTime;

/// Static description of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Transmission rate in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub delay: SimTime,
    /// Drop-tail queue capacity, in packets (not counting the packet being
    /// transmitted).
    pub queue_pkts: usize,
    /// Random (Bernoulli) loss applied to every offered packet, for fault
    /// injection and controlled-loss experiments. 0 = lossless link.
    pub random_loss: f64,
    /// Optional RED active queue management (None = plain drop-tail, as in
    /// all of the paper's experiments).
    pub red: Option<RedParams>,
}

impl LinkSpec {
    /// Convenience constructor from Mbps / ms / packets — the units used in
    /// Table 1 of the paper.
    pub fn from_table(bandwidth_mbps: f64, delay_ms: f64, queue_pkts: usize) -> Self {
        Self {
            bandwidth_bps: bandwidth_mbps * 1e6,
            delay: crate::time::millis(delay_ms),
            queue_pkts,
            random_loss: 0.0,
            red: None,
        }
    }

    /// The same link with Bernoulli packet loss `p` applied on entry.
    pub fn with_random_loss(self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss must be in [0,1)");
        Self {
            random_loss: p,
            ..self
        }
    }

    /// The same link with RED active queue management.
    pub fn with_red(self, params: RedParams) -> Self {
        Self {
            red: Some(params),
            ..self
        }
    }

    /// Time to serialise `bytes` onto the wire, ns. Computed as a single
    /// multiply by the per-byte cost so it agrees bit-for-bit with the
    /// cached hot path in [`Link`].
    pub fn tx_time(&self, bytes: u32) -> SimTime {
        (f64::from(bytes) * (8e9 / self.bandwidth_bps)).round() as SimTime
    }
}

/// Counters kept per link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets accepted (transmitted or queued).
    pub accepted: u64,
    /// Packets dropped at the queue.
    pub dropped: u64,
    /// Data packets dropped (subset of `dropped`).
    pub data_dropped: u64,
    /// Packets dropped by the Bernoulli random-loss process (subset of
    /// `dropped`).
    pub random_dropped: u64,
    /// Packets dropped because the link was administratively down, including
    /// queued packets flushed when it went down (subset of `dropped`).
    pub admin_dropped: u64,
    /// Bytes transmitted.
    pub bytes_tx: u64,
    /// Peak queue occupancy observed (packets waiting behind the
    /// transmitter, excluding the wire).
    pub peak_queue: usize,
    /// Peak ring occupancy (queued + on the wire) — the per-link analogue of
    /// the retired global packet-slab high-water mark.
    pub peak_ring: usize,
    /// Sum of queue lengths sampled at packet arrivals (divide by
    /// `queue_samples` for the arrival-averaged queue).
    pub queue_len_sum: u64,
    /// Number of arrival samples taken.
    pub queue_samples: u64,
}

impl LinkStats {
    /// Arrival-averaged queue length, packets.
    pub fn mean_queue(&self) -> f64 {
        if self.queue_samples == 0 {
            0.0
        } else {
            self.queue_len_sum as f64 / self.queue_samples as f64
        }
    }
}

/// One slot of the link ring: within the wire segment `at` is the stamped
/// arrival time; within the queued segment it is meaningless (0).
#[derive(Debug, Clone, Copy)]
struct WireEntry {
    at: SimTime,
    pkt: Packet,
}

/// A unidirectional link. The simulator drives it lazily: `advance` to the
/// current time before every touch, then `offer` to inject a packet and
/// `pop_due` to collect arrivals at the tracked delivery time.
#[derive(Debug)]
pub struct Link {
    /// Static parameters. Mutable at runtime through the `set_*` methods
    /// (fault injection / path dynamics); rate and delay changes apply to
    /// packets that *start* transmission afterwards, never to packets already
    /// being serialised or in flight.
    pub spec: LinkSpec,
    /// Node at the transmitting end (used to validate routing tables).
    pub from: NodeId,
    /// Node at the receiving end.
    pub to: NodeId,
    admin_down: bool,
    /// `ring[..started]` is the wire (departed, arrival-stamped, arrival
    /// times monotone non-decreasing); `ring[started..]` is the queue.
    ring: VecDeque<WireEntry>,
    started: usize,
    /// When the transmitter finishes serialising the last started packet.
    free_at: SimTime,
    /// Nanoseconds per byte at the current rate (`8e9 / bandwidth_bps`),
    /// cached so the per-departure path is one multiply, not a divide.
    ns_per_byte: f64,
    /// Arrival stamp of the most recently departed packet: later departures
    /// clamp to this so the wire stays FIFO even across delay reductions.
    last_arrival: SimTime,
    /// Per-link random stream (Bernoulli loss, RED). Seeded per link so
    /// loss-free links never draw and lossy links never perturb each other.
    rng: SmallRng,
    red: Option<RedState>,
    /// Statistics.
    pub stats: LinkStats,
    /// Always-on metrics: queue depth (packets waiting, excluding the wire)
    /// sampled at every arrival — the full occupancy distribution behind
    /// `LinkStats::mean_queue`. Recording is an array increment and never
    /// touches the link's RNG, so metrics never perturb loss draws.
    pub queue_hist: obs::Histogram,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Offer {
    /// The link was idle; the packet departed onto the wire immediately.
    Started,
    /// The packet was queued behind the current transmission.
    Queued,
    /// The queue was full (or the link down/lossy); the packet is gone.
    Dropped(Packet),
}

impl Link {
    /// Serialisation time from the cached per-byte cost; identical to
    /// `self.spec.tx_time(bytes)` by construction.
    #[inline]
    fn tx_ns(&self, bytes: u32) -> SimTime {
        (f64::from(bytes) * self.ns_per_byte).round() as SimTime
    }

    /// Create an idle link from `from` delivering to `to`. `seed` starts the
    /// link's private random stream (derive it from the sim seed and the
    /// link's index for determinism).
    pub fn new(spec: LinkSpec, from: NodeId, to: NodeId, seed: u64) -> Self {
        Self {
            spec,
            from,
            to,
            admin_down: false,
            ring: VecDeque::new(),
            started: 0,
            free_at: 0,
            ns_per_byte: 8e9 / spec.bandwidth_bps,
            last_arrival: 0,
            rng: SmallRng::seed_from_u64(seed),
            red: spec.red.map(RedState::new),
            stats: LinkStats::default(),
            queue_hist: obs::Histogram::new(),
        }
    }

    /// Drain queue → wire up to `now`: every queued packet whose
    /// serialisation starts at or before `now` departs, at the rate and
    /// delay in force at its start time. `on_depart(start, queue_len)` fires
    /// per departure (for queue-occupancy tracing) with the queue length
    /// remaining after the pop.
    ///
    /// Postcondition: queued packets remain only if the transmitter is still
    /// busy (`free_at > now`).
    pub fn advance(&mut self, now: SimTime, mut on_depart: impl FnMut(SimTime, usize)) {
        while self.started < self.ring.len() && self.free_at <= now {
            let start = self.free_at;
            let size = self.ring[self.started].pkt.size_bytes;
            let done = start + self.tx_ns(size);
            let entry = &mut self.ring[self.started];
            let arrive = (done + self.spec.delay).max(self.last_arrival);
            entry.at = arrive;
            self.last_arrival = arrive;
            self.free_at = done;
            self.stats.bytes_tx += u64::from(entry.pkt.size_bytes);
            self.started += 1;
            on_depart(start, self.ring.len() - self.started);
        }
    }

    /// Offer a packet for transmission at `now`. The caller must have
    /// [`advance`](Self::advance)d the link to `now` first.
    pub fn offer(&mut self, now: SimTime, pkt: Packet) -> Offer {
        debug_assert!(
            self.started == self.ring.len() || self.free_at > now,
            "offer on un-advanced link"
        );
        let queued = self.ring.len() - self.started;
        self.stats.queue_len_sum += queued as u64;
        self.stats.queue_samples += 1;
        self.queue_hist.record(queued as u64);
        if self.admin_down {
            self.stats.dropped += 1;
            self.stats.admin_dropped += 1;
            if pkt.kind == PacketKind::Data {
                self.stats.data_dropped += 1;
            }
            return Offer::Dropped(pkt);
        }
        if self.spec.random_loss > 0.0 && self.rng.gen_range(0.0..1.0) < self.spec.random_loss {
            self.stats.dropped += 1;
            self.stats.random_dropped += 1;
            if pkt.kind == PacketKind::Data {
                self.stats.data_dropped += 1;
            }
            return Offer::Dropped(pkt);
        }
        if let Some(red) = &mut self.red {
            if red.on_arrival(queued, &mut self.rng) == RedVerdict::Drop {
                self.stats.dropped += 1;
                if pkt.kind == PacketKind::Data {
                    self.stats.data_dropped += 1;
                }
                return Offer::Dropped(pkt);
            }
        }
        if self.free_at <= now {
            // Transmitter idle (and, post-advance, the queue is empty):
            // depart immediately.
            let done = now + self.tx_ns(pkt.size_bytes);
            let arrive = (done + self.spec.delay).max(self.last_arrival);
            self.free_at = done;
            self.last_arrival = arrive;
            self.ring.push_back(WireEntry { at: arrive, pkt });
            self.started += 1;
            self.stats.accepted += 1;
            self.stats.bytes_tx += u64::from(pkt.size_bytes);
            self.stats.peak_ring = self.stats.peak_ring.max(self.ring.len());
            Offer::Started
        } else if queued < self.spec.queue_pkts {
            self.ring.push_back(WireEntry { at: 0, pkt });
            self.stats.accepted += 1;
            self.stats.peak_queue = self.stats.peak_queue.max(queued + 1);
            self.stats.peak_ring = self.stats.peak_ring.max(self.ring.len());
            Offer::Queued
        } else {
            self.stats.dropped += 1;
            if pkt.kind == PacketKind::Data {
                self.stats.data_dropped += 1;
            }
            Offer::Dropped(pkt)
        }
    }

    /// Pop the wire head if it has arrived by `now`. The simulator calls
    /// this in a loop at the tracked delivery time (arrivals stamped equal
    /// coalesce into one event).
    pub fn pop_due(&mut self, now: SimTime) -> Option<Packet> {
        if self.started > 0 {
            let head = self.ring.front().expect("wire segment non-empty");
            if head.at <= now {
                let pkt = head.pkt;
                self.ring.pop_front();
                self.started -= 1;
                return Some(pkt);
            }
        }
        None
    }

    /// Arrival time of the wire head (what the simulator's tracked delivery
    /// event must aim at), if anything is in flight.
    pub fn next_arrival(&self) -> Option<SimTime> {
        if self.started > 0 {
            Some(self.ring.front().expect("wire segment non-empty").at)
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Runtime mutation (fault injection / path dynamics)
    // ------------------------------------------------------------------

    /// Change the transmission rate. The caller must `advance` to `now`
    /// first; the change then applies to packets that start serialising
    /// after the call, never to packets already departed.
    pub fn set_bandwidth_bps(&mut self, bps: f64) {
        assert!(bps > 0.0, "bandwidth must be positive (got {bps})");
        self.spec.bandwidth_bps = bps;
        self.ns_per_byte = 8e9 / bps;
    }

    /// Change the propagation delay. The caller must `advance` to `now`
    /// first; packets already on the wire keep their stamped arrival time,
    /// and later departures clamp monotone (no reordering on the wire).
    pub fn set_delay(&mut self, delay: SimTime) {
        self.spec.delay = delay;
    }

    /// Change the Bernoulli random-loss probability.
    pub fn set_random_loss(&mut self, p: f64) {
        assert!((0.0..1.0).contains(&p), "loss must be in [0,1) (got {p})");
        self.spec.random_loss = p;
    }

    /// Administratively down (or up) the link. The caller must `advance` to
    /// `now` first. Going down flushes the queue (packets that have not
    /// started serialising) and returns the flushed packets so the caller
    /// can account per-flow drops; while down every offered packet is
    /// dropped. Packets already on the wire complete and propagate — as on a
    /// real link where bits already sent still arrive. Going up returns an
    /// empty Vec.
    pub fn set_admin_down(&mut self, down: bool) -> Vec<Packet> {
        self.admin_down = down;
        if !down {
            return Vec::new();
        }
        let flushed: Vec<Packet> = self.ring.drain(self.started..).map(|e| e.pkt).collect();
        for pkt in &flushed {
            self.stats.dropped += 1;
            self.stats.admin_dropped += 1;
            if pkt.kind == PacketKind::Data {
                self.stats.data_dropped += 1;
            }
        }
        flushed
    }

    /// Is the link administratively down?
    pub fn is_admin_down(&self) -> bool {
        self.admin_down
    }

    /// Packets currently queued (excluding any on the wire).
    pub fn queue_len(&self) -> usize {
        self.ring.len() - self.started
    }

    /// Packets departed but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.started
    }

    /// Is a transmission in progress at `now`? (Meaningful after `advance`.)
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.free_at > now
    }

    /// Average utilisation given total elapsed time.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        (self.stats.bytes_tx as f64 * 8.0)
            / (self.spec.bandwidth_bps * crate::time::to_secs(elapsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::AppChunk;

    fn pkt(seq: u64) -> Packet {
        Packet::data(0, seq, 1460, 0, 1, AppChunk::synthetic(seq, 0), false)
    }

    fn link(cap: usize) -> Link {
        Link::new(LinkSpec::from_table(1.0, 10.0, cap), 0, 1, 1)
    }

    /// Advance with no tracing and drain every arrival due by `now`.
    fn drain(l: &mut Link, now: SimTime) -> Vec<(SimTime, u64)> {
        l.advance(now, |_, _| {});
        let mut out = Vec::new();
        while let Some(at) = l.next_arrival() {
            if at > now {
                break;
            }
            let p = l.pop_due(now).unwrap();
            out.push((at, p.seq));
        }
        out
    }

    #[test]
    fn tx_time_is_exact() {
        let spec = LinkSpec::from_table(1.5, 0.0, 10);
        // 1500 B at 1.5 Mbps = 8 ms.
        assert_eq!(spec.tx_time(1500), 8_000_000);
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut l = link(2);
        assert_eq!(l.offer(0, pkt(0)), Offer::Started);
        assert!(l.is_busy(0));
        // 1460 B payload + 40 B header at 1 Mbps = 12 ms tx + 10 ms delay.
        assert_eq!(l.next_arrival(), Some(22_000_000));
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut l = link(2);
        assert_eq!(l.offer(0, pkt(0)), Offer::Started);
        assert_eq!(l.offer(0, pkt(1)), Offer::Queued);
        assert_eq!(l.offer(0, pkt(2)), Offer::Queued);
        assert!(matches!(l.offer(0, pkt(3)), Offer::Dropped(_)));
        assert_eq!(l.stats.dropped, 1);
        assert_eq!(l.stats.data_dropped, 1);
        assert_eq!(l.queue_len(), 2);
        assert_eq!(l.stats.peak_ring, 3);
    }

    #[test]
    fn back_to_back_transmissions_space_arrivals_by_tx_time() {
        // Three packets offered together: the wire serialises them
        // back-to-back, so arrivals are spaced by exactly one tx time.
        let mut l = link(5);
        let tx = l.spec.tx_time(1500);
        let delay = l.spec.delay;
        l.offer(0, pkt(0));
        l.offer(0, pkt(1));
        l.offer(0, pkt(2));
        let end = 3 * tx + delay;
        let got = drain(&mut l, end);
        assert_eq!(
            got,
            vec![(tx + delay, 0), (2 * tx + delay, 1), (3 * tx + delay, 2)]
        );
        assert!(!l.is_busy(end));
        assert_eq!(l.in_flight(), 0);
    }

    #[test]
    fn advance_is_lazy_and_exact() {
        let mut l = link(5);
        let tx = l.spec.tx_time(1500);
        l.offer(0, pkt(0));
        l.offer(0, pkt(1));
        // Advance to just before the first tx completes: nothing new departs.
        l.advance(tx - 1, |_, _| {});
        assert_eq!(l.in_flight(), 1);
        assert_eq!(l.queue_len(), 1);
        // At exactly tx the second packet departs, starting at `tx`.
        let mut starts = Vec::new();
        l.advance(tx, |s, q| starts.push((s, q)));
        assert_eq!(starts, vec![(tx, 0)]);
        assert_eq!(l.in_flight(), 2);
    }

    #[test]
    fn mid_flight_rate_step_applies_to_not_yet_started_packets() {
        // Two queued packets; halve the rate while the first serialises.
        // The first keeps its old tx time, the second takes twice as long.
        let mut l = link(5);
        let tx = l.spec.tx_time(1500);
        let delay = l.spec.delay;
        l.offer(0, pkt(0));
        l.offer(0, pkt(1));
        l.advance(tx / 2, |_, _| {});
        l.set_bandwidth_bps(0.5e6);
        let slow_tx = l.spec.tx_time(1500);
        assert_eq!(slow_tx, 2 * tx);
        let got = drain(&mut l, tx + slow_tx + delay);
        assert_eq!(got, vec![(tx + delay, 0), (tx + slow_tx + delay, 1)]);
    }

    #[test]
    fn mid_flight_delay_cut_never_reorders_the_wire() {
        // Packet 0 departs with a 10 ms delay (far exceeding its 0.12 ms tx
        // time); the delay then drops to 0. Packet 1 would naively overtake
        // it — the monotone clamp makes it arrive at the same instant
        // instead, preserving FIFO.
        let mut l = Link::new(LinkSpec::from_table(100.0, 10.0, 5), 0, 1, 1);
        let tx = l.spec.tx_time(1500);
        let delay = l.spec.delay;
        assert!(delay > 2 * tx);
        l.offer(0, pkt(0));
        l.offer(0, pkt(1));
        l.advance(1, |_, _| {});
        l.set_delay(0);
        let got = drain(&mut l, 2 * tx + delay);
        assert_eq!(got, vec![(tx + delay, 0), (tx + delay, 1)]);
    }

    #[test]
    fn peak_queue_tracked() {
        let mut l = link(5);
        l.offer(0, pkt(0));
        for i in 1..=4 {
            l.offer(0, pkt(i));
        }
        assert_eq!(l.stats.peak_queue, 4);
        assert_eq!(l.stats.peak_ring, 5);
    }

    #[test]
    fn admin_down_flushes_queue_and_blackholes_offers() {
        let mut l = link(5);
        let tx = l.spec.tx_time(1500);
        let delay = l.spec.delay;
        assert_eq!(l.offer(0, pkt(0)), Offer::Started);
        l.offer(0, pkt(1));
        l.offer(0, pkt(2));
        // Down mid-serialisation: queued packets flush, the wire survives.
        l.advance(tx / 2, |_, _| {});
        let flushed = l.set_admin_down(true);
        assert_eq!(flushed.len(), 2);
        assert_eq!(l.queue_len(), 0);
        assert_eq!(l.stats.admin_dropped, 2);
        assert!(matches!(l.offer(tx / 2, pkt(3)), Offer::Dropped(_)));
        // The in-flight departure still arrives on time.
        let got = drain(&mut l, tx + delay);
        assert_eq!(got, vec![(tx + delay, 0)]);
        assert!(!l.is_busy(tx + delay));
        // Back up: traffic flows again, starting from the up time.
        assert!(l.set_admin_down(false).is_empty());
        let t_up = tx + delay;
        assert_eq!(l.offer(t_up, pkt(4)), Offer::Started);
        assert_eq!(l.next_arrival(), Some(t_up + tx + delay));
    }

    #[test]
    fn rate_and_delay_changes_apply_to_future_transmissions() {
        let mut l = link(5);
        assert_eq!(l.spec.tx_time(1500), 12_000_000); // 1 Mbps
        l.set_bandwidth_bps(2e6);
        assert_eq!(l.spec.tx_time(1500), 6_000_000);
        l.set_delay(crate::time::millis(55.0));
        assert_eq!(l.spec.delay, crate::time::millis(55.0));
        l.set_random_loss(0.5);
        let mut dropped = 0u64;
        let mut now = 0;
        for i in 0..1000 {
            l.advance(now, |_, _| {});
            if matches!(l.offer(now, pkt(i)), Offer::Dropped(_)) {
                dropped += 1;
            }
            now += l.spec.tx_time(1500) + 1;
        }
        assert!((400..600).contains(&dropped), "dropped {dropped}");
        assert_eq!(l.stats.random_dropped, dropped);
    }

    #[test]
    fn random_loss_drops_at_configured_rate() {
        let spec = LinkSpec::from_table(100.0, 1.0, 1000).with_random_loss(0.25);
        let mut l = Link::new(spec, 0, 1, 7);
        let mut dropped = 0u64;
        let mut now = 0;
        for i in 0..20_000 {
            l.advance(now, |_, _| {});
            if matches!(l.offer(now, pkt(i)), Offer::Dropped(_)) {
                dropped += 1;
            }
            now += l.spec.tx_time(1500) + 1;
        }
        let rate = dropped as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate}");
    }
}
