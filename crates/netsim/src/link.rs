//! Unidirectional links: a transmitter serialising packets at a fixed
//! bandwidth, a drop-tail FIFO queue in front of it, and a propagation delay.
//!
//! This mirrors ns-2's `SimpleLink` + `DropTail` queue, which is where all
//! packet loss in the paper's simulations happens (buffer overflow at the
//! bottleneck).

use std::collections::VecDeque;

use rand::Rng;

use crate::packet::{NodeId, Packet, PacketKind};
use crate::red::{RedParams, RedState, RedVerdict};
use crate::time::SimTime;

/// Static description of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Transmission rate in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub delay: SimTime,
    /// Drop-tail queue capacity, in packets (not counting the packet being
    /// transmitted).
    pub queue_pkts: usize,
    /// Random (Bernoulli) loss applied to every offered packet, for fault
    /// injection and controlled-loss experiments. 0 = lossless link.
    pub random_loss: f64,
    /// Optional RED active queue management (None = plain drop-tail, as in
    /// all of the paper's experiments).
    pub red: Option<RedParams>,
}

impl LinkSpec {
    /// Convenience constructor from Mbps / ms / packets — the units used in
    /// Table 1 of the paper.
    pub fn from_table(bandwidth_mbps: f64, delay_ms: f64, queue_pkts: usize) -> Self {
        Self {
            bandwidth_bps: bandwidth_mbps * 1e6,
            delay: crate::time::millis(delay_ms),
            queue_pkts,
            random_loss: 0.0,
            red: None,
        }
    }

    /// The same link with Bernoulli packet loss `p` applied on entry.
    pub fn with_random_loss(self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss must be in [0,1)");
        Self {
            random_loss: p,
            ..self
        }
    }

    /// The same link with RED active queue management.
    pub fn with_red(self, params: RedParams) -> Self {
        Self {
            red: Some(params),
            ..self
        }
    }

    /// Time to serialise `bytes` onto the wire, ns.
    pub fn tx_time(&self, bytes: u32) -> SimTime {
        (f64::from(bytes) * 8.0 / self.bandwidth_bps * 1e9).round() as SimTime
    }
}

/// Counters kept per link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets accepted (transmitted or queued).
    pub accepted: u64,
    /// Packets dropped at the queue.
    pub dropped: u64,
    /// Data packets dropped (subset of `dropped`).
    pub data_dropped: u64,
    /// Packets dropped by the Bernoulli random-loss process (subset of
    /// `dropped`).
    pub random_dropped: u64,
    /// Packets dropped because the link was administratively down, including
    /// queued packets flushed when it went down (subset of `dropped`).
    pub admin_dropped: u64,
    /// Bytes transmitted.
    pub bytes_tx: u64,
    /// Peak queue occupancy observed.
    pub peak_queue: usize,
    /// Sum of queue lengths sampled at packet arrivals (divide by
    /// `queue_samples` for the arrival-averaged queue).
    pub queue_len_sum: u64,
    /// Number of arrival samples taken.
    pub queue_samples: u64,
}

impl LinkStats {
    /// Arrival-averaged queue length, packets.
    pub fn mean_queue(&self) -> f64 {
        if self.queue_samples == 0 {
            0.0
        } else {
            self.queue_len_sum as f64 / self.queue_samples as f64
        }
    }
}

/// A unidirectional link. The simulator drives it: `offer` either starts a
/// transmission (returns the packet to serialise) or queues/drops; on each
/// transmission-done event, `tx_done` hands back the next packet to send.
#[derive(Debug)]
pub struct Link {
    /// Static parameters. Mutable at runtime through the `set_*` methods
    /// (fault injection / path dynamics); rate and delay changes apply to
    /// packets that *start* transmission afterwards, never to packets already
    /// being serialised or in flight.
    pub spec: LinkSpec,
    /// Node at the transmitting end (used to validate routing tables).
    pub from: NodeId,
    /// Node at the receiving end.
    pub to: NodeId,
    busy: bool,
    admin_down: bool,
    q: VecDeque<Packet>,
    red: Option<RedState>,
    /// Statistics.
    pub stats: LinkStats,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Offer {
    /// The link was idle; start transmitting this packet now.
    StartTx(Packet),
    /// The packet was queued behind the current transmission.
    Queued,
    /// The queue was full; the packet is gone.
    Dropped(Packet),
}

impl Link {
    /// Create an idle link from `from` delivering to `to`.
    pub fn new(spec: LinkSpec, from: NodeId, to: NodeId) -> Self {
        Self {
            spec,
            from,
            to,
            busy: false,
            admin_down: false,
            q: VecDeque::new(),
            red: spec.red.map(RedState::new),
            stats: LinkStats::default(),
        }
    }

    /// Offer a packet for transmission. `rng` drives the link's Bernoulli
    /// loss process (unused when `random_loss` is 0).
    pub fn offer(&mut self, pkt: Packet, rng: &mut impl Rng) -> Offer {
        self.stats.queue_len_sum += self.q.len() as u64;
        self.stats.queue_samples += 1;
        if self.admin_down {
            self.stats.dropped += 1;
            self.stats.admin_dropped += 1;
            if pkt.kind == PacketKind::Data {
                self.stats.data_dropped += 1;
            }
            return Offer::Dropped(pkt);
        }
        if self.spec.random_loss > 0.0 && rng.gen_range(0.0..1.0) < self.spec.random_loss {
            self.stats.dropped += 1;
            self.stats.random_dropped += 1;
            if pkt.kind == PacketKind::Data {
                self.stats.data_dropped += 1;
            }
            return Offer::Dropped(pkt);
        }
        if let Some(red) = &mut self.red {
            if red.on_arrival(self.q.len(), rng) == RedVerdict::Drop {
                self.stats.dropped += 1;
                if pkt.kind == PacketKind::Data {
                    self.stats.data_dropped += 1;
                }
                return Offer::Dropped(pkt);
            }
        }
        if !self.busy {
            self.busy = true;
            self.stats.accepted += 1;
            self.stats.bytes_tx += u64::from(pkt.size_bytes);
            Offer::StartTx(pkt)
        } else if self.q.len() < self.spec.queue_pkts {
            self.q.push_back(pkt);
            self.stats.accepted += 1;
            self.stats.peak_queue = self.stats.peak_queue.max(self.q.len());
            Offer::Queued
        } else {
            self.stats.dropped += 1;
            if pkt.kind == PacketKind::Data {
                self.stats.data_dropped += 1;
            }
            Offer::Dropped(pkt)
        }
    }

    /// The current transmission finished; returns the next queued packet to
    /// serialise, if any (the link goes idle otherwise).
    pub fn tx_done(&mut self) -> Option<Packet> {
        debug_assert!(self.busy, "tx_done on idle link");
        match self.q.pop_front() {
            Some(pkt) => {
                self.stats.bytes_tx += u64::from(pkt.size_bytes);
                Some(pkt)
            }
            None => {
                self.busy = false;
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Runtime mutation (fault injection / path dynamics)
    // ------------------------------------------------------------------

    /// Change the transmission rate. Applies to packets that start
    /// serialising after the call; the packet on the wire (if any) finishes
    /// at the old rate.
    pub fn set_bandwidth_bps(&mut self, bps: f64) {
        assert!(bps > 0.0, "bandwidth must be positive (got {bps})");
        self.spec.bandwidth_bps = bps;
    }

    /// Change the propagation delay. Applies to packets that start
    /// serialising after the call; packets already in flight keep their old
    /// arrival time (no reordering on the wire).
    pub fn set_delay(&mut self, delay: SimTime) {
        self.spec.delay = delay;
    }

    /// Change the Bernoulli random-loss probability.
    pub fn set_random_loss(&mut self, p: f64) {
        assert!((0.0..1.0).contains(&p), "loss must be in [0,1) (got {p})");
        self.spec.random_loss = p;
    }

    /// Administratively down (or up) the link. Going down flushes the queue
    /// and returns the flushed packets so the caller can account per-flow
    /// drops; while down every offered packet is dropped. The packet being
    /// serialised (if any) completes and propagates — as on a real link where
    /// bits already on the wire still arrive. Going up returns an empty Vec.
    pub fn set_admin_down(&mut self, down: bool) -> Vec<Packet> {
        self.admin_down = down;
        if !down {
            return Vec::new();
        }
        let flushed: Vec<Packet> = self.q.drain(..).collect();
        for pkt in &flushed {
            self.stats.dropped += 1;
            self.stats.admin_dropped += 1;
            if pkt.kind == PacketKind::Data {
                self.stats.data_dropped += 1;
            }
        }
        flushed
    }

    /// Is the link administratively down?
    pub fn is_admin_down(&self) -> bool {
        self.admin_down
    }

    /// Packets currently queued (excluding the one in transmission).
    pub fn queue_len(&self) -> usize {
        self.q.len()
    }

    /// Is a transmission in progress?
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Average utilisation given total elapsed time.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        (self.stats.bytes_tx as f64 * 8.0)
            / (self.spec.bandwidth_bps * crate::time::to_secs(elapsed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::AppChunk;

    fn pkt(seq: u64) -> Packet {
        Packet::data(0, seq, 1460, 0, 1, AppChunk::synthetic(seq, 0), false)
    }

    fn link(cap: usize) -> Link {
        Link::new(LinkSpec::from_table(1.0, 10.0, cap), 0, 1)
    }

    fn rng() -> rand::rngs::SmallRng {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(1)
    }

    #[test]
    fn tx_time_is_exact() {
        let spec = LinkSpec::from_table(1.5, 0.0, 10);
        // 1500 B at 1.5 Mbps = 8 ms.
        assert_eq!(spec.tx_time(1500), 8_000_000);
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut l = link(2);
        match l.offer(pkt(0), &mut rng()) {
            Offer::StartTx(p) => assert_eq!(p.seq, 0),
            other => panic!("expected StartTx, got {other:?}"),
        }
        assert!(l.is_busy());
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut l = link(2);
        assert!(matches!(l.offer(pkt(0), &mut rng()), Offer::StartTx(_)));
        assert_eq!(l.offer(pkt(1), &mut rng()), Offer::Queued);
        assert_eq!(l.offer(pkt(2), &mut rng()), Offer::Queued);
        assert!(matches!(l.offer(pkt(3), &mut rng()), Offer::Dropped(_)));
        assert_eq!(l.stats.dropped, 1);
        assert_eq!(l.stats.data_dropped, 1);
        assert_eq!(l.queue_len(), 2);
    }

    #[test]
    fn tx_done_drains_fifo_then_idles() {
        let mut l = link(2);
        assert!(matches!(l.offer(pkt(0), &mut rng()), Offer::StartTx(_)));
        l.offer(pkt(1), &mut rng());
        l.offer(pkt(2), &mut rng());
        assert_eq!(l.tx_done().map(|p| p.seq), Some(1));
        assert_eq!(l.tx_done().map(|p| p.seq), Some(2));
        assert_eq!(l.tx_done(), None);
        assert!(!l.is_busy());
    }

    #[test]
    fn peak_queue_tracked() {
        let mut l = link(5);
        l.offer(pkt(0), &mut rng());
        for i in 1..=4 {
            l.offer(pkt(i), &mut rng());
        }
        assert_eq!(l.stats.peak_queue, 4);
    }

    #[test]
    fn admin_down_flushes_queue_and_blackholes_offers() {
        let mut l = link(5);
        assert!(matches!(l.offer(pkt(0), &mut rng()), Offer::StartTx(_)));
        l.offer(pkt(1), &mut rng());
        l.offer(pkt(2), &mut rng());
        let flushed = l.set_admin_down(true);
        assert_eq!(flushed.len(), 2);
        assert_eq!(l.queue_len(), 0);
        assert_eq!(l.stats.admin_dropped, 2);
        // The packet on the wire completes; nothing follows it.
        assert!(matches!(l.offer(pkt(3), &mut rng()), Offer::Dropped(_)));
        assert_eq!(l.tx_done(), None);
        assert!(!l.is_busy());
        // Back up: traffic flows again.
        assert!(l.set_admin_down(false).is_empty());
        assert!(matches!(l.offer(pkt(4), &mut rng()), Offer::StartTx(_)));
    }

    #[test]
    fn rate_and_delay_changes_apply_to_future_transmissions() {
        let mut l = link(5);
        assert_eq!(l.spec.tx_time(1500), 12_000_000); // 1 Mbps
        l.set_bandwidth_bps(2e6);
        assert_eq!(l.spec.tx_time(1500), 6_000_000);
        l.set_delay(crate::time::millis(55.0));
        assert_eq!(l.spec.delay, crate::time::millis(55.0));
        l.set_random_loss(0.5);
        let mut r = rng();
        let mut dropped = 0;
        for i in 0..1000 {
            if matches!(l.offer(pkt(i), &mut r), Offer::Dropped(_)) {
                dropped += 1;
            }
            while l.is_busy() {
                l.tx_done();
            }
        }
        assert!((400..600).contains(&dropped), "dropped {dropped}");
        assert_eq!(l.stats.random_dropped, dropped);
    }

    #[test]
    fn random_loss_drops_at_configured_rate() {
        let spec = LinkSpec::from_table(100.0, 1.0, 1000).with_random_loss(0.25);
        let mut l = Link::new(spec, 0, 1);
        let mut r = rng();
        let mut dropped = 0;
        for i in 0..20_000 {
            if matches!(l.offer(pkt(i), &mut r), Offer::Dropped(_)) {
                dropped += 1;
            }
            while l.is_busy() {
                l.tx_done();
            }
        }
        let rate = f64::from(dropped) / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate}");
    }
}
