//! Built-in traffic generators: backlogged FTP and on/off HTTP sessions.
//!
//! These are the paper's background flows (Table 1 configures 5–19 FTP plus
//! 20–40 HTTP flows per bottleneck). The HTTP model follows the classic
//! web-traffic shape used with ns-2: a session repeatedly downloads a
//! Pareto-sized page over its connection (fresh slow start each time), then
//! thinks for an exponentially distributed time.

use rand::Rng;

use crate::app::App;
use crate::packet::FlowId;
use crate::sim::SimApi;
use crate::time::{secs, SimTime};

/// A backlogged file transfer: once started, always has data to send.
#[derive(Debug)]
pub struct Ftp {
    flow: FlowId,
    start_at: SimTime,
}

impl Ftp {
    /// An FTP on `flow` that starts sending at `start_at`.
    pub fn new(flow: FlowId, start_at: SimTime) -> Self {
        Self { flow, start_at }
    }
}

impl App for Ftp {
    fn start(&mut self, api: &mut SimApi<'_>) {
        api.own_flow(self.flow);
        api.schedule_in(self.start_at, 0);
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, _tag: u64) {
        api.set_backlogged(self.flow, None);
    }
}

/// Parameters of an HTTP session.
#[derive(Debug, Clone, Copy)]
pub struct HttpParams {
    /// Mean page size, in segments. Pages are Pareto-distributed.
    pub mean_page_pkts: f64,
    /// Pareto shape parameter (α > 1; classic web models use 1.2–1.5).
    pub pareto_shape: f64,
    /// Page size cap, segments (keeps the heavy tail from degenerating into
    /// a second FTP).
    pub max_page_pkts: u64,
    /// Mean think time between downloads, seconds (exponential).
    pub mean_think_s: f64,
}

impl Default for HttpParams {
    fn default() -> Self {
        // Classic web-workload numbers (ns-2 webtraf era): ~10 KB mean pages
        // with a heavy tail, think times of a few seconds. Each session then
        // offers ~1-2 pkt/s — tens of sessions add up to a bursty but
        // secondary load next to the FTP flows, which is what Table 2's
        // measured loss rates (2–5%) imply.
        Self {
            mean_page_pkts: 8.0,
            pareto_shape: 1.3,
            max_page_pkts: 200,
            mean_think_s: 4.0,
        }
    }
}

/// An on/off web session over one persistent flow: download a page (with the
/// congestion state reset, as a new connection would be), then idle.
#[derive(Debug)]
pub struct HttpSession {
    flow: FlowId,
    params: HttpParams,
    start_at: SimTime,
}

impl HttpSession {
    /// A session on `flow` beginning its first download at `start_at`.
    pub fn new(flow: FlowId, params: HttpParams, start_at: SimTime) -> Self {
        Self {
            flow,
            params,
            start_at,
        }
    }

    fn sample_page(&self, rng: &mut impl Rng) -> u64 {
        // Pareto with mean m and shape α has scale x_m = m(α-1)/α.
        let alpha = self.params.pareto_shape;
        let xm = self.params.mean_page_pkts * (alpha - 1.0) / alpha;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let size = xm / u.powf(1.0 / alpha);
        (size.ceil() as u64).clamp(1, self.params.max_page_pkts)
    }

    fn sample_think(&self, rng: &mut impl Rng) -> SimTime {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        secs(-self.params.mean_think_s * u.ln())
    }
}

impl App for HttpSession {
    fn start(&mut self, api: &mut SimApi<'_>) {
        api.own_flow(self.flow);
        api.schedule_in(self.start_at, 0);
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, _tag: u64) {
        let pkts = self.sample_page(api.rng());
        api.restart_connection(self.flow);
        api.set_backlogged(self.flow, Some(pkts));
    }

    fn on_transfer_complete(&mut self, api: &mut SimApi<'_>, _flow: FlowId) {
        let think = self.sample_think(api.rng());
        api.schedule_in(think, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::Sim;
    use crate::tcp::{SinkConfig, TcpConfig};
    use crate::time::SECOND;

    fn duplex_pair(sim: &mut Sim, bw: f64, delay: f64, q: usize) -> (u32, u32) {
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (f, r) = sim.add_duplex(a, b, LinkSpec::from_table(bw, delay, q));
        sim.add_route(a, b, f);
        sim.add_route(b, a, r);
        (a, b)
    }

    #[test]
    fn ftp_waits_for_start_time() {
        let mut sim = Sim::new(3);
        let (a, b) = duplex_pair(&mut sim, 10.0, 5.0, 100);
        let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        sim.add_app(Box::new(Ftp::new(flow, 5 * SECOND)));
        sim.run_until(4 * SECOND);
        assert_eq!(sim.sink(flow).stats.delivered, 0);
        sim.run_until(10 * SECOND);
        assert!(sim.sink(flow).stats.delivered > 1000);
    }

    #[test]
    fn http_session_alternates_transfer_and_think() {
        let mut sim = Sim::new(4);
        let (a, b) = duplex_pair(&mut sim, 10.0, 5.0, 100);
        let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        let params = HttpParams {
            mean_page_pkts: 10.0,
            mean_think_s: 0.2,
            ..HttpParams::default()
        };
        sim.add_app(Box::new(HttpSession::new(flow, params, 0)));
        sim.run_until(60 * SECOND);
        let delivered = sim.sink(flow).stats.delivered;
        // Rough sanity: tens of pages in a minute, far below FTP volume.
        assert!(delivered > 300, "delivered {delivered}");
        assert!(
            delivered < 40_000,
            "should be think-time limited: {delivered}"
        );
    }

    #[test]
    fn pareto_pages_have_requested_mean() {
        let sess = HttpSession::new(0, HttpParams::default(), 0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| sess.sample_page(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        // Ceil + cap bias the mean a little; accept ±20%.
        assert!(
            (mean - HttpParams::default().mean_page_pkts).abs() < 4.0,
            "mean page {mean}"
        );
        use rand::SeedableRng;
    }

    #[test]
    fn think_times_are_exponential_with_mean() {
        use rand::SeedableRng;
        let params = HttpParams {
            mean_think_s: 2.0,
            ..HttpParams::default()
        };
        let sess = HttpSession::new(0, params, 0);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| sess.sample_think(&mut rng)).sum();
        let mean_s = crate::time::to_secs(sum) / n as f64;
        assert!((mean_s - 2.0).abs() < 0.05, "mean think {mean_s}");
    }
}
