//! Application hooks.
//!
//! An [`App`] is attached to the simulator and driven by callbacks: timers it
//! scheduled, send-buffer space opening up on a flow it owns, transfer
//! completion, and in-order data delivery on a flow it receives. Apps interact
//! with the world exclusively through the [`SimApi`]
//! handle passed to every callback.

use crate::packet::{AppChunk, FlowId};
use crate::sim::SimApi;

/// Application behaviour attached to the simulator.
///
/// All methods have empty defaults so an app only implements the events it
/// cares about.
pub trait App {
    /// Called once when the app is added to the simulator.
    fn start(&mut self, api: &mut SimApi<'_>);

    /// A timer scheduled via [`SimApi::schedule_in`] fired. `tag` is the value
    /// passed at scheduling time.
    fn on_timer(&mut self, api: &mut SimApi<'_>, tag: u64) {
        let _ = (api, tag);
    }

    /// Send-buffer space became available on `flow` (the sender received a
    /// new cumulative ACK). Only delivered for flows owned via
    /// [`SimApi::own_flow`]. This is the "TCP sender can fetch packets"
    /// trigger of DMP-streaming.
    fn on_send_space(&mut self, api: &mut SimApi<'_>, flow: FlowId) {
        let _ = (api, flow);
    }

    /// A sized backlogged transfer on `flow` was fully acknowledged.
    fn on_transfer_complete(&mut self, api: &mut SimApi<'_>, flow: FlowId) {
        let _ = (api, flow);
    }

    /// In-order data was delivered by the sink of `flow`. Only delivered for
    /// flows subscribed via [`SimApi::receive_flow`].
    fn on_receive(&mut self, api: &mut SimApi<'_>, flow: FlowId, chunks: &[AppChunk]) {
        let _ = (api, flow, chunks);
    }
}
