//! Process-wide engine telemetry.
//!
//! Experiment harnesses (the `dmp-runner` crate) run many simulations on a
//! worker pool and want aggregate engine health numbers in their volatile
//! `.meta.json` sidecars without threading a handle into every job closure.
//! Each [`crate::sim::Sim`] merges its counters into these atomics when it is
//! dropped; [`snapshot`] reads the totals. Counts accumulate (`fetch_add`),
//! high-water marks take the max across simulations (`fetch_max`).
//!
//! Telemetry is deliberately *not* part of any deterministic artifact: it
//! varies with thread interleaving and machine speed, which is exactly why it
//! lives here and not in simulation results.
//!
//! With the `profile` cargo feature, the `profile` submodule additionally
//! accumulates per-event-kind dispatch counts and tick (TSC cycle / ns)
//! totals — the breakdown behind `bench_profile`. Never compiled into
//! default builds; never part of deterministic artifacts.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::sim::SimCounters;

static EVENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);
static TRANSITS: AtomicU64 = AtomicU64::new(0);
static STALE_TIMER_POPS: AtomicU64 = AtomicU64::new(0);
static DEFERRED_TIMER_PUSHES: AtomicU64 = AtomicU64::new(0);
static WHEEL_HWM: AtomicU64 = AtomicU64::new(0);
static FAR_HWM: AtomicU64 = AtomicU64::new(0);
static RING_HWM: AtomicU64 = AtomicU64::new(0);
static RANDOM_LOSS_DROPS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the process-wide engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Total events dispatched across all simulations.
    pub events_processed: u64,
    /// Packet transits delivered (one per packet per link traversed).
    /// Coalesced delivery means transits exceed events on transit-heavy
    /// topologies — report both so an events/sec gain is never mistaken for
    /// merely counting fewer events.
    pub transits: u64,
    /// Timer events popped after their endpoint cancelled or superseded them.
    pub stale_timer_pops: u64,
    /// Timer events re-queued because the deadline moved later (lazy
    /// deferral instead of one event per timer restart).
    pub deferred_timer_pushes: u64,
    /// Peak near-wheel occupancy of any single simulation.
    pub wheel_hwm: u64,
    /// Peak far-heap occupancy of any single simulation.
    pub far_hwm: u64,
    /// Peak single-link ring occupancy (queued + on-the-wire packets) of any
    /// single simulation — successor of the retired global packet-slab HWM.
    pub ring_hwm: u64,
    /// Packets dropped by per-link Bernoulli random loss (fault injection)
    /// across all simulations.
    pub random_loss_drops: u64,
}

impl EngineTelemetry {
    /// Attribute engine activity to a phase bounded by two snapshots:
    /// monotone counts subtract (`self` is the later reading), high-water
    /// marks take the max — a HWM is a peak, not a rate, so "the HWM during
    /// this phase" is the larger of the two readings, never a difference.
    pub fn delta(&self, earlier: &EngineTelemetry) -> EngineTelemetry {
        EngineTelemetry {
            events_processed: self
                .events_processed
                .saturating_sub(earlier.events_processed),
            transits: self.transits.saturating_sub(earlier.transits),
            stale_timer_pops: self
                .stale_timer_pops
                .saturating_sub(earlier.stale_timer_pops),
            deferred_timer_pushes: self
                .deferred_timer_pushes
                .saturating_sub(earlier.deferred_timer_pushes),
            wheel_hwm: self.wheel_hwm.max(earlier.wheel_hwm),
            far_hwm: self.far_hwm.max(earlier.far_hwm),
            ring_hwm: self.ring_hwm.max(earlier.ring_hwm),
            random_loss_drops: self
                .random_loss_drops
                .saturating_sub(earlier.random_loss_drops),
        }
    }

    /// Fold another reading into this one: counts sum, high-water marks take
    /// the max. This is the cross-shard merge — each shard of a fleet is its
    /// own `Sim` with its own counters, and the fleet total is the sum of
    /// per-shard counts with fleet-wide peaks.
    pub fn absorb(&mut self, other: &EngineTelemetry) {
        self.events_processed += other.events_processed;
        self.transits += other.transits;
        self.stale_timer_pops += other.stale_timer_pops;
        self.deferred_timer_pushes += other.deferred_timer_pushes;
        self.wheel_hwm = self.wheel_hwm.max(other.wheel_hwm);
        self.far_hwm = self.far_hwm.max(other.far_hwm);
        self.ring_hwm = self.ring_hwm.max(other.ring_hwm);
        self.random_loss_drops += other.random_loss_drops;
    }
}

impl From<&SimCounters> for EngineTelemetry {
    /// Lift one simulation's counters into the telemetry shape, so per-shard
    /// readings can be [`EngineTelemetry::absorb`]ed and `delta`ed with the
    /// same arithmetic as the process-wide totals.
    fn from(c: &SimCounters) -> Self {
        EngineTelemetry {
            events_processed: c.events_processed,
            transits: c.transits,
            stale_timer_pops: c.stale_timer_pops,
            deferred_timer_pushes: c.deferred_timer_pushes,
            wheel_hwm: c.wheel_hwm,
            far_hwm: c.far_hwm,
            ring_hwm: c.ring_hwm,
            random_loss_drops: c.random_loss_drops,
        }
    }
}

/// Fold one simulation's counters into the process-wide totals. Called from
/// `Sim`'s `Drop`.
pub(crate) fn merge(c: &SimCounters) {
    EVENTS_PROCESSED.fetch_add(c.events_processed, Ordering::Relaxed);
    TRANSITS.fetch_add(c.transits, Ordering::Relaxed);
    STALE_TIMER_POPS.fetch_add(c.stale_timer_pops, Ordering::Relaxed);
    DEFERRED_TIMER_PUSHES.fetch_add(c.deferred_timer_pushes, Ordering::Relaxed);
    WHEEL_HWM.fetch_max(c.wheel_hwm, Ordering::Relaxed);
    FAR_HWM.fetch_max(c.far_hwm, Ordering::Relaxed);
    RING_HWM.fetch_max(c.ring_hwm, Ordering::Relaxed);
    RANDOM_LOSS_DROPS.fetch_add(c.random_loss_drops, Ordering::Relaxed);
}

/// Read the current process-wide totals. Subtract two snapshots to attribute
/// events to a phase of a run.
pub fn snapshot() -> EngineTelemetry {
    EngineTelemetry {
        events_processed: EVENTS_PROCESSED.load(Ordering::Relaxed),
        transits: TRANSITS.load(Ordering::Relaxed),
        stale_timer_pops: STALE_TIMER_POPS.load(Ordering::Relaxed),
        deferred_timer_pushes: DEFERRED_TIMER_PUSHES.load(Ordering::Relaxed),
        wheel_hwm: WHEEL_HWM.load(Ordering::Relaxed),
        far_hwm: FAR_HWM.load(Ordering::Relaxed),
        ring_hwm: RING_HWM.load(Ordering::Relaxed),
        random_loss_drops: RANDOM_LOSS_DROPS.load(Ordering::Relaxed),
    }
}

/// Per-event-kind hot-path profiler (the `profile` cargo feature).
///
/// Each dispatched event is timed with the cheapest monotonic counter the
/// target offers (TSC on x86_64, `Instant` nanoseconds elsewhere) and binned
/// by [`crate::sim::SimCounters`]-level event kind. Timing wall-clock inside
/// the hot loop costs real cycles — a profiled build is for *attribution*
/// (where do the cycles go), never for absolute events/sec numbers; keep the
/// feature off for baselines.
#[cfg(feature = "profile")]
pub mod profile {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Number of profiled event kinds.
    pub const KIND_COUNT: usize = 4;

    /// Kind names, indexed by the bin order used by the engine: link
    /// delivery, sender timer, sink timer, app timer.
    pub const KIND_NAMES: [&str; KIND_COUNT] =
        ["link_deliver", "sender_timer", "sink_timer", "app_timer"];

    static COUNTS: [AtomicU64; KIND_COUNT] = [const { AtomicU64::new(0) }; KIND_COUNT];
    static TICKS: [AtomicU64; KIND_COUNT] = [const { AtomicU64::new(0) }; KIND_COUNT];

    /// One simulation's profile accumulator (plain integers — merged into
    /// the process-wide atomics when the `Sim` drops).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct SimProfile {
        /// Dispatches per kind.
        pub counts: [u64; KIND_COUNT],
        /// Ticks (TSC cycles or ns) per kind.
        pub ticks: [u64; KIND_COUNT],
    }

    impl SimProfile {
        /// Record one dispatch of kind `kind` costing `ticks`.
        #[inline]
        pub fn record(&mut self, kind: usize, ticks: u64) {
            self.counts[kind] += 1;
            self.ticks[kind] += ticks;
        }
    }

    /// A reading of the process-wide per-kind totals.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct ProfileTelemetry {
        /// Dispatches per kind (same order as [`KIND_NAMES`]).
        pub counts: [u64; KIND_COUNT],
        /// Ticks per kind.
        pub ticks: [u64; KIND_COUNT],
    }

    impl ProfileTelemetry {
        /// Counts/ticks attributable to the phase between `earlier` and
        /// `self` (both monotone, so plain subtraction).
        pub fn delta(&self, earlier: &ProfileTelemetry) -> ProfileTelemetry {
            let mut out = ProfileTelemetry::default();
            for k in 0..KIND_COUNT {
                out.counts[k] = self.counts[k].saturating_sub(earlier.counts[k]);
                out.ticks[k] = self.ticks[k].saturating_sub(earlier.ticks[k]);
            }
            out
        }
    }

    /// The cheapest monotonic timestamp available: TSC cycles on x86_64,
    /// `Instant`-derived nanoseconds elsewhere.
    #[inline]
    pub fn timestamp() -> u64 {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            core::arch::x86_64::_rdtsc()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            use std::sync::OnceLock;
            use std::time::Instant;
            static EPOCH: OnceLock<Instant> = OnceLock::new();
            EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
        }
    }

    /// Fold one simulation's profile into the process totals.
    pub(crate) fn merge(p: &SimProfile) {
        for k in 0..KIND_COUNT {
            COUNTS[k].fetch_add(p.counts[k], Ordering::Relaxed);
            TICKS[k].fetch_add(p.ticks[k], Ordering::Relaxed);
        }
    }

    /// Read the process-wide per-kind totals.
    pub fn snapshot() -> ProfileTelemetry {
        let mut out = ProfileTelemetry::default();
        for k in 0..KIND_COUNT {
            out.counts[k] = COUNTS[k].load(Ordering::Relaxed);
            out.ticks[k] = TICKS[k].load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counts_and_maxes_hwms() {
        let before = EngineTelemetry {
            events_processed: 1_000,
            transits: 700,
            stale_timer_pops: 10,
            deferred_timer_pushes: 20,
            wheel_hwm: 64,
            far_hwm: 8,
            ring_hwm: 100,
            random_loss_drops: 3,
        };
        let after = EngineTelemetry {
            events_processed: 1_500,
            transits: 1_100,
            stale_timer_pops: 12,
            deferred_timer_pushes: 29,
            wheel_hwm: 80,
            far_hwm: 8,
            ring_hwm: 90, // relaxed loads may read the two maxima out of
            // order; the delta must still report a peak, never subtract
            random_loss_drops: 3,
        };
        let d = after.delta(&before);
        assert_eq!(d.events_processed, 500);
        assert_eq!(d.transits, 400);
        assert_eq!(d.stale_timer_pops, 2);
        assert_eq!(d.deferred_timer_pushes, 9);
        assert_eq!(d.random_loss_drops, 0);
        assert_eq!(d.wheel_hwm, 80, "HWMs take the max, not the difference");
        assert_eq!(d.far_hwm, 8);
        assert_eq!(d.ring_hwm, 100);
    }

    #[test]
    fn absorb_sums_counts_and_maxes_hwms() {
        let mut total = EngineTelemetry::default();
        let a = EngineTelemetry {
            events_processed: 100,
            transits: 60,
            stale_timer_pops: 3,
            deferred_timer_pushes: 5,
            wheel_hwm: 40,
            far_hwm: 2,
            ring_hwm: 10,
            random_loss_drops: 1,
        };
        let b = EngineTelemetry {
            events_processed: 50,
            transits: 30,
            stale_timer_pops: 1,
            deferred_timer_pushes: 2,
            wheel_hwm: 25,
            far_hwm: 9,
            ring_hwm: 30,
            random_loss_drops: 0,
        };
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.events_processed, 150);
        assert_eq!(total.transits, 90);
        assert_eq!(total.stale_timer_pops, 4);
        assert_eq!(total.deferred_timer_pushes, 7);
        assert_eq!(total.random_loss_drops, 1);
        assert_eq!(total.wheel_hwm, 40, "peaks take the max across shards");
        assert_eq!(total.far_hwm, 9);
        assert_eq!(total.ring_hwm, 30);
    }

    #[test]
    fn sim_counters_lift_preserves_every_field() {
        let c = SimCounters {
            events_processed: 7,
            transits: 8,
            stale_timer_pops: 1,
            deferred_timer_pushes: 2,
            wheel_hwm: 3,
            far_hwm: 4,
            ring_hwm: 5,
            random_loss_drops: 6,
        };
        let t = EngineTelemetry::from(&c);
        assert_eq!(t.events_processed, 7);
        assert_eq!(t.transits, 8);
        assert_eq!(t.stale_timer_pops, 1);
        assert_eq!(t.deferred_timer_pushes, 2);
        assert_eq!(t.wheel_hwm, 3);
        assert_eq!(t.far_hwm, 4);
        assert_eq!(t.ring_hwm, 5);
        assert_eq!(t.random_loss_drops, 6);
    }

    #[test]
    fn delta_against_self_zeroes_counts_keeps_peaks() {
        let t = EngineTelemetry {
            events_processed: 7,
            wheel_hwm: 5,
            ..EngineTelemetry::default()
        };
        let d = t.delta(&t);
        assert_eq!(d.events_processed, 0);
        assert_eq!(d.wheel_hwm, 5);
    }
}
