//! Process-wide engine telemetry.
//!
//! Experiment harnesses (the `dmp-runner` crate) run many simulations on a
//! worker pool and want aggregate engine health numbers in their volatile
//! `.meta.json` sidecars without threading a handle into every job closure.
//! Each [`crate::sim::Sim`] merges its counters into these atomics when it is
//! dropped; [`snapshot`] reads the totals. Counts accumulate (`fetch_add`),
//! high-water marks take the max across simulations (`fetch_max`).
//!
//! Telemetry is deliberately *not* part of any deterministic artifact: it
//! varies with thread interleaving and machine speed, which is exactly why it
//! lives here and not in simulation results.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::sim::SimCounters;

static EVENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);
static STALE_TIMER_POPS: AtomicU64 = AtomicU64::new(0);
static DEFERRED_TIMER_PUSHES: AtomicU64 = AtomicU64::new(0);
static WHEEL_HWM: AtomicU64 = AtomicU64::new(0);
static FAR_HWM: AtomicU64 = AtomicU64::new(0);
static SLAB_HWM: AtomicU64 = AtomicU64::new(0);
static RANDOM_LOSS_DROPS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the process-wide engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Total events dispatched across all simulations.
    pub events_processed: u64,
    /// Timer events popped after their endpoint cancelled or superseded them.
    pub stale_timer_pops: u64,
    /// Timer events re-queued because the deadline moved later (lazy
    /// deferral instead of one event per timer restart).
    pub deferred_timer_pushes: u64,
    /// Peak near-wheel occupancy of any single simulation.
    pub wheel_hwm: u64,
    /// Peak far-heap occupancy of any single simulation.
    pub far_hwm: u64,
    /// Peak packet-slab occupancy of any single simulation.
    pub slab_hwm: u64,
    /// Packets dropped by per-link Bernoulli random loss (fault injection)
    /// across all simulations.
    pub random_loss_drops: u64,
}

impl EngineTelemetry {
    /// Attribute engine activity to a phase bounded by two snapshots:
    /// monotone counts subtract (`self` is the later reading), high-water
    /// marks take the max — a HWM is a peak, not a rate, so "the HWM during
    /// this phase" is the larger of the two readings, never a difference.
    pub fn delta(&self, earlier: &EngineTelemetry) -> EngineTelemetry {
        EngineTelemetry {
            events_processed: self
                .events_processed
                .saturating_sub(earlier.events_processed),
            stale_timer_pops: self
                .stale_timer_pops
                .saturating_sub(earlier.stale_timer_pops),
            deferred_timer_pushes: self
                .deferred_timer_pushes
                .saturating_sub(earlier.deferred_timer_pushes),
            wheel_hwm: self.wheel_hwm.max(earlier.wheel_hwm),
            far_hwm: self.far_hwm.max(earlier.far_hwm),
            slab_hwm: self.slab_hwm.max(earlier.slab_hwm),
            random_loss_drops: self
                .random_loss_drops
                .saturating_sub(earlier.random_loss_drops),
        }
    }

    /// Fold another reading into this one: counts sum, high-water marks take
    /// the max. This is the cross-shard merge — each shard of a fleet is its
    /// own `Sim` with its own counters, and the fleet total is the sum of
    /// per-shard counts with fleet-wide peaks.
    pub fn absorb(&mut self, other: &EngineTelemetry) {
        self.events_processed += other.events_processed;
        self.stale_timer_pops += other.stale_timer_pops;
        self.deferred_timer_pushes += other.deferred_timer_pushes;
        self.wheel_hwm = self.wheel_hwm.max(other.wheel_hwm);
        self.far_hwm = self.far_hwm.max(other.far_hwm);
        self.slab_hwm = self.slab_hwm.max(other.slab_hwm);
        self.random_loss_drops += other.random_loss_drops;
    }
}

impl From<&SimCounters> for EngineTelemetry {
    /// Lift one simulation's counters into the telemetry shape, so per-shard
    /// readings can be [`EngineTelemetry::absorb`]ed and `delta`ed with the
    /// same arithmetic as the process-wide totals.
    fn from(c: &SimCounters) -> Self {
        EngineTelemetry {
            events_processed: c.events_processed,
            stale_timer_pops: c.stale_timer_pops,
            deferred_timer_pushes: c.deferred_timer_pushes,
            wheel_hwm: c.wheel_hwm,
            far_hwm: c.far_hwm,
            slab_hwm: c.slab_hwm,
            random_loss_drops: c.random_loss_drops,
        }
    }
}

/// Fold one simulation's counters into the process-wide totals. Called from
/// `Sim`'s `Drop`.
pub(crate) fn merge(c: &SimCounters) {
    EVENTS_PROCESSED.fetch_add(c.events_processed, Ordering::Relaxed);
    STALE_TIMER_POPS.fetch_add(c.stale_timer_pops, Ordering::Relaxed);
    DEFERRED_TIMER_PUSHES.fetch_add(c.deferred_timer_pushes, Ordering::Relaxed);
    WHEEL_HWM.fetch_max(c.wheel_hwm, Ordering::Relaxed);
    FAR_HWM.fetch_max(c.far_hwm, Ordering::Relaxed);
    SLAB_HWM.fetch_max(c.slab_hwm, Ordering::Relaxed);
    RANDOM_LOSS_DROPS.fetch_add(c.random_loss_drops, Ordering::Relaxed);
}

/// Read the current process-wide totals. Subtract two snapshots to attribute
/// events to a phase of a run.
pub fn snapshot() -> EngineTelemetry {
    EngineTelemetry {
        events_processed: EVENTS_PROCESSED.load(Ordering::Relaxed),
        stale_timer_pops: STALE_TIMER_POPS.load(Ordering::Relaxed),
        deferred_timer_pushes: DEFERRED_TIMER_PUSHES.load(Ordering::Relaxed),
        wheel_hwm: WHEEL_HWM.load(Ordering::Relaxed),
        far_hwm: FAR_HWM.load(Ordering::Relaxed),
        slab_hwm: SLAB_HWM.load(Ordering::Relaxed),
        random_loss_drops: RANDOM_LOSS_DROPS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counts_and_maxes_hwms() {
        let before = EngineTelemetry {
            events_processed: 1_000,
            stale_timer_pops: 10,
            deferred_timer_pushes: 20,
            wheel_hwm: 64,
            far_hwm: 8,
            slab_hwm: 100,
            random_loss_drops: 3,
        };
        let after = EngineTelemetry {
            events_processed: 1_500,
            stale_timer_pops: 12,
            deferred_timer_pushes: 29,
            wheel_hwm: 80,
            far_hwm: 8,
            slab_hwm: 90, // relaxed loads may read the two maxima out of
            // order; the delta must still report a peak, never subtract
            random_loss_drops: 3,
        };
        let d = after.delta(&before);
        assert_eq!(d.events_processed, 500);
        assert_eq!(d.stale_timer_pops, 2);
        assert_eq!(d.deferred_timer_pushes, 9);
        assert_eq!(d.random_loss_drops, 0);
        assert_eq!(d.wheel_hwm, 80, "HWMs take the max, not the difference");
        assert_eq!(d.far_hwm, 8);
        assert_eq!(d.slab_hwm, 100);
    }

    #[test]
    fn absorb_sums_counts_and_maxes_hwms() {
        let mut total = EngineTelemetry::default();
        let a = EngineTelemetry {
            events_processed: 100,
            stale_timer_pops: 3,
            deferred_timer_pushes: 5,
            wheel_hwm: 40,
            far_hwm: 2,
            slab_hwm: 10,
            random_loss_drops: 1,
        };
        let b = EngineTelemetry {
            events_processed: 50,
            stale_timer_pops: 1,
            deferred_timer_pushes: 2,
            wheel_hwm: 25,
            far_hwm: 9,
            slab_hwm: 30,
            random_loss_drops: 0,
        };
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.events_processed, 150);
        assert_eq!(total.stale_timer_pops, 4);
        assert_eq!(total.deferred_timer_pushes, 7);
        assert_eq!(total.random_loss_drops, 1);
        assert_eq!(total.wheel_hwm, 40, "peaks take the max across shards");
        assert_eq!(total.far_hwm, 9);
        assert_eq!(total.slab_hwm, 30);
    }

    #[test]
    fn sim_counters_lift_preserves_every_field() {
        let c = SimCounters {
            events_processed: 7,
            stale_timer_pops: 1,
            deferred_timer_pushes: 2,
            wheel_hwm: 3,
            far_hwm: 4,
            slab_hwm: 5,
            random_loss_drops: 6,
        };
        let t = EngineTelemetry::from(&c);
        assert_eq!(t.events_processed, 7);
        assert_eq!(t.stale_timer_pops, 1);
        assert_eq!(t.deferred_timer_pushes, 2);
        assert_eq!(t.wheel_hwm, 3);
        assert_eq!(t.far_hwm, 4);
        assert_eq!(t.slab_hwm, 5);
        assert_eq!(t.random_loss_drops, 6);
    }

    #[test]
    fn delta_against_self_zeroes_counts_keeps_peaks() {
        let t = EngineTelemetry {
            events_processed: 7,
            wheel_hwm: 5,
            ..EngineTelemetry::default()
        };
        let d = t.delta(&t);
        assert_eq!(d.events_processed, 0);
        assert_eq!(d.wheel_hwm, 5);
    }
}
