//! End-to-end integration tests of the simulator: multi-hop forwarding,
//! queue disciplines, ACK-path impairments, timer behaviour.

use netsim::app::App;
use netsim::link::LinkSpec;
use netsim::red::RedParams;
use netsim::sim::{Sim, SimApi};
use netsim::tcp::{SinkConfig, TcpConfig};
use netsim::{secs, SECOND};

struct Starter(u32);
impl App for Starter {
    fn start(&mut self, api: &mut SimApi<'_>) {
        api.set_backlogged(self.0, None);
    }
}

/// Line topology: a — r1 — r2 — r3 — b with per-hop delays; the measured RTT
/// must equal the sum of the forward and reverse path delays (plus
/// serialisation).
#[test]
fn multi_hop_rtt_adds_up() {
    let mut sim = Sim::new(1);
    let nodes: Vec<_> = ["a", "r1", "r2", "r3", "b"]
        .iter()
        .map(|l| sim.add_node(*l))
        .collect();
    let delays_ms = [5.0, 10.0, 15.0, 20.0]; // per hop
    let mut fwd_links = Vec::new();
    let mut rev_links = Vec::new();
    for (i, d) in delays_ms.iter().enumerate() {
        let (f, r) = sim.add_duplex(nodes[i], nodes[i + 1], LinkSpec::from_table(50.0, *d, 500));
        fwd_links.push(f);
        rev_links.push(r);
    }
    let (a, b) = (nodes[0], nodes[4]);
    for i in 0..4 {
        sim.add_route(nodes[i], b, fwd_links[i]);
        sim.add_route(nodes[i + 1], a, rev_links[i]);
    }
    let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
    sim.add_app(Box::new(Starter(flow)));
    sim.run_until(20 * SECOND);
    let rtt = sim.sender(flow).rtt.mean_rtt_secs().expect("samples");
    let prop = 2.0 * delays_ms.iter().sum::<f64>() / 1e3; // 0.1 s
    assert!(
        rtt > prop && rtt < prop + 0.05,
        "rtt {rtt} vs propagation {prop}"
    );
    assert!(sim.sink(flow).stats.delivered > 1_000);
}

/// RED keeps the standing queue below drop-tail's under identical offered
/// load (that is its purpose), at the cost of early drops.
#[test]
fn red_trims_the_standing_queue() {
    let run = |red: bool| {
        let mut sim = Sim::new(3);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let mut spec = LinkSpec::from_table(3.0, 10.0, 50);
        if red {
            spec = spec.with_red(RedParams::for_buffer(50));
        }
        let fwd = sim.add_link(a, b, spec);
        let rev = sim.add_link(b, a, LinkSpec::from_table(3.0, 10.0, 50));
        sim.add_route(a, b, fwd);
        sim.add_route(b, a, rev);
        for _ in 0..4 {
            let f = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
            sim.add_app(Box::new(Starter(f)));
        }
        sim.run_until(120 * SECOND);
        let link = sim.link(fwd);
        (
            link.stats.mean_queue(),
            link.stats.dropped,
            link.utilization(120 * SECOND),
        )
    };
    let (q_dt, drops_dt, util_dt) = run(false);
    let (q_red, drops_red, util_red) = run(true);
    assert!(q_dt > 25.0, "drop-tail queue should sit deep: {q_dt}");
    assert!(
        q_red < 0.75 * q_dt,
        "RED mean queue {q_red} should sit well below drop-tail {q_dt}"
    );
    assert!(drops_red > 0 && drops_dt > 0);
    // Both should still keep the link busy.
    assert!(
        util_dt > 0.9 && util_red > 0.7,
        "util {util_dt} / {util_red}"
    );
}

/// Heavy ACK loss on the reverse path: cumulative ACKs make TCP robust to
/// it — the transfer keeps progressing (delayed but not stuck).
#[test]
fn tcp_survives_ack_loss() {
    let mut sim = Sim::new(5);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let fwd = sim.add_link(a, b, LinkSpec::from_table(5.0, 10.0, 100));
    // 20% of ACKs vanish.
    let rev = sim.add_link(
        b,
        a,
        LinkSpec::from_table(5.0, 10.0, 100).with_random_loss(0.2),
    );
    sim.add_route(a, b, fwd);
    sim.add_route(b, a, rev);
    let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
    sim.add_app(Box::new(Starter(flow)));
    sim.run_until(60 * SECOND);
    let delivered = sim.sink(flow).stats.delivered;
    assert!(delivered > 5_000, "delivered {delivered} under ACK loss");
    assert!(sim.flow_counters(flow).acks_dropped > 100);
    // No data was lost on the clean forward path.
    assert_eq!(sim.flow_counters(flow).data_dropped, 0);
}

/// A lone segment is acknowledged via the delayed-ACK timer (~100 ms), not
/// instantly and not never.
#[test]
fn delayed_ack_timer_acks_a_lone_segment() {
    let mut sim = Sim::new(7);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let (fwd, rev) = sim.add_duplex(a, b, LinkSpec::from_table(10.0, 5.0, 100));
    sim.add_route(a, b, fwd);
    sim.add_route(b, a, rev);
    let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());

    struct OneChunk(u32);
    impl App for OneChunk {
        fn start(&mut self, api: &mut SimApi<'_>) {
            api.own_flow(self.0);
            api.push_chunk(self.0, netsim::AppChunk::synthetic(0, 0));
        }
    }
    sim.add_app(Box::new(OneChunk(flow)));
    // Before the delack timeout (+ propagation): unacked.
    sim.run_until(secs(0.05));
    assert_eq!(sim.sender(flow).acked(), 0);
    // After ~100 ms + RTT: acked via the timer.
    sim.run_until(secs(0.25));
    assert_eq!(sim.sender(flow).acked(), 1);
}

/// Determinism across the full stack: identical seeds produce identical
/// event counts, byte counts, and loss counters; different seeds do not.
#[test]
fn whole_sim_determinism() {
    let run = |seed: u64| {
        let mut sim = Sim::new(seed);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let fwd = sim.add_link(
            a,
            b,
            LinkSpec::from_table(2.0, 20.0, 20).with_random_loss(0.01),
        );
        let rev = sim.add_link(b, a, LinkSpec::from_table(2.0, 20.0, 20));
        sim.add_route(a, b, fwd);
        sim.add_route(b, a, rev);
        let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
        sim.add_app(Box::new(Starter(flow)));
        sim.run_until(30 * SECOND);
        (
            sim.events_processed(),
            sim.sink(flow).stats.delivered,
            sim.flow_counters(flow).data_dropped,
        )
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}
