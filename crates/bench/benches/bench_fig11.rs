//! Fig. 11 reproduction (quick scale) + single-path model benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;
use dmp_core::spec::PathSpec;
use tcp_model::static_streaming_late_fraction;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    println!("{}", dmp_bench::static_cmp::fig11(&runner, &scale).text);
    let paths = vec![PathSpec::from_ms(0.02, 200.0, 4.0); 2];
    c.bench_function("fig11/static_scheme_100k_consumptions", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(static_streaming_late_fraction(&paths, 30.0, 8.0, 100_000, seed).f)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
