//! Table 1 reproduction + a benchmark of the report renderer.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    // Print the reproduced table into the bench log.
    println!("{}", dmp_bench::tables::table1(&runner, &scale).text);
    c.bench_function("table1/render", |b| {
        b.iter(|| std::hint::black_box(dmp_bench::tables::table1(&runner, &scale).text))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
