//! Table 1 reproduction + a benchmark of the report renderer.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Print the reproduced table into the bench log.
    println!("{}", dmp_bench::tables::table1());
    c.bench_function("table1/render", |b| {
        b.iter(|| std::hint::black_box(dmp_bench::tables::table1()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
