//! Table 2 reproduction (quick scale) + a benchmark of one simulated run.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;
use dmp_core::spec::SchedulerKind;
use dmp_sim::{run, setting, ExperimentSpec};

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    println!("{}", dmp_bench::tables::table2(&runner, &scale).text);
    c.bench_function("table2/simulate_60s_setting_2-2", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut spec =
                ExperimentSpec::new(*setting("2-2").unwrap(), SchedulerKind::Dynamic, 60.0, seed);
            spec.warmup_s = 5.0;
            std::hint::black_box(run(&spec).trace.delivered())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
