//! Section 7.3 fluid example reproduction + fluid-integrator benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;
use tcp_model::fluid::section_7_3_comparison;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    println!("{}", dmp_bench::fluid_fig::fig_fluid(&runner, &scale).text);
    c.bench_function("fig_fluid/comparison_200_periods", |b| {
        b.iter(|| std::hint::black_box(section_7_3_comparison(50.0, 30.0, 10.0, 3.0, true)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
