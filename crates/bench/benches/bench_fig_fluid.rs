//! Section 7.3 fluid example reproduction + fluid-integrator benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use tcp_model::fluid::section_7_3_comparison;

fn bench(c: &mut Criterion) {
    println!("{}", dmp_bench::fluid_fig::fig_fluid());
    c.bench_function("fig_fluid/comparison_200_periods", |b| {
        b.iter(|| std::hint::black_box(section_7_3_comparison(50.0, 30.0, 10.0, 3.0, true)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
