//! Fig. 7 reproduction (quick scale; wall-clock bound) + framing benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;
use dmp_live::wire::{decode, encode, Frame};

fn bench(c: &mut Criterion) {
    let mut scale = Scale::quick();
    scale.live_packets = 200; // keep the wall-clock time of the bench log small
    scale.live_experiments = 2;
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    println!("{}", dmp_bench::live_fig::fig7(&runner, &scale).text);
    c.bench_function("fig7/frame_encode_decode_1448B", |b| {
        let mut buf = bytes::BytesMut::with_capacity(4096);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            buf.clear();
            encode(
                &Frame {
                    seq,
                    gen_ns: seq * 1000,
                },
                1448,
                &mut buf,
            );
            std::hint::black_box(decode(&mut buf).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
