//! Fig. 8 reproduction (quick scale) + SSA throughput benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;
use dmp_core::spec::PathSpec;
use tcp_model::DmpModel;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    println!("{}", dmp_bench::params::fig8(&runner, &scale).text);
    let model = DmpModel::new(vec![PathSpec::from_ms(0.02, 200.0, 4.0); 2], 25.0, 8.0);
    c.bench_function("fig8/ssa_100k_consumptions", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(model.late_fraction(100_000, seed).f)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
