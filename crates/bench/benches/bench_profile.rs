//! Hot-path cost profile and zero-allocation gate for the netsim event loop.
//!
//! Runs the paper's Setting 2-2 multipath video experiment (the workload
//! `repro_all` spends its time in) split into build → warm-up → steady-state
//! phases via `dmp_sim::experiment::build`, with a counting global allocator
//! watching the steady-state phase. The engine's claim is that after arenas
//! and rings reach their peak sizes, dispatching events allocates nothing;
//! this binary is the proof.
//!
//! Modes (args after `--` reach this binary):
//!
//! * default — a 120 s-video run: steady-state allocation report,
//!   events/sec and transits/sec, and (when compiled with
//!   `--features profile`) the per-event-kind dispatch-count / cycle-share
//!   breakdown from `netsim::telemetry::profile`.
//! * `--quick-smoke` — a short run asserting **zero** steady-state heap
//!   allocations (exit 1 otherwise); the CI gate. With the `profile`
//!   feature it also checks every dispatched event landed in a profiler
//!   bin.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dmp_core::spec::SchedulerKind;
use dmp_sim::experiment::ExperimentSpec;

/// System allocator wrapped with relaxed counters. `alloc` and `realloc`
/// both count as allocations — a `Vec` growing in place is exactly the kind
/// of steady-state heap traffic the gate exists to catch.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// When the gate regresses, run with `ALLOC_TRACE=1` (and `RUST_BACKTRACE=1`)
/// to print a backtrace for every steady-state allocation. Armed only for the
/// measured phase; the counters keep ticking while it prints (capturing a
/// backtrace allocates), so the reported totals are meaningless in this mode —
/// it exists to name the allocation sites, not to measure.
static DEBUG_TRACE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
thread_local! { static IN_HOOK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) }; }

fn debug_backtrace(what: &str, bytes: usize) {
    if !DEBUG_TRACE.load(Ordering::Relaxed) {
        return;
    }
    // Re-entrancy guard: capturing the backtrace allocates, which would
    // otherwise recurse straight back into this hook.
    IN_HOOK.with(|f| {
        if !f.get() {
            f.set(true);
            let bt = std::backtrace::Backtrace::force_capture();
            eprintln!("{what} {bytes} bytes\n{bt}\n----");
            f.set(false);
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        debug_backtrace("ALLOC", layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        debug_backtrace("REALLOC to", new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// What one phased run measured.
struct GateRun {
    /// Heap allocations during the steady-state phase.
    steady_allocs: u64,
    /// Bytes requested by those allocations.
    steady_bytes: u64,
    /// Events dispatched during the steady-state phase.
    steady_events: u64,
    /// Packet transits delivered during the steady-state phase.
    steady_transits: u64,
    /// Wall-clock seconds of the steady-state phase.
    steady_wall_s: f64,
    /// Events dispatched over the whole run.
    total_events: u64,
}

/// Build the experiment, run the first half of the video as warm-up (arena
/// and ring growth allowed), then measure the second half under the
/// allocation counters. Splitting `run_until` is behaviour-neutral: the
/// event sequence is identical to one uninterrupted run.
fn phased_run(video_s: f64) -> GateRun {
    let setting = *dmp_sim::configs::setting("2-2").expect("setting 2-2 exists");
    let mut spec = ExperimentSpec::new(setting, SchedulerKind::Dynamic, video_s, 2007);
    spec.warmup_s = 10.0;
    let mut built = dmp_sim::experiment::build(&spec);
    let end = built.end();
    let warm_until = netsim::secs(spec.warmup_s) + netsim::secs(video_s / 2.0);
    built.advance_to(warm_until);

    let events_before = built.events_processed();
    let transits_before = built.transits();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let bytes_before = ALLOC_BYTES.load(Ordering::Relaxed);
    if std::env::var_os("ALLOC_TRACE").is_some() {
        DEBUG_TRACE.store(true, Ordering::Relaxed);
    }
    let t0 = Instant::now();
    built.advance_to(end);
    let steady_wall_s = t0.elapsed().as_secs_f64();
    DEBUG_TRACE.store(false, Ordering::Relaxed);
    let steady_allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let steady_bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes_before;
    let steady_events = built.events_processed() - events_before;
    let steady_transits = built.transits() - transits_before;
    let total_events = built.events_processed();

    let out = built.finish();
    assert!(out.trace.delivered() > 0, "run delivered nothing");
    GateRun {
        steady_allocs,
        steady_bytes,
        steady_events,
        steady_transits,
        steady_wall_s,
        total_events,
    }
}

fn report(run: &GateRun) {
    println!(
        "steady state: {} events, {} transits in {:.2} s ({:.0} events/s, {:.0} transits/s)",
        run.steady_events,
        run.steady_transits,
        run.steady_wall_s,
        run.steady_events as f64 / run.steady_wall_s.max(1e-9),
        run.steady_transits as f64 / run.steady_wall_s.max(1e-9),
    );
    println!(
        "steady-state heap allocations: {} ({} bytes)",
        run.steady_allocs, run.steady_bytes
    );
}

#[cfg(feature = "profile")]
fn profile_breakdown(total_events: u64) {
    use netsim::telemetry::profile;
    let snap = profile::snapshot();
    let total_ticks: u64 = snap.ticks.iter().sum();
    let binned: u64 = snap.counts.iter().sum();
    println!("\nper-event-kind cost profile (cumulative, this process):");
    println!(
        "{:<14} {:>12} {:>16} {:>8}",
        "kind", "count", "ticks", "share"
    );
    for (i, &name) in profile::KIND_NAMES.iter().enumerate() {
        let share = if total_ticks > 0 {
            snap.ticks[i] as f64 / total_ticks as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{:<14} {:>12} {:>16} {:>7.1}%",
            name, snap.counts[i], snap.ticks[i], share
        );
    }
    assert_eq!(
        binned, total_events,
        "every dispatched event must land in exactly one profiler bin"
    );
    println!("profiler bins account for all {binned} dispatched events");
}

#[cfg(not(feature = "profile"))]
fn profile_breakdown(_total_events: u64) {
    println!("(compile with --features profile for the per-event-kind breakdown)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick-smoke");
    // Criterion-style harness flags (--bench, --quiet, ...) may be passed by
    // cargo; this binary only distinguishes quick-smoke from the full run.
    let video_s = if quick { 60.0 } else { 240.0 };
    let run = phased_run(video_s);
    report(&run);
    profile_breakdown(run.total_events);
    if run.steady_allocs > 0 {
        eprintln!(
            "zero-alloc gate FAILED: {} heap allocations ({} bytes) in the steady-state \
             event loop",
            run.steady_allocs, run.steady_bytes
        );
        std::process::exit(1);
    }
    println!("zero-alloc gate OK: steady-state event loop never touched the heap");
}
