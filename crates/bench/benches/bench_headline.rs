//! Headline (1.6× vs 2×) reproduction + TCP-chain step-rate benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;
use dmp_core::spec::PathSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tcp_model::TcpChain;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    println!("{}", dmp_bench::params::headline(&runner, &scale).text);
    c.bench_function("headline/chain_10k_rounds", |b| {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut chain = TcpChain::new(PathSpec::from_ms(0.02, 150.0, 4.0), 64);
        b.iter(|| {
            let mut delivered = 0u64;
            for _ in 0..10_000 {
                delivered += u64::from(chain.step(&mut rng).delivered);
            }
            std::hint::black_box(delivered)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
