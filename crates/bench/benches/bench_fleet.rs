//! Fleet throughput benchmark: aggregate simulated events/sec across a
//! sharded fleet of churning DMP sessions, plus the thread-scaling
//! measurement the fleet layer exists for — shards fan across the runner's
//! work-stealing pool, so events/sec should grow with cores while the
//! artifact stays byte-identical.
//!
//! Modes (args after `--` reach this binary):
//!
//! * default (`cargo bench --bench bench_fleet`) — criterion-style timing of
//!   the canonical fleet on both engines.
//! * `--quick-smoke` — tiny fleet asserting (a) both engines agree on every
//!   artifact byte outside the `config` line and (b) 1-thread and 8-thread
//!   runs produce byte-identical artifacts (CI gate; seconds).
//! * `--baseline <BENCH_fleet.json>` (combinable with `--quick-smoke`) —
//!   re-measure aggregate events/sec and fail (exit 1) on a collapse below
//!   half the recorded baseline. Loose on purpose: CI boxes are slower than
//!   the one that wrote the baseline; the gate catches order-of-magnitude
//!   regressions, not percent-level drift.
//! * `--json <path>` — measure events/sec at several fleet sizes and the
//!   1-vs-8-thread scaling ratio, and write the `BENCH_fleet.json`
//!   perf-trajectory artifact. The speedup is reported honestly: on a
//!   single-core machine it is ~1.0 by construction.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use dmp_fleet::{run_fleet, FleetOptions, FleetSpec};
use dmp_runner::{Cache, Json, Runner};
use netsim::EngineKind;
use scenario::FleetTimeline;

/// Fleet sizes measured by `--json` and the default bench:
/// (name, sessions, sessions per shard).
const FLEETS: [(&str, u32, u32); 3] = [("small", 8, 4), ("medium", 16, 4), ("large", 32, 8)];

/// The canonical fleet the baseline gate re-measures.
const GATE_FLEET: (&str, u32, u32) = FLEETS[1];

const ENGINES: [(&str, EngineKind); 2] = [
    ("heap", EngineKind::Heap),
    ("calendar", EngineKind::Calendar),
];

/// A churn fleet with a flash-crowd spike — the `ext_fleet` shape, scaled
/// for benching.
fn spec(sessions: u32, shard_sessions: u32, duration_s: f64, engine: EngineKind) -> FleetSpec {
    let mut spec = FleetSpec::new("bench", sessions, shard_sessions, 2007);
    spec.duration_s = duration_s;
    spec.warmup_s = 2.0;
    spec.arrival_rate_per_s = shard_sessions as f64 / duration_s * 1.8;
    spec.mean_hold_s = duration_s * 0.4;
    spec.timeline = FleetTimeline::named("flash").spike(0.3 * duration_s, 4.0, 0.25 * duration_s);
    spec.engine = engine;
    spec
}

/// One uncached fleet run: (artifact bytes, total engine events, wall secs).
fn run_once(threads: usize, spec: &FleetSpec) -> (String, u64, f64) {
    let runner = Runner::new(threads, Cache::disabled());
    let t0 = Instant::now();
    let result = run_fleet(&runner, spec, &FleetOptions::default());
    let wall = t0.elapsed().as_secs_f64();
    (result.artifact(spec).render(), result.total_events(), wall)
}

/// Render an artifact with the `config` entry dropped — the engine name is
/// in the config string by design; everything else must match across engines.
fn strip_config(artifact: &str) -> String {
    let doc = dmp_runner::json::parse(artifact).expect("fleet artifact parses");
    let Json::Obj(pairs) = doc else {
        panic!("fleet artifact is an object");
    };
    Json::Obj(pairs.into_iter().filter(|(k, _)| k != "config").collect()).render()
}

/// `--quick-smoke`: engine agreement and thread determinism, fast.
fn quick_smoke() {
    let cal = spec(6, 3, 15.0, EngineKind::Calendar);
    let heap = spec(6, 3, 15.0, EngineKind::Heap);
    let (cal_art, cal_events, _) = run_once(1, &cal);
    let (heap_art, heap_events, _) = run_once(1, &heap);
    assert_eq!(
        strip_config(&cal_art),
        strip_config(&heap_art),
        "fleet physics diverged between heap and calendar engines"
    );
    println!("smoke engines: agree ({cal_events} vs {heap_events} events)");
    let (threaded_art, _, _) = run_once(8, &cal);
    assert_eq!(
        cal_art, threaded_art,
        "fleet artifact changed between 1 and 8 runner threads"
    );
    println!("smoke threads: 1-thread and 8-thread artifacts byte-identical");
    println!("quick-smoke OK: fleet deterministic across engines and thread counts");
}

/// One timed measurement of a fleet: aggregate simulated events per
/// wall-clock second on `threads` runner threads.
fn measure(sessions: u32, shard_sessions: u32, threads: usize) -> (u64, f64) {
    let s = spec(sessions, shard_sessions, 30.0, EngineKind::Calendar);
    let (_, events, wall) = run_once(threads, &s);
    (events, events as f64 / wall.max(1e-9))
}

/// `--json <path>`: measure the size sweep and the thread-scaling ratio and
/// write the perf-trajectory artifact.
fn write_json(path: &str) {
    // Warm-up pass (page in code and allocator), then timed passes.
    let _ = measure(4, 2, 1);
    let mut fleet_rows = Vec::new();
    for (name, sessions, shard_sessions) in FLEETS {
        let (events, eps) = measure(sessions, shard_sessions, 1);
        println!("fleet/{name}: {sessions} sessions, {events} events, {eps:.0} events/s");
        fleet_rows.push((
            name,
            Json::obj([
                ("sessions", Json::Num(f64::from(sessions))),
                (
                    "shards",
                    Json::Num(f64::from(sessions.div_ceil(shard_sessions))),
                ),
                ("events", Json::Num(events as f64)),
                ("events_per_s", Json::Num(eps.round())),
            ]),
        ));
    }
    let (_, sessions, shard_sessions) = GATE_FLEET;
    let scaling_spec = spec(sessions, shard_sessions, 30.0, EngineKind::Calendar);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (art_1, events_1, wall_1) = run_once(1, &scaling_spec);
    let (art_8, _, wall_8) = run_once(8, &scaling_spec);
    let eps_1 = events_1 as f64 / wall_1.max(1e-9);
    let eps_8 = events_1 as f64 / wall_8.max(1e-9);
    let identical = art_1 == art_8;
    // The determinism half of the claim (byte-identical artifacts) holds on
    // any machine; the speedup half is only a measurement when the box can
    // actually run the 8 workers in parallel. On fewer than 8 cores the
    // ratio is scheduling noise, so it is reported as null rather than as a
    // number a reader might mistake for a scaling result.
    let speedup = if cores >= 8 {
        Some(eps_8 / eps_1.max(1e-9))
    } else {
        None
    };
    match speedup {
        Some(s) => println!(
            "thread scaling: {eps_1:.0} events/s on 1 thread, {eps_8:.0} on 8 \
             ({cores} cores, speedup {s:.2}x), artifacts {}",
            if identical { "identical" } else { "DIVERGED" }
        ),
        None => println!(
            "thread scaling: {cores} core(s) < 8 — speedup not measurable on this \
             machine (recorded as null); artifacts {}",
            if identical { "identical" } else { "DIVERGED" }
        ),
    }
    let json = Json::obj([
        // v2: thread_scaling gained "cores"; "speedup" became nullable
        // (null = the box had fewer than 8 cores, so no honest measurement).
        ("schema", Json::Str("bench_fleet/v2".into())),
        ("bench", Json::Str("bench_fleet".into())),
        ("fleets", Json::obj(fleet_rows)),
        (
            "thread_scaling",
            Json::obj([
                ("cores", Json::Num(cores as f64)),
                ("events_per_s_1_thread", Json::Num(eps_1.round())),
                ("events_per_s_8_threads", Json::Num(eps_8.round())),
                (
                    "speedup",
                    match speedup {
                        Some(s) => Json::Num((s * 100.0).round() / 100.0),
                        None => Json::Null,
                    },
                ),
                ("artifacts_identical", Json::Bool(identical)),
            ]),
        ),
    ]);
    std::fs::write(path, json.render_pretty()).expect("write BENCH json");
    println!("wrote {path}");
}

/// `--baseline <path>`: re-measure the gate fleet and compare aggregate
/// events/sec against the recorded `BENCH_fleet.json` floor (baseline / 2).
fn compare_baseline(path: &str) -> Result<(), String> {
    const TOLERANCE: f64 = 2.0;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = dmp_runner::json::parse(&text)
        .ok_or_else(|| format!("baseline {path} is not valid JSON"))?;
    let (name, sessions, shard_sessions) = GATE_FLEET;
    let baseline_eps = doc
        .get("fleets")
        .and_then(|f| f.get(name))
        .and_then(|f| f.get("events_per_s"))
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("baseline {path} has no fleets/{name}/events_per_s"))?;
    // Warm-up, then the timed pass (rates, so durations need not match).
    let _ = measure(4, 2, 1);
    let (_, eps) = measure(sessions, shard_sessions, 1);
    let floor = baseline_eps / TOLERANCE;
    if eps < floor {
        Err(format!(
            "fleet throughput collapse vs {path}: {eps:.0} events/s < {floor:.0} \
             ({baseline_eps:.0} / {TOLERANCE})"
        ))
    } else {
        println!(
            "baseline OK: fleet/{name} {eps:.0} events/s vs recorded {baseline_eps:.0} \
             (floor {floor:.0})"
        );
        Ok(())
    }
}

/// Default mode: criterion timing of the small fleet on both engines.
fn bench(c: &mut Criterion) {
    let (name, sessions, shard_sessions) = FLEETS[0];
    for (ename, engine) in ENGINES {
        let s = spec(sessions, shard_sessions, 20.0, engine);
        c.bench_function(&format!("fleet/{name}/{ename}"), |b| {
            b.iter(|| run_once(1, &s))
        });
    }
    for (fname, sessions, shard_sessions) in FLEETS {
        let (events, eps) = measure(sessions, shard_sessions, 1);
        println!("fleet/{fname}: {events} events, {eps:.0} events/s");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    if flag("--quick-smoke") {
        quick_smoke();
        if let Some(path) = value("--baseline") {
            if let Err(e) = compare_baseline(&path) {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(path) = value("--baseline") {
        if let Err(e) = compare_baseline(&path) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(path) = value("--json") {
        write_json(&path);
        return;
    }
    benches();
}
