//! Fig. 9 reproduction (quick scale) + required-τ search benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;
use dmp_core::spec::PathSpec;
use tcp_model::{required_startup_delay, DmpModel, SearchOptions};

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    println!("{}", dmp_bench::params::fig9a(&runner, &scale).text);
    println!("{}", dmp_bench::params::fig9b(&runner, &scale).text);
    let opts = SearchOptions {
        block: 50_000,
        max_consumptions: 100_000,
        resolution_s: 1.0,
        ..SearchOptions::default()
    };
    c.bench_function("fig9/required_tau_search", |b| {
        b.iter(|| {
            std::hint::black_box(required_startup_delay(
                |tau| DmpModel::new(vec![PathSpec::from_ms(0.02, 150.0, 4.0); 2], 30.0, tau),
                &opts,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
