//! Engine throughput benchmark: events/sec on three canonical topologies,
//! under both the heap and calendar-queue schedulers.
//!
//! Modes (args after `--` reach this binary):
//!
//! * default (`cargo bench --bench bench_engine`) — criterion-style timing
//!   of all three topologies on both engines.
//! * `--quick-smoke` — tiny-scale run asserting both engines agree exactly
//!   (CI gate; seconds, not minutes).
//! * `--baseline <BENCH_netsim.json>` (combinable with `--quick-smoke`) —
//!   re-measure events/sec per topology and fail (exit 1) if any topology
//!   collapses below half of the recorded baseline. The 2x tolerance is
//!   deliberately loose: CI machines are slower and noisier than the box
//!   that wrote the baseline; the gate exists to catch order-of-magnitude
//!   engine regressions, not percent-level drift.
//! * `--json <path> [--repro-baseline-s X --repro-current-s Y]` — measure
//!   and write the `BENCH_netsim.json` perf-trajectory artifact, optionally
//!   recording the cold `repro_all --quick` serial-equivalent seconds.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use dmp_core::spec::SchedulerKind;
use dmp_runner::Json;
use netsim::app::App;
use netsim::apps::{Ftp, HttpParams, HttpSession};
use netsim::link::LinkSpec;
use netsim::sim::{Sim, SimApi};
use netsim::tcp::{SinkConfig, TcpConfig};
use netsim::time::{secs, SECOND};
use netsim::{EngineKind, FlowId};

struct FtpStarter {
    flow: FlowId,
}
impl App for FtpStarter {
    fn start(&mut self, api: &mut SimApi<'_>) {
        api.set_backlogged(self.flow, None);
    }
}

/// Fingerprint of a run: must be identical across engines.
type Digest = (u64, u64, u64);

/// What a topology runner reports: scheduler events dispatched, packet
/// transits delivered (one event can carry several under coalesced
/// delivery — reporting both keeps the events/sec trajectory honest), and
/// the engine-invariant digest.
struct TopoRun {
    events: u64,
    transits: u64,
    digest: Digest,
}

/// Topology 1: two hosts, one clean 10 Mbps / 10 ms pipe, one backlogged
/// FTP. The minimal engine hot loop: serialisation + arrival + ACK events.
fn run_two_host(engine: EngineKind, dur_s: f64) -> TopoRun {
    let mut sim = Sim::with_engine(1, engine);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let (f, r) = sim.add_duplex(a, b, LinkSpec::from_table(10.0, 10.0, 100));
    sim.add_route(a, b, f);
    sim.add_route(b, a, r);
    let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
    sim.add_app(Box::new(FtpStarter { flow }));
    sim.run_until(secs(dur_s));
    TopoRun {
        events: sim.events_processed(),
        transits: sim.transits(),
        digest: (
            sim.sink(flow).stats.delivered,
            sim.sender(flow).stats.retransmits,
            sim.events_processed(),
        ),
    }
}

/// Topology 2: a congested Table 1 config-2-like bottleneck (3.7 Mbps, 1 ms,
/// 50-packet buffer) shared by 9 FTPs and 40 on/off HTTP sessions. Loss,
/// retransmission timers, and app timers all active — the background-traffic
/// workload that dominates the figure sweeps.
fn run_bottleneck_bg(engine: EngineKind, dur_s: f64) -> TopoRun {
    let mut sim = Sim::with_engine(2, engine);
    let a = sim.add_node("src");
    let b = sim.add_node("dst");
    let (f, r) = sim.add_duplex(a, b, LinkSpec::from_table(3.7, 1.0, 50));
    sim.add_route(a, b, f);
    sim.add_route(b, a, r);
    let bg_cfg = TcpConfig {
        max_wnd: 20,
        ..TcpConfig::default()
    };
    let mut flows = Vec::new();
    for i in 0..9u64 {
        let flow = sim.add_flow(a, b, bg_cfg, SinkConfig::default());
        flows.push(flow);
        sim.add_app(Box::new(Ftp::new(flow, i * SECOND / 10)));
    }
    for i in 0..40u64 {
        let flow = sim.add_flow(a, b, bg_cfg, SinkConfig::default());
        flows.push(flow);
        sim.add_app(Box::new(HttpSession::new(
            flow,
            HttpParams::default(),
            i * SECOND / 20,
        )));
    }
    sim.run_until(secs(dur_s));
    let mut delivered = 0;
    let mut dropped = 0;
    for &flow in &flows {
        delivered += sim.sink(flow).stats.delivered;
        dropped += sim.flow_counters(flow).data_dropped;
    }
    TopoRun {
        events: sim.events_processed(),
        transits: sim.transits(),
        digest: (delivered, dropped, sim.events_processed()),
    }
}

/// Topology 3: the paper's Setting 2-2 multipath video run (DMP scheduler,
/// two independent congested paths, full background traffic) — the workload
/// `repro_all` actually spends its time in. Events counted via the engine
/// telemetry delta because `dmp_sim::experiment::run` owns the `Sim`.
fn run_multipath_video(engine: EngineKind, dur_s: f64) -> TopoRun {
    let setting = *dmp_sim::configs::setting("2-2").expect("setting 2-2 exists");
    let mut spec =
        dmp_sim::experiment::ExperimentSpec::new(setting, SchedulerKind::Dynamic, dur_s, 2007);
    spec.warmup_s = 10.0;
    spec.engine = engine;
    let before = netsim::telemetry::snapshot();
    let out = dmp_sim::experiment::run(&spec);
    let delta = netsim::telemetry::snapshot().delta(&before);
    TopoRun {
        events: delta.events_processed,
        transits: delta.transits,
        digest: (
            out.trace.delivered(),
            out.trace.generated(),
            (out.paths.iter().map(|p| p.share).sum::<f64>() * 1e9) as u64,
        ),
    }
}

type TopoFn = fn(EngineKind, f64) -> TopoRun;

const TOPOLOGIES: [(&str, TopoFn, f64); 3] = [
    ("two_host", run_two_host, 60.0),
    ("bottleneck_bg", run_bottleneck_bg, 60.0),
    ("multipath_video", run_multipath_video, 60.0),
];

const ENGINES: [(&str, EngineKind); 2] = [
    ("heap", EngineKind::Heap),
    ("calendar", EngineKind::Calendar),
];

/// One timed measurement: `(run, events/s, transits/s)` per wall-clock
/// second. Best-of-3: the simulation is deterministic, so the fastest pass
/// is the least scheduler-perturbed estimate of the engine's cost — on the
/// shared boxes these run on, a single pass can be off by 2x.
fn measure(f: TopoFn, engine: EngineKind, dur_s: f64) -> (TopoRun, f64, f64) {
    let mut best: Option<(TopoRun, f64)> = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let run = f(engine, dur_s);
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        if best.as_ref().is_none_or(|(_, w)| wall < *w) {
            best = Some((run, wall));
        }
    }
    let (run, wall) = best.expect("three passes ran");
    let eps = run.events as f64 / wall;
    let tps = run.transits as f64 / wall;
    (run, eps, tps)
}

/// `--quick-smoke`: both engines must produce identical simulations, fast.
fn quick_smoke() {
    for (name, f, _) in TOPOLOGIES {
        let dur = if name == "multipath_video" {
            20.0
        } else {
            10.0
        };
        let heap = f(EngineKind::Heap, dur);
        let cal = f(EngineKind::Calendar, dur);
        assert_eq!(
            heap.digest, cal.digest,
            "{name}: engines disagree (heap vs calendar digest)"
        );
        assert_eq!(heap.transits, cal.transits, "{name}: transit counts differ");
        println!(
            "smoke {name}: engines agree, digest {:?}, {} transits",
            heap.digest, heap.transits
        );
    }
    println!("quick-smoke OK: heap and calendar engines agree on all topologies");
}

/// `--json <path>`: measure all topologies × engines and write the
/// perf-trajectory artifact.
fn write_json(path: &str, repro_baseline_s: Option<f64>, repro_current_s: Option<f64>) {
    let mut topo_rows = Vec::new();
    for (name, f, dur_s) in TOPOLOGIES {
        // Warm-up pass (page in code and allocator), then the timed pass.
        let _ = f(EngineKind::Calendar, 5.0);
        let mut engine_rows = Vec::new();
        for (ename, engine) in ENGINES {
            let (run, eps, tps) = measure(f, engine, dur_s);
            println!(
                "{name}/{ename}: {} events ({} transits), {eps:.0} events/s, {tps:.0} transits/s",
                run.events, run.transits
            );
            engine_rows.push((
                ename,
                Json::obj([
                    ("events", Json::Num(run.events as f64)),
                    ("events_per_s", Json::Num(eps.round())),
                    ("transits", Json::Num(run.transits as f64)),
                    ("transits_per_s", Json::Num(tps.round())),
                ]),
            ));
        }
        topo_rows.push((
            name,
            Json::obj([
                ("sim_duration_s", Json::Num(dur_s)),
                ("engines", Json::obj(engine_rows)),
            ]),
        ));
    }
    let mut fields = vec![
        // v2: coalesced link delivery — events shrank per transit, so the
        // artifact reports transits/sec alongside events/sec.
        ("schema", Json::Str("bench_netsim/v2".into())),
        ("bench", Json::Str("bench_engine".into())),
        ("topologies", Json::obj(topo_rows)),
    ];
    let mut repro = Vec::new();
    if let Some(b) = repro_baseline_s {
        repro.push(("baseline_serial_equiv_s", Json::Num(b)));
    }
    if let Some(c) = repro_current_s {
        repro.push(("current_serial_equiv_s", Json::Num(c)));
    }
    if let (Some(b), Some(c)) = (repro_baseline_s, repro_current_s) {
        repro.push(("speedup", Json::Num((b / c * 100.0).round() / 100.0)));
    }
    if !repro.is_empty() {
        fields.push(("repro_all_quick", Json::obj(repro)));
    }
    let json = Json::obj(fields);
    std::fs::write(path, json.render_pretty()).expect("write BENCH json");
    println!("wrote {path}");
}

/// `--baseline <path>`: re-measure each topology × engine at smoke duration
/// and compare events/sec against the recorded `BENCH_netsim.json`. Only a
/// collapse below `1/TOLERANCE` of the baseline fails — the baseline was
/// written on one particular machine and CI runners are legitimately slower.
fn compare_baseline(path: &str) -> Result<(), String> {
    const TOLERANCE: f64 = 2.0;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = dmp_runner::json::parse(&text)
        .ok_or_else(|| format!("baseline {path} is not valid JSON"))?;
    let topologies = doc
        .get("topologies")
        .ok_or_else(|| format!("baseline {path} has no `topologies` object"))?;
    let mut failures = Vec::new();
    for (name, f, _) in TOPOLOGIES {
        // Warm-up, then a short timed pass (the gate compares rates, so the
        // measured duration need not match the baseline's).
        let _ = f(EngineKind::Calendar, 5.0);
        for (ename, engine) in ENGINES {
            let baseline_eps = topologies
                .get(name)
                .and_then(|t| t.get("engines"))
                .and_then(|e| e.get(ename))
                .and_then(|e| e.get("events_per_s"))
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("baseline {path} has no {name}/{ename} events_per_s"))?;
            let (_, eps, _) = measure(f, engine, 20.0);
            let floor = baseline_eps / TOLERANCE;
            let verdict = if eps < floor { "COLLAPSE" } else { "ok" };
            println!(
                "baseline {name}/{ename}: {eps:.0} events/s vs recorded {baseline_eps:.0} \
                 (floor {floor:.0}) {verdict}"
            );
            if eps < floor {
                failures.push(format!(
                    "{name}/{ename}: {eps:.0} events/s < {floor:.0} ({baseline_eps:.0} / {TOLERANCE})"
                ));
            }
        }
    }
    if failures.is_empty() {
        println!("baseline OK: all topologies within {TOLERANCE}x of {path}");
        Ok(())
    } else {
        Err(format!(
            "throughput collapse vs {path}: {}",
            failures.join("; ")
        ))
    }
}

/// Default mode: criterion timing of every topology × engine.
fn bench(c: &mut Criterion) {
    for (name, f, _) in TOPOLOGIES {
        for (ename, engine) in ENGINES {
            c.bench_function(&format!("engine/{name}/{ename}"), |b| {
                b.iter(|| f(engine, 20.0))
            });
        }
    }
    // Also print events/sec once per combination, which criterion's
    // per-iteration timing does not show directly.
    for (name, f, _) in TOPOLOGIES {
        for (ename, engine) in ENGINES {
            let (run, eps, tps) = measure(f, engine, 20.0);
            println!(
                "engine/{name}/{ename}: {} events ({} transits), {eps:.0} events/s, \
                 {tps:.0} transits/s",
                run.events, run.transits
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    if flag("--quick-smoke") {
        quick_smoke();
        if let Some(path) = value("--baseline") {
            if let Err(e) = compare_baseline(&path) {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(path) = value("--baseline") {
        if let Err(e) = compare_baseline(&path) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if let Some(path) = value("--json") {
        let base = value("--repro-baseline-s").and_then(|v| v.parse().ok());
        let cur = value("--repro-current-s").and_then(|v| v.parse().ok());
        write_json(&path, base, cur);
        return;
    }
    benches();
}
