//! Fig. 4 reproduction (quick scale) + lateness-metric benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;
use dmp_core::metrics::LatenessReport;
use dmp_core::spec::SchedulerKind;
use dmp_sim::{run, setting, ExperimentSpec};

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    println!("{}", dmp_bench::validation::fig4(&runner, &scale).text);
    // Kernel: computing a lateness report over a real trace.
    let mut spec = ExperimentSpec::new(*setting("2-2").unwrap(), SchedulerKind::Dynamic, 120.0, 7);
    spec.warmup_s = 5.0;
    let out = run(&spec);
    let taus: Vec<f64> = (3..=11).map(f64::from).collect();
    c.bench_function("fig4/lateness_report_6000pkts", |b| {
        b.iter(|| std::hint::black_box(LatenessReport::from_trace(&out.trace, &taus)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
