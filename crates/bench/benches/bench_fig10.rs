//! Fig. 10 reproduction (quick scale) + PFTK inversion benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;
use tcp_model::pftk;

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    println!("{}", dmp_bench::hetero::fig10(&runner, &scale).text);
    c.bench_function("fig10/pftk_loss_inversion", |b| {
        b.iter(|| std::hint::black_box(pftk::loss_for_throughput(30.0, 0.15, 4.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
