//! Fig. 5 reproduction (quick scale) + heterogeneous-run benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dmp_bench::Scale;
use dmp_core::spec::SchedulerKind;
use dmp_sim::{run, setting, ExperimentSpec};

fn bench(c: &mut Criterion) {
    let scale = Scale::quick();
    let runner = dmp_runner::Runner::new(1, dmp_runner::Cache::disabled()).with_progress(false);
    println!("{}", dmp_bench::validation::fig5(&runner, &scale).text);
    c.bench_function("fig5/simulate_60s_setting_1-2", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut spec =
                ExperimentSpec::new(*setting("1-2").unwrap(), SchedulerKind::Dynamic, 60.0, seed);
            spec.warmup_s = 5.0;
            std::hint::black_box(run(&spec).trace.delivered())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
