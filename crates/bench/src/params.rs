//! Figures 8 and 9 plus the headline result: exploring the parameter space
//! with the model (Section 7.1).

use dmp_core::spec::PathSpec;
use tcp_model::{calibrate, required_startup_delay, DmpModel};

use crate::report::{frac, tau, Table};
use crate::scale::Scale;

fn homo_paths(p: f64, rtt_s: f64, to: f64, k: usize) -> Vec<PathSpec> {
    vec![
        PathSpec {
            loss: p,
            rtt_s,
            to_ratio: to
        };
        k
    ]
}

/// Fig. 8: diminishing gain from increasing `σ_a/µ`. Fixed `p = 0.02`,
/// `T_O = 4`, `µ = 25` pkt/s; the RTT is varied to sweep the ratio (exactly
/// the paper's manner (1)).
pub fn fig8(scale: &Scale) -> String {
    let (p, to, mu) = (0.02, 4.0, 25.0);
    let ratios = [1.2, 1.4, 1.6, 1.8, 2.0];
    let taus: Vec<f64> = (1..=15).map(|i| 2.0 * i as f64).collect();
    let mut t = Table::new(
        "Fig 8: fraction of late packets vs startup delay, sigma_a/mu in 1.2..2.0 \
         (p=0.02, TO=4, mu=25)",
        &["tau (s)", "1.2", "1.4", "1.6", "1.8", "2.0"],
    );
    // Precompute per-ratio RTTs.
    let rtts: Vec<f64> = ratios
        .iter()
        .map(|&r| calibrate::rtt_for_ratio(p, to, DmpModel::DEFAULT_WMAX, 2, mu, r))
        .collect();
    for &tau_s in &taus {
        let mut row = vec![format!("{tau_s:.0}")];
        for &rtt in &rtts {
            let model = DmpModel::new(homo_paths(p, rtt, to, 2), mu, tau_s);
            row.push(frac(
                model.late_fraction(scale.model_consumptions, scale.seed).f,
            ));
        }
        t.row(row);
    }
    t.render()
}

/// Fig. 9(a): required startup delay for `f < 10⁻⁴` at `σ_a/µ = 1.6`,
/// `T_O = 4`, varying the RTT; µ ∈ {25, 50, 100}, p ∈ {0.004, 0.02, 0.04}.
/// The (p = 0.004, µ = 25) cell is omitted exactly as in the paper (its RTT
/// exceeds 600 ms).
pub fn fig9a(scale: &Scale) -> String {
    let to = 4.0;
    let ratio = 1.6;
    let mut t = Table::new(
        "Fig 9(a): required startup delay (s) for f < 1e-4, sigma_a/mu=1.6, TO=4 (vary R)",
        &["mu (pkts ps)", "p=0.004", "p=0.02", "p=0.04"],
    );
    for &mu in &[25.0, 50.0, 100.0] {
        let mut row = vec![format!("{mu:.0}")];
        for &p in &[0.004, 0.02, 0.04] {
            let rtt = calibrate::rtt_for_ratio(p, to, DmpModel::DEFAULT_WMAX, 2, mu, ratio);
            if rtt > 0.6 {
                row.push("(RTT>600ms)".to_string());
                continue;
            }
            let req = required_startup_delay(
                |tau_s| DmpModel::new(homo_paths(p, rtt, to, 2), mu, tau_s),
                &scale.search_options(),
            );
            row.push(tau(req));
        }
        t.row(row);
    }
    t.render()
}

/// Fig. 9(b): same, but fixing R ∈ {100, 200, 300} ms and varying µ.
pub fn fig9b(scale: &Scale) -> String {
    let to = 4.0;
    let ratio = 1.6;
    let mut t = Table::new(
        "Fig 9(b): required startup delay (s) for f < 1e-4, sigma_a/mu=1.6, TO=4 (vary mu)",
        &["R (ms)", "p=0.004", "p=0.02", "p=0.04"],
    );
    for &rtt_ms in &[100.0, 200.0, 300.0] {
        let mut row = vec![format!("{rtt_ms:.0}")];
        for &p in &[0.004, 0.02, 0.04] {
            let mu = calibrate::mu_for_ratio(p, rtt_ms / 1e3, to, DmpModel::DEFAULT_WMAX, 2, ratio);
            let req = required_startup_delay(
                |tau_s| DmpModel::new(homo_paths(p, rtt_ms / 1e3, to, 2), mu, tau_s),
                &scale.search_options(),
            );
            row.push(tau(req));
        }
        t.row(row);
    }
    t.render()
}

/// The headline comparison: the smallest `σ_a/µ` ratio at which streaming is
/// satisfactory (f < 10⁻⁴ within ~10 s of startup delay), for K = 1 (the
/// single-path result of Wang et al. 2004: ≈ 2) and K = 2 (this paper's
/// result: ≈ 1.6).
pub fn headline(scale: &Scale) -> String {
    let (p, to, mu) = (0.02, 4.0, 25.0);
    let mut t = Table::new(
        "Headline: required startup delay (s) vs sigma_a/mu, K=1 vs K=2 (p=0.02, TO=4, mu=25)",
        &["sigma_a/mu", "K=1 (single path)", "K=2 (DMP)"],
    );
    let mut min_ratio = [None::<f64>, None::<f64>];
    for i in 0..=8 {
        let ratio = 1.2 + 0.1 * i as f64;
        let mut row = vec![format!("{ratio:.1}")];
        for (idx, &k) in [1usize, 2].iter().enumerate() {
            let rtt = calibrate::rtt_for_ratio(p, to, DmpModel::DEFAULT_WMAX, k, mu, ratio);
            let req = required_startup_delay(
                |tau_s| DmpModel::new(homo_paths(p, rtt, to, k), mu, tau_s),
                &scale.search_options(),
            );
            if let Some(r) = req {
                if r <= 10.0 && min_ratio[idx].is_none() {
                    min_ratio[idx] = Some(ratio);
                }
            }
            row.push(tau(req));
        }
        t.row(row);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nSmallest ratio with tau <= 10 s:  K=1: {}   K=2: {}\n\
         Caveat: matching the aggregate throughput by scaling the RTT doubles the\n\
         two-path RTT (and timeout stalls), which offsets part of the diversity gain.\n",
        min_ratio[0].map_or("-".into(), |r| format!("{r:.1}")),
        min_ratio[1].map_or("-".into(), |r| format!("{r:.1}")),
    ));

    // The natural framing of the paper's questions (i)/(ii): identical path
    // characteristics, one vs two subscriptions.
    let path = PathSpec {
        loss: p,
        rtt_s: 0.150,
        to_ratio: to,
    };
    let sigma = calibrate::chain_throughput_pps(&path, DmpModel::DEFAULT_WMAX);
    let mut t2 = Table::new(
        "Headline, fixed-path framing: identical paths (p=0.02, R=150 ms, TO=4), \
         required startup delay (s)",
        &["sigma_a/mu", "K=1", "K=2"],
    );
    for i in 0..=8 {
        let ratio = 1.2 + 0.1 * i as f64;
        let mut row = vec![format!("{ratio:.1}")];
        for k in [1usize, 2] {
            let mu_k = k as f64 * sigma / ratio;
            let req = required_startup_delay(
                |tau_s| DmpModel::new(vec![path; k], mu_k, tau_s),
                &scale.search_options(),
            );
            row.push(tau(req));
        }
        t2.row(row);
    }
    out.push('\n');
    out.push_str(&t2.render());
    out.push_str(
        "The paper's rule drops out of this table: two paths at sigma_a/mu = 1.6 need\n\
         about the startup delay one path needs at 2.0 — multipath converts the same\n\
         hardware into ~25% more watchable bitrate.\n",
    );
    out
}
