//! Figures 8 and 9 plus the headline result: exploring the parameter space
//! with the model (Section 7.1).

use dmp_core::spec::PathSpec;
use dmp_runner::{Json, Runner};
use tcp_model::{calibrate, DmpModel, TauSearchSpec};

use crate::report::{frac, tau, Table};
use crate::scale::Scale;
use crate::target::{opt_num, TargetReport};
use crate::validation::model_point_job;

fn homo_paths(p: f64, rtt_s: f64, to: f64, k: usize) -> Vec<PathSpec> {
    vec![
        PathSpec {
            loss: p,
            rtt_s,
            to_ratio: to
        };
        k
    ]
}

fn search_job(
    label: String,
    paths: Vec<PathSpec>,
    mu: f64,
    scale: &Scale,
) -> dmp_runner::JobSpec<Option<f64>> {
    TauSearchSpec {
        paths,
        mu,
        opts: scale.search_options(),
    }
    .into_job(label)
}

/// Fig. 8: diminishing gain from increasing `σ_a/µ`. Fixed `p = 0.02`,
/// `T_O = 4`, `µ = 25` pkt/s; the RTT is varied to sweep the ratio (exactly
/// the paper's manner (1)).
pub fn fig8(r: &Runner, scale: &Scale) -> TargetReport {
    let (p, to, mu) = (0.02, 4.0, 25.0);
    let ratios = [1.2, 1.4, 1.6, 1.8, 2.0];
    let taus: Vec<f64> = (1..=15).map(|i| 2.0 * i as f64).collect();
    // Precompute per-ratio RTTs, then one model job per (τ, ratio) cell.
    let rtts: Vec<f64> = ratios
        .iter()
        .map(|&ratio| calibrate::rtt_for_ratio(p, to, DmpModel::DEFAULT_WMAX, 2, mu, ratio))
        .collect();
    let mut jobs = Vec::with_capacity(taus.len() * ratios.len());
    for &tau_s in &taus {
        for (&ratio, &rtt) in ratios.iter().zip(&rtts) {
            jobs.push(model_point_job(
                format!("fig8:ratio{ratio}:tau{tau_s}"),
                homo_paths(p, rtt, to, 2),
                mu,
                tau_s,
                scale.model_consumptions,
                scale.seed,
            ));
        }
    }
    let cells = r.run_all(jobs);

    let mut t = Table::new(
        "Fig 8: fraction of late packets vs startup delay, sigma_a/mu in 1.2..2.0 \
         (p=0.02, TO=4, mu=25)",
        &["tau (s)", "1.2", "1.4", "1.6", "1.8", "2.0"],
    );
    let mut series = Vec::new();
    for (ti, &tau_s) in taus.iter().enumerate() {
        let mut row = vec![format!("{tau_s:.0}")];
        let mut fs = Vec::new();
        for ri in 0..ratios.len() {
            let f = *cells[ti * ratios.len() + ri].ok().expect("model job");
            row.push(frac(f));
            fs.push(f);
        }
        t.row(row);
        series.push(Json::obj([
            ("tau_s", Json::Num(tau_s)),
            ("f_by_ratio", Json::nums(fs)),
        ]));
    }
    let data = Json::obj([
        ("ratios", Json::nums(ratios)),
        ("points", Json::Arr(series)),
        ("table", t.to_json()),
    ]);
    TargetReport::new(t.render(), data)
}

/// Fig. 9(a): required startup delay for `f < 10⁻⁴` at `σ_a/µ = 1.6`,
/// `T_O = 4`, varying the RTT; µ ∈ {25, 50, 100}, p ∈ {0.004, 0.02, 0.04}.
/// The (p = 0.004, µ = 25) cell is omitted exactly as in the paper (its RTT
/// exceeds 600 ms).
pub fn fig9a(r: &Runner, scale: &Scale) -> TargetReport {
    let to = 4.0;
    let ratio = 1.6;
    let mus = [25.0, 50.0, 100.0];
    let ps = [0.004, 0.02, 0.04];
    // A `None` slot marks a paper-style omitted cell (RTT > 600 ms).
    let mut jobs = Vec::new();
    let mut included = Vec::new();
    for &mu in &mus {
        for &p in &ps {
            let rtt = calibrate::rtt_for_ratio(p, to, DmpModel::DEFAULT_WMAX, 2, mu, ratio);
            if rtt > 0.6 {
                included.push(false);
            } else {
                included.push(true);
                jobs.push(search_job(
                    format!("fig9a:mu{mu}:p{p}"),
                    homo_paths(p, rtt, to, 2),
                    mu,
                    scale,
                ));
            }
        }
    }
    let cells = r.run_all(jobs);

    let mut t = Table::new(
        "Fig 9(a): required startup delay (s) for f < 1e-4, sigma_a/mu=1.6, TO=4 (vary R)",
        &["mu (pkts ps)", "p=0.004", "p=0.02", "p=0.04"],
    );
    let mut points = Vec::new();
    let mut next = 0usize;
    for (mi, &mu) in mus.iter().enumerate() {
        let mut row = vec![format!("{mu:.0}")];
        for (pi, &p) in ps.iter().enumerate() {
            if !included[mi * ps.len() + pi] {
                row.push("(RTT>600ms)".to_string());
                points.push(Json::obj([
                    ("mu", Json::Num(mu)),
                    ("p", Json::Num(p)),
                    ("tau_s", Json::Null),
                    ("omitted", Json::Bool(true)),
                ]));
                continue;
            }
            let req = *cells[next].ok().expect("search job");
            next += 1;
            row.push(tau(req));
            points.push(Json::obj([
                ("mu", Json::Num(mu)),
                ("p", Json::Num(p)),
                ("tau_s", opt_num(req)),
                ("omitted", Json::Bool(false)),
            ]));
        }
        t.row(row);
    }
    let data = Json::obj([("points", Json::Arr(points)), ("table", t.to_json())]);
    TargetReport::new(t.render(), data)
}

/// Fig. 9(b): same, but fixing R ∈ {100, 200, 300} ms and varying µ.
pub fn fig9b(r: &Runner, scale: &Scale) -> TargetReport {
    let to = 4.0;
    let ratio = 1.6;
    let rtts_ms = [100.0, 200.0, 300.0];
    let ps = [0.004, 0.02, 0.04];
    let mut jobs = Vec::new();
    for &rtt_ms in &rtts_ms {
        for &p in &ps {
            let mu = calibrate::mu_for_ratio(p, rtt_ms / 1e3, to, DmpModel::DEFAULT_WMAX, 2, ratio);
            jobs.push(search_job(
                format!("fig9b:R{rtt_ms}:p{p}"),
                homo_paths(p, rtt_ms / 1e3, to, 2),
                mu,
                scale,
            ));
        }
    }
    let cells = r.run_all(jobs);

    let mut t = Table::new(
        "Fig 9(b): required startup delay (s) for f < 1e-4, sigma_a/mu=1.6, TO=4 (vary mu)",
        &["R (ms)", "p=0.004", "p=0.02", "p=0.04"],
    );
    let mut points = Vec::new();
    for (ri, &rtt_ms) in rtts_ms.iter().enumerate() {
        let mut row = vec![format!("{rtt_ms:.0}")];
        for (pi, &p) in ps.iter().enumerate() {
            let req = *cells[ri * ps.len() + pi].ok().expect("search job");
            row.push(tau(req));
            points.push(Json::obj([
                ("rtt_ms", Json::Num(rtt_ms)),
                ("p", Json::Num(p)),
                ("tau_s", opt_num(req)),
            ]));
        }
        t.row(row);
    }
    let data = Json::obj([("points", Json::Arr(points)), ("table", t.to_json())]);
    TargetReport::new(t.render(), data)
}

/// The headline comparison: the smallest `σ_a/µ` ratio at which streaming is
/// satisfactory (f < 10⁻⁴ within ~10 s of startup delay), for K = 1 (the
/// single-path result of Wang et al. 2004: ≈ 2) and K = 2 (this paper's
/// result: ≈ 1.6).
pub fn headline(r: &Runner, scale: &Scale) -> TargetReport {
    let (p, to, mu) = (0.02, 4.0, 25.0);
    let ratios: Vec<f64> = (0..=8).map(|i| 1.2 + 0.1 * i as f64).collect();

    // Framing 1: the RTT is scaled so each K reaches the target ratio.
    // Framing 2: identical fixed paths, the video rate µ_k is scaled.
    let fixed_path = PathSpec {
        loss: p,
        rtt_s: 0.150,
        to_ratio: to,
    };
    let sigma = calibrate::chain_throughput_pps(&fixed_path, DmpModel::DEFAULT_WMAX);
    let mut jobs = Vec::new();
    for &ratio in &ratios {
        for k in [1usize, 2] {
            let rtt = calibrate::rtt_for_ratio(p, to, DmpModel::DEFAULT_WMAX, k, mu, ratio);
            jobs.push(search_job(
                format!("headline:rtt-framing:ratio{ratio:.1}:K{k}"),
                homo_paths(p, rtt, to, k),
                mu,
                scale,
            ));
        }
    }
    for &ratio in &ratios {
        for k in [1usize, 2] {
            let mu_k = k as f64 * sigma / ratio;
            jobs.push(search_job(
                format!("headline:fixed-path:ratio{ratio:.1}:K{k}"),
                vec![fixed_path; k],
                mu_k,
                scale,
            ));
        }
    }
    let cells = r.run_all(jobs);
    let taus: Vec<Option<f64>> = cells.iter().map(|c| *c.ok().expect("search job")).collect();

    let mut t = Table::new(
        "Headline: required startup delay (s) vs sigma_a/mu, K=1 vs K=2 (p=0.02, TO=4, mu=25)",
        &["sigma_a/mu", "K=1 (single path)", "K=2 (DMP)"],
    );
    let mut min_ratio = [None::<f64>, None::<f64>];
    let mut rows_rtt = Vec::new();
    for (i, &ratio) in ratios.iter().enumerate() {
        let t1 = taus[2 * i];
        let t2 = taus[2 * i + 1];
        for (idx, req) in [t1, t2].into_iter().enumerate() {
            if let Some(v) = req {
                if v <= 10.0 && min_ratio[idx].is_none() {
                    min_ratio[idx] = Some(ratio);
                }
            }
        }
        t.row(vec![format!("{ratio:.1}"), tau(t1), tau(t2)]);
        rows_rtt.push(Json::obj([
            ("ratio", Json::Num(ratio)),
            ("tau_k1_s", opt_num(t1)),
            ("tau_k2_s", opt_num(t2)),
        ]));
    }
    let mut text = t.render();
    text.push_str(&format!(
        "\nSmallest ratio with tau <= 10 s:  K=1: {}   K=2: {}\n\
         Caveat: matching the aggregate throughput by scaling the RTT doubles the\n\
         two-path RTT (and timeout stalls), which offsets part of the diversity gain.\n",
        min_ratio[0].map_or("-".into(), |v| format!("{v:.1}")),
        min_ratio[1].map_or("-".into(), |v| format!("{v:.1}")),
    ));

    let mut t2 = Table::new(
        "Headline, fixed-path framing: identical paths (p=0.02, R=150 ms, TO=4), \
         required startup delay (s)",
        &["sigma_a/mu", "K=1", "K=2"],
    );
    let base = 2 * ratios.len();
    let mut rows_fixed = Vec::new();
    for (i, &ratio) in ratios.iter().enumerate() {
        let t1 = taus[base + 2 * i];
        let t2v = taus[base + 2 * i + 1];
        t2.row(vec![format!("{ratio:.1}"), tau(t1), tau(t2v)]);
        rows_fixed.push(Json::obj([
            ("ratio", Json::Num(ratio)),
            ("tau_k1_s", opt_num(t1)),
            ("tau_k2_s", opt_num(t2v)),
        ]));
    }
    text.push('\n');
    text.push_str(&t2.render());
    text.push_str(
        "The paper's rule drops out of this table: two paths at sigma_a/mu = 1.6 need\n\
         about the startup delay one path needs at 2.0 — multipath converts the same\n\
         hardware into ~25% more watchable bitrate.\n",
    );

    let data = Json::obj([
        ("rtt_framing", Json::Arr(rows_rtt)),
        ("fixed_path_framing", Json::Arr(rows_fixed)),
        (
            "min_ratio_tau10",
            Json::obj([("k1", opt_num(min_ratio[0])), ("k2", opt_num(min_ratio[1]))]),
        ),
        ("tables", Json::arr([t.to_json(), t2.to_json()])),
    ]);
    TargetReport::new(text, data)
}
