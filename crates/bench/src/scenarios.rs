//! Extension: scripted fault injection — the resilience benefit the paper
//! argues for qualitatively (Sections 1 and 7) but never measures. A
//! deterministic [`scenario`] timeline perturbs the paths mid-stream and all
//! schedulers replay the identical script, so the only difference between
//! rows is how the scheduler reacts.
//!
//! * [`ext_failover`] — path 0 of two goes down 35 % into the video and
//!   stays down: DMP re-routes onto the survivor, static splitting keeps
//!   committing half the stream to the dead path, and single-path TCP never
//!   recovers at all. Run under **both** simulation engines; the artifact
//!   records that they agreed bit-for-bit.
//! * [`ext_flashcrowd`] — six extra backlogged TCP flows join path 0's
//!   bottleneck for a quarter of the video: a transient overload instead of
//!   a hard failure.

use dmp_core::{ResilienceSpec, SchedulerKind, VideoSpec};
use dmp_runner::{JobSpec, Json, JsonCodec, Runner};
use dmp_sim::{scenario_batch_jobs, setting, ExperimentSpec, ScenarioSummary, Setting, TraceSpec};
use netsim::EngineKind;
use scenario::{Event, Scenario};

use crate::report::{frac, tau, Table};
use crate::scale::Scale;
use crate::target::{opt_num, TargetReport};

/// Startup delay τ at which the scenario runs are evaluated, seconds.
pub const TAU_S: f64 = 6.0;
/// Sliding window for the worst-window late fraction, seconds.
pub const WINDOW_S: f64 = 10.0;
/// Schedulers compared under every scenario, in row order.
const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Dynamic,
    SchedulerKind::SinglePath,
    SchedulerKind::Static,
];

/// Failover study setting: two Config-2 bottlenecks carrying a µ=25 video —
/// light enough that the surviving path alone can carry the full rate, so
/// after the outage it is the *scheduler*, not capacity, that decides
/// whether the stream comes back.
pub(crate) fn failover_setting() -> Setting {
    Setting {
        name: "fail-2-2",
        configs: [2, 2],
        video: VideoSpec {
            rate_pps: 25.0,
            packet_bytes: 1500,
        },
        correlated: false,
    }
}

/// The failover script: path 0 goes down 35 % into the video and never
/// comes back. Returns the scenario and the failure instant (video clock).
pub fn failover_scenario(duration_s: f64) -> (Scenario, f64) {
    let fail_at = (0.35 * duration_s).floor();
    let scn = Scenario::named("failover").at(fail_at, 0, Event::PathDown);
    (scn, fail_at)
}

/// The flash-crowd script: `n_flows` extra backlogged TCP flows join path
/// 0's bottleneck 30 % into the video and stay for a quarter of it. Returns
/// the scenario and the onset instant (video clock).
pub fn flashcrowd_scenario(duration_s: f64) -> (Scenario, f64) {
    let at = (0.3 * duration_s).floor();
    let scn = Scenario::named("flashcrowd").at(
        at,
        0,
        Event::FlashCrowd {
            n_flows: 6,
            duration_s: (0.25 * duration_s).floor(),
        },
    );
    (scn, at)
}

fn resilience_spec(fail_at_s: f64) -> ResilienceSpec {
    ResilienceSpec {
        tau_s: TAU_S,
        window_s: WINDOW_S,
        fail_at_s: Some(fail_at_s),
    }
}

fn scenario_spec(
    setting: Setting,
    scheduler: SchedulerKind,
    engine: EngineKind,
    scn: &Scenario,
    scale: &Scale,
) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(setting, scheduler, scale.sim_duration_s, scale.seed);
    spec.engine = engine;
    spec.scenario = scn.clone();
    if scale.trace {
        // Per-run labels come from the job labels in `scenario_batch_jobs`.
        spec.trace = TraceSpec::on("");
    }
    spec
}

/// The failover job matrix — scheduler × engine × replication, in that
/// nesting order. Public so `tests/scenario_cache_key.rs` can assert every
/// job's cache key embeds the scenario hash.
pub fn failover_jobs(scale: &Scale) -> Vec<JobSpec<ScenarioSummary>> {
    let (scn, fail_at) = failover_scenario(scale.sim_duration_s);
    let res = resilience_spec(fail_at);
    let mut jobs = Vec::new();
    for &sched in &SCHEDULERS {
        for engine in [EngineKind::Calendar, EngineKind::Heap] {
            let spec = scenario_spec(failover_setting(), sched, engine, &scn, scale);
            jobs.extend(scenario_batch_jobs(&spec, scale.sim_runs, &[TAU_S], res));
        }
    }
    jobs
}

/// The flash-crowd job matrix — scheduler × replication (calendar engine
/// only; the failover target already carries the differential check).
pub fn flashcrowd_jobs(scale: &Scale) -> Vec<JobSpec<ScenarioSummary>> {
    let (scn, at) = flashcrowd_scenario(scale.sim_duration_s);
    let res = resilience_spec(at);
    let base = *setting("2-2").expect("built-in");
    let mut jobs = Vec::new();
    for &sched in &SCHEDULERS {
        let spec = scenario_spec(base, sched, EngineKind::Calendar, &scn, scale);
        jobs.extend(scenario_batch_jobs(&spec, scale.sim_runs, &[TAU_S], res));
    }
    jobs
}

/// Per-scheduler reduction of one scenario's replications.
struct SchedRow {
    name: &'static str,
    runs: Vec<ScenarioSummary>,
    /// `Some(agree)` when the scheduler also ran under the heap engine.
    engines_agree: Option<bool>,
}

impl SchedRow {
    fn mean<F: Fn(&ScenarioSummary) -> f64>(&self, f: F) -> f64 {
        self.runs.iter().map(f).sum::<f64>() / self.runs.len() as f64
    }

    fn recovered(&self) -> usize {
        self.runs.iter().filter(|s| s.resilience.recovered).count()
    }

    /// Mean time-to-recover over the runs that recovered.
    fn ttr_mean(&self) -> Option<f64> {
        let ttrs: Vec<f64> = self
            .runs
            .iter()
            .filter_map(|s| s.resilience.time_to_recover_s)
            .collect();
        if ttrs.is_empty() {
            None
        } else {
            Some(ttrs.iter().sum::<f64>() / ttrs.len() as f64)
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("scheduler", Json::Str(self.name.to_string())),
            (
                "engines_agree",
                self.engines_agree.map_or(Json::Null, Json::Bool),
            ),
            (
                "glitches_mean",
                Json::Num(self.mean(|s| s.resilience.glitch_count as f64)),
            ),
            (
                "total_glitch_s_mean",
                Json::Num(self.mean(|s| s.resilience.total_glitch_s)),
            ),
            (
                "worst_window_late_mean",
                Json::Num(self.mean(|s| s.resilience.worst_window_late)),
            ),
            ("recovered_runs", Json::Num(self.recovered() as f64)),
            ("time_to_recover_s_mean", opt_num(self.ttr_mean())),
            (
                "runs",
                Json::Arr(self.runs.iter().map(JsonCodec::to_json).collect()),
            ),
        ])
    }
}

/// Reduce the cells of one scenario target into per-scheduler rows.
/// `engines` is how many engine variants ran per scheduler (cells are laid
/// out scheduler-major, engine-minor, run-innermost; row statistics come
/// from the first engine, the calendar queue).
fn reduce(
    cells: &[dmp_runner::Cell<ScenarioSummary>],
    runs: usize,
    engines: usize,
) -> Vec<SchedRow> {
    SCHEDULERS
        .iter()
        .enumerate()
        .map(|(si, sched)| {
            let base = si * engines * runs;
            let take = |eng: usize| -> Vec<ScenarioSummary> {
                (0..runs)
                    .map(|i| {
                        let c = &cells[base + eng * runs + i];
                        c.ok()
                            .unwrap_or_else(|| panic!("{} failed: {:?}", c.label, c.failure()))
                            .clone()
                    })
                    .collect()
            };
            let calendar = take(0);
            let engines_agree = (engines > 1).then(|| {
                let heap = take(1);
                calendar
                    .iter()
                    .zip(&heap)
                    .all(|(a, b)| format!("{a:?}") == format!("{b:?}"))
            });
            SchedRow {
                name: sched.name(),
                runs: calendar,
                engines_agree,
            }
        })
        .collect()
}

fn render(
    title: String,
    rows: &[SchedRow],
    scn: &Scenario,
    fail_at: f64,
    reading: &str,
    differential: bool,
) -> TargetReport {
    let mut cols = vec![
        "scheduler",
        "glitches",
        "stalled (s)",
        "worst 10 s window",
        "recovered",
        "TTR (s)",
    ];
    if differential {
        cols.push("engines agree");
    }
    let mut t = Table::new(title, &cols);
    for row in rows {
        let mut cells = vec![
            row.name.to_string(),
            format!("{:.1}", row.mean(|s| s.resilience.glitch_count as f64)),
            format!("{:.1}", row.mean(|s| s.resilience.total_glitch_s)),
            frac(row.mean(|s| s.resilience.worst_window_late)),
            format!("{}/{}", row.recovered(), row.runs.len()),
            tau(row.ttr_mean()),
        ];
        if differential {
            cells.push(match row.engines_agree {
                Some(true) => "yes".into(),
                Some(false) => "NO".into(),
                None => "-".into(),
            });
        }
        t.row(cells);
    }
    let mut text = t.render();
    text.push_str(reading);
    let data = Json::obj([
        ("scenario", Json::Str(scn.canonical())),
        (
            "scenario_hash",
            Json::Str(format!("{:016x}", scn.stable_hash())),
        ),
        ("fail_at_s", Json::Num(fail_at)),
        ("tau_s", Json::Num(TAU_S)),
        ("window_s", Json::Num(WINDOW_S)),
        (
            "schedulers",
            Json::Arr(rows.iter().map(SchedRow::to_json).collect()),
        ),
    ]);
    // Merged always-on metrics over every calendar replication (row
    // statistics come from the calendar engine; the heap runs only feed the
    // byte-identity check). Engine-invariant by construction, so the label
    // names the engine whose runs were folded.
    let mut metrics = obs::MetricsSnapshot::new();
    for row in rows {
        for s in &row.runs {
            metrics.merge(&s.summary.metrics);
        }
    }
    metrics.set_label("engine", crate::target::engine_label(EngineKind::Calendar));
    TargetReport::new(text, data).with_metrics(metrics)
}

/// Scenario extension 1 — mid-stream path failure (see module docs).
pub fn ext_failover(r: &Runner, scale: &Scale) -> TargetReport {
    let (scn, fail_at) = failover_scenario(scale.sim_duration_s);
    let cells = r.run_all(failover_jobs(scale));
    let rows = reduce(&cells, scale.sim_runs, 2);
    render(
        format!(
            "Scenario: permanent failure of path 0 at t={fail_at:.0}s \
             (Setting fail-2-2, mu=25, tau={TAU_S}, mean over {} runs, both engines)",
            scale.sim_runs
        ),
        &rows,
        &scn,
        fail_at,
        "Reading: the surviving path alone can carry the 25 pkt/s video, so what\n\
         happens after the outage is pure scheduler policy. DMP's backpressure\n\
         pull means the dead path simply stops pulling — the stream glitches for\n\
         roughly one send-buffer drain and then recovers on path 1. Static\n\
         splitting keeps assigning every other packet to the dead path and never\n\
         recovers; single-path streaming on the failed path loses everything\n\
         from the outage on. Identical event scripts replay on both simulation\n\
         engines; `engines agree` is a bit-for-bit comparison of every run.\n",
        true,
    )
}

/// Scenario extension 2 — a transient flash crowd (see module docs).
pub fn ext_flashcrowd(r: &Runner, scale: &Scale) -> TargetReport {
    let (scn, at) = flashcrowd_scenario(scale.sim_duration_s);
    let cells = r.run_all(flashcrowd_jobs(scale));
    let rows = reduce(&cells, scale.sim_runs, 1);
    render(
        format!(
            "Scenario: flash crowd of 6 TCP flows on path 0 at t={at:.0}s for a \
             quarter of the video (Setting 2-2, tau={TAU_S}, mean over {} runs)",
            scale.sim_runs
        ),
        &rows,
        &scn,
        at,
        "Reading: unlike the hard failure, the crowded path keeps trickling, so\n\
         every scheduler eventually delivers — the question is how much stalls.\n\
         DMP's send buffers fill on the crowded path and the pull scheduler\n\
         shifts packets to the quiet one, keeping the worst window mild; static\n\
         splitting ships half the stream into the congested queue for the whole\n\
         episode, and single-path rides it out at the crowd's mercy.\n",
        false,
    )
}
