//! Beyond the paper: the extensions its conclusion points to (more than two
//! paths, stored video) and ablations of the design choices DESIGN.md calls
//! out (send-buffer size, queue discipline, TCP flavour).

use dmp_core::spec::{PathSpec, SchedulerKind};
use dmp_core::stats::OnlineStats;
use dmp_sim::{run, setting, ExperimentSpec};
use netsim::tcp::TcpFlavor;
use tcp_model::{calibrate, required_startup_delay, stored_video_late_fraction, DmpModel};

use crate::report::{frac, tau, Table};
use crate::scale::Scale;

/// Extension 1 — `K > 2` paths (the paper: "performance study under larger
/// number of paths is left as future work"): required startup delay at a
/// fixed aggregate ratio as the same capacity is spread over more paths.
pub fn ext_kpaths(scale: &Scale) -> String {
    let (p, to) = (0.02, 4.0);
    let path = PathSpec {
        loss: p,
        rtt_s: 0.150,
        to_ratio: to,
    };
    let sigma = calibrate::chain_throughput_pps(&path, DmpModel::DEFAULT_WMAX);
    let mut t = Table::new(
        "Extension: K identical paths (p=0.02, R=150ms, TO=4), video scaled to keep \
         sigma_a/mu fixed — the paper's question (ii) generalised",
        &[
            "K",
            "mu (pkts ps) @1.6",
            "ratio 1.4",
            "ratio 1.6",
            "ratio 1.8",
        ],
    );
    let opts = scale.search_options();
    for k in 1..=4usize {
        let mut row = vec![k.to_string(), format!("{:.0}", k as f64 * sigma / 1.6)];
        for &ratio in &[1.4, 1.6, 1.8] {
            let mu = k as f64 * sigma / ratio;
            let paths = vec![path; k];
            let req =
                required_startup_delay(|tau_s| DmpModel::new(paths.clone(), mu, tau_s), &opts);
            row.push(tau(req));
        }
        t.row(row);
    }
    let mut out = t.render();
    out.push_str(
        "Reading: every added subscription adds its full throughput to the watchable\n\
         bitrate at the same ratio, and the required startup delay shrinks with K:\n\
         with more independent paths, one path's timeout stalls a smaller share of\n\
         the stream while the survivors keep filling the buffer (path diversity).\n",
    );
    out
}

/// Extension 2 — stored-video streaming: live vs stored late fraction at the
/// same paths, µ and τ (the stored sender may work arbitrarily far ahead).
pub fn ext_stored(scale: &Scale) -> String {
    let (p, to, mu) = (0.02, 4.0, 25.0);
    let mut t = Table::new(
        "Extension: live vs stored video (p=0.02, TO=4, mu=25, sigma_a/mu=1.3)",
        &["tau (s)", "f live", "f stored"],
    );
    let rtt = calibrate::rtt_for_ratio(p, to, DmpModel::DEFAULT_WMAX, 2, mu, 1.3);
    for &tau_s in &[2.0, 4.0, 8.0, 12.0] {
        let model = DmpModel::new(
            vec![
                PathSpec {
                    loss: p,
                    rtt_s: rtt,
                    to_ratio: to
                };
                2
            ],
            mu,
            tau_s,
        );
        let live = model.late_fraction(scale.model_consumptions, scale.seed).f;
        let stored = stored_video_late_fraction(
            &model,
            (scale.model_consumptions / 20).max(10_000),
            10,
            scale.seed,
        );
        t.row(vec![format!("{tau_s:.0}"), frac(live), frac(stored.f)]);
    }
    let mut out = t.render();
    out.push_str(
        "Reading: the generation constraint is what makes live streaming hard; a\n\
         stored video with the same startup delay buffers ahead and suffers less.\n",
    );
    out
}

/// Ablations in the packet simulator: send-buffer size, RED vs drop-tail,
/// Reno vs NewReno for the video flows (Setting 2-2).
pub fn ext_ablations(scale: &Scale) -> String {
    let taus = [3.0, 6.0, 9.0];
    let base = || {
        let mut s = ExperimentSpec::new(
            *setting("2-2").expect("built-in"),
            SchedulerKind::Dynamic,
            scale.sim_duration_s,
            scale.seed,
        );
        s.warmup_s = 15.0;
        s
    };
    let runs = scale.sim_runs.max(2);

    let evaluate = |spec: &ExperimentSpec| -> (f64, Vec<f64>) {
        let mut loss = OnlineStats::new();
        let mut f = vec![OnlineStats::new(); taus.len()];
        for i in 0..runs {
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(7919 * i as u64);
            let out = run(&s);
            for p in &out.paths {
                loss.push(p.loss);
            }
            let rep = dmp_core::metrics::LatenessReport::from_trace(&out.trace, &taus);
            for (slot, lf) in f.iter_mut().zip(&rep.per_tau) {
                slot.push(lf.playback_order);
            }
        }
        (loss.mean(), f.iter().map(|s| s.mean()).collect())
    };

    let mut t = Table::new(
        "Ablations on Setting 2-2 (mean over runs)",
        &[
            "variant",
            "video loss p",
            "f(tau=3)",
            "f(tau=6)",
            "f(tau=9)",
        ],
    );
    let mut add = |name: &str, spec: ExperimentSpec| {
        let (p, f) = evaluate(&spec);
        t.row(vec![
            name.to_string(),
            format!("{p:.4}"),
            frac(f[0]),
            frac(f[1]),
            frac(f[2]),
        ]);
    };

    add("baseline (drop-tail, Reno, buf 32)", base());
    for &buf in &[8usize, 128] {
        let mut s = base();
        s.send_buf_pkts = buf;
        add(&format!("send buffer {buf} pkts"), s);
    }
    let mut s = base();
    s.red = true;
    add("RED bottlenecks", s);
    let mut s = base();
    s.video_flavor = TcpFlavor::NewReno;
    add("NewReno video flows", s);
    let mut s = base();
    s.scheduler = SchedulerKind::Static;
    add("static splitting", s);

    let mut out = t.render();
    out.push_str(
        "Notes: the send buffer shifts where packets queue (a huge buffer commits\n\
         packets to a path early and behaves more like static splitting). RED\n\
         equalises loss rates across flows — which *hurts* the paced video stream:\n\
         under drop-tail (+RTT diversity) a low-rate paced flow sees less loss than\n\
         the fair-share equilibrium, and the video depends on that. NewReno's\n\
         multi-loss recovery shaves the lateness tail.\n",
    );
    out
}
