//! Beyond the paper: the extensions its conclusion points to (more than two
//! paths, stored video) and ablations of the design choices DESIGN.md calls
//! out (send-buffer size, queue discipline, TCP flavour).

use dmp_core::spec::{PathSpec, SchedulerKind};
use dmp_core::stats::OnlineStats;
use dmp_runner::{JobSpec, Json, Runner};
use dmp_sim::{run_summary, setting, ExperimentSpec, RunSummary};
use netsim::tcp::TcpFlavor;
use tcp_model::{calibrate, stored_video_late_fraction, DmpModel, TauSearchSpec};

use crate::report::{frac, tau, Table};
use crate::scale::Scale;
use crate::target::{opt_num, TargetReport};

/// Extension 1 — `K > 2` paths (the paper: "performance study under larger
/// number of paths is left as future work"): required startup delay at a
/// fixed aggregate ratio as the same capacity is spread over more paths.
pub fn ext_kpaths(r: &Runner, scale: &Scale) -> TargetReport {
    let (p, to) = (0.02, 4.0);
    let path = PathSpec {
        loss: p,
        rtt_s: 0.150,
        to_ratio: to,
    };
    let sigma = calibrate::chain_throughput_pps(&path, DmpModel::DEFAULT_WMAX);
    let ratios = [1.4, 1.6, 1.8];
    let opts = scale.search_options();
    let mut jobs = Vec::new();
    for k in 1..=4usize {
        for &ratio in &ratios {
            jobs.push(
                TauSearchSpec {
                    paths: vec![path; k],
                    mu: k as f64 * sigma / ratio,
                    opts,
                }
                .into_job(format!("ext_kpaths:K{k}:ratio{ratio}")),
            );
        }
    }
    let cells = r.run_all(jobs);

    let mut t = Table::new(
        "Extension: K identical paths (p=0.02, R=150ms, TO=4), video scaled to keep \
         sigma_a/mu fixed — the paper's question (ii) generalised",
        &[
            "K",
            "mu (pkts ps) @1.6",
            "ratio 1.4",
            "ratio 1.6",
            "ratio 1.8",
        ],
    );
    let mut points = Vec::new();
    for k in 1..=4usize {
        let mut row = vec![k.to_string(), format!("{:.0}", k as f64 * sigma / 1.6)];
        for (ri, &ratio) in ratios.iter().enumerate() {
            let req = *cells[(k - 1) * ratios.len() + ri].ok().expect("search job");
            row.push(tau(req));
            points.push(Json::obj([
                ("k", Json::Num(k as f64)),
                ("ratio", Json::Num(ratio)),
                ("tau_s", opt_num(req)),
            ]));
        }
        t.row(row);
    }
    let mut text = t.render();
    text.push_str(
        "Reading: every added subscription adds its full throughput to the watchable\n\
         bitrate at the same ratio, and the required startup delay shrinks with K:\n\
         with more independent paths, one path's timeout stalls a smaller share of\n\
         the stream while the survivors keep filling the buffer (path diversity).\n",
    );
    let data = Json::obj([("points", Json::Arr(points)), ("table", t.to_json())]);
    TargetReport::new(text, data)
}

/// Extension 2 — stored-video streaming: live vs stored late fraction at the
/// same paths, µ and τ (the stored sender may work arbitrarily far ahead).
pub fn ext_stored(r: &Runner, scale: &Scale) -> TargetReport {
    let (p, to, mu) = (0.02, 4.0, 25.0);
    let taus = [2.0, 4.0, 8.0, 12.0];
    let rtt = calibrate::rtt_for_ratio(p, to, DmpModel::DEFAULT_WMAX, 2, mu, 1.3);
    let paths = vec![
        PathSpec {
            loss: p,
            rtt_s: rtt,
            to_ratio: to
        };
        2
    ];
    // One job per τ returning `[f_live, f_stored]`.
    let consumptions = scale.model_consumptions;
    let seed = scale.seed;
    let jobs: Vec<JobSpec<Vec<f64>>> = taus
        .iter()
        .map(|&tau_s| {
            let paths = paths.clone();
            let config_repr = format!(
                "ext-stored/v1/paths{paths:?}/mu{mu}/tau{tau_s}/consumptions{consumptions}/seed{seed}"
            );
            JobSpec::new(
                format!("ext_stored:tau{tau_s}"),
                config_repr,
                seed,
                move || {
                    let model = DmpModel::new(paths.clone(), mu, tau_s);
                    let live = model.late_fraction(consumptions, seed).f;
                    let stored = stored_video_late_fraction(
                        &model,
                        (consumptions / 20).max(10_000),
                        10,
                        seed,
                    );
                    vec![live, stored.f]
                },
            )
        })
        .collect();
    let cells = r.run_all(jobs);

    let mut t = Table::new(
        "Extension: live vs stored video (p=0.02, TO=4, mu=25, sigma_a/mu=1.3)",
        &["tau (s)", "f live", "f stored"],
    );
    let mut points = Vec::new();
    for (i, &tau_s) in taus.iter().enumerate() {
        let fs = cells[i].ok().expect("model job");
        t.row(vec![format!("{tau_s:.0}"), frac(fs[0]), frac(fs[1])]);
        points.push(Json::obj([
            ("tau_s", Json::Num(tau_s)),
            ("f_live", Json::Num(fs[0])),
            ("f_stored", Json::Num(fs[1])),
        ]));
    }
    let mut text = t.render();
    text.push_str(
        "Reading: the generation constraint is what makes live streaming hard; a\n\
         stored video with the same startup delay buffers ahead and suffers less.\n",
    );
    let data = Json::obj([("points", Json::Arr(points)), ("table", t.to_json())]);
    TargetReport::new(text, data)
}

/// Ablations in the packet simulator: send-buffer size, RED vs drop-tail,
/// Reno vs NewReno for the video flows (Setting 2-2).
pub fn ext_ablations(r: &Runner, scale: &Scale) -> TargetReport {
    let taus = [3.0, 6.0, 9.0];
    let base = || {
        let mut s = ExperimentSpec::new(
            *setting("2-2").expect("built-in"),
            SchedulerKind::Dynamic,
            scale.sim_duration_s,
            scale.seed,
        );
        s.warmup_s = 15.0;
        s
    };
    let runs = scale.sim_runs.max(2);

    let mut variants: Vec<(String, ExperimentSpec)> = Vec::new();
    variants.push(("baseline (drop-tail, Reno, buf 32)".into(), base()));
    for &buf in &[8usize, 128] {
        let mut s = base();
        s.send_buf_pkts = buf;
        variants.push((format!("send buffer {buf} pkts"), s));
    }
    let mut s = base();
    s.red = true;
    variants.push(("RED bottlenecks".into(), s));
    let mut s = base();
    s.video_flavor = TcpFlavor::NewReno;
    variants.push(("NewReno video flows".into(), s));
    let mut s = base();
    s.scheduler = SchedulerKind::Static;
    variants.push(("static splitting".into(), s));

    // One job per (variant, replication); the ablations keep their original
    // seed schedule (`seed + 7919·i`).
    let mut jobs = Vec::with_capacity(variants.len() * runs);
    for (vi, (_, spec)) in variants.iter().enumerate() {
        for i in 0..runs {
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(7919 * i as u64);
            let taus = taus.to_vec();
            let config_repr = format!("{}/taus{:?}", s.config_repr(), taus);
            jobs.push(JobSpec::new(
                format!("ablate:v{vi}:run{i}"),
                config_repr,
                s.seed,
                move || run_summary(&s, &taus),
            ));
        }
    }
    let cells = r.run_all(jobs);

    let mut t = Table::new(
        "Ablations on Setting 2-2 (mean over runs)",
        &[
            "variant",
            "video loss p",
            "f(tau=3)",
            "f(tau=6)",
            "f(tau=9)",
        ],
    );
    let mut points = Vec::new();
    for (vi, (name, _)) in variants.iter().enumerate() {
        let summaries: Vec<&RunSummary> = cells[vi * runs..(vi + 1) * runs]
            .iter()
            .map(|c| {
                c.ok()
                    .unwrap_or_else(|| panic!("{} failed: {:?}", c.label, c.failure()))
            })
            .collect();
        let mut loss = OnlineStats::new();
        let mut f = vec![OnlineStats::new(); taus.len()];
        for summary in &summaries {
            for p in &summary.paths {
                loss.push(p.loss);
            }
            for (slot, lf) in f.iter_mut().zip(&summary.per_tau) {
                slot.push(lf.playback_order);
            }
        }
        let f_means: Vec<f64> = f.iter().map(OnlineStats::mean).collect();
        t.row(vec![
            name.clone(),
            format!("{:.4}", loss.mean()),
            frac(f_means[0]),
            frac(f_means[1]),
            frac(f_means[2]),
        ]);
        points.push(Json::obj([
            ("variant", Json::Str(name.clone())),
            ("loss_mean", Json::Num(loss.mean())),
            ("tau_s", Json::nums(taus)),
            ("f_mean", Json::nums(f_means)),
        ]));
    }

    let mut text = t.render();
    text.push_str(
        "Notes: the send buffer shifts where packets queue (a huge buffer commits\n\
         packets to a path early and behaves more like static splitting). RED\n\
         equalises loss rates across flows — which *hurts* the paced video stream:\n\
         under drop-tail (+RTT diversity) a low-rate paced flow sees less loss than\n\
         the fair-share equilibrium, and the video depends on that. NewReno's\n\
         multi-loss recovery shaves the lateness tail.\n",
    );
    let data = Json::obj([("variants", Json::Arr(points)), ("table", t.to_json())]);
    TargetReport::new(text, data)
}
