//! Post-process a flight-recorder trace (see the [`obs`] crate) into the
//! paper-style diagnostics the `trace_report` binary prints: cwnd-evolution
//! and per-path throughput timelines, queue-depth percentiles, the
//! [`dmp_core::resilience`] summary, and a per-glitch "why" report that
//! correlates each playback stall with the scripted path events and TCP
//! recovery activity (RTO expirations, fast-recovery transitions) in the
//! surrounding window.

use dmp_core::resilience::{ResilienceReport, ResilienceSpec};
use dmp_core::trace::DeliveryRecord;
use obs::report::PacketTimes;
use obs::{EventKind, Trace, TraceEvent};

use crate::report::Table;

/// Knobs for [`render_report`].
#[derive(Debug, Clone, Copy)]
pub struct ReportOptions {
    /// Video packet rate µ (pkts/s); converts late-packet runs to seconds.
    pub rate_pps: f64,
    /// Startup delay τ: packet `i` stalls playback iff it misses `gen_i + τ`.
    pub tau_s: f64,
    /// Sliding window for the worst-window metric and the half-width of the
    /// correlation window drawn around each glitch.
    pub window_s: f64,
    /// Bucket width of the per-path throughput timeline, seconds.
    pub bucket_s: f64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self {
            rate_pps: 25.0,
            tau_s: 6.0,
            window_s: 10.0,
            bucket_s: 5.0,
        }
    }
}

/// One playback stall: a maximal run of consecutive late packets, in
/// generation time. Same rule as `dmp_core::resilience` (which reports only
/// aggregates): duration is the run's generation span plus one playback slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Glitch {
    /// Generation time of the first late packet, seconds.
    pub start_s: f64,
    /// End of the stall (last late packet's slot), seconds.
    pub end_s: f64,
}

/// Extract the glitch intervals from reconstructed packet times.
pub fn glitches(pkts: &[PacketTimes], tau_s: f64, rate_pps: f64) -> Vec<Glitch> {
    let slot_s = 1.0 / rate_pps;
    let is_late = |p: &PacketTimes| p.arrival_s.is_none_or(|a| a > p.gen_s + tau_s);
    let mut out = Vec::new();
    let mut run: Option<(f64, f64)> = None;
    for p in pkts {
        if is_late(p) {
            let (_, end) = run.get_or_insert((p.gen_s, p.gen_s));
            *end = p.gen_s;
        } else if let Some((s, e)) = run.take() {
            out.push(Glitch {
                start_s: s,
                end_s: e + slot_s,
            });
        }
    }
    if let Some((s, e)) = run {
        out.push(Glitch {
            start_s: s,
            end_s: e + slot_s,
        });
    }
    out
}

fn records(pkts: &[PacketTimes]) -> Vec<DeliveryRecord> {
    pkts.iter()
        .map(|p| DeliveryRecord {
            seq: p.seq,
            gen_ns: (p.gen_s * 1e9).round() as u64,
            arrival_ns: p.arrival_s.map(|a| (a * 1e9).round() as u64),
            path: p.path.unwrap_or(0) as u8,
        })
        .collect()
}

/// One-line rendering of a recovery-relevant event for the "why" listing.
fn describe(e: &TraceEvent) -> String {
    let t = e.t as f64 / 1e9;
    match &e.kind {
        EventKind::PathEvent { path, action } => {
            format!("{t:10.3}s  path {path} {}", action.name())
        }
        EventKind::RtoTimeout {
            conn,
            seq,
            backoff_exp,
        } => format!("{t:10.3}s  conn {conn} RTO expired (seq {seq}, backoff 2^{backoff_exp})"),
        EventKind::Retransmit { conn, seq, fast } => format!(
            "{t:10.3}s  conn {conn} {} seq {seq}",
            if *fast {
                "fast-retransmit"
            } else {
                "retransmit"
            }
        ),
        EventKind::FastRecovery { conn, entered } => format!(
            "{t:10.3}s  conn {conn} {} fast recovery",
            if *entered { "entered" } else { "left" }
        ),
        other => format!("{t:10.3}s  {other:?}"),
    }
}

/// Evenly sample up to `max` points of a series (always keeping the ends).
fn downsample<T: Copy>(series: &[T], max: usize) -> Vec<T> {
    if series.len() <= max || max < 2 {
        return series.to_vec();
    }
    (0..max)
        .map(|i| series[i * (series.len() - 1) / (max - 1)])
        .collect()
}

/// Render the full text report for one parsed trace.
pub fn render_report(trace: &Trace, opts: &ReportOptions) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flight-recorder report: {} events over {:.1} s\n",
        trace.events.len(),
        trace.duration_s()
    ));
    let algos = trace.cc_algo_map();
    let algo_of = |conn: u32| -> &str {
        algos
            .iter()
            .find(|(c, _)| *c == conn)
            .map_or("?", |(_, a)| a.as_str())
    };
    for (path, conn) in trace.path_conn_map() {
        if algos.is_empty() {
            out.push_str(&format!("  path {path} <-> conn {conn}\n"));
        } else {
            out.push_str(&format!(
                "  path {path} <-> conn {conn} ({})\n",
                algo_of(conn)
            ));
        }
    }
    if let Some(strategy) = trace.strategy() {
        out.push_str(&format!("  pull strategy: {strategy}\n"));
    }

    // Cwnd evolution: per-connection summary plus a sampled timeline.
    let mut cwnd = Table::new(
        "cwnd evolution (sampled; full series in the trace)",
        &["conn", "algo", "t (s)", "cwnd", "ssthresh"],
    );
    let mut recovery = Table::new(
        "TCP recovery activity per connection",
        &[
            "conn",
            "cwnd samples",
            "retx",
            "fast retx",
            "RTO",
            "fastrec entries",
        ],
    );
    for conn in trace.conns() {
        let series = trace.cwnd_series(conn);
        for (t, w, ss) in downsample(&series, 8) {
            cwnd.row(vec![
                conn.to_string(),
                algo_of(conn).to_string(),
                format!("{t:.3}"),
                format!("{w:.2}"),
                format!("{ss:.1}"),
            ]);
        }
        let count =
            |f: &dyn Fn(&EventKind) -> bool| trace.events.iter().filter(|e| f(&e.kind)).count();
        recovery.row(vec![
            conn.to_string(),
            series.len().to_string(),
            count(
                &|k| matches!(k, EventKind::Retransmit { conn: c, fast: false, .. } if *c == conn),
            )
            .to_string(),
            count(
                &|k| matches!(k, EventKind::Retransmit { conn: c, fast: true, .. } if *c == conn),
            )
            .to_string(),
            count(&|k| matches!(k, EventKind::RtoTimeout { conn: c, .. } if *c == conn))
                .to_string(),
            count(
                &|k| matches!(k, EventKind::FastRecovery { conn: c, entered: true } if *c == conn),
            )
            .to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&cwnd.render());
    out.push('\n');
    out.push_str(&recovery.render());

    // Per-path throughput timeline.
    let mut tp = Table::new(
        format!(
            "per-path delivered packets per {:.0}-s bucket",
            opts.bucket_s
        ),
        &["path", "timeline"],
    );
    for (path, counts) in trace.path_throughput(opts.bucket_s) {
        tp.row(vec![
            path.to_string(),
            counts
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    out.push('\n');
    out.push_str(&tp.render());

    // Queue-depth percentiles.
    let mut q = Table::new(
        "queue occupancy (packets)",
        &["queue", "samples", "p50", "p90", "p99", "max"],
    );
    let srv = trace.srv_queue_stats();
    if srv.samples > 0 {
        q.row(vec![
            "server pull queue".to_string(),
            srv.samples.to_string(),
            srv.p50.to_string(),
            srv.p90.to_string(),
            srv.p99.to_string(),
            srv.max.to_string(),
        ]);
    }
    for link in trace.sampled_links() {
        let s = trace.link_queue_stats(link);
        q.row(vec![
            format!("link {link}"),
            s.samples.to_string(),
            s.p50.to_string(),
            s.p90.to_string(),
            s.p99.to_string(),
            s.max.to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&q.render());

    // Resilience summary over the reconstructed deliveries, anchored at the
    // first scripted "down" if the trace has one. The tail is trimmed the
    // way `StreamTrace::stable_records` trims it: a packet generated within
    // τ+5 s of the end may look "never arrived" only because the run ended,
    // and would otherwise fabricate an end-of-trace glitch.
    let mut pkts = trace.packet_times();
    let end_s = pkts.iter().map(|p| p.gen_s).fold(0.0, f64::max);
    pkts.retain(|p| p.gen_s < end_s - (opts.tau_s + 5.0));
    if pkts.is_empty() {
        out.push_str("\nno (stable) gen/dlv events in the trace; skipping the glitch report\n");
        return out;
    }
    let fail_at_s = trace.path_events().iter().find_map(|e| match e.kind {
        EventKind::PathEvent {
            action: obs::PathAction::Down,
            ..
        } => Some(e.t as f64 / 1e9),
        _ => None,
    });
    let spec = ResilienceSpec {
        tau_s: opts.tau_s,
        window_s: opts.window_s,
        fail_at_s,
    };
    let res = ResilienceReport::from_records(&records(&pkts), opts.rate_pps, spec);
    out.push_str(&format!(
        "\nresilience @ tau={:.0}s (mu={:.0} pkt/s): {} glitch(es), {:.1} s stalled total, \
         worst {:.0}-s window {:.1}% late, recovered: {}{}\n",
        res.tau_s,
        opts.rate_pps,
        res.glitch_count,
        res.total_glitch_s,
        opts.window_s,
        res.worst_window_late * 100.0,
        res.recovered,
        match res.time_to_recover_s {
            Some(ttr) => format!(", time to recover {ttr:.1} s"),
            None => String::new(),
        },
    ));

    // The per-glitch "why". Every glitch gets one table row with its most
    // plausible cause — the last scripted path event shortly before (or
    // within τ of) the stall's onset; the full recovery-event windows are
    // spelled out only for the longest stalls, which keeps reports on
    // glitch-storm traces readable.
    let glitch_list = glitches(&pkts, opts.tau_s, opts.rate_pps);
    let cause_of = |g: &Glitch| {
        trace.path_events().into_iter().rev().find(|e| {
            let t = e.t as f64 / 1e9;
            t <= g.start_s + opts.tau_s && t >= g.start_s - opts.window_s
        })
    };
    let mut gt = Table::new(
        "glitches and their causes",
        &["glitch", "start (s)", "end (s)", "stalled (s)", "cause"],
    );
    for (i, g) in glitch_list.iter().enumerate() {
        let cause = match cause_of(g).map(|e| &e.kind) {
            Some(EventKind::PathEvent { path, action }) => {
                format!("scripted `{}` on path {path}", action.name())
            }
            _ => "congestion (no scripted path event nearby)".to_string(),
        };
        gt.row(vec![
            i.to_string(),
            format!("{:.2}", g.start_s),
            format!("{:.2}", g.end_s),
            format!("{:.2}", g.end_s - g.start_s),
            cause,
        ]);
    }
    if glitch_list.is_empty() {
        out.push_str("\nno glitches at this tau; nothing to explain\n");
        return out;
    }
    out.push('\n');
    out.push_str(&gt.render());

    const MAX_DETAILED: usize = 3;
    let mut by_duration: Vec<(usize, &Glitch)> = glitch_list.iter().enumerate().collect();
    by_duration.sort_by(|(ia, a), (ib, b)| {
        let (da, db) = (a.end_s - a.start_s, b.end_s - b.start_s);
        db.partial_cmp(&da).unwrap().then(ia.cmp(ib))
    });
    by_duration.truncate(MAX_DETAILED);
    by_duration.sort_by_key(|(i, _)| *i);
    for (i, g) in by_duration {
        out.push_str(&format!(
            "\nglitch {i}: generation time [{:.2} s, {:.2} s] ({:.2} s stalled)\n",
            g.start_s,
            g.end_s,
            g.end_s - g.start_s
        ));
        match cause_of(g).map(|e| (e.t as f64 / 1e9, &e.kind)) {
            Some((t, EventKind::PathEvent { path, action })) => out.push_str(&format!(
                "  cause: scripted `{}` on path {path} at {t:.2} s\n",
                action.name(),
            )),
            _ => out.push_str("  cause: no scripted path event nearby (congestion-driven)\n"),
        }
        let (w0, w1) = (
            (g.start_s - opts.window_s).max(0.0),
            g.end_s + opts.window_s,
        );
        let window = trace.recovery_events_in(w0, w1);
        out.push_str(&format!(
            "  {} recovery-relevant event(s) in [{w0:.2} s, {w1:.2} s]:\n",
            window.len(),
        ));
        const MAX_LISTED: usize = 12;
        for e in window.iter().take(MAX_LISTED) {
            out.push_str(&format!("  {}\n", describe(e)));
        }
        if window.len() > MAX_LISTED {
            out.push_str(&format!("    ... {} more\n", window.len() - MAX_LISTED));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::PathAction;

    fn ev(t_s: f64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t: (t_s * 1e9).round() as u64,
            kind,
        }
    }

    /// 40 packets at 1 pkt/s; path 0 goes down at t=10 and packets 10..=14
    /// arrive 8 s late (tau 4 → one glitch), the rest arrive instantly.
    fn failover_trace() -> Trace {
        let mut events = vec![
            ev(0.0, EventKind::PathConn { path: 0, conn: 0 }),
            ev(0.0, EventKind::PathConn { path: 1, conn: 1 }),
        ];
        for i in 0..40u64 {
            let t = i as f64;
            events.push(ev(t, EventKind::Generated { seq: i }));
            let (lateness, path) = if (10..15).contains(&i) {
                (8.0, 1)
            } else {
                (0.01, 0)
            };
            events.push(ev(t + lateness, EventKind::Delivered { path, seq: i }));
        }
        events.push(ev(
            10.0,
            EventKind::PathEvent {
                path: 0,
                action: PathAction::Down,
            },
        ));
        events.push(ev(
            10.4,
            EventKind::RtoTimeout {
                conn: 0,
                seq: 10,
                backoff_exp: 1,
            },
        ));
        events.sort_by_key(|e| e.t);
        Trace { events }
    }

    #[test]
    fn glitches_are_maximal_late_runs() {
        let t = failover_trace();
        let g = glitches(&t.packet_times(), 4.0, 1.0);
        assert_eq!(g.len(), 1);
        assert!((g[0].start_s - 10.0).abs() < 1e-9);
        assert!((g[0].end_s - 15.0).abs() < 1e-9, "end {}", g[0].end_s);
    }

    #[test]
    fn report_correlates_glitch_with_scripted_down_and_rto() {
        let t = failover_trace();
        let opts = ReportOptions {
            rate_pps: 1.0,
            tau_s: 4.0,
            window_s: 10.0,
            bucket_s: 10.0,
        };
        let text = render_report(&t, &opts);
        assert!(text.contains("1 glitch(es)"), "{text}");
        assert!(
            text.contains("cause: scripted `down` on path 0 at 10.00 s"),
            "{text}"
        );
        assert!(text.contains("RTO expired"), "{text}");
        assert!(text.contains("path 0 <-> conn 0"), "{text}");
    }

    #[test]
    fn clean_trace_reports_nothing_to_explain() {
        let mut t = failover_trace();
        t.events.retain(|e| {
            !matches!(
                e.kind,
                EventKind::PathEvent { .. } | EventKind::RtoTimeout { .. }
            )
        });
        let text = render_report(
            &t,
            &ReportOptions {
                rate_pps: 1.0,
                tau_s: 20.0,
                window_s: 10.0,
                bucket_s: 10.0,
            },
        );
        assert!(text.contains("0 glitch(es)"), "{text}");
        assert!(text.contains("nothing to explain"), "{text}");
    }
}
