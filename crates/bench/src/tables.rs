//! Tables 1–3: the bottleneck configurations and the measured per-path TCP
//! parameters of the validation settings.

use dmp_core::spec::SchedulerKind;
use dmp_sim::{run_batch, ExperimentSpec, Setting, CORRELATED, HETEROGENEOUS, HOMOGENEOUS, TABLE1};

use crate::report::{ci, Table};
use crate::scale::Scale;

/// Table 1: the four bottleneck-link configurations (static input — printed
/// so the reproduction is self-describing).
pub fn table1() -> String {
    let mut t = Table::new(
        "Table 1: bottleneck-link configurations",
        &[
            "Config",
            "FTP flows",
            "HTTP flows",
            "Prop. delay (ms)",
            "B.w. (Mbps)",
            "Buffer (pkts)",
        ],
    );
    for c in &TABLE1 {
        t.row(vec![
            c.id.to_string(),
            c.ftp_flows.to_string(),
            c.http_flows.to_string(),
            format!("{:.0}", c.delay_ms),
            format!("{:.1}", c.bandwidth_mbps),
            c.buffer_pkts.to_string(),
        ]);
    }
    t.render()
}

fn measure_settings(title: &str, settings: &[Setting], scale: &Scale) -> String {
    let mut t = Table::new(
        title,
        &[
            "Setting",
            "p1",
            "p2",
            "R1 (ms)",
            "R2 (ms)",
            "TO1",
            "TO2",
            "mu (pkts ps)",
        ],
    );
    for (i, s) in settings.iter().enumerate() {
        let spec = ExperimentSpec::new(
            *s,
            SchedulerKind::Dynamic,
            scale.sim_duration_s,
            scale.seed.wrapping_add(1000 * i as u64),
        );
        let batch = run_batch(&spec, scale.sim_runs, &[]);
        t.row(vec![
            s.name.to_string(),
            ci(batch.loss[0].mean(), batch.loss[0].ci95_half_width(), 3),
            ci(batch.loss[1].mean(), batch.loss[1].ci95_half_width(), 3),
            ci(
                batch.rtt[0].mean() * 1e3,
                batch.rtt[0].ci95_half_width() * 1e3,
                0,
            ),
            ci(
                batch.rtt[1].mean() * 1e3,
                batch.rtt[1].ci95_half_width() * 1e3,
                0,
            ),
            ci(
                batch.to_ratio[0].mean(),
                batch.to_ratio[0].ci95_half_width(),
                2,
            ),
            ci(
                batch.to_ratio[1].mean(),
                batch.to_ratio[1].ci95_half_width(),
                2,
            ),
            format!("{:.0}", s.video.rate_pps),
        ]);
    }
    t.render()
}

/// Table 2 analog: measured `p`, `R`, `T_O`, µ for the independent-path
/// settings (homogeneous then heterogeneous).
pub fn table2(scale: &Scale) -> String {
    let mut out = measure_settings(
        "Table 2: measured video-stream parameters, independent paths (homogeneous)",
        &HOMOGENEOUS,
        scale,
    );
    out.push('\n');
    out.push_str(&measure_settings(
        "Table 2 (cont.): independent heterogeneous paths",
        &HETEROGENEOUS,
        scale,
    ));
    out
}

/// Table 3 analog: the same measurements when both TCP flows share one
/// bottleneck (correlated paths, Fig. 6 topology).
pub fn table3(scale: &Scale) -> String {
    measure_settings(
        "Table 3: measured video-stream parameters, correlated paths",
        &CORRELATED,
        scale,
    )
}
