//! Tables 1–3: the bottleneck configurations and the measured per-path TCP
//! parameters of the validation settings.

use dmp_core::spec::SchedulerKind;
use dmp_runner::{Json, Runner};
use dmp_sim::{
    batch_jobs, BatchOutput, ExperimentSpec, RunSummary, Setting, CORRELATED, HETEROGENEOUS,
    HOMOGENEOUS, TABLE1,
};

use crate::report::{ci, Table};
use crate::scale::Scale;
use crate::target::TargetReport;

/// Table 1: the four bottleneck-link configurations (static input — printed
/// so the reproduction is self-describing).
pub fn table1(_r: &Runner, _scale: &Scale) -> TargetReport {
    let mut t = Table::new(
        "Table 1: bottleneck-link configurations",
        &[
            "Config",
            "FTP flows",
            "HTTP flows",
            "Prop. delay (ms)",
            "B.w. (Mbps)",
            "Buffer (pkts)",
        ],
    );
    for c in &TABLE1 {
        t.row(vec![
            c.id.to_string(),
            c.ftp_flows.to_string(),
            c.http_flows.to_string(),
            format!("{:.0}", c.delay_ms),
            format!("{:.1}", c.bandwidth_mbps),
            c.buffer_pkts.to_string(),
        ]);
    }
    let data = Json::obj([("table", t.to_json())]);
    TargetReport::new(t.render(), data)
}

/// Run the per-setting batches on the runner (one job per replication,
/// settings × runs submitted as a single flat batch) and reduce each
/// setting's chunk back into a [`BatchOutput`].
fn measure_batches(r: &Runner, settings: &[Setting], scale: &Scale) -> Vec<BatchOutput> {
    let mut jobs = Vec::with_capacity(settings.len() * scale.sim_runs);
    for (i, s) in settings.iter().enumerate() {
        let spec = ExperimentSpec::new(
            *s,
            SchedulerKind::Dynamic,
            scale.sim_duration_s,
            scale.seed.wrapping_add(1000 * i as u64),
        );
        jobs.extend(batch_jobs(&spec, scale.sim_runs, &[]));
    }
    let cells = r.run_all(jobs);
    cells
        .chunks(scale.sim_runs)
        .map(|chunk| {
            let summaries: Vec<RunSummary> = chunk
                .iter()
                .map(|c| {
                    c.ok()
                        .unwrap_or_else(|| panic!("{} failed: {:?}", c.label, c.failure()))
                        .clone()
                })
                .collect();
            BatchOutput::from_summaries(&[], &summaries)
        })
        .collect()
}

fn measure_settings(title: &str, settings: &[Setting], batches: &[BatchOutput]) -> (Table, Json) {
    let mut t = Table::new(
        title,
        &[
            "Setting",
            "p1",
            "p2",
            "R1 (ms)",
            "R2 (ms)",
            "TO1",
            "TO2",
            "mu (pkts ps)",
        ],
    );
    let mut series = Vec::new();
    for (s, batch) in settings.iter().zip(batches) {
        t.row(vec![
            s.name.to_string(),
            ci(batch.loss[0].mean(), batch.loss[0].ci95_half_width(), 3),
            ci(batch.loss[1].mean(), batch.loss[1].ci95_half_width(), 3),
            ci(
                batch.rtt[0].mean() * 1e3,
                batch.rtt[0].ci95_half_width() * 1e3,
                0,
            ),
            ci(
                batch.rtt[1].mean() * 1e3,
                batch.rtt[1].ci95_half_width() * 1e3,
                0,
            ),
            ci(
                batch.to_ratio[0].mean(),
                batch.to_ratio[0].ci95_half_width(),
                2,
            ),
            ci(
                batch.to_ratio[1].mean(),
                batch.to_ratio[1].ci95_half_width(),
                2,
            ),
            format!("{:.0}", s.video.rate_pps),
        ]);
        let stat = |name: &'static str, st: &dmp_core::stats::OnlineStats| {
            (
                name,
                Json::obj([
                    ("mean", Json::Num(st.mean())),
                    ("ci95", Json::Num(st.ci95_half_width())),
                ]),
            )
        };
        series.push(Json::obj([
            ("setting", Json::Str(s.name.to_string())),
            ("mu_pps", Json::Num(s.video.rate_pps)),
            stat("p1", &batch.loss[0]),
            stat("p2", &batch.loss[1]),
            stat("rtt1_s", &batch.rtt[0]),
            stat("rtt2_s", &batch.rtt[1]),
            stat("to1", &batch.to_ratio[0]),
            stat("to2", &batch.to_ratio[1]),
        ]));
    }
    (t, Json::Arr(series))
}

/// Table 2 analog: measured `p`, `R`, `T_O`, µ for the independent-path
/// settings (homogeneous then heterogeneous).
pub fn table2(r: &Runner, scale: &Scale) -> TargetReport {
    let all: Vec<Setting> = HOMOGENEOUS.iter().chain(&HETEROGENEOUS).copied().collect();
    let batches = measure_batches(r, &all, scale);
    let (t_homo, s_homo) = measure_settings(
        "Table 2: measured video-stream parameters, independent paths (homogeneous)",
        &HOMOGENEOUS,
        &batches[..HOMOGENEOUS.len()],
    );
    let (t_het, s_het) = measure_settings(
        "Table 2 (cont.): independent heterogeneous paths",
        &HETEROGENEOUS,
        &batches[HOMOGENEOUS.len()..],
    );
    let mut text = t_homo.render();
    text.push('\n');
    text.push_str(&t_het.render());
    let data = Json::obj([
        ("tables", Json::arr([t_homo.to_json(), t_het.to_json()])),
        ("homogeneous", s_homo),
        ("heterogeneous", s_het),
    ]);
    TargetReport::new(text, data)
}

/// Table 3 analog: the same measurements when both TCP flows share one
/// bottleneck (correlated paths, Fig. 6 topology).
pub fn table3(r: &Runner, scale: &Scale) -> TargetReport {
    let batches = measure_batches(r, &CORRELATED, scale);
    let (t, series) = measure_settings(
        "Table 3: measured video-stream parameters, correlated paths",
        &CORRELATED,
        &batches,
    );
    let data = Json::obj([("table", t.to_json()), ("settings", series)]);
    TargetReport::new(t.render(), data)
}
