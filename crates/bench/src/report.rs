//! Plain-text report formatting: fixed-width tables and (x, y…) series that
//! mirror the rows and curves of the paper's tables and figures.

use std::fmt::Write as _;

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Structured form for JSON artifacts: title, header, and rows exactly
    /// as rendered (deterministic — no floats re-parsed, no locale).
    pub fn to_json(&self) -> dmp_runner::Json {
        use dmp_runner::Json;
        Json::obj([
            ("title", Json::Str(self.title.clone())),
            (
                "header",
                Json::arr(self.header.iter().map(|h| Json::Str(h.clone()))),
            ),
            (
                "rows",
                Json::arr(
                    self.rows
                        .iter()
                        .map(|r| Json::arr(r.iter().map(|c| Json::Str(c.clone())))),
                ),
            ),
        ])
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{:>width$}  ", c, width = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Format a value with a 95% confidence half-width, e.g. `0.037 ±0.004`.
pub fn ci(mean: f64, half: f64, digits: usize) -> String {
    format!("{mean:.digits$} ±{half:.digits$}")
}

/// Format a late fraction in scientific-ish notation like the paper's log
/// plots (`<1e-6` for zero observations).
pub fn frac(f: f64) -> String {
    if f == 0.0 {
        "<1e-6".to_string()
    } else {
        format!("{f:.2e}")
    }
}

/// Format an optional required startup delay (`-` = not reachable).
pub fn tau(t: Option<f64>) -> String {
    match t {
        Some(t) => format!("{t:.1}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "value"]);
        t.row(vec!["x".into(), "1.0".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        // Both rows align on the same column width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ci(0.0371, 0.0042, 3), "0.037 ±0.004");
        assert_eq!(frac(0.0), "<1e-6");
        assert_eq!(frac(3.2e-4), "3.20e-4");
        assert_eq!(tau(Some(9.95)), "9.9"); // f64 formatting truncation is fine
        assert_eq!(tau(None), "-");
    }
}
