//! Cross-run regression differ: compare two metrics documents (or whole
//! `metrics/` directories) leaf-by-leaf with per-metric relative-change
//! thresholds.
//!
//! The comparison model is deliberately simple because the inputs are
//! deterministic by construction: a metrics snapshot is a pure function of
//! the run, so two runs of the same configuration must agree to the byte and
//! the default threshold is **zero**. Thresholds exist for the cross-commit
//! use — diffing today's `metrics/` against a committed baseline after a
//! change that legitimately shifts a metric (e.g. a congestion-control fix
//! moving `net.rtt_us.p90`) — where the reviewer raises the budget for the
//! metrics the change is supposed to move and everything else stays gated at
//! zero.
//!
//! Three-way verdict, one exit code each (see [`Verdict::exit_code`]):
//!
//! * **Ok** (0) — every compared leaf within its threshold;
//! * **Drift** (1) — at least one numeric leaf moved past its threshold;
//! * **Incomparable** (2) — the documents do not describe the same
//!   configuration: a string/bool leaf (labels: `cc`, `strategy`, `engine`,
//!   `backend`…) differs, or a leaf/file exists on one side only. Refusing
//!   beats reporting nonsense drift between, say, a Reno run and a CUBIC run.
//!
//! Histogram bucket dumps (paths ending `.buckets`) are skipped: the exact
//! moments and percentiles serialized next to them already witness any
//! change, and bucket-level diffs would just repeat it hundreds of times.

use std::fmt::Write as _;
use std::path::Path;

use dmp_runner::Json;

/// Outcome of a diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// All compared leaves within threshold.
    Ok,
    /// At least one numeric leaf moved past its threshold.
    Drift,
    /// The runs are not comparable (config mismatch / missing leaves).
    Incomparable,
}

impl Verdict {
    /// Process exit code for the CLI: 0 ok, 1 drift, 2 incomparable.
    pub fn exit_code(self) -> i32 {
        match self {
            Verdict::Ok => 0,
            Verdict::Drift => 1,
            Verdict::Incomparable => 2,
        }
    }

    /// Machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Drift => "drift",
            Verdict::Incomparable => "incomparable",
        }
    }
}

/// Per-metric relative-change budgets.
#[derive(Debug, Clone, Default)]
pub struct DiffOptions {
    /// Budget for every leaf without a more specific override. Zero (the
    /// default) demands byte-level agreement — right for same-commit
    /// determinism gates.
    pub default_rel: f64,
    /// `(path prefix, budget)` overrides; the **longest** matching prefix
    /// wins, so `("net.", 0.02)` can sit under `("net.rtt_us", 0.10)`.
    pub overrides: Vec<(String, f64)>,
}

impl DiffOptions {
    /// The budget applying to `path`.
    pub fn threshold_for(&self, path: &str) -> f64 {
        self.overrides
            .iter()
            .filter(|(prefix, _)| path.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map_or(self.default_rel, |&(_, rel)| rel)
    }
}

/// One numeric leaf that moved past its budget.
#[derive(Debug, Clone)]
pub struct Drift {
    /// Dotted leaf path (`<file>:` prefixed in directory mode).
    pub path: String,
    /// Baseline value.
    pub before: f64,
    /// Candidate value.
    pub after: f64,
    /// Relative change `|after-before| / max(|before|,|after|)`.
    pub rel: f64,
    /// The budget the change exceeded.
    pub threshold: f64,
}

/// The full machine-readable result of a diff.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Numeric leaves compared (within or past budget).
    pub compared: usize,
    /// Leaves past their budget, first-seen order.
    pub drifted: Vec<Drift>,
    /// Reasons the runs are not comparable (empty when they are).
    pub incomparable: Vec<String>,
}

impl DiffReport {
    /// Fold this report's facts into a verdict. Incomparability dominates:
    /// drift between mismatched configs is meaningless.
    pub fn verdict(&self) -> Verdict {
        if !self.incomparable.is_empty() {
            Verdict::Incomparable
        } else if !self.drifted.is_empty() {
            Verdict::Drift
        } else {
            Verdict::Ok
        }
    }

    /// The machine-readable verdict document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("verdict", Json::Str(self.verdict().name().to_string())),
            ("compared", Json::Num(self.compared as f64)),
            (
                "drifted",
                Json::arr(self.drifted.iter().map(|d| {
                    Json::obj([
                        ("path", Json::Str(d.path.clone())),
                        ("before", Json::Num(d.before)),
                        ("after", Json::Num(d.after)),
                        ("rel", Json::Num(d.rel)),
                        ("threshold", Json::Num(d.threshold)),
                    ])
                })),
            ),
            (
                "incomparable",
                Json::arr(self.incomparable.iter().map(|r| Json::Str(r.clone()))),
            ),
        ])
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.incomparable {
            let _ = writeln!(out, "incomparable: {r}");
        }
        for d in &self.drifted {
            let _ = writeln!(
                out,
                "drift: {} {} -> {} (rel {:.3e} > {:.3e})",
                d.path, d.before, d.after, d.rel, d.threshold
            );
        }
        let _ = writeln!(
            out,
            "verdict: {} ({} leaves compared, {} drifted, {} incomparable)",
            self.verdict().name(),
            self.compared,
            self.drifted.len(),
            self.incomparable.len()
        );
        out
    }
}

/// A comparable leaf value.
#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Num(f64),
    /// Strings, bools, and nulls: configuration-shaped, compared exactly.
    Text(String),
}

/// Flatten a JSON document into `(dotted path, leaf)` pairs in document
/// order. Arrays index as `path[i]`; paths ending `.buckets` are skipped
/// (see module docs).
fn flatten(doc: &Json) -> Vec<(String, Leaf)> {
    fn walk(path: &str, node: &Json, out: &mut Vec<(String, Leaf)>) {
        match node {
            Json::Obj(pairs) => {
                for (k, v) in pairs {
                    if k == "buckets" {
                        continue;
                    }
                    let p = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    walk(&p, v, out);
                }
            }
            Json::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    walk(&format!("{path}[{i}]"), v, out);
                }
            }
            Json::Num(n) => out.push((path.to_string(), Leaf::Num(*n))),
            Json::Str(s) => out.push((path.to_string(), Leaf::Text(s.clone()))),
            Json::Bool(b) => out.push((path.to_string(), Leaf::Text(b.to_string()))),
            Json::Null => out.push((path.to_string(), Leaf::Text("null".to_string()))),
        }
    }
    let mut out = Vec::new();
    walk("", doc, &mut out);
    out
}

/// Relative change between two values: 0 when equal (including both zero),
/// else `|b-a| / max(|a|,|b|)` — symmetric, and 1.0 when one side is zero.
fn rel_change(a: f64, b: f64) -> f64 {
    if a == b {
        return 0.0;
    }
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (b - a).abs() / scale
    }
}

/// Diff two documents into `report`, prefixing every path with `prefix`
/// (directory mode passes the file stem; single-document mode passes "").
fn diff_into(report: &mut DiffReport, prefix: &str, a: &Json, b: &Json, opts: &DiffOptions) {
    let la = flatten(a);
    let lb = flatten(b);
    let full = |p: &str| {
        if prefix.is_empty() {
            p.to_string()
        } else {
            format!("{prefix}:{p}")
        }
    };
    let mb: std::collections::BTreeMap<&str, &Leaf> =
        lb.iter().map(|(p, l)| (p.as_str(), l)).collect();
    let ma: std::collections::BTreeMap<&str, &Leaf> =
        la.iter().map(|(p, l)| (p.as_str(), l)).collect();
    for (p, _) in &lb {
        if !ma.contains_key(p.as_str()) {
            report
                .incomparable
                .push(format!("{} only in candidate", full(p)));
        }
    }
    for (p, leaf_a) in &la {
        let Some(leaf_b) = mb.get(p.as_str()) else {
            report
                .incomparable
                .push(format!("{} only in baseline", full(p)));
            continue;
        };
        match (leaf_a, leaf_b) {
            (Leaf::Num(x), Leaf::Num(y)) => {
                report.compared += 1;
                let rel = rel_change(*x, *y);
                let threshold = opts.threshold_for(p);
                if rel > threshold {
                    report.drifted.push(Drift {
                        path: full(p),
                        before: *x,
                        after: *y,
                        rel,
                        threshold,
                    });
                }
            }
            (Leaf::Text(x), Leaf::Text(y)) => {
                if x != y {
                    report.incomparable.push(format!(
                        "{} differs: {x:?} vs {y:?} (config mismatch)",
                        full(p)
                    ));
                }
            }
            _ => report
                .incomparable
                .push(format!("{} changed type", full(p))),
        }
    }
}

/// Diff two in-memory documents.
pub fn diff_docs(a: &Json, b: &Json, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    diff_into(&mut report, "", a, b, opts);
    report
}

fn parse_file(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    dmp_runner::json::parse(&text).ok_or_else(|| format!("cannot parse {}", path.display()))
}

/// JSON files directly inside `dir`, sorted by file name.
fn json_files(dir: &Path) -> Result<Vec<std::path::PathBuf>, String> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot list {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    Ok(files)
}

/// Diff two paths, each either a JSON file or a directory of JSON files
/// (e.g. two `target/artifacts/metrics/` trees, or two `BENCH_*.json`
/// captures). In directory mode files pair up by name; a file present on one
/// side only makes the runs incomparable.
pub fn diff_paths(a: &Path, b: &Path, opts: &DiffOptions) -> Result<DiffReport, String> {
    let mut report = DiffReport::default();
    match (a.is_dir(), b.is_dir()) {
        (true, true) => {
            let fa = json_files(a)?;
            let fb = json_files(b)?;
            let name = |p: &Path| p.file_name().unwrap_or_default().to_os_string();
            let nb: Vec<_> = fb.iter().map(|p| name(p)).collect();
            for p in &fb {
                if !fa.iter().any(|q| name(q) == name(p)) {
                    report
                        .incomparable
                        .push(format!("{} only in candidate", p.display()));
                }
            }
            for pa in &fa {
                let n = name(pa);
                let Some(i) = nb.iter().position(|m| *m == n) else {
                    report
                        .incomparable
                        .push(format!("{} only in baseline", pa.display()));
                    continue;
                };
                let stem = pa
                    .file_stem()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .into_owned();
                diff_into(
                    &mut report,
                    &stem,
                    &parse_file(pa)?,
                    &parse_file(&fb[i])?,
                    opts,
                );
            }
        }
        (false, false) => diff_into(&mut report, "", &parse_file(a)?, &parse_file(b)?, opts),
        _ => {
            report.incomparable.push(format!(
                "{} and {} are not both files or both directories",
                a.display(),
                b.display()
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmp_runner::JsonCodec;

    fn snapshot() -> obs::MetricsSnapshot {
        let mut m = obs::MetricsSnapshot::new().with_label("cc", "reno");
        m.counter_add("frame.delivered", 100);
        m.gauge_max("net.peak_queue_pkts", 12.0);
        for v in [3, 5, 5, 9, 40] {
            m.histogram("frame.delay_ms").record(v);
        }
        m
    }

    #[test]
    fn identical_documents_report_zero_drift() {
        let doc = snapshot().to_json();
        let r = diff_docs(&doc, &doc, &DiffOptions::default());
        assert_eq!(r.verdict(), Verdict::Ok);
        assert!(r.compared > 0);
        assert!(r.drifted.is_empty() && r.incomparable.is_empty());
        assert_eq!(r.verdict().exit_code(), 0);
    }

    #[test]
    fn perturbation_past_threshold_is_drift() {
        let a = snapshot();
        let mut b = snapshot();
        b.counter_add("frame.delivered", 10); // 100 -> 110: rel ≈ 0.091
        let report = diff_docs(
            &a.to_json(),
            &b.to_json(),
            &DiffOptions {
                default_rel: 0.05,
                overrides: vec![],
            },
        );
        assert_eq!(report.verdict(), Verdict::Drift);
        assert_eq!(report.verdict().exit_code(), 1);
        assert_eq!(report.drifted.len(), 1);
        assert_eq!(report.drifted[0].path, "counters.frame.delivered");
        // A generous override on that one metric absorbs the change.
        let report = diff_docs(
            &a.to_json(),
            &b.to_json(),
            &DiffOptions {
                default_rel: 0.05,
                overrides: vec![("counters.frame.delivered".into(), 0.2)],
            },
        );
        assert_eq!(report.verdict(), Verdict::Ok);
    }

    #[test]
    fn label_mismatch_is_incomparable_even_with_loose_thresholds() {
        let a = snapshot();
        let b = snapshot().with_label("cc", "cubic");
        let report = diff_docs(
            &a.to_json(),
            &b.to_json(),
            &DiffOptions {
                default_rel: 10.0,
                overrides: vec![],
            },
        );
        assert_eq!(report.verdict(), Verdict::Incomparable);
        assert_eq!(report.verdict().exit_code(), 2);
        assert!(report.incomparable[0].contains("labels.cc"));
    }

    #[test]
    fn missing_leaf_is_incomparable() {
        let a = snapshot();
        let mut b = snapshot();
        b.counter_add("net.retransmits", 1); // candidate-only leaf
        let report = diff_docs(&a.to_json(), &b.to_json(), &DiffOptions::default());
        assert_eq!(report.verdict(), Verdict::Incomparable);
    }

    #[test]
    fn bucket_dumps_are_skipped() {
        let a = snapshot();
        let mut b = snapshot();
        // Same count/min/max but different interior values: buckets differ,
        // and so do sum/mean/percentiles — the skipped bucket paths must not
        // be the *only* witnesses.
        let doc_a = a.to_json();
        for (p, _) in flatten(&doc_a) {
            assert!(!p.contains("buckets"), "bucket path {p} leaked into diff");
        }
        b.histogram("frame.delay_ms").record(5);
        let report = diff_docs(&doc_a, &b.to_json(), &DiffOptions::default());
        assert_eq!(report.verdict(), Verdict::Drift);
    }

    #[test]
    fn longest_prefix_override_wins() {
        let opts = DiffOptions {
            default_rel: 0.0,
            overrides: vec![
                ("histograms.".into(), 0.02),
                ("histograms.net.rtt_us".into(), 0.5),
            ],
        };
        assert_eq!(opts.threshold_for("histograms.net.rtt_us.p90"), 0.5);
        assert_eq!(opts.threshold_for("histograms.frame.delay_ms.p90"), 0.02);
        assert_eq!(opts.threshold_for("counters.frame.lost"), 0.0);
    }

    #[test]
    fn directory_mode_pairs_files_by_name() {
        let tmp = std::env::temp_dir().join(format!("bench_diff_test_{}", std::process::id()));
        let (da, db) = (tmp.join("a"), tmp.join("b"));
        std::fs::create_dir_all(&da).unwrap();
        std::fs::create_dir_all(&db).unwrap();
        let doc = snapshot().to_json().render_pretty();
        std::fs::write(da.join("ext_fleet.json"), &doc).unwrap();
        std::fs::write(db.join("ext_fleet.json"), &doc).unwrap();
        let r = diff_paths(&da, &db, &DiffOptions::default()).unwrap();
        assert_eq!(r.verdict(), Verdict::Ok);
        // An extra candidate file breaks comparability.
        std::fs::write(db.join("extra.json"), &doc).unwrap();
        let r = diff_paths(&da, &db, &DiffOptions::default()).unwrap();
        assert_eq!(r.verdict(), Verdict::Incomparable);
        std::fs::remove_dir_all(&tmp).unwrap();
    }
}
