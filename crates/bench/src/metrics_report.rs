//! Render an always-on metrics snapshot (`metrics/<name>.json`) for humans:
//! label lines, counter/gauge listings, and one percentile row plus a
//! sparkline bucket dump per histogram.

use dmp_runner::JsonCodec;
use obs::{Histogram, MetricsSnapshot};

use crate::report::Table;

/// The Unicode block ramp sparklines draw with.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Sparkline over a histogram's non-empty bucket range: one glyph per
/// occupied-to-occupied bucket, height proportional to the bucket count
/// relative to the fullest bucket. Empty histogram → empty string.
pub fn sparkline(h: &Histogram) -> String {
    let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
    let (Some(&(first, _)), Some(&(last, _))) = (buckets.first(), buckets.last()) else {
        return String::new();
    };
    let peak = buckets.iter().map(|&(_, n)| n).max().unwrap_or(1);
    let mut counts = vec![0u64; last - first + 1];
    for (i, n) in buckets {
        counts[i - first] = n;
    }
    counts
        .iter()
        .map(|&n| {
            if n == 0 {
                ' '
            } else {
                // Ceil-map counts onto the ramp so a single sample still
                // shows as the lowest block, never as a blank.
                RAMP[((n * RAMP.len() as u64).div_ceil(peak) as usize - 1).min(RAMP.len() - 1)]
            }
        })
        .collect()
}

/// Render one snapshot under a heading (the file stem in directory mode).
pub fn render_snapshot(heading: &str, snap: &MetricsSnapshot) -> String {
    let mut out = format!("== {heading} ==\n");
    if !snap.labels.is_empty() {
        let labels: Vec<String> = snap
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        out.push_str(&format!("labels: {}\n", labels.join(" ")));
    }
    if !snap.histograms.is_empty() {
        let mut t = Table::new(
            format!("{heading}: histograms"),
            &[
                "metric", "count", "mean", "p50", "p90", "p99", "max", "shape",
            ],
        );
        for (name, h) in &snap.histograms {
            let d = h.distribution();
            t.row(vec![
                name.clone(),
                h.count().to_string(),
                format!("{:.1}", d.mean),
                format!("{:.1}", d.p50),
                format!("{:.1}", d.p90),
                format!("{:.1}", d.p99),
                format!("{:.0}", d.max),
                sparkline(h),
            ]);
        }
        out.push_str(&t.render());
    }
    if !snap.counters.is_empty() {
        let mut t = Table::new(format!("{heading}: counters"), &["counter", "value"]);
        for (name, v) in &snap.counters {
            t.row(vec![name.clone(), v.to_string()]);
        }
        out.push_str(&t.render());
    }
    if !snap.gauges.is_empty() {
        let mut t = Table::new(format!("{heading}: gauges (max)"), &["gauge", "value"]);
        for (name, v) in &snap.gauges {
            t.row(vec![name.clone(), format!("{v}")]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Parse and render one `metrics/<name>.json` file.
pub fn render_file(path: &std::path::Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc =
        dmp_runner::json::parse(&text).ok_or_else(|| format!("cannot parse {}", path.display()))?;
    let snap = MetricsSnapshot::from_json(&doc)
        .ok_or_else(|| format!("{} is not a metrics snapshot", path.display()))?;
    let stem = path
        .file_stem()
        .unwrap_or_default()
        .to_string_lossy()
        .into_owned();
    Ok(render_snapshot(&stem, &snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new().with_label("cc", "reno");
        m.counter_add("frame.delivered", 42);
        m.gauge_max("net.peak_queue_pkts", 7.0);
        for v in [2u64, 2, 3, 3, 3, 9, 120] {
            m.histogram("frame.delay_ms").record(v);
        }
        m
    }

    #[test]
    fn sparkline_spans_occupied_buckets_only() {
        let snap = snapshot();
        let s = sparkline(&snap.histograms["frame.delay_ms"]);
        assert!(!s.is_empty());
        // Peak bucket (the three 3s) renders the full block; singleton
        // buckets render a visible (non-blank) glyph.
        assert!(s.contains('█'));
        assert!(s.contains('▃'));
        assert!(!s.starts_with(' ') && !s.ends_with(' '));
        assert!(sparkline(&Histogram::new()).is_empty());
    }

    #[test]
    fn render_mentions_every_section() {
        let text = render_snapshot("sample", &snapshot());
        assert!(text.contains("cc=reno"));
        assert!(text.contains("frame.delay_ms"));
        assert!(text.contains("frame.delivered"));
        assert!(text.contains("net.peak_queue_pkts"));
        assert!(text.contains("p99"));
    }
}
