//! The committed flight-recorder example: one quick-scale `ext_failover`
//! replication, traced, plus its rendered `trace_report`.
//!
//! `artifacts/traces/ext_failover_quick_run0.jsonl` and its `.report.txt`
//! are checked into the repository as a worked example of the observability
//! layer; the `trace_example` binary regenerates them and
//! `tests/trace_example.rs` asserts the regenerated trace is byte-identical
//! to the committed one (the trace schema and the simulation are both
//! deterministic, so any diff is a real behaviour change).

use std::path::{Path, PathBuf};

use dmp_core::spec::SchedulerKind;
use dmp_sim::experiment::{ExperimentSpec, RunOutput, TraceSpec};
use netsim::EngineKind;
use obs::Trace;

use crate::scenarios;
use crate::trace_report::{render_report, ReportOptions};

/// Label (and file stem) of the committed example trace.
pub const LABEL: &str = "ext_failover_quick_run0";
/// Simulated video duration of the example, seconds — short enough that the
/// committed JSONL stays reviewable, long enough to show failure + recovery.
pub const DURATION_S: f64 = 60.0;

/// The example's experiment spec: the `ext_failover` study setting and
/// script at `DURATION_S`, first replication (base seed), calendar engine.
/// `dir = None` leaves the trace in [`obs::default_trace_dir`].
pub fn example_spec(dir: Option<&Path>) -> ExperimentSpec {
    let (scn, _fail_at) = scenarios::failover_scenario(DURATION_S);
    let mut spec = ExperimentSpec::new(
        scenarios::failover_setting(),
        SchedulerKind::Dynamic,
        DURATION_S,
        2007,
    );
    spec.engine = EngineKind::Calendar;
    spec.scenario = scn;
    spec.trace = TraceSpec::on(LABEL);
    spec.trace.dir = dir.map(Path::to_path_buf);
    spec
}

/// Report options matching the `ext_failover` target's evaluation (τ, window)
/// and the study setting's video rate.
pub fn example_report_options() -> ReportOptions {
    ReportOptions {
        rate_pps: scenarios::failover_setting().video.rate_pps,
        tau_s: scenarios::TAU_S,
        window_s: scenarios::WINDOW_S,
        bucket_s: 5.0,
    }
}

/// Run the example into `dir`, returning the trace path, the run itself and
/// the rendered report text. Drains the process-wide [`obs`] registry, so
/// callers in test binaries must not race other registry users.
pub fn generate(dir: &Path) -> (PathBuf, RunOutput, String) {
    let out = dmp_sim::experiment::run(&example_spec(Some(dir)));
    let registered = obs::drain_trace_files();
    let file = registered
        .iter()
        .find(|f| f.label == LABEL)
        .expect("traced run must register its trace file");
    let text = std::fs::read_to_string(&file.path).expect("read trace file");
    let trace = Trace::parse(&text).expect("parse trace");
    assert_eq!(trace.events.len() as u64, file.events);
    let report = render_report(&trace, &example_report_options());
    (file.path.clone(), out, report)
}
