//! Figure 7: validation against real-socket streaming runs (the paper's
//! Internet experiments, here over the in-process path emulator).
//!
//! Each experiment streams a live video over two emulated paths with
//! time-varying service rates, evaluates the measured late fraction at
//! τ ∈ {4, 6, 8, 10} s in both playback and arrival order (Fig. 7a), and
//! compares the measurement against the model prediction with effective path
//! parameters estimated from the configuration (Fig. 7b). The paper's match
//! criterion is that points fall within the ×10 / ÷10 diagonal band.

use std::time::Duration;

use dmp_core::spec::VideoSpec;
use dmp_live::{model_prediction, run_experiment, LiveExperiment, PathProfile};

use crate::report::{frac, Table};
use crate::scale::Scale;

/// The experiment mix, mirroring the paper: homogeneous "ADSL" pairs at
/// µ ∈ {25, 50} and heterogeneous (one coast-to-coast path) at µ = 100,
/// 1448-byte packets, headroom ratios spread around 1.3–2.
pub fn experiment_set(scale: &Scale) -> Vec<LiveExperiment> {
    let mut v = Vec::new();
    let pkt = 1448u32;
    let bits = f64::from(pkt) * 8.0;
    for i in 0..scale.live_experiments {
        let (mu, ratio, hetero) = match i % 5 {
            0 => (25.0, 1.4, false),
            1 => (25.0, 1.8, false),
            2 => (50.0, 1.3, false),
            3 => (50.0, 1.6, false),
            _ => (100.0, 1.7, true),
        };
        let total_bps = ratio * mu * bits;
        let (r0, r1) = if hetero {
            (0.65 * total_bps, 0.35 * total_bps)
        } else {
            (0.5 * total_bps, 0.5 * total_bps)
        };
        let delay0 = Duration::from_millis(30);
        let delay1 = Duration::from_millis(if hetero { 100 } else { 30 });
        let mk = |rate: f64, delay: Duration| PathProfile {
            rate_bps: rate,
            variability: 0.35,
            resample_every: Duration::from_millis(700),
            delay,
            queue_bytes: 48 * 1024,
        };
        v.push(LiveExperiment {
            video: VideoSpec {
                rate_pps: mu,
                packet_bytes: pkt,
            },
            packets: scale.live_packets,
            paths: vec![mk(r0, delay0), mk(r1, delay1)],
            send_buf_bytes: 16 * 1024,
            seed: scale.seed.wrapping_add(i as u64 * 97),
        });
    }
    v
}

/// Run the Fig. 7 experiment set (wall-clock bound: `packets/µ` seconds per
/// experiment) and print both panels.
pub fn fig7(scale: &Scale) -> String {
    let taus = [4.0, 6.0, 8.0, 10.0];
    let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
    let mut a = Table::new(
        "Fig 7(a): out-of-order effect in live runs",
        &["exp", "tau (s)", "f (playback order)", "f (arrival order)"],
    );
    let mut b = Table::new(
        "Fig 7(b): measurement vs model (the paper's x10 band; measured-zero \
         points are excluded from the scatter, as in the paper)",
        &["exp", "tau (s)", "f (measured)", "f (model)", "verdict"],
    );
    let mut plotted = 0u32;
    let mut in_band_count = 0u32;
    for (i, exp) in experiment_set(scale).iter().enumerate() {
        let run = rt.block_on(run_experiment(exp, &taus)).expect("live run");
        for lf in &run.report.per_tau {
            a.row(vec![
                i.to_string(),
                format!("{:.0}", lf.tau_s),
                frac(lf.playback_order),
                frac(lf.arrival_order),
            ]);
            let fm = model_prediction(exp, lf.tau_s, scale.model_consumptions.min(500_000));
            let verdict = if lf.playback_order == 0.0 {
                // The paper: zero-f experiments "are not shown in the plot".
                "(0; not plotted)".to_string()
            } else {
                plotted += 1;
                let ratio = fm / lf.playback_order;
                let ok = (0.1..10.0).contains(&ratio)
                    // Model reporting 0 against a barely-resolved measurement
                    // counts as a match (the paper's model reported exact 0s).
                    || (fm == 0.0 && lf.playback_order < 1e-3);
                if ok {
                    in_band_count += 1;
                    "in band".to_string()
                } else {
                    format!("OUT ({ratio:.1}x)")
                }
            };
            b.row(vec![
                i.to_string(),
                format!("{:.0}", lf.tau_s),
                frac(lf.playback_order),
                frac(fm),
                verdict,
            ]);
        }
    }
    let mut out = a.render();
    out.push('\n');
    out.push_str(&b.render());
    out.push_str(&format!(
        "\nScatter summary: {in_band_count}/{plotted} plotted points inside the x10 band \
         (paper: all but one point).\n"
    ));
    out
}
