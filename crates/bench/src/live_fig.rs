//! Figure 7: validation against real-socket streaming runs (the paper's
//! Internet experiments, here over the in-process path emulator).
//!
//! Each experiment streams a live video over two emulated paths with
//! time-varying service rates, evaluates the measured late fraction at
//! τ ∈ {4, 6, 8, 10} s in both playback and arrival order (Fig. 7a), and
//! compares the measurement against the model prediction with effective path
//! parameters estimated from the configuration (Fig. 7b). The paper's match
//! criterion is that points fall within the ×10 / ÷10 diagonal band.

use std::time::Duration;

use dmp_core::spec::VideoSpec;
use dmp_live::{model_prediction, run_experiment, LiveExperiment, PathProfile};
use dmp_runner::{JobSpec, Json, Runner};
use dmp_sim::RunSummary;

use crate::report::{frac, Table};
use crate::scale::Scale;
use crate::target::TargetReport;

/// The experiment mix, mirroring the paper: homogeneous "ADSL" pairs at
/// µ ∈ {25, 50} and heterogeneous (one coast-to-coast path) at µ = 100,
/// 1448-byte packets, headroom ratios spread around 1.3–2.
pub fn experiment_set(scale: &Scale) -> Vec<LiveExperiment> {
    let mut v = Vec::new();
    let pkt = 1448u32;
    let bits = f64::from(pkt) * 8.0;
    for i in 0..scale.live_experiments {
        let (mu, ratio, hetero) = match i % 5 {
            0 => (25.0, 1.4, false),
            1 => (25.0, 1.8, false),
            2 => (50.0, 1.3, false),
            3 => (50.0, 1.6, false),
            _ => (100.0, 1.7, true),
        };
        let total_bps = ratio * mu * bits;
        let (r0, r1) = if hetero {
            (0.65 * total_bps, 0.35 * total_bps)
        } else {
            (0.5 * total_bps, 0.5 * total_bps)
        };
        let delay0 = Duration::from_millis(30);
        let delay1 = Duration::from_millis(if hetero { 100 } else { 30 });
        let mk = |rate: f64, delay: Duration| PathProfile {
            rate_bps: rate,
            variability: 0.35,
            resample_every: Duration::from_millis(700),
            delay,
            queue_bytes: 48 * 1024,
        };
        v.push(LiveExperiment {
            video: VideoSpec {
                rate_pps: mu,
                packet_bytes: pkt,
            },
            packets: scale.live_packets,
            paths: vec![mk(r0, delay0), mk(r1, delay1)],
            send_buf_bytes: 16 * 1024,
            seed: scale.seed.wrapping_add(i as u64 * 97),
            time_dilation: scale.live_time_dilation,
            schedules: None,
            trace_label: scale.trace.then(|| format!("fig7_live_exp{i}")),
        });
    }
    v
}

/// One live-run job: stream the experiment on its own (thread-per-task)
/// tokio runtime and summarise the lateness report. The measurement is
/// wall-clock real — caching it means a re-run of `fig7` re-renders the
/// *recorded* measurement for that configuration and seed instead of
/// re-streaming for `packets/µ` seconds. Delete `target/dmp-cache` or set
/// `DMP_NO_CACHE=1` to re-measure.
fn live_job(i: usize, exp: LiveExperiment, taus: Vec<f64>) -> JobSpec<RunSummary> {
    // v2: the spec gained the `trace_label` field.
    // v3: summaries gained the always-on `metrics` section (frame-level
    // metrics on the nominal-time trace); v2 payloads lack it.
    let config_repr = format!("live-fig7/v3/{exp:?}/taus{taus:?}");
    let seed = exp.seed;
    let traced = exp.trace_label.is_some();
    let job = JobSpec::new(format!("fig7:live:exp{i}"), config_repr, seed, move || {
        let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
        let run = rt.block_on(run_experiment(&exp, &taus)).expect("live run");
        // Frame metrics on the *nominal-time* trace (run_experiment undilates
        // timestamps), so live distributions are directly comparable with the
        // simulator's. Labelled `backend=live`: bench_diff must refuse to
        // diff a live run against a simulated one rather than report drift.
        let mut metrics = obs::MetricsSnapshot::new().with_label("backend", "live");
        obs::record_frame_metrics(&mut metrics, &run.output.trace);
        RunSummary {
            paths: Vec::new(),
            per_tau: run.report.per_tau,
            metrics,
        }
    });
    // A cache hit would skip the stream and write no trace file.
    if traced {
        job.uncacheable()
    } else {
        job
    }
}

/// Run the Fig. 7 experiment set (wall-clock bound: `packets/(µF)` seconds
/// per experiment at time-dilation factor `F`, parallelised across runner
/// threads) and print both panels.
pub fn fig7(r: &Runner, scale: &Scale) -> TargetReport {
    let taus = [4.0, 6.0, 8.0, 10.0];
    let experiments = experiment_set(scale);

    // Stage 1: the live streaming runs.
    let live_cells = r.run_all(
        experiments
            .iter()
            .enumerate()
            .map(|(i, exp)| live_job(i, exp.clone(), taus.to_vec()))
            .collect(),
    );
    // Stage 2: one cacheable model prediction per (experiment, τ).
    let consumptions = scale.model_consumptions.min(500_000);
    let model_cells = r.run_all(
        experiments
            .iter()
            .enumerate()
            .flat_map(|(i, exp)| {
                taus.iter().map(move |&tau_s| {
                    let mut exp = exp.clone();
                    // The model never looks at the trace label; dropping it
                    // keeps one cache entry per configuration whether or not
                    // the measurement run was traced.
                    exp.trace_label = None;
                    let config_repr =
                        format!("live-fig7-model/v2/{exp:?}/tau{tau_s}/consumptions{consumptions}");
                    JobSpec::new(
                        format!("fig7:model:exp{i}:tau{tau_s}"),
                        config_repr,
                        exp.seed,
                        move || model_prediction(&exp, tau_s, consumptions),
                    )
                })
            })
            .collect(),
    );

    let mut a = Table::new(
        "Fig 7(a): out-of-order effect in live runs",
        &["exp", "tau (s)", "f (playback order)", "f (arrival order)"],
    );
    let mut b = Table::new(
        "Fig 7(b): measurement vs model (the paper's x10 band; measured-zero \
         points are excluded from the scatter, as in the paper)",
        &["exp", "tau (s)", "f (measured)", "f (model)", "verdict"],
    );
    let mut plotted = 0u32;
    let mut in_band_count = 0u32;
    let mut points = Vec::new();
    let mut metrics = obs::MetricsSnapshot::new();
    for (i, cell) in live_cells.iter().enumerate() {
        let summary = cell
            .ok()
            .unwrap_or_else(|| panic!("{} failed: {:?}", cell.label, cell.failure()));
        metrics.merge(&summary.metrics);
        for (ti, lf) in summary.per_tau.iter().enumerate() {
            a.row(vec![
                i.to_string(),
                format!("{:.0}", lf.tau_s),
                frac(lf.playback_order),
                frac(lf.arrival_order),
            ]);
            let fm = *model_cells[i * taus.len() + ti].ok().expect("model job");
            let verdict = if lf.playback_order == 0.0 {
                // The paper: zero-f experiments "are not shown in the plot".
                "(0; not plotted)".to_string()
            } else {
                plotted += 1;
                let ratio = fm / lf.playback_order;
                let ok = (0.1..10.0).contains(&ratio)
                    // Model reporting 0 against a barely-resolved measurement
                    // counts as a match (the paper's model reported exact 0s).
                    || (fm == 0.0 && lf.playback_order < 1e-3);
                if ok {
                    in_band_count += 1;
                    "in band".to_string()
                } else {
                    format!("OUT ({ratio:.1}x)")
                }
            };
            b.row(vec![
                i.to_string(),
                format!("{:.0}", lf.tau_s),
                frac(lf.playback_order),
                frac(fm),
                verdict,
            ]);
            points.push(Json::obj([
                ("exp", Json::Num(i as f64)),
                ("tau_s", Json::Num(lf.tau_s)),
                ("f_playback", Json::Num(lf.playback_order)),
                ("f_arrival", Json::Num(lf.arrival_order)),
                ("f_model", Json::Num(fm)),
            ]));
        }
    }
    let mut text = a.render();
    text.push('\n');
    text.push_str(&b.render());
    text.push_str(&format!(
        "\nScatter summary: {in_band_count}/{plotted} plotted points inside the x10 band \
         (paper: all but one point).\n"
    ));
    let data = Json::obj([
        ("points", Json::Arr(points)),
        (
            "in_band",
            Json::obj([
                ("count", Json::Num(f64::from(in_band_count))),
                ("plotted", Json::Num(f64::from(plotted))),
            ]),
        ),
        ("tables", Json::arr([a.to_json(), b.to_json()])),
    ]);
    // `backend=live` rides in from every summary; no engine label — there is
    // no discrete-event engine behind a wall-clock measurement.
    TargetReport::new(text, data).with_metrics(metrics)
}
