//! Figures 4 and 5: model validation against the packet-level simulation —
//! (a) the out-of-order scatter (arrival-order vs playback-order late
//! fraction), (b) late fraction vs startup delay from simulation and model.

use dmp_core::spec::{PathSpec, SchedulerKind};
use dmp_runner::{JobSpec, Json, Runner};
use dmp_sim::{batch_jobs, setting, BatchOutput, ExperimentSpec, RunSummary};
use tcp_model::DmpModel;

use crate::report::{frac, Table};
use crate::scale::Scale;
use crate::target::TargetReport;

/// A cacheable model-curve point: `f(τ)` from the SSA late-fraction
/// estimator at the given measured path parameters.
pub fn model_point_job(
    label: String,
    paths: Vec<PathSpec>,
    mu: f64,
    tau_s: f64,
    consumptions: u64,
    seed: u64,
) -> JobSpec<f64> {
    let config_repr = format!(
        "model-late/v1/paths{paths:?}/mu{mu}/tau{tau_s}/consumptions{consumptions}/seed{seed}"
    );
    JobSpec::new(label, config_repr, seed, move || {
        DmpModel::new(paths.clone(), mu, tau_s)
            .late_fraction(consumptions, seed)
            .f
    })
}

/// Shared engine for Fig. 4 (Setting 2-2) and Fig. 5 (Setting 1-2).
pub fn validation_figure(setting_name: &str, r: &Runner, scale: &Scale) -> TargetReport {
    let s = *setting(setting_name).expect("known setting");
    let spec = ExperimentSpec::new(s, SchedulerKind::Dynamic, scale.sim_duration_s, scale.seed);
    let scatter_taus = [4.0, 6.0, 8.0, 10.0];
    let curve_taus: Vec<f64> = (3..=11).map(f64::from).collect();
    let all_taus: Vec<f64> = scatter_taus
        .iter()
        .chain(curve_taus.iter())
        .copied()
        .collect();

    // Stage 1: the simulation replications (one job each).
    let cells = r.run_all(batch_jobs(&spec, scale.sim_runs, &all_taus));
    let summaries: Vec<RunSummary> = cells
        .iter()
        .map(|c| {
            c.ok()
                .unwrap_or_else(|| panic!("{} failed: {:?}", c.label, c.failure()))
                .clone()
        })
        .collect();
    let batch = BatchOutput::from_summaries(&all_taus, &summaries);

    // (a) out-of-order scatter: one point per (run, τ).
    let mut a = Table::new(
        format!("Fig (a): effect of out-of-order packets, Setting {setting_name}"),
        &["run", "tau (s)", "f (playback order)", "f (arrival order)"],
    );
    let mut scatter = Vec::new();
    for (run, report) in batch.reports.iter().enumerate() {
        for lf in report.per_tau.iter().take(scatter_taus.len()) {
            a.row(vec![
                run.to_string(),
                format!("{:.0}", lf.tau_s),
                frac(lf.playback_order),
                frac(lf.arrival_order),
            ]);
            scatter.push(Json::obj([
                ("run", Json::Num(run as f64)),
                ("tau_s", Json::Num(lf.tau_s)),
                ("f_playback", Json::Num(lf.playback_order)),
                ("f_arrival", Json::Num(lf.arrival_order)),
            ]));
        }
    }

    // (b) simulation vs model late fraction over τ. The model uses the
    // *measured* per-path parameters, exactly as the paper feeds Table 2
    // into its model. Stage 2: one cacheable model job per curve τ.
    let paths: Vec<PathSpec> = (0..2)
        .map(|k| PathSpec {
            loss: batch.loss[k].mean().max(1e-5),
            rtt_s: batch.rtt[k].mean(),
            to_ratio: batch.to_ratio[k].mean().max(1.0),
        })
        .collect();
    let model_jobs: Vec<JobSpec<f64>> = curve_taus
        .iter()
        .map(|&tau| {
            model_point_job(
                format!("model:{setting_name}:tau{tau}"),
                paths.clone(),
                s.video.rate_pps,
                tau,
                scale.model_consumptions,
                scale.seed,
            )
        })
        .collect();
    let model_cells = r.run_all(model_jobs);

    let mut b = Table::new(
        format!(
            "Fig (b): fraction of late packets vs startup delay, Setting {setting_name} \
             (model params: p=({:.3},{:.3}) R=({:.0},{:.0})ms TO=({:.1},{:.1}))",
            paths[0].loss,
            paths[1].loss,
            paths[0].rtt_s * 1e3,
            paths[1].rtt_s * 1e3,
            paths[0].to_ratio,
            paths[1].to_ratio
        ),
        &["tau (s)", "f (ns-sim)", "ci95", "f (model)"],
    );
    let mut curve = Vec::new();
    for (i, &tau) in curve_taus.iter().enumerate() {
        let (_, stats) = &batch.late_playback[scatter_taus.len() + i];
        let fm = *model_cells[i].ok().expect("model job");
        b.row(vec![
            format!("{tau:.0}"),
            frac(stats.mean()),
            format!("±{:.1e}", stats.ci95_half_width()),
            frac(fm),
        ]);
        curve.push(Json::obj([
            ("tau_s", Json::Num(tau)),
            ("f_sim", Json::Num(stats.mean())),
            ("f_sim_ci95", Json::Num(stats.ci95_half_width())),
            ("f_model", Json::Num(fm)),
        ]));
    }

    let mut text = a.render();
    text.push('\n');
    text.push_str(&b.render());
    let data = Json::obj([
        ("setting", Json::Str(setting_name.to_string())),
        ("scatter", Json::Arr(scatter)),
        ("curve", Json::Arr(curve)),
        (
            "model_paths",
            Json::arr(paths.iter().map(|p| {
                Json::obj([
                    ("loss", Json::Num(p.loss)),
                    ("rtt_s", Json::Num(p.rtt_s)),
                    ("to_ratio", Json::Num(p.to_ratio)),
                ])
            })),
        ),
        ("tables", Json::arr([a.to_json(), b.to_json()])),
    ]);
    let mut metrics = batch.metrics.clone();
    metrics.set_label("engine", crate::target::engine_label(spec.engine));
    TargetReport::new(text, data).with_metrics(metrics)
}

/// Fig. 4: independent homogeneous paths, Setting 2-2.
pub fn fig4(r: &Runner, scale: &Scale) -> TargetReport {
    validation_figure("2-2", r, scale)
}

/// Fig. 5: independent heterogeneous paths, Setting 1-2.
pub fn fig5(r: &Runner, scale: &Scale) -> TargetReport {
    validation_figure("1-2", r, scale)
}

/// Section 5.3: the correlated-path validation the paper describes but omits
/// figures for — we produce it for setting "corr-2".
pub fn correlated_validation(r: &Runner, scale: &Scale) -> TargetReport {
    validation_figure("corr-2", r, scale)
}
