//! Figures 4 and 5: model validation against the packet-level simulation —
//! (a) the out-of-order scatter (arrival-order vs playback-order late
//! fraction), (b) late fraction vs startup delay from simulation and model.

use dmp_core::spec::{PathSpec, SchedulerKind};
use dmp_sim::{run_batch, setting, ExperimentSpec};
use tcp_model::DmpModel;

use crate::report::{frac, Table};
use crate::scale::Scale;

/// Shared engine for Fig. 4 (Setting 2-2) and Fig. 5 (Setting 1-2).
pub fn validation_figure(setting_name: &str, scale: &Scale) -> String {
    let s = *setting(setting_name).expect("known setting");
    let spec = ExperimentSpec::new(s, SchedulerKind::Dynamic, scale.sim_duration_s, scale.seed);
    let scatter_taus = [4.0, 6.0, 8.0, 10.0];
    let curve_taus: Vec<f64> = (3..=11).map(f64::from).collect();
    let all_taus: Vec<f64> = scatter_taus
        .iter()
        .chain(curve_taus.iter())
        .copied()
        .collect();
    let batch = run_batch(&spec, scale.sim_runs, &all_taus);

    // (a) out-of-order scatter: one point per (run, τ).
    let mut a = Table::new(
        format!("Fig (a): effect of out-of-order packets, Setting {setting_name}"),
        &["run", "tau (s)", "f (playback order)", "f (arrival order)"],
    );
    for (run, report) in batch.reports.iter().enumerate() {
        for lf in report.per_tau.iter().take(scatter_taus.len()) {
            a.row(vec![
                run.to_string(),
                format!("{:.0}", lf.tau_s),
                frac(lf.playback_order),
                frac(lf.arrival_order),
            ]);
        }
    }

    // (b) simulation vs model late fraction over τ. The model uses the
    // *measured* per-path parameters, exactly as the paper feeds Table 2
    // into its model.
    let paths: Vec<PathSpec> = (0..2)
        .map(|k| PathSpec {
            loss: batch.loss[k].mean().max(1e-5),
            rtt_s: batch.rtt[k].mean(),
            to_ratio: batch.to_ratio[k].mean().max(1.0),
        })
        .collect();
    let mut b = Table::new(
        format!(
            "Fig (b): fraction of late packets vs startup delay, Setting {setting_name} \
             (model params: p=({:.3},{:.3}) R=({:.0},{:.0})ms TO=({:.1},{:.1}))",
            paths[0].loss,
            paths[1].loss,
            paths[0].rtt_s * 1e3,
            paths[1].rtt_s * 1e3,
            paths[0].to_ratio,
            paths[1].to_ratio
        ),
        &["tau (s)", "f (ns-sim)", "ci95", "f (model)"],
    );
    for (i, &tau) in curve_taus.iter().enumerate() {
        let (_, stats) = &batch.late_playback[scatter_taus.len() + i];
        let model = DmpModel::new(paths.clone(), s.video.rate_pps, tau);
        let fm = model.late_fraction(scale.model_consumptions, scale.seed).f;
        b.row(vec![
            format!("{tau:.0}"),
            frac(stats.mean()),
            format!("±{:.1e}", stats.ci95_half_width()),
            frac(fm),
        ]);
    }

    let mut out = a.render();
    out.push('\n');
    out.push_str(&b.render());
    out
}

/// Fig. 4: independent homogeneous paths, Setting 2-2.
pub fn fig4(scale: &Scale) -> String {
    validation_figure("2-2", scale)
}

/// Fig. 5: independent heterogeneous paths, Setting 1-2.
pub fn fig5(scale: &Scale) -> String {
    validation_figure("1-2", scale)
}

/// Section 5.3: the correlated-path validation the paper describes but omits
/// figures for — we produce it for setting "corr-2".
pub fn correlated_validation(scale: &Scale) -> String {
    validation_figure("corr-2", scale)
}
