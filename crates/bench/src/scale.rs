//! Experiment scaling: every table/figure can run at `full` fidelity (the
//! reproduction binaries; minutes of compute) or `quick` (the Criterion
//! benches and smoke tests; seconds, noisier estimates but the same shape).

use tcp_model::SearchOptions;

/// Knobs shared by all reproduction targets.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Simulated video duration per run, seconds (paper: 10 000 s).
    pub sim_duration_s: f64,
    /// Replications per simulated setting (paper: 30).
    pub sim_runs: usize,
    /// Consumption events per model late-fraction estimate.
    pub model_consumptions: u64,
    /// Cap on consumption events inside required-τ searches.
    pub search_consumptions: u64,
    /// Packets per live (wall-clock!) streaming run.
    pub live_packets: u64,
    /// Number of live experiments for the Fig. 7 scatter.
    pub live_experiments: usize,
    /// Time-dilation factor for live runs: the emulated paths run `F`×
    /// faster than real time (rates ×F, delays ÷F) and recorded timestamps
    /// are scaled back, so a `packets/µ`-second stream costs `packets/(µF)`
    /// wall seconds. Distortion stays small while the dilated event spacing
    /// (generation interval, chunk serialisation, path delay) remains well
    /// above the tokio timer granularity of ~1 ms.
    pub live_time_dilation: f64,
    /// Base seed.
    pub seed: u64,
    /// Record [`obs`] flight-recorder traces for the targets that support
    /// them (the scenario extensions and the live fig7 runs). Off by
    /// default: traced jobs bypass the result cache (a cache hit would skip
    /// the run and write no trace), so this trades cache reuse for
    /// diagnosability. Enable with `--trace` or `DMP_TRACE=1`.
    pub trace: bool,
}

impl Scale {
    /// Full reproduction fidelity (minutes per figure).
    pub fn full() -> Self {
        Self {
            sim_duration_s: 3_000.0,
            sim_runs: 10,
            model_consumptions: 2_000_000,
            search_consumptions: 2_000_000,
            live_packets: 3_000,
            live_experiments: 10,
            live_time_dilation: 4.0,
            seed: 2007,
            trace: false,
        }
    }

    /// Quick mode for benches/smoke tests (seconds per figure).
    pub fn quick() -> Self {
        Self {
            sim_duration_s: 300.0,
            sim_runs: 3,
            model_consumptions: 300_000,
            search_consumptions: 400_000,
            live_packets: 400,
            live_experiments: 3,
            live_time_dilation: 6.0,
            seed: 2007,
            trace: false,
        }
    }

    /// Search options matching this scale (threshold 1e-4 as in the paper).
    pub fn search_options(&self) -> SearchOptions {
        SearchOptions {
            threshold: 1e-4,
            block: (self.search_consumptions / 5).max(50_000),
            max_consumptions: self.search_consumptions,
            resolution_s: 0.5,
            tau_max_s: 150.0,
            seed: self.seed,
        }
    }
}
