//! The Section 7.3 fluid example: DMP vs single-path streaming over
//! periodically congested paths (the paper states the result in text; we
//! regenerate the underlying curves).

use dmp_runner::{Json, Runner};
use tcp_model::fluid::section_7_3_comparison;

use crate::report::Table;
use crate::scale::Scale;
use crate::target::TargetReport;

/// Print `f(x)` for the single path and for DMP (aligned and anti-aligned
/// phases) across the split `x ∈ (0, µ]` and a few startup delays. The
/// paper's period of 10 s and playback rate µ = 50 pkt/s are used.
/// Closed-form and instant — evaluated inline, no jobs.
pub fn fig_fluid(_r: &Runner, _scale: &Scale) -> TargetReport {
    let mu = 50.0;
    let period = 10.0;
    let mut text = String::new();
    let mut tau_blocks = Vec::new();
    for &tau in &[3.0, 4.0, 5.0] {
        let mut t = Table::new(
            format!("Sec 7.3 fluid example: fraction late vs split x (tau = {tau} s, period 10 s)"),
            &[
                "x (pkts ps)",
                "single path",
                "DMP aligned",
                "DMP anti-aligned",
            ],
        );
        let mut points = Vec::new();
        for i in 1..=10 {
            let x = mu * i as f64 / 10.0;
            let (f_single, f_aligned) = section_7_3_comparison(mu, x, period, tau, false);
            let (_, f_anti) = section_7_3_comparison(mu, x, period, tau, true);
            t.row(vec![
                format!("{x:.0}"),
                format!("{f_single:.4}"),
                format!("{f_aligned:.4}"),
                format!("{f_anti:.4}"),
            ]);
            points.push(Json::obj([
                ("x_pps", Json::Num(x)),
                ("f_single", Json::Num(f_single)),
                ("f_dmp_aligned", Json::Num(f_aligned)),
                ("f_dmp_anti_aligned", Json::Num(f_anti)),
            ]));
        }
        text.push_str(&t.render());
        text.push('\n');
        tau_blocks.push(Json::obj([
            ("tau_s", Json::Num(tau)),
            ("points", Json::Arr(points)),
        ]));
    }
    text.push_str(
        "Claim check: DMP <= single path for every split and alignment; anti-aligned\n\
         paths (alternating congestion) are strictly better whenever tau is below the\n\
         congested interval (tau < 5 s here).\n",
    );
    let data = Json::obj([
        ("mu_pps", Json::Num(mu)),
        ("period_s", Json::Num(period)),
        ("curves", Json::Arr(tau_blocks)),
    ]);
    TargetReport::new(text, data)
}
