//! Scenario extension: a scripted mid-stream path failure — DMP vs static
//! vs single-path resilience, differentially checked across both engines.
fn main() {
    dmp_bench::target::run_standalone(&[("ext_failover", dmp_bench::scenarios::ext_failover)]);
}
