//! Section 5.3's correlated-path validation (figures omitted in the paper).
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::validation::correlated_validation(&scale));
}
