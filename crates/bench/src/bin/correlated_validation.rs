//! Section 5.3's correlated-path validation (figures omitted in the paper).
fn main() {
    dmp_bench::target::run_standalone(&[(
        "correlated_validation",
        dmp_bench::validation::correlated_validation,
    )]);
}
