//! Regenerate the committed flight-recorder example: one traced quick-scale
//! `ext_failover` replication plus its rendered `trace_report`, written to
//! `artifacts/traces/` (override with `--dir <path>`). The simulation and the
//! trace schema are deterministic, so re-running this binary on an unchanged
//! tree reproduces the committed files byte-for-byte — which is exactly what
//! `tests/trace_example.rs` asserts.

use std::path::PathBuf;

use dmp_bench::trace_example;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir: PathBuf = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("artifacts/traces"));
    let (trace_path, _out, report) = trace_example::generate(&dir);
    let report_path = dir.join(format!("{}.report.txt", trace_example::LABEL));
    std::fs::write(&report_path, &report).expect("write report");
    println!("wrote {}", trace_path.display());
    println!("wrote {}", report_path.display());
}
