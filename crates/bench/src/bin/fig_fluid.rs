//! Reproduce the Section 7.3 fluid example.
fn main() {
    print!("{}", dmp_bench::fluid_fig::fig_fluid());
}
