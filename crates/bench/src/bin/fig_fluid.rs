//! Reproduce the Section 7.3 fluid example.
fn main() {
    dmp_bench::target::run_standalone(&[("fig_fluid", dmp_bench::fluid_fig::fig_fluid)]);
}
