//! Reproduce Fig. 9(a,b): required startup delay at σ_a/µ = 1.6.
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::params::fig9a(&scale));
    print!("{}", dmp_bench::params::fig9b(&scale));
}
