//! Reproduce Fig. 9(a,b): required startup delay at σ_a/µ = 1.6.
fn main() {
    dmp_bench::target::run_standalone(&[
        ("fig9a", dmp_bench::params::fig9a),
        ("fig9b", dmp_bench::params::fig9b),
    ]);
}
