//! Scenario extension: a scripted transient flash crowd on one path.
fn main() {
    dmp_bench::target::run_standalone(&[("ext_flashcrowd", dmp_bench::scenarios::ext_flashcrowd)]);
}
