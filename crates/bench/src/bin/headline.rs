//! Reproduce the headline 1.6× (multipath) vs 2× (single path) comparison.
fn main() {
    dmp_bench::target::run_standalone(&[("headline", dmp_bench::params::headline)]);
}
