//! Reproduce the headline 1.6× (multipath) vs 2× (single path) comparison.
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::params::headline(&scale));
}
