//! Render always-on metrics snapshots for humans.
//!
//! Usage:
//!
//! ```text
//! metrics_report <metrics.json | metrics-dir>...
//! ```
//!
//! Each argument is a `metrics/<name>.json` snapshot (written next to every
//! artifact by the bench targets) or a directory of them; directories render
//! every `*.json` inside, sorted by name. Output: per-snapshot label lines,
//! percentile tables (count/mean/p50/p90/p99/max) with sparkline bucket
//! shapes, and counter/gauge listings.

use dmp_bench::metrics_report::render_file;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: metrics_report <metrics.json | metrics-dir>...");
        std::process::exit(2);
    }
    let mut files = Vec::new();
    for arg in &args {
        let path = std::path::PathBuf::from(arg);
        if path.is_dir() {
            let mut inside: Vec<_> = match std::fs::read_dir(&path) {
                Ok(rd) => rd
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "json"))
                    .collect(),
                Err(e) => {
                    eprintln!("cannot list {arg}: {e}");
                    std::process::exit(1);
                }
            };
            inside.sort();
            files.extend(inside);
        } else {
            files.push(path);
        }
    }
    for (i, file) in files.iter().enumerate() {
        match render_file(file) {
            Ok(text) => {
                if i > 0 {
                    println!();
                }
                print!("{text}");
            }
            Err(e) => {
                eprintln!("metrics_report: {e}");
                std::process::exit(1);
            }
        }
    }
}
