//! Reproduce Fig. 5: validation on Setting 1-2 (independent heterogeneous).
fn main() {
    dmp_bench::target::run_standalone(&[("fig5", dmp_bench::validation::fig5)]);
}
