//! Reproduce Fig. 5: validation on Setting 1-2 (independent heterogeneous).
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::validation::fig5(&scale));
}
