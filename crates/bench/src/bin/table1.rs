//! Reproduce Table 1 (bottleneck configurations).
fn main() {
    print!("{}", dmp_bench::tables::table1());
}
