//! Reproduce Table 1 (bottleneck configurations).
fn main() {
    dmp_bench::target::run_standalone(&[("table1", dmp_bench::tables::table1)]);
}
