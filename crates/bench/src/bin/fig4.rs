//! Reproduce Fig. 4: validation on Setting 2-2 (independent homogeneous).
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::validation::fig4(&scale));
}
