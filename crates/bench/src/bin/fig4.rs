//! Reproduce Fig. 4: validation on Setting 2-2 (independent homogeneous).
fn main() {
    dmp_bench::target::run_standalone(&[("fig4", dmp_bench::validation::fig4)]);
}
