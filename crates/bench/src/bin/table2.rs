//! Reproduce Table 2: measured p, R, T_O, µ for independent paths.
fn main() {
    dmp_bench::target::run_standalone(&[("table2", dmp_bench::tables::table2)]);
}
