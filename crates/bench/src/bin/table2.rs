//! Reproduce Table 2: measured p, R, T_O, µ for independent paths.
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::tables::table2(&scale));
}
