//! Reproduce Fig. 10: impact of path heterogeneity.
fn main() {
    dmp_bench::target::run_standalone(&[("fig10", dmp_bench::hetero::fig10)]);
}
