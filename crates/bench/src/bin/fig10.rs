//! Reproduce Fig. 10: impact of path heterogeneity.
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::hetero::fig10(&scale));
}
