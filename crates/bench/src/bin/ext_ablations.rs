//! Ablations: send-buffer size, RED vs drop-tail, Reno vs NewReno, static.
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::extensions::ext_ablations(&scale));
}
