//! Ablations: send-buffer size, RED vs drop-tail, Reno vs NewReno, static.
fn main() {
    dmp_bench::target::run_standalone(&[("ext_ablations", dmp_bench::extensions::ext_ablations)]);
}
