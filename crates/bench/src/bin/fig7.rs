//! Reproduce Fig. 7: live-socket validation (wall-clock bound!).
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::live_fig::fig7(&scale));
}
