//! Reproduce Fig. 7: live-socket validation (wall-clock bound!).
fn main() {
    dmp_bench::target::run_standalone(&[("fig7", dmp_bench::live_fig::fig7)]);
}
