//! Reproduce Fig. 11: DMP-streaming vs static-streaming.
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::static_cmp::fig11(&scale));
}
