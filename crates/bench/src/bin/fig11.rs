//! Reproduce Fig. 11: DMP-streaming vs static-streaming.
fn main() {
    dmp_bench::target::run_standalone(&[("fig11", dmp_bench::static_cmp::fig11)]);
}
