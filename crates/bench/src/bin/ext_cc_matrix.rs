//! Standalone runner for the `ext_cc_matrix` extension target, plus the CI
//! smoke gate.
//!
//! * Default (`--quick`/`--full` as usual): compute the full headroom
//!   matrix and write `ext_cc_matrix.json` + `.meta.json` like every other
//!   target.
//! * `--quick-smoke`: the CI gate. Runs a reduced grid (one multiple, one
//!   replication, short runs) twice — on a 1-thread and an 8-thread runner,
//!   cache disabled — and asserts (a) every probe and cell agreed
//!   byte-for-byte across both simulation engines, and (b) the rendered
//!   matrix JSON is byte-identical across the two thread counts. Then it
//!   re-derives the committed artifact's Reno + round-robin cell at the
//!   committed quick scale and asserts it matches `artifacts/
//!   ext_cc_matrix.json` byte-for-byte — the baseline row of the matrix is
//!   pinned exactly like the committed example trace.

use std::path::Path;

use dmp_bench::cc_matrix::{self, MatrixOptions};
use dmp_runner::{json, Cache, Runner};

fn committed_artifact() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../artifacts/ext_cc_matrix.json")
}

/// Render one JSON cell of the committed artifact for byte comparison.
fn find_cell(parsed: &json::Json, cc: &str, strategy: &str) -> String {
    let cells = match parsed.get("cells") {
        Some(json::Json::Arr(cells)) => cells,
        _ => panic!("committed artifact has no cells array"),
    };
    cells
        .iter()
        .find(|c| {
            matches!(c.get("cc"), Some(json::Json::Str(s)) if s == cc)
                && matches!(c.get("strategy"), Some(json::Json::Str(s)) if s == strategy)
        })
        .unwrap_or_else(|| panic!("committed artifact lacks cell ({cc}, {strategy})"))
        .render()
}

fn quick_smoke() {
    // 1. Reduced grid, thread-count differential (cache off so the second
    //    pass actually recomputes).
    let opts = MatrixOptions::smoke();
    let one = cc_matrix::compute_matrix(
        &Runner::new(1, Cache::disabled()).with_progress(false),
        &opts,
    );
    assert!(
        one.all_engines_agree(),
        "engine differential failed on the smoke grid: {one:?}"
    );
    let eight = cc_matrix::compute_matrix(
        &Runner::new(8, Cache::disabled()).with_progress(false),
        &opts,
    );
    let (a, b) = (one.to_json().render(), eight.to_json().render());
    assert_eq!(a, b, "matrix JSON differs between 1 and 8 runner threads");
    eprintln!(
        "[ext_cc_matrix --quick-smoke] smoke grid OK: {} cells, engines agree, \
         thread-invariant",
        one.cells.len()
    );

    // 2. Byte-gate the committed baseline cell (Reno + round-robin at the
    //    committed quick scale). Cached results are fine here: the cache key
    //    embeds cc, strategy, rate, and engine, so a hit is by definition
    //    the same bytes.
    let path = committed_artifact();
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "committed artifact missing at {}: {e}\n\
             regenerate with `cargo run --release -p dmp-bench --bin ext_cc_matrix -- --quick`",
            path.display()
        )
    });
    let parsed = json::parse(&committed).expect("committed artifact parses");
    let committed_cell = find_cell(&parsed, "reno", "round-robin");
    let full = MatrixOptions::from_scale(&dmp_bench::Scale::quick());
    let runner = Runner::from_env();
    let fresh = cc_matrix::compute_matrix_cell(
        &runner,
        cc::CcKind::Reno,
        dmp_core::spec::PullStrategy::RoundRobin,
        &full,
    );
    let fresh_cell = fresh.to_json().render();
    assert_eq!(
        fresh_cell, committed_cell,
        "Reno + round-robin baseline cell diverges from the committed artifact; \
         if the behaviour change is intended, regenerate with \
         `cargo run --release -p dmp-bench --bin ext_cc_matrix -- --quick` and commit"
    );
    eprintln!(
        "[ext_cc_matrix --quick-smoke] committed Reno/round-robin cell reproduced byte-for-byte"
    );
}

fn main() {
    if std::env::args().any(|a| a == "--quick-smoke") {
        quick_smoke();
        return;
    }
    dmp_bench::target::run_standalone(&[("ext_cc_matrix", dmp_bench::cc_matrix::ext_cc_matrix)]);
}
