//! Extension: stored-video streaming (the paper's future work).
fn main() {
    dmp_bench::target::run_standalone(&[("ext_stored", dmp_bench::extensions::ext_stored)]);
}
