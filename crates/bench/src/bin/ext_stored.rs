//! Extension: stored-video streaming (the paper's future work).
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::extensions::ext_stored(&scale));
}
