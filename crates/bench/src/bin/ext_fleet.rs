//! Standalone runner for the `ext_fleet` extension target.

fn main() {
    dmp_bench::target::run_standalone(&[("ext_fleet", dmp_bench::fleet::ext_fleet)]);
}
