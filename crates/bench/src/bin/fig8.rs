//! Reproduce Fig. 8: diminishing gain from increasing σ_a/µ.
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::params::fig8(&scale));
}
