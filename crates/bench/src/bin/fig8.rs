//! Reproduce Fig. 8: diminishing gain from increasing σ_a/µ.
fn main() {
    dmp_bench::target::run_standalone(&[("fig8", dmp_bench::params::fig8)]);
}
