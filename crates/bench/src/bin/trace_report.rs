//! Post-process an [`obs`] flight-recorder JSONL trace into paper-style
//! diagnostics: cwnd-evolution and per-path throughput timelines, queue-depth
//! percentiles, and a per-glitch "why" report correlating each playback stall
//! with the scripted path events and TCP recovery activity around it.
//!
//! Usage:
//!
//! ```text
//! trace_report <trace.jsonl> [--rate <pkts/s>] [--tau <s>] [--window <s>]
//!              [--bucket <s>] [--out <report.txt>]
//! ```
//!
//! Traces are recorded by running any scenario/live target with `--trace`
//! (files land under `target/artifacts/traces/`, and each target's
//! `.meta.json` sidecar lists them under `trace_files`).

use dmp_bench::trace_report::{render_report, ReportOptions};
use obs::Trace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let num = |name: &str| -> Option<f64> { value(name).and_then(|v| v.parse().ok()) };
    // The positional trace path is the first argument that is neither a
    // `--flag` nor the value following one (every flag takes a value).
    let mut path = None;
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            path.get_or_insert(args[i].clone());
            i += 1;
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: trace_report <trace.jsonl> [--rate <pkts/s>] [--tau <s>] \
             [--window <s>] [--bucket <s>] [--out <report.txt>]"
        );
        std::process::exit(2);
    };
    let defaults = ReportOptions::default();
    let opts = ReportOptions {
        rate_pps: num("--rate").unwrap_or(defaults.rate_pps),
        tau_s: num("--tau").unwrap_or(defaults.tau_s),
        window_s: num("--window").unwrap_or(defaults.window_s),
        bucket_s: num("--bucket").unwrap_or(defaults.bucket_s),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let trace = match Trace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        }
    };
    let report = render_report(&trace, &opts);
    match value("--out") {
        Some(out) => {
            std::fs::write(out, &report).expect("write report");
            println!("wrote {out}");
        }
        None => print!("{report}"),
    }
}
