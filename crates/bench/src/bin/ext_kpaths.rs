//! Extension: K > 2 paths (the paper's future work).
fn main() {
    dmp_bench::target::run_standalone(&[("ext_kpaths", dmp_bench::extensions::ext_kpaths)]);
}
