//! Reproduce Table 3: measured p, R, T_O, µ for correlated paths.
fn main() {
    dmp_bench::target::run_standalone(&[("table3", dmp_bench::tables::table3)]);
}
