//! Reproduce Table 3: measured p, R, T_O, µ for correlated paths.
fn main() {
    let scale = dmp_bench::scale_from_env();
    print!("{}", dmp_bench::tables::table3(&scale));
}
