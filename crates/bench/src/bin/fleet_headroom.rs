//! Standalone runner for the `fleet_headroom` extension target.

fn main() {
    dmp_bench::target::run_standalone(&[("fleet_headroom", dmp_bench::fleet::fleet_headroom)]);
}
