//! Run every reproduction target in paper order on a shared parallel runner,
//! writing one JSON artifact per target plus a final telemetry summary.
//!
//! Flags: `--quick` (reduced scale, seconds per target) / `--full`
//! (paper-fidelity, the default); `--scenarios` appends the scripted
//! path-dynamics targets (`ext_failover`, `ext_flashcrowd`) after the paper
//! figures; `--fleet` appends the fleet-scale targets (`ext_fleet`,
//! `fleet_headroom`); `--trace` (off by default) records [`obs`] flight-recorder
//! traces for the scenario and live targets under
//! `target/artifacts/traces/`, listed in each target's `.meta.json` sidecar
//! and readable with the `trace_report` binary — traced jobs bypass the
//! result cache, and tracing never changes any artifact byte (the
//! `scheduler_differential` and `trace_example` tests enforce this). A
//! second invocation at the same scale answers from the content-addressed
//! cache (`target/dmp-cache`); delete the directory or set `DMP_NO_CACHE=1`
//! to recompute.

use std::time::Instant;

use dmp_runner::{ArtifactWriter, Runner};

fn main() {
    let scale = dmp_bench::scale_from_env();
    let runner = Runner::from_env();
    let artifacts = ArtifactWriter::from_env();
    let t0 = Instant::now();
    let mut targets = dmp_bench::target::all_targets();
    if std::env::args().any(|a| a == "--scenarios") {
        targets.push(("ext_failover", dmp_bench::scenarios::ext_failover));
        targets.push(("ext_flashcrowd", dmp_bench::scenarios::ext_flashcrowd));
    }
    if std::env::args().any(|a| a == "--fleet") {
        targets.push(("ext_fleet", dmp_bench::fleet::ext_fleet));
        targets.push(("fleet_headroom", dmp_bench::fleet::fleet_headroom));
    }
    let outcomes: Vec<_> = targets
        .into_iter()
        .map(|(name, f)| dmp_bench::target::execute(name, &runner, &artifacts, &scale, f))
        .collect();
    let total_wall = t0.elapsed();
    println!(
        "{}",
        dmp_bench::target::summary_table(&outcomes, runner.threads(), total_wall)
    );
    println!(
        "Artifacts: {}   Cache: {}",
        artifacts.dir().display(),
        if runner.cache().is_enabled() {
            runner.cache().dir().display().to_string()
        } else {
            "disabled".to_string()
        }
    );
}
