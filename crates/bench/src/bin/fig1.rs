//! Reproduce Fig. 1: the cumulative generation / arrival / playback curves
//! of multipath live streaming (illustrative figure, regenerated from a real
//! simulated trace; arrivals are also split per path as in the paper's
//! solid/dashed curves).

use dmp_core::spec::SchedulerKind;
use dmp_sim::{run, setting, ExperimentSpec};

fn main() {
    let mut spec =
        ExperimentSpec::new(*setting("2-2").unwrap(), SchedulerKind::Dynamic, 60.0, 2007);
    spec.warmup_s = 10.0;
    let out = run(&spec);
    let records = out.trace.records();
    let mu = out.trace.video().rate_pps;
    let tau = 4.0;
    let t0 = records[0].gen_ns as f64 / 1e9;

    println!("Fig 1: cumulative packet-number curves, Setting 2-2 (tau = {tau} s)");
    println!(
        "{:>6}  {:>10}  {:>12}  {:>12}  {:>12}  {:>10}",
        "t (s)", "generated", "arrived p0", "arrived p1", "arrived all", "playback"
    );
    for step in 0..=12 {
        let t = step as f64 * 5.0;
        let abs_ns = ((t0 + t) * 1e9) as u64;
        let generated = records.iter().filter(|r| r.gen_ns <= abs_ns).count();
        let arr = |path: Option<u8>| {
            records
                .iter()
                .filter(|r| {
                    r.arrival_ns
                        .is_some_and(|a| a <= abs_ns && path.is_none_or(|p| r.path == p))
                })
                .count()
        };
        let playback = if t > tau {
            ((t - tau) * mu) as usize
        } else {
            0
        };
        println!(
            "{t:>6.0}  {generated:>10}  {:>12}  {:>12}  {:>12}  {playback:>10}",
            arr(Some(0)),
            arr(Some(1)),
            arr(None)
        );
    }
    println!(
        "\nThe arrival curve hugs the generation curve (live constraint: at most\n\
         mu*tau = {:.0} packets ahead of playback) and stays above the playback\n\
         line; packets below it would be the paper's shaded 'late packets' region.",
        mu * tau
    );
}
