//! Reproduce Fig. 1: the cumulative generation / arrival / playback curves.
fn main() {
    dmp_bench::target::run_standalone(&[("fig1", dmp_bench::fig1::fig1)]);
}
