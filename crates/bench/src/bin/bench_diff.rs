//! Cross-run regression differ over metrics documents.
//!
//! Usage:
//!
//! ```text
//! bench_diff <baseline> <candidate> [--threshold <rel>]
//!            [--threshold-for <path-prefix>=<rel>]... [--json]
//! ```
//!
//! `<baseline>`/`<candidate>` are each either one JSON file (a
//! `metrics/<name>.json` snapshot, a `BENCH_*.json` capture — any JSON
//! document) or a directory of them (two `metrics/` trees; files pair by
//! name). The default threshold is **0**: metrics are deterministic, so two
//! runs of the same commit and configuration must agree to the byte. Exit
//! code: 0 no drift, 1 drift past threshold, 2 incomparable runs (label /
//! config mismatch, missing metrics) or usage error.

use std::path::Path;

use dmp_bench::diff::{diff_paths, DiffOptions};

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff <baseline> <candidate> [--threshold <rel>] \
         [--threshold-for <path-prefix>=<rel>]... [--json]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut as_json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => as_json = true,
            "--threshold" => {
                i += 1;
                opts.default_rel = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threshold-for" => {
                i += 1;
                let Some((prefix, rel)) = args.get(i).and_then(|v| v.split_once('=')) else {
                    usage();
                };
                let Ok(rel) = rel.parse() else { usage() };
                opts.overrides.push((prefix.to_string(), rel));
            }
            flag if flag.starts_with("--") => usage(),
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        usage();
    }
    let report = match diff_paths(Path::new(&paths[0]), Path::new(&paths[1]), &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            std::process::exit(2);
        }
    };
    if as_json {
        println!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.render());
    }
    std::process::exit(report.verdict().exit_code());
}
