//! Fig. 1: the cumulative generation / arrival / playback curves of
//! multipath live streaming (illustrative figure, regenerated from a real
//! simulated trace; arrivals are split per path as in the paper's
//! solid/dashed curves).

use dmp_core::spec::SchedulerKind;
use dmp_runner::{JobSpec, Json, Runner};
use dmp_sim::{run, setting, ExperimentSpec};

use crate::scale::Scale;
use crate::target::TargetReport;

/// Sample interval of the printed curves, seconds.
const STEP_S: f64 = 5.0;
/// Number of samples (12 steps × 5 s = one minute of video).
const STEPS: usize = 12;
/// Startup delay drawn into the figure.
const TAU_S: f64 = 4.0;

/// Columns per sampled row of the flattened curve series.
const COLS: usize = 6;

/// Simulate the 60 s Setting 2-2 trace and sample the cumulative curves.
/// Returns rows flattened as `[t, generated, arrived_p0, arrived_p1,
/// arrived_all, playback; ...]` so the job result is a plain `Vec<f64>`.
fn curve_rows(seed: u64) -> Vec<f64> {
    let mut spec =
        ExperimentSpec::new(*setting("2-2").unwrap(), SchedulerKind::Dynamic, 60.0, seed);
    spec.warmup_s = 10.0;
    let out = run(&spec);
    let records = out.trace.records();
    let mu = out.trace.video().rate_pps;
    let t0 = records[0].gen_ns as f64 / 1e9;
    let mut rows = Vec::with_capacity((STEPS + 1) * COLS);
    for step in 0..=STEPS {
        let t = step as f64 * STEP_S;
        let abs_ns = ((t0 + t) * 1e9) as u64;
        let generated = records.iter().filter(|r| r.gen_ns <= abs_ns).count();
        let arr = |path: Option<u8>| {
            records
                .iter()
                .filter(|r| {
                    r.arrival_ns
                        .is_some_and(|a| a <= abs_ns && path.is_none_or(|p| r.path == p))
                })
                .count() as f64
        };
        let playback = if t > TAU_S { (t - TAU_S) * mu } else { 0.0 };
        rows.extend_from_slice(&[
            t,
            generated as f64,
            arr(Some(0)),
            arr(Some(1)),
            arr(None),
            playback.floor(),
        ]);
    }
    rows
}

/// Fig. 1 target: one cacheable simulation job, rendered as the cumulative
/// curve table. The figure is illustrative, so it uses a fixed 60 s run at
/// every scale (only the seed comes from `scale`).
pub fn fig1(r: &Runner, scale: &Scale) -> TargetReport {
    let seed = scale.seed;
    let job = JobSpec::new(
        "fig1:trace",
        format!("fig1/v1/setting2-2/60s/tau{TAU_S}/seed{seed}"),
        seed,
        move || curve_rows(seed),
    );
    let cells = r.run_all(vec![job]);
    let rows = cells[0].ok().expect("fig1 simulation").clone();

    let mut text =
        format!("Fig 1: cumulative packet-number curves, Setting 2-2 (tau = {TAU_S} s)\n");
    text.push_str(&format!(
        "{:>6}  {:>10}  {:>12}  {:>12}  {:>12}  {:>10}\n",
        "t (s)", "generated", "arrived p0", "arrived p1", "arrived all", "playback"
    ));
    for row in rows.chunks(COLS) {
        text.push_str(&format!(
            "{:>6.0}  {:>10.0}  {:>12.0}  {:>12.0}  {:>12.0}  {:>10.0}\n",
            row[0], row[1], row[2], row[3], row[4], row[5]
        ));
    }
    // µ·τ for the caption: playback slope (µ, once t > τ) × startup delay,
    // recovered from the last two playback samples.
    let n = rows.len();
    let mu_tau = (rows[n - 1] - rows[n - COLS - 1]) / STEP_S * TAU_S;
    text.push_str(&format!(
        "\nThe arrival curve hugs the generation curve (live constraint: at most\n\
         mu*tau = {mu_tau:.0} packets ahead of playback) and stays above the playback\n\
         line; packets below it would be the paper's shaded 'late packets' region.\n",
    ));

    let data = Json::obj([
        ("figure", Json::Str("fig1".into())),
        ("tau_s", Json::Num(TAU_S)),
        (
            "columns",
            Json::arr(
                [
                    "t_s",
                    "generated",
                    "arrived_p0",
                    "arrived_p1",
                    "arrived_all",
                    "playback",
                ]
                .into_iter()
                .map(|s| Json::Str(s.into())),
            ),
        ),
        (
            "rows",
            Json::arr(rows.chunks(COLS).map(|r| Json::nums(r.iter().copied()))),
        ),
    ]);
    TargetReport::new(text, data)
}
