//! Target orchestration: every table/figure of the reproduction is a
//! function `(&Runner, &Scale) -> TargetReport`. [`execute`] runs one target
//! on a shared [`Runner`], writes its structured JSON artifact (plus a
//! volatile `.meta.json` telemetry sidecar) under `target/artifacts/`,
//! prints the paper-shaped text, and returns the telemetry row that
//! `repro_all` folds into its final summary table.

use std::time::{Duration, Instant};

use dmp_runner::{ArtifactWriter, Json, JsonCodec, Runner, RunnerStats};
use obs::MetricsSnapshot;

use crate::report::Table;
use crate::scale::Scale;

/// A target's rendered output.
#[derive(Debug)]
pub struct TargetReport {
    /// Paper-shaped text (tables, prose) printed to stdout.
    pub text: String,
    /// Structured artifact payload. Deterministic: byte-identical across
    /// thread counts and cache states for the same scale and seed.
    pub data: Json,
    /// Extra entries for the volatile `.meta.json` sidecar — telemetry the
    /// target wants alongside the engine counters (e.g. a fleet's per-shard
    /// breakdown). Never part of the deterministic artifact.
    pub meta: Vec<(&'static str, Json)>,
    /// The target's merged always-on metrics snapshot. Deterministic like
    /// `data` (pure function of the run; cached jobs replay it); [`execute`]
    /// writes it standalone as `metrics/<name>.json` — the files `bench_diff`
    /// compares — and mirrors it into the `.meta.json` sidecar's `metrics`
    /// section for one-file reading.
    pub metrics: Option<MetricsSnapshot>,
}

impl TargetReport {
    /// Build a report.
    pub fn new(text: impl Into<String>, data: Json) -> Self {
        Self {
            text: text.into(),
            data,
            meta: Vec::new(),
            metrics: None,
        }
    }

    /// Attach a volatile meta-sidecar entry.
    pub fn with_meta(mut self, key: &'static str, value: Json) -> Self {
        self.meta.push((key, value));
        self
    }

    /// Attach the target's metrics snapshot.
    pub fn with_metrics(mut self, metrics: MetricsSnapshot) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

/// The `engine` label value for a snapshot produced under `engine` — stamped
/// at the bench level (never inside dmp-sim/fleet snapshots, whose
/// cross-engine byte-identity is an asserted invariant) so `bench_diff`
/// refuses to compare runs from different schedulers.
pub fn engine_label(engine: netsim::EngineKind) -> String {
    format!("{engine:?}").to_lowercase()
}

/// Signature shared by every reproduction target.
pub type TargetFn = fn(&Runner, &Scale) -> TargetReport;

/// All reproduction targets in paper order — the `repro_all` schedule.
pub fn all_targets() -> Vec<(&'static str, TargetFn)> {
    vec![
        ("fig1", crate::fig1::fig1 as TargetFn),
        ("table1", crate::tables::table1),
        ("table2", crate::tables::table2),
        ("table3", crate::tables::table3),
        ("fig4", crate::validation::fig4),
        ("fig5", crate::validation::fig5),
        (
            "correlated_validation",
            crate::validation::correlated_validation,
        ),
        ("fig7", crate::live_fig::fig7),
        ("fig8", crate::params::fig8),
        ("fig9a", crate::params::fig9a),
        ("fig9b", crate::params::fig9b),
        ("fig10", crate::hetero::fig10),
        ("fig11", crate::static_cmp::fig11),
        ("fig_fluid", crate::fluid_fig::fig_fluid),
        ("headline", crate::params::headline),
    ]
}

/// Extension targets (beyond the paper); run by their own binaries only.
pub fn extension_targets() -> Vec<(&'static str, TargetFn)> {
    vec![
        ("ext_kpaths", crate::extensions::ext_kpaths as TargetFn),
        ("ext_stored", crate::extensions::ext_stored),
        ("ext_ablations", crate::extensions::ext_ablations),
        ("ext_failover", crate::scenarios::ext_failover),
        ("ext_flashcrowd", crate::scenarios::ext_flashcrowd),
        ("ext_fleet", crate::fleet::ext_fleet),
        ("fleet_headroom", crate::fleet::fleet_headroom),
        ("ext_cc_matrix", crate::cc_matrix::ext_cc_matrix),
    ]
}

/// Telemetry from executing one target: wall-clock plus the per-target delta
/// of the shared runner's cumulative counters.
#[derive(Debug, Clone, Copy)]
pub struct TargetOutcome {
    /// Target name (artifact file stem).
    pub name: &'static str,
    /// Wall-clock time of the target, including reduction and rendering.
    pub wall: Duration,
    /// Runner counters attributable to this target.
    pub stats: RunnerStats,
}

fn stats_delta(before: RunnerStats, after: RunnerStats) -> RunnerStats {
    RunnerStats {
        jobs: after.jobs - before.jobs,
        cache_hits: after.cache_hits - before.cache_hits,
        cache_misses: after.cache_misses - before.cache_misses,
        failed: after.failed - before.failed,
        serial_equiv: after.serial_equiv.saturating_sub(before.serial_equiv),
    }
}

/// Run one target, write `<name>.json` + `<name>.meta.json`, print its text.
pub fn execute(
    name: &'static str,
    runner: &Runner,
    artifacts: &ArtifactWriter,
    scale: &Scale,
    target: TargetFn,
) -> TargetOutcome {
    let before = runner.stats();
    let engine_before = netsim::telemetry::snapshot();
    let t0 = Instant::now();
    let report = target(runner, scale);
    let wall = t0.elapsed();
    let stats = stats_delta(before, runner.stats());
    // Counts become deltas attributable to this target; high-water marks
    // stay peaks (monotone maxima), per `EngineTelemetry::delta`.
    let engine = netsim::telemetry::snapshot().delta(&engine_before);
    if let Err(e) = artifacts.write(name, &report.data) {
        eprintln!("warning: could not write artifact {name}.json: {e}");
    }
    let mut engine_meta = report.meta;
    engine_meta.extend([
        ("engine_events", Json::Num(engine.events_processed as f64)),
        (
            "engine_events_per_s",
            Json::Num(if stats.serial_equiv.as_secs_f64() > 0.0 {
                engine.events_processed as f64 / stats.serial_equiv.as_secs_f64()
            } else {
                0.0
            }),
        ),
        ("engine_transits", Json::Num(engine.transits as f64)),
        (
            "engine_transits_per_s",
            Json::Num(if stats.serial_equiv.as_secs_f64() > 0.0 {
                engine.transits as f64 / stats.serial_equiv.as_secs_f64()
            } else {
                0.0
            }),
        ),
        (
            "engine_stale_timer_pops",
            Json::Num(engine.stale_timer_pops as f64),
        ),
        (
            "engine_deferred_timer_pushes",
            Json::Num(engine.deferred_timer_pushes as f64),
        ),
        ("engine_wheel_hwm", Json::Num(engine.wheel_hwm as f64)),
        ("engine_far_hwm", Json::Num(engine.far_hwm as f64)),
        ("engine_ring_hwm", Json::Num(engine.ring_hwm as f64)),
        (
            "engine_random_loss_drops",
            Json::Num(engine.random_loss_drops as f64),
        ),
    ]);
    #[cfg(feature = "profile")]
    engine_meta.push(("engine_profile", profile_meta()));
    // Live-path evidence: the shaping timeline each emulated path actually
    // applied during this target's wall-clock runs (empty for pure-sim
    // targets). Volatile by nature, hence the meta sidecar, not the artifact.
    let timelines = dmp_live::telemetry::drain_timelines();
    if !timelines.is_empty() {
        engine_meta.push((
            "live_timelines",
            Json::obj(timelines.into_iter().map(|(label, points)| {
                (
                    label,
                    Json::arr(points.iter().map(|p| {
                        Json::obj([
                            ("t_s", Json::Num(p.t.as_secs_f64())),
                            ("rate_bps", Json::Num(p.rate_bps)),
                            ("delay_s", Json::Num(p.delay.as_secs_f64())),
                            ("down", Json::Bool(p.down)),
                        ])
                    })),
                )
            })),
        ));
    }
    // Flight-recorder traces written during this target (empty unless the
    // scale's `trace` flag is on): label → JSONL file, so a reader of the
    // sidecar can find the raw event streams behind the summary numbers.
    let trace_files = obs::drain_trace_files();
    if !trace_files.is_empty() {
        engine_meta.push((
            "trace_files",
            Json::arr(trace_files.into_iter().map(|f| {
                Json::obj([
                    ("label", Json::Str(f.label)),
                    ("path", Json::Str(f.path.display().to_string())),
                    ("events", Json::Num(f.events as f64)),
                ])
            })),
        ));
    }
    if let Some(metrics) = &report.metrics {
        let doc = metrics.to_json();
        if let Err(e) = artifacts.write_metrics(name, &doc) {
            eprintln!("warning: could not write metrics/{name}.json: {e}");
        }
        engine_meta.push(("metrics", doc));
    }
    if let Err(e) = artifacts.write_meta(name, &stats, runner.threads(), wall, engine_meta) {
        eprintln!("warning: could not write artifact {name}.meta.json: {e}");
    }
    println!("{}", report.text);
    TargetOutcome { name, wall, stats }
}

/// Entry point shared by the standalone binaries: run the named targets at
/// the environment-selected scale with an environment-configured runner and
/// artifact directory, and print a one-line telemetry footer per target.
pub fn run_standalone(targets: &[(&'static str, TargetFn)]) {
    let scale = crate::scale_from_env();
    let runner = Runner::from_env();
    let artifacts = ArtifactWriter::from_env();
    for &(name, f) in targets {
        let out = execute(name, &runner, &artifacts, &scale, f);
        eprintln!(
            "[{name}] wall {:.1}s  serial-equiv {:.1}s  jobs {}  cache {}/{}  failed {}  \
             (artifacts: {})",
            out.wall.as_secs_f64(),
            out.stats.serial_equiv.as_secs_f64(),
            out.stats.jobs,
            out.stats.cache_hits,
            out.stats.cache_hits + out.stats.cache_misses,
            out.stats.failed,
            artifacts.dir().display(),
        );
    }
}

/// Render the `repro_all` summary table from per-target outcomes.
pub fn summary_table(outcomes: &[TargetOutcome], threads: usize, total_wall: Duration) -> String {
    let mut t = Table::new(
        format!("repro_all summary ({threads} thread(s))"),
        &[
            "target",
            "wall (s)",
            "serial-equiv (s)",
            "jobs",
            "cache hits",
            "cache misses",
            "failed",
        ],
    );
    let mut serial_equiv = Duration::ZERO;
    let (mut jobs, mut hits, mut misses, mut failed) = (0u64, 0u64, 0u64, 0u64);
    for o in outcomes {
        t.row(vec![
            o.name.to_string(),
            format!("{:.1}", o.wall.as_secs_f64()),
            format!("{:.1}", o.stats.serial_equiv.as_secs_f64()),
            o.stats.jobs.to_string(),
            o.stats.cache_hits.to_string(),
            o.stats.cache_misses.to_string(),
            o.stats.failed.to_string(),
        ]);
        serial_equiv += o.stats.serial_equiv;
        jobs += o.stats.jobs;
        hits += o.stats.cache_hits;
        misses += o.stats.cache_misses;
        failed += o.stats.failed;
    }
    let mut out = t.render();
    let total = total_wall.as_secs_f64();
    let serial = serial_equiv.as_secs_f64();
    out.push_str(&format!(
        "\nTotals: {jobs} jobs, {hits} cache hits / {misses} misses, {failed} failed.\n\
         Wall-clock {total:.1} s vs serial-equivalent {serial:.1} s \
         (speedup {:.2}x on {threads} thread(s)).\n",
        if total > 0.0 { serial / total } else { 1.0 },
    ));
    out
}

/// `None` → JSON `null`, `Some(x)` → number (for unreachable-τ cells).
pub fn opt_num(v: Option<f64>) -> Json {
    match v {
        Some(x) => Json::Num(x),
        None => Json::Null,
    }
}

/// The hot-path profiler's cumulative per-event-kind breakdown, as a JSON
/// object for `.meta.json` sidecars. Only compiled with the `profile`
/// feature; the counters are process-wide, so callers wanting a per-target
/// view should snapshot-and-delta like `execute` does for engine telemetry.
#[cfg(feature = "profile")]
pub fn profile_meta() -> Json {
    use netsim::telemetry::profile;
    let snap = profile::snapshot();
    Json::obj(profile::KIND_NAMES.iter().enumerate().map(|(i, &name)| {
        (
            name,
            Json::obj([
                ("count", Json::Num(snap.counts[i] as f64)),
                ("ticks", Json::Num(snap.ticks[i] as f64)),
            ]),
        )
    }))
}
