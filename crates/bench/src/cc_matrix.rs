//! Extension: the (congestion control × pull strategy) **headroom matrix**.
//!
//! The paper's Section 7.3 safety rule says live multipath streaming works
//! when the paths' aggregate achievable TCP rate σ_a exceeds the video rate
//! µ by a comfortable multiple. That rule was derived for Reno and the
//! paper's round-robin pull. This target measures how the required multiple
//! moves when either axis changes:
//!
//! 1. For each congestion-control algorithm, a **saturation probe**
//!    ([`dmp_sim::probe`]) measures σ_a empirically on the study setting —
//!    the same experiment with the video source outrunning the network.
//! 2. For each (cc, strategy) cell, the video is streamed at µ = σ_a/m for
//!    ascending multiples `m`; the cell's **headroom** is the smallest `m`
//!    whose mean playback-order late fraction stays under
//!    [`LATE_BUDGET`]. Cells that fail the whole grid report `null`
//!    (headroom beyond the largest multiple tried — e.g. redundant
//!    duplication burns roughly half the aggregate rate on copies).
//!
//! Every simulation of the matrix runs under **both** engines and the cell
//! records that they agreed bit-for-bit, exactly like the scenario
//! extensions. The artifact is deterministic: byte-identical across engines
//! (by construction), runner thread counts, and cache states.

use cc::CcKind;
use dmp_core::spec::{PullStrategy, SchedulerKind};
use dmp_runner::{Json, Runner};
use dmp_sim::experiment::{batch_jobs, ExperimentSpec, RunSummary};
use dmp_sim::probe::{saturation_jobs, SaturationReport};
use dmp_sim::setting;
use netsim::EngineKind;

use crate::report::{frac, Table};
use crate::scale::Scale;
use crate::target::TargetReport;

/// Startup delay τ the late fractions are evaluated at, seconds.
pub const TAU_S: f64 = 4.0;
/// A cell passes a multiple when its mean playback-order late fraction is
/// below this (the "<1 % late frames" criterion).
pub const LATE_BUDGET: f64 = 0.01;
/// Ascending grid of σ_a/µ multiples searched for each cell's headroom.
pub const MULTIPLES: [f64; 5] = [1.2, 1.4, 1.6, 1.8, 2.2];
/// The study setting: the homogeneous Config-2 pair used throughout the
/// scenario extensions.
pub const SETTING: &str = "2-2";

/// Matrix dimensions and per-run scale, derived from a [`Scale`] (or
/// reduced for the smoke gate).
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    /// σ_a/µ multiples tried, ascending.
    pub multiples: Vec<f64>,
    /// Replications per (cc, strategy, multiple, engine).
    pub runs: usize,
    /// Video duration per run, seconds.
    pub duration_s: f64,
    /// Base seed.
    pub seed: u64,
}

impl MatrixOptions {
    /// The target's options at a given scale.
    pub fn from_scale(scale: &Scale) -> Self {
        Self {
            multiples: MULTIPLES.to_vec(),
            runs: scale.sim_runs,
            duration_s: scale.sim_duration_s,
            seed: scale.seed,
        }
    }

    /// Reduced grid for the CI smoke gate: one multiple, one replication,
    /// short runs — enough to exercise every cell and the engine
    /// differential without re-deriving the committed headrooms.
    pub fn smoke() -> Self {
        Self {
            multiples: vec![1.6],
            runs: 1,
            duration_s: 60.0,
            seed: 2007,
        }
    }
}

/// One (cc, strategy) cell of the matrix.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Congestion-control algorithm of the cell.
    pub cc: CcKind,
    /// Pull strategy of the cell.
    pub strategy: PullStrategy,
    /// Measured aggregate saturation rate σ_a for this cc, packets/second
    /// (probed once per cc, round-robin pull).
    pub sigma_pps: f64,
    /// Smallest multiple in the grid meeting the late budget, if any.
    pub headroom: Option<f64>,
    /// `(multiple, mean playback late fraction)` for every multiple tried
    /// (the ascending search stops at the first pass).
    pub tried: Vec<(f64, f64)>,
    /// Every simulation of this cell (probe included) produced
    /// byte-identical summaries under the heap and calendar engines.
    pub engines_agree: bool,
    /// Always-on metrics merged over the cell's calendar replications
    /// (every multiple tried). Labelled with the cell's cc/strategy by the
    /// dmp-sim layer; stays out of [`CellOutcome::to_json`] — the target
    /// folds it into the standalone `metrics/<name>.json` instead.
    pub metrics: obs::MetricsSnapshot,
}

impl CellOutcome {
    /// Mean late fraction at the headroom multiple (the last one tried,
    /// when the search succeeded).
    pub fn late_at_headroom(&self) -> Option<f64> {
        self.headroom.and_then(|_| self.tried.last()).map(|t| t.1)
    }

    /// The cell's deterministic JSON node (one entry of the artifact's
    /// `cells` array — what the smoke gate byte-compares).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cc", Json::Str(self.cc.name().to_string())),
            ("strategy", Json::Str(self.strategy.name().to_string())),
            ("sigma_pps", Json::Num(self.sigma_pps)),
            ("headroom", self.headroom.map_or(Json::Null, Json::Num)),
            (
                "tried",
                Json::Arr(
                    self.tried
                        .iter()
                        .map(|&(m, late)| {
                            Json::obj([("multiple", Json::Num(m)), ("late", Json::Num(late))])
                        })
                        .collect(),
                ),
            ),
            ("engines_agree", Json::Bool(self.engines_agree)),
        ])
    }
}

/// The whole matrix plus the per-cc probes behind it.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// `(cc, σ_a pps, probe engines agreed)` per congestion control.
    pub probes: Vec<(CcKind, f64, bool)>,
    /// Cells in cc-major, strategy-minor order.
    pub cells: Vec<CellOutcome>,
    /// Options the matrix was computed with.
    pub options: MatrixOptions,
}

impl MatrixOutcome {
    /// The deterministic artifact payload.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("setting", Json::Str(SETTING.to_string())),
            ("tau_s", Json::Num(TAU_S)),
            ("late_budget", Json::Num(LATE_BUDGET)),
            (
                "multiples",
                Json::Arr(
                    self.options
                        .multiples
                        .iter()
                        .map(|&m| Json::Num(m))
                        .collect(),
                ),
            ),
            ("runs", Json::Num(self.options.runs as f64)),
            ("duration_s", Json::Num(self.options.duration_s)),
            ("seed", Json::Num(self.options.seed as f64)),
            (
                "probes",
                Json::Arr(
                    self.probes
                        .iter()
                        .map(|(kind, sigma, agree)| {
                            Json::obj([
                                ("cc", Json::Str(kind.name().to_string())),
                                ("sigma_pps", Json::Num(*sigma)),
                                ("engines_agree", Json::Bool(*agree)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(CellOutcome::to_json).collect()),
            ),
        ])
    }

    /// All probes and all cells agreed across both engines.
    pub fn all_engines_agree(&self) -> bool {
        self.probes.iter().all(|&(_, _, agree)| agree) && self.cells.iter().all(|c| c.engines_agree)
    }
}

/// The base streaming spec of the matrix: the study setting under the
/// dynamic (DMP) scheduler at the given cell coordinates and engine.
fn cell_spec(
    kind: CcKind,
    strategy: PullStrategy,
    engine: EngineKind,
    opts: &MatrixOptions,
) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(
        *setting(SETTING).expect("built-in"),
        SchedulerKind::Dynamic,
        opts.duration_s,
        opts.seed,
    );
    spec.warmup_s = 10.0;
    spec.cc = kind;
    spec.strategy = strategy;
    spec.engine = engine;
    spec
}

/// Run `runs` replications of `spec` under both engines; returns the
/// calendar summaries and whether the heap run agreed byte-for-byte.
fn run_both_engines(
    runner: &Runner,
    spec: &ExperimentSpec,
    runs: usize,
) -> (Vec<RunSummary>, bool) {
    let mut jobs = Vec::new();
    for engine in [EngineKind::Calendar, EngineKind::Heap] {
        let mut s = spec.clone();
        s.engine = engine;
        jobs.extend(batch_jobs(&s, runs, &[TAU_S]));
    }
    let cells = runner.run_all(jobs);
    let take = |eng: usize| -> Vec<RunSummary> {
        (0..runs)
            .map(|i| {
                let c = &cells[eng * runs + i];
                c.ok()
                    .unwrap_or_else(|| panic!("{} failed: {:?}", c.label, c.failure()))
                    .clone()
            })
            .collect()
    };
    let calendar = take(0);
    let heap = take(1);
    let agree = calendar
        .iter()
        .zip(&heap)
        .all(|(a, b)| format!("{a:?}") == format!("{b:?}"));
    (calendar, agree)
}

/// Probe σ_a for one congestion control (round-robin pull — the multiples
/// are defined against the baseline striping). Returns `(σ_a, engines
/// agree)`; σ_a comes from the calendar run.
fn probe_sigma(runner: &Runner, kind: CcKind, opts: &MatrixOptions) -> (f64, bool) {
    let mut reports = Vec::new();
    for engine in [EngineKind::Calendar, EngineKind::Heap] {
        let spec = cell_spec(kind, PullStrategy::RoundRobin, engine, opts);
        let cells = runner.run_all(saturation_jobs(&spec, 1));
        let r: &SaturationReport = cells[0]
            .ok()
            .unwrap_or_else(|| panic!("{} failed: {:?}", cells[0].label, cells[0].failure()));
        reports.push(r.clone());
    }
    let agree = format!("{:?}", reports[0]) == format!("{:?}", reports[1]);
    (reports[0].aggregate_pps, agree)
}

/// Mean playback-order late fraction at [`TAU_S`] over a batch.
fn mean_late(runs: &[RunSummary]) -> f64 {
    runs.iter()
        .map(|r| r.per_tau[0].playback_order)
        .sum::<f64>()
        / runs.len() as f64
}

/// Video rate for one multiple: µ = σ_a/m, rounded to 0.01 pps so the cache
/// key stays readable and exactly reproducible.
fn rate_for(sigma_pps: f64, multiple: f64) -> f64 {
    (sigma_pps / multiple * 100.0).round() / 100.0
}

/// Ascending headroom search for one cell given its cc's probed σ_a.
fn cell_outcome(
    runner: &Runner,
    kind: CcKind,
    strategy: PullStrategy,
    sigma_pps: f64,
    probe_agree: bool,
    opts: &MatrixOptions,
) -> CellOutcome {
    let mut tried = Vec::new();
    let mut headroom = None;
    let mut engines_agree = probe_agree;
    let mut metrics = obs::MetricsSnapshot::new();
    for &m in &opts.multiples {
        let mut spec = cell_spec(kind, strategy, EngineKind::Calendar, opts);
        spec.setting.video.rate_pps = rate_for(sigma_pps, m);
        let (runs, agree) = run_both_engines(runner, &spec, opts.runs);
        engines_agree &= agree;
        for r in &runs {
            metrics.merge(&r.metrics);
        }
        let late = mean_late(&runs);
        tried.push((m, late));
        if late < LATE_BUDGET {
            headroom = Some(m);
            break;
        }
    }
    CellOutcome {
        cc: kind,
        strategy,
        sigma_pps,
        headroom,
        tried,
        engines_agree,
        metrics,
    }
}

/// Compute a single (cc, strategy) cell — probe included. The smoke gate
/// uses this to re-derive the committed baseline cell without paying for
/// the whole matrix.
pub fn compute_matrix_cell(
    runner: &Runner,
    kind: CcKind,
    strategy: PullStrategy,
    opts: &MatrixOptions,
) -> CellOutcome {
    let (sigma_pps, probe_agree) = probe_sigma(runner, kind, opts);
    cell_outcome(runner, kind, strategy, sigma_pps, probe_agree, opts)
}

/// Compute the full matrix on a runner.
pub fn compute_matrix(runner: &Runner, opts: &MatrixOptions) -> MatrixOutcome {
    let mut probes = Vec::new();
    let mut cells = Vec::new();
    for kind in CcKind::all() {
        let (sigma_pps, probe_agree) = probe_sigma(runner, kind, opts);
        probes.push((kind, sigma_pps, probe_agree));
        for strategy in PullStrategy::all() {
            cells.push(cell_outcome(
                runner,
                kind,
                strategy,
                sigma_pps,
                probe_agree,
                opts,
            ));
        }
    }
    MatrixOutcome {
        probes,
        cells,
        options: opts.clone(),
    }
}

/// Render the matrix as the target's text table.
pub fn render_matrix(out: &MatrixOutcome) -> String {
    let mut t = Table::new(
        format!(
            "ext_cc_matrix: headroom multiple (σ_a/µ for <{:.0} % late, τ = {TAU_S} s) \
             on Setting {SETTING}",
            LATE_BUDGET * 100.0
        ),
        &[
            "cc",
            "strategy",
            "σ_a (pkt/s)",
            "headroom",
            "late @ headroom",
            "engines agree",
        ],
    );
    for c in &out.cells {
        t.row(vec![
            c.cc.name().to_string(),
            c.strategy.name().to_string(),
            format!("{:.1}", c.sigma_pps),
            c.headroom.map_or_else(
                || {
                    format!(
                        "> {:.1}",
                        out.options.multiples.last().copied().unwrap_or(f64::NAN)
                    )
                },
                |m| format!("{m:.1}"),
            ),
            c.late_at_headroom().map_or_else(|| "—".to_string(), frac),
            if c.engines_agree { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.render()
}

/// The `ext_cc_matrix` extension target.
pub fn ext_cc_matrix(runner: &Runner, scale: &Scale) -> TargetReport {
    let opts = MatrixOptions::from_scale(scale);
    let out = compute_matrix(runner, &opts);
    let cells_json = out.to_json();
    // Fold every cell's metrics; cc/strategy collapse to "mixed" (the matrix
    // spans both axes by construction) and the engine label is calendar —
    // the engine whose replications the cells keep.
    let mut metrics = obs::MetricsSnapshot::new();
    for c in &out.cells {
        metrics.merge(&c.metrics);
    }
    metrics.set_label("engine", crate::target::engine_label(EngineKind::Calendar));
    TargetReport::new(render_matrix(&out), cells_json)
        .with_metrics(metrics)
        .with_meta(
            "matrix",
            Json::obj([
                ("cc_count", Json::Num(out.probes.len() as f64)),
                (
                    "strategy_count",
                    Json::Num(PullStrategy::all().len() as f64),
                ),
                ("all_engines_agree", Json::Bool(out.all_engines_agree())),
            ]),
        )
}
