//! `dmp-bench` — the reproduction harness: one target per table and figure
//! of *Multipath Live Streaming via TCP* (CoNEXT 2007).
//!
//! Every experiment is exposed twice:
//!
//! * a **binary** (`cargo run --release -p dmp-bench --bin <name>`) that runs
//!   the full-fidelity version and prints the paper-shaped table/series;
//! * a **Criterion bench** (`cargo bench -p dmp-bench`) that runs a reduced
//!   [`Scale::quick`] version — printing the same series into the bench log —
//!   and measures the throughput of the underlying kernel.
//!
//! | target | reproduces |
//! |--------|------------|
//! | `fig1`      | Fig. 1 — cumulative generation/arrival/playback curves |
//! | `table1`    | Table 1 (configurations) |
//! | `table2`    | Table 2 (independent paths: measured p, R, T_O, µ) |
//! | `table3`    | Table 3 (correlated paths) |
//! | `fig4`      | Fig. 4(a,b) — Setting 2-2 validation |
//! | `fig5`      | Fig. 5(a,b) — Setting 1-2 validation |
//! | `fig7`      | Fig. 7(a,b) — live-socket validation |
//! | `fig8`      | Fig. 8 — diminishing gain from σ_a/µ |
//! | `fig9`      | Fig. 9(a,b) — required startup delay at σ_a/µ = 1.6 |
//! | `fig10`     | Fig. 10 — path heterogeneity |
//! | `fig11`     | Fig. 11 — DMP vs static streaming |
//! | `fig_fluid` | Section 7.3 fluid example |
//! | `headline`  | the 1.6× (K=2) vs 2× (K=1) rule |
//! | `repro_all` | everything above, in order |
//! | `ext_kpaths`, `ext_stored`, `ext_ablations` | extensions beyond the paper (K > 2 paths, stored video, design ablations) |
//! | `ext_failover`, `ext_flashcrowd` | scripted path dynamics: mid-stream path failure and a transient flash crowd, with resilience metrics per scheduler |
//! | `ext_fleet`, `fleet_headroom` | fleet-scale simulation: sharded multi-session fleets with Poisson churn and flash-crowd arrivals; admission capacity under the 1.6× rule |
//! | `ext_cc_matrix` | the (congestion control × pull strategy) headroom matrix: smallest σ_a/µ multiple keeping late frames under 1 % per (Reno/CUBIC/BBR-lite, round-robin/weighted/best-path/redundant/deadline) cell, with saturation-probed σ_a and engine differentials |
//! | `trace_report` | post-process an [`obs`] flight-recorder JSONL trace (recorded with `--trace`) into cwnd/throughput timelines, queue percentiles and a per-glitch "why" report |
//! | `trace_example` | record the committed quick-scale `ext_failover` example trace and its report (see `artifacts/traces/`) |
//! | `metrics_report` | render the always-on `metrics/<name>.json` snapshots written next to every artifact: percentile tables and sparkline histogram shapes |
//! | `bench_diff` | cross-run regression differ: compare two metrics files/directories with per-metric relative-change thresholds; exit 0 no drift, 1 drift, 2 incomparable configs |

#![warn(missing_docs)]

pub mod cc_matrix;
pub mod diff;
pub mod extensions;
pub mod fig1;
pub mod fleet;
pub mod fluid_fig;
pub mod hetero;
pub mod live_fig;
pub mod metrics_report;
pub mod params;
pub mod report;
pub mod scale;
pub mod scenarios;
pub mod static_cmp;
pub mod tables;
pub mod target;
pub mod trace_example;
pub mod trace_report;
pub mod validation;

pub use scale::Scale;
pub use target::{TargetFn, TargetReport};

/// Parse the `--quick` / `--full` flags (or `DMP_QUICK=1`) for the binaries.
/// An explicit `--full` wins over the environment; default is full scale.
/// `--trace` (or `DMP_TRACE=1`) additionally records flight-recorder traces
/// for the targets that support them (see [`Scale::trace`]).
pub fn scale_from_env() -> Scale {
    let mut scale = if std::env::args().any(|a| a == "--full") {
        Scale::full()
    } else {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("DMP_QUICK")
                .map(|v| v == "1")
                .unwrap_or(false);
        if quick {
            Scale::quick()
        } else {
            Scale::full()
        }
    };
    scale.trace = std::env::args().any(|a| a == "--trace")
        || std::env::var("DMP_TRACE")
            .map(|v| v == "1")
            .unwrap_or(false);
    scale
}
