//! Figure 10: the impact of path heterogeneity (Section 7.2).
//!
//! Two scenario families, each compared against a homogeneous scenario with
//! the **same aggregate achievable throughput**:
//!
//! * Case 1 — paths differ only in RTT: `R₁ = γRᵒ`, `R₂ = Rᵒ/(2 − 1/γ)`;
//! * Case 2 — paths differ only in loss: `p₁ = γpᵒ`, `p₂` solved from the
//!   PFTK formula so `σ₁ + σ₂ = 2σᵒ`.
//!
//! For each setting the figure plots the required startup delay under
//! homogeneous paths against the heterogeneous one; points near the diagonal
//! mean DMP-streaming is insensitive to heterogeneity.

use dmp_core::spec::PathSpec;
use dmp_runner::{Json, Runner};
use tcp_model::{pftk, DmpModel, TauSearchSpec};

use crate::report::{tau, Table};
use crate::scale::Scale;
use crate::target::{opt_num, TargetReport};

/// One heterogeneity comparison setting.
#[derive(Debug, Clone, Copy)]
pub struct HeteroSetting {
    /// "rtt" (Case 1) or "loss" (Case 2).
    pub case: &'static str,
    /// Heterogeneity factor γ.
    pub gamma: f64,
    /// Homogeneous loss rate `pᵒ`.
    pub p_o: f64,
    /// Homogeneous RTT `Rᵒ`, seconds.
    pub r_o: f64,
    /// Target `σ_a/µ` ratio.
    pub ratio: f64,
}

/// The 24 settings of the paper: Case 1 with pᵒ ∈ {0.01, 0.04} and Case 2
/// with Rᵒ ∈ {100, 300} ms, γ ∈ {1.5, 2}, ratio ∈ {1.4, 1.6, 1.8}; Rᵒ =
/// 150 ms / pᵒ = 0.02 for the respective fixed parameter, T_O = 4.
pub fn paper_settings() -> Vec<HeteroSetting> {
    let mut v = Vec::new();
    for &gamma in &[1.5, 2.0] {
        for &ratio in &[1.4, 1.6, 1.8] {
            for &p_o in &[0.01, 0.04] {
                v.push(HeteroSetting {
                    case: "rtt",
                    gamma,
                    p_o,
                    r_o: 0.150,
                    ratio,
                });
            }
            for &r_o in &[0.100, 0.300] {
                v.push(HeteroSetting {
                    case: "loss",
                    gamma,
                    p_o: 0.02,
                    r_o,
                    ratio,
                });
            }
        }
    }
    v
}

/// The paths of the heterogeneous scenario for a setting (T_O = 4).
pub fn hetero_paths(s: &HeteroSetting) -> Vec<PathSpec> {
    let to = 4.0;
    match s.case {
        "rtt" => {
            let r1 = s.gamma * s.r_o;
            let r2 = s.r_o / (2.0 - 1.0 / s.gamma);
            vec![
                PathSpec {
                    loss: s.p_o,
                    rtt_s: r1,
                    to_ratio: to,
                },
                PathSpec {
                    loss: s.p_o,
                    rtt_s: r2,
                    to_ratio: to,
                },
            ]
        }
        "loss" => {
            let p1 = s.gamma * s.p_o;
            let sigma_o = pftk::throughput_pps(&PathSpec {
                loss: s.p_o,
                rtt_s: s.r_o,
                to_ratio: to,
            });
            let sigma_1 = pftk::throughput_pps(&PathSpec {
                loss: p1,
                rtt_s: s.r_o,
                to_ratio: to,
            });
            let p2 = pftk::loss_for_throughput(2.0 * sigma_o - sigma_1, s.r_o, to);
            vec![
                PathSpec {
                    loss: p1,
                    rtt_s: s.r_o,
                    to_ratio: to,
                },
                PathSpec {
                    loss: p2,
                    rtt_s: s.r_o,
                    to_ratio: to,
                },
            ]
        }
        other => panic!("unknown case {other}"),
    }
}

/// The playback rate µ that puts the homogeneous scenario at the setting's
/// `σ_a/µ` ratio.
pub fn mu_for(s: &HeteroSetting) -> f64 {
    tcp_model::calibrate::mu_for_ratio(s.p_o, s.r_o, 4.0, DmpModel::DEFAULT_WMAX, 2, s.ratio)
}

/// Fig. 10: required startup delay under homogeneous vs heterogeneous paths.
pub fn fig10(r: &Runner, scale: &Scale) -> TargetReport {
    let settings = paper_settings();
    let opts = scale.search_options();
    // Two τ-searches per setting: the homogeneous baseline and the
    // heterogeneous scenario with the same aggregate throughput.
    let mut jobs = Vec::with_capacity(2 * settings.len());
    for (i, s) in settings.iter().enumerate() {
        let mu = mu_for(s);
        let homo = vec![
            PathSpec {
                loss: s.p_o,
                rtt_s: s.r_o,
                to_ratio: 4.0
            };
            2
        ];
        jobs.push(
            TauSearchSpec {
                paths: homo,
                mu,
                opts,
            }
            .into_job(format!("fig10:{i}:{}:g{}:homo", s.case, s.gamma)),
        );
        jobs.push(
            TauSearchSpec {
                paths: hetero_paths(s),
                mu,
                opts,
            }
            .into_job(format!("fig10:{i}:{}:g{}:hetero", s.case, s.gamma)),
        );
    }
    let cells = r.run_all(jobs);

    let mut t = Table::new(
        "Fig 10: required startup delay (s), homogeneous vs heterogeneous paths (TO=4)",
        &[
            "case",
            "gamma",
            "p_o",
            "R_o (ms)",
            "ratio",
            "tau homo",
            "tau hetero",
        ],
    );
    let mut points = Vec::new();
    for (i, s) in settings.iter().enumerate() {
        let tau_homo = *cells[2 * i].ok().expect("search job");
        let tau_het = *cells[2 * i + 1].ok().expect("search job");
        t.row(vec![
            s.case.to_string(),
            format!("{:.1}", s.gamma),
            format!("{:.3}", s.p_o),
            format!("{:.0}", s.r_o * 1e3),
            format!("{:.1}", s.ratio),
            tau(tau_homo),
            tau(tau_het),
        ]);
        points.push(Json::obj([
            ("case", Json::Str(s.case.to_string())),
            ("gamma", Json::Num(s.gamma)),
            ("p_o", Json::Num(s.p_o)),
            ("r_o_s", Json::Num(s.r_o)),
            ("ratio", Json::Num(s.ratio)),
            ("tau_homo_s", opt_num(tau_homo)),
            ("tau_hetero_s", opt_num(tau_het)),
        ]));
    }
    let data = Json::obj([("points", Json::Arr(points)), ("table", t.to_json())]);
    TargetReport::new(t.render(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_has_24_settings() {
        assert_eq!(paper_settings().len(), 24);
    }

    #[test]
    fn case1_rtts_match_paper() {
        // γ = 2, Rᵒ = 150 ms → R₁ = 300 ms, R₂ = 100 ms.
        let s = HeteroSetting {
            case: "rtt",
            gamma: 2.0,
            p_o: 0.01,
            r_o: 0.150,
            ratio: 1.6,
        };
        let p = hetero_paths(&s);
        assert!((p[0].rtt_s - 0.300).abs() < 1e-12);
        assert!((p[1].rtt_s - 0.100).abs() < 1e-12);
        // γ = 1.5 → 225 ms and 112.5 ms.
        let s = HeteroSetting { gamma: 1.5, ..s };
        let p = hetero_paths(&s);
        assert!((p[0].rtt_s - 0.225).abs() < 1e-12);
        assert!((p[1].rtt_s - 0.1125).abs() < 1e-12);
    }

    #[test]
    fn aggregate_throughput_is_preserved() {
        for s in paper_settings() {
            let homo = PathSpec {
                loss: s.p_o,
                rtt_s: s.r_o,
                to_ratio: 4.0,
            };
            let sigma_o = pftk::throughput_pps(&homo);
            let agg: f64 = hetero_paths(&s).iter().map(pftk::throughput_pps).sum();
            assert!(
                (agg - 2.0 * sigma_o).abs() / (2.0 * sigma_o) < 1e-6,
                "{s:?}: {agg} vs {}",
                2.0 * sigma_o
            );
        }
    }

    #[test]
    fn case2_losses_match_paper() {
        // γ = 2, Rᵒ = 100 ms, pᵒ = 0.02 → p₁ = 0.04, p₂ ≈ 0.012.
        let s = HeteroSetting {
            case: "loss",
            gamma: 2.0,
            p_o: 0.02,
            r_o: 0.100,
            ratio: 1.6,
        };
        let p = hetero_paths(&s);
        assert!((p[0].loss - 0.04).abs() < 1e-12);
        assert!((p[1].loss - 0.012).abs() < 0.002, "p₂ = {}", p[1].loss);
    }
}
