//! Figure 11: DMP-streaming versus the static allocation scheme
//! (Section 7.4), in the model.
//!
//! With two homogeneous paths, static streaming is two independent
//! single-path streams of rate µ/2; its required startup delay is computed
//! with the single-path (K = 1, µ/2) model and compared against DMP's.

use dmp_core::spec::PathSpec;
use dmp_runner::{Json, Runner};
use tcp_model::{calibrate, required_startup_delay, DmpModel, TauSearchSpec};

use crate::report::{tau, Table};
use crate::scale::Scale;
use crate::target::{opt_num, TargetReport};

/// One comparison column of Fig. 11.
#[derive(Debug, Clone, Copy)]
pub struct StaticSetting {
    /// RTT, seconds.
    pub rtt_s: f64,
    /// Target `σ_a/µ`.
    pub ratio: f64,
}

/// The figure's five setting groups: R ∈ {100, 200, 300} ms at
/// `σ_a/µ = 1.6`, plus R = 300 ms at 1.8 and 2.0; loss ∈ {0.004, 0.02,
/// 0.04} within each group, T_O = 4.
pub fn paper_settings() -> Vec<StaticSetting> {
    vec![
        StaticSetting {
            rtt_s: 0.100,
            ratio: 1.6,
        },
        StaticSetting {
            rtt_s: 0.200,
            ratio: 1.6,
        },
        StaticSetting {
            rtt_s: 0.300,
            ratio: 1.6,
        },
        StaticSetting {
            rtt_s: 0.300,
            ratio: 1.8,
        },
        StaticSetting {
            rtt_s: 0.300,
            ratio: 2.0,
        },
    ]
}

/// Required startup delay of static streaming: each path carries an
/// independent single-path stream at µ/2.
pub fn static_required_tau(
    path: PathSpec,
    mu: f64,
    opts: &tcp_model::SearchOptions,
) -> Option<f64> {
    required_startup_delay(|t| DmpModel::new(vec![path], mu / 2.0, t), opts)
}

/// Required startup delay of DMP-streaming over the two paths.
pub fn dmp_required_tau(path: PathSpec, mu: f64, opts: &tcp_model::SearchOptions) -> Option<f64> {
    required_startup_delay(|t| DmpModel::new(vec![path; 2], mu, t), opts)
}

/// Fig. 11: required startup delay, static vs DMP, across the paper's
/// representative settings.
pub fn fig11(r: &Runner, scale: &Scale) -> TargetReport {
    let opts = scale.search_options();
    let losses = [0.004, 0.02, 0.04];
    // Per (setting, p): a static search (K=1 at µ/2) and a DMP search
    // (K=2 at µ). Static streaming over two identical paths is two
    // independent single-path streams, so one K=1 search covers it.
    let mut grid = Vec::new();
    let mut jobs = Vec::new();
    for s in paper_settings() {
        for &p in &losses {
            let mu = calibrate::mu_for_ratio(p, s.rtt_s, 4.0, DmpModel::DEFAULT_WMAX, 2, s.ratio);
            let path = PathSpec {
                loss: p,
                rtt_s: s.rtt_s,
                to_ratio: 4.0,
            };
            jobs.push(
                TauSearchSpec {
                    paths: vec![path],
                    mu: mu / 2.0,
                    opts,
                }
                .into_job(format!("fig11:R{}:r{}:p{p}:static", s.rtt_s, s.ratio)),
            );
            jobs.push(
                TauSearchSpec {
                    paths: vec![path; 2],
                    mu,
                    opts,
                }
                .into_job(format!("fig11:R{}:r{}:p{p}:dmp", s.rtt_s, s.ratio)),
            );
            grid.push((s, p));
        }
    }
    let cells = r.run_all(jobs);

    let mut t = Table::new(
        "Fig 11: required startup delay (s), static-streaming vs DMP-streaming (TO=4)",
        &["R (ms)", "sigma_a/mu", "p", "static", "DMP"],
    );
    let mut points = Vec::new();
    for (i, (s, p)) in grid.iter().enumerate() {
        let t_static = *cells[2 * i].ok().expect("search job");
        let t_dmp = *cells[2 * i + 1].ok().expect("search job");
        t.row(vec![
            format!("{:.0}", s.rtt_s * 1e3),
            format!("{:.1}", s.ratio),
            format!("{p:.3}"),
            tau(t_static),
            tau(t_dmp),
        ]);
        points.push(Json::obj([
            ("rtt_s", Json::Num(s.rtt_s)),
            ("ratio", Json::Num(s.ratio)),
            ("p", Json::Num(*p)),
            ("tau_static_s", opt_num(t_static)),
            ("tau_dmp_s", opt_num(t_dmp)),
        ]));
    }
    let data = Json::obj([("points", Json::Arr(points)), ("table", t.to_json())]);
    TargetReport::new(t.render(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn dmp_needs_no_more_delay_than_static() {
        // One representative point, quick search budget.
        let scale = Scale::quick();
        let opts = scale.search_options();
        let p = 0.02;
        let s = StaticSetting {
            rtt_s: 0.200,
            ratio: 1.6,
        };
        let mu = calibrate::mu_for_ratio(p, s.rtt_s, 4.0, DmpModel::DEFAULT_WMAX, 2, s.ratio);
        let path = PathSpec {
            loss: p,
            rtt_s: s.rtt_s,
            to_ratio: 4.0,
        };
        let t_static = static_required_tau(path, mu, &opts).expect("static reachable");
        let t_dmp = dmp_required_tau(path, mu, &opts).expect("dmp reachable");
        assert!(
            t_dmp <= t_static,
            "DMP τ = {t_dmp} should not exceed static τ = {t_static}"
        );
    }
}
