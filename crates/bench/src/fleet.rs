//! Fleet-scale extension targets: the operational question behind the
//! paper's per-session verdicts.
//!
//! * [`ext_fleet`] — one fleet of churning DMP sessions with a flash-crowd
//!   arrival spike, run under **both** scheduler engines; the artifact
//!   records the fleet report and that the engines agreed byte-for-byte.
//!   The per-shard engine-counter breakdown goes to the `.meta.json`
//!   sidecar (telemetry high-water marks are engine-shaped by design).
//! * [`fleet_headroom`] — sweep the fleet size on a fixed pair of shared
//!   bottlenecks and report the largest fleet in which at least 95 % of
//!   sessions still meet the paper's 1.6× headroom rule — Section 7.3's
//!   rule of thumb recast as an admission-control capacity.

use dmp_core::HEADROOM_RULE;
use dmp_fleet::{run_fleet, FleetOptions, FleetResult, FleetSpec};
use dmp_runner::{Json, JsonCodec, Runner};
use netsim::EngineKind;
use scenario::FleetTimeline;

use crate::report::{frac, Table};
use crate::scale::Scale;
use crate::target::TargetReport;

/// Fraction of started sessions that must meet the 1.6× rule for a fleet
/// size to count as "served" in the headroom sweep.
pub const SERVED_FRACTION: f64 = 0.95;

/// Whether the scale is the full-fidelity one (quick mode keeps fleets to a
/// few seconds of wall clock; tier-1 tests and `--quick-smoke` rely on it).
fn is_full(scale: &Scale) -> bool {
    scale.sim_duration_s >= 1_000.0
}

/// The churn fleet `ext_fleet` runs: sessions arrive as an inhomogeneous
/// Poisson process whose rate jumps 6× for a quarter of the window (the
/// flash crowd), hold for an exponential time, and contend pairwise on each
/// shard's two shared bottlenecks.
pub fn fleet_spec(scale: &Scale) -> FleetSpec {
    let (sessions, shard_sessions, duration_s) = if is_full(scale) {
        (48, 24, 120.0)
    } else {
        (12, 6, 40.0)
    };
    let mut spec = FleetSpec::new("churn", sessions, shard_sessions, scale.seed);
    spec.duration_s = duration_s;
    spec.warmup_s = 2.0;
    spec.arrival_rate_per_s = shard_sessions as f64 / duration_s * 1.8;
    spec.mean_hold_s = duration_s * 0.55;
    spec.timeline = FleetTimeline::named("flash").spike(0.3 * duration_s, 6.0, 0.25 * duration_s);
    spec
}

/// Render the deterministic fleet artifact with the `config` entry removed —
/// the engine is in the config string by design, so the cross-engine
/// comparison strips it and demands everything else agree byte-for-byte.
fn strip_config(artifact: &Json) -> String {
    let Json::Obj(pairs) = artifact else {
        panic!("fleet artifact is an object");
    };
    Json::Obj(
        pairs
            .iter()
            .filter(|(k, _)| k != "config")
            .cloned()
            .collect(),
    )
    .render()
}

fn report_row(t: &mut Table, label: &str, spec: &FleetSpec, result: &FleetResult) {
    let r = &result.report;
    t.row(vec![
        label.to_string(),
        format!("{}", r.sessions),
        format!("{}", r.started),
        format!("{}", r.completed),
        format!("{:.0}", r.goodput_pps),
        frac(r.late.p90),
        format!("{:.1}", r.glitches.p90),
        format!("{:.2}", r.headroom.p50),
        frac(r.headroom_ok),
        format!("{}", result.total_events()),
        format!("{}", spec.shard_count()),
    ]);
}

/// Fleet churn study under both engines (see module docs).
pub fn ext_fleet(runner: &Runner, scale: &Scale) -> TargetReport {
    let opts = FleetOptions {
        trace: scale.trace,
        ..FleetOptions::default()
    };
    let mut results = Vec::new();
    for engine in [EngineKind::Calendar, EngineKind::Heap] {
        let mut spec = fleet_spec(scale);
        spec.engine = engine;
        let result = run_fleet(runner, &spec, &opts);
        results.push((spec, result));
    }
    let (cal_spec, cal) = &results[0];
    let (heap_spec, heap) = &results[1];
    // Byte-identity must hold for the artifact *and* the always-on metrics
    // snapshot (exact integer histogram arithmetic makes the latter
    // engine-invariant by construction).
    let engines_agree = strip_config(&cal.artifact(cal_spec))
        == strip_config(&heap.artifact(heap_spec))
        && cal.metrics.to_json().render() == heap.metrics.to_json().render();

    let mut t = Table::new(
        format!(
            "ext_fleet: {} churning DMP sessions, flash-crowd arrivals ({} shards)",
            cal_spec.sessions,
            cal_spec.shard_count()
        ),
        &[
            "engine",
            "sessions",
            "started",
            "completed",
            "goodput (pkt/s)",
            "late p90",
            "glitches p90",
            "headroom p50",
            "≥1.6× rule",
            "events",
            "shards",
        ],
    );
    report_row(&mut t, "calendar", cal_spec, cal);
    report_row(&mut t, "heap", heap_spec, heap);
    let mut text = t.render();
    text.push_str(&format!(
        "\nEngines {}: fleet artifacts{} byte-identical across the heap and \
         calendar schedulers.\n",
        if engines_agree { "agree" } else { "DISAGREE" },
        if engines_agree { "" } else { " NOT" },
    ));

    let data = Json::obj([
        ("engines_agree", Json::Bool(engines_agree)),
        ("fleet", cal.artifact(cal_spec)),
    ]);
    // Satellite of `EngineTelemetry::absorb`: the volatile sidecar carries
    // the per-shard counter breakdown plus the absorbed fleet total. The
    // attached metrics are the calendar run's (just asserted byte-identical
    // to the heap's), engine-labelled at this level only.
    let mut metrics = cal.metrics.clone();
    metrics.set_label("engine", crate::target::engine_label(EngineKind::Calendar));
    TargetReport::new(text, data)
        .with_meta("shards", cal.shards_meta())
        .with_metrics(metrics)
}

/// Fleet sizes swept by [`fleet_headroom`], smallest first.
pub fn headroom_sweep_sizes(scale: &Scale) -> Vec<u32> {
    if is_full(scale) {
        vec![4, 8, 12, 16, 20, 24]
    } else {
        vec![2, 8, 14, 20]
    }
}

/// Admission-capacity sweep: how many churning sessions can share one pair
/// of bottlenecks before the 1.6× rule starts failing fleet-wide?
pub fn fleet_headroom(runner: &Runner, scale: &Scale) -> TargetReport {
    let duration_s = if is_full(scale) { 150.0 } else { 50.0 };
    let mut rows = Vec::new();
    let mut served_capacity: Option<u32> = None;
    let mut metrics = obs::MetricsSnapshot::new();
    let mut t = Table::new(
        format!(
            "fleet_headroom: sessions vs the {HEADROOM_RULE}× rule on one shared \
             bottleneck pair"
        ),
        &[
            "sessions",
            "started",
            "headroom mean",
            "headroom p50",
            "≥1.6× rule",
            "late p90",
            "verdict",
        ],
    );
    for sessions in headroom_sweep_sizes(scale) {
        // One shard: every session in the sweep contends on the same two
        // bottlenecks, so size maps directly to concurrency.
        let mut spec = FleetSpec::new("headroom", sessions, sessions, scale.seed);
        spec.duration_s = duration_s;
        spec.warmup_s = 2.0;
        // Admission question: size should map to *concurrency*, so pile the
        // arrivals into the first tenth of the window (the timeline shape is
        // what steers the conditioned-on-N sampler, not the rate magnitude)
        // and hold sessions past the end of it.
        spec.arrival_rate_per_s = sessions as f64 / duration_s;
        spec.mean_hold_s = duration_s * 2.0;
        spec.timeline = FleetTimeline::named("frontload").spike(0.0, 50.0, 0.1 * duration_s);
        let result = run_fleet(runner, &spec, &FleetOptions::default());
        metrics.merge(&result.metrics);
        let r = &result.report;
        let served = r.started > 0 && r.headroom_ok >= SERVED_FRACTION;
        if served {
            served_capacity = Some(sessions);
        }
        t.row(vec![
            sessions.to_string(),
            r.started.to_string(),
            format!("{:.2}", r.headroom.mean),
            format!("{:.2}", r.headroom.p50),
            frac(r.headroom_ok),
            frac(r.late.p90),
            if served { "served" } else { "degraded" }.to_string(),
        ]);
        rows.push(Json::obj([
            ("sessions", Json::Num(f64::from(sessions))),
            ("started", Json::Num(r.started as f64)),
            ("headroom_mean", Json::Num(r.headroom.mean)),
            ("headroom_p50", Json::Num(r.headroom.p50)),
            ("headroom_ok", Json::Num(r.headroom_ok)),
            ("late_p90", Json::Num(r.late.p90)),
            ("goodput_pps", Json::Num(r.goodput_pps)),
            ("served", Json::Bool(served)),
        ]));
    }
    let mut text = t.render();
    text.push_str(&match served_capacity {
        Some(n) => format!(
            "\nLargest fleet meeting the {HEADROOM_RULE}× rule for ≥{:.0}% of \
             sessions: {n} concurrent-churning sessions.\n",
            SERVED_FRACTION * 100.0
        ),
        None => format!(
            "\nNo swept fleet size met the {HEADROOM_RULE}× rule for ≥{:.0}% of \
             sessions.\n",
            SERVED_FRACTION * 100.0
        ),
    });
    let data = Json::obj([
        ("headroom_rule", Json::Num(HEADROOM_RULE)),
        ("served_fraction", Json::Num(SERVED_FRACTION)),
        (
            "served_capacity",
            match served_capacity {
                Some(n) => Json::Num(f64::from(n)),
                None => Json::Null,
            },
        ),
        ("sweep", Json::arr(rows)),
    ]);
    metrics.set_label("engine", crate::target::engine_label(EngineKind::default()));
    TargetReport::new(text, data).with_metrics(metrics)
}
