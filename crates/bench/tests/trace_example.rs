//! The committed flight-recorder example (`artifacts/traces/`) must stay
//! reproducible byte-for-byte, its report must correlate the failover glitch
//! with the scripted `PathDown`, and recording the trace must not perturb
//! the simulation itself. One test function: `trace_example::generate`
//! drains the process-wide [`obs`] registry.

use std::path::Path;

use dmp_bench::trace_example;
use dmp_sim::experiment::TraceSpec;

fn committed(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../artifacts/traces")
        .join(name)
}

#[test]
fn committed_example_is_reproducible_and_report_explains_the_glitch() {
    let dir = std::env::temp_dir().join(format!("dmp-trace-example-{}", std::process::id()));
    let (trace_path, traced_out, report) = trace_example::generate(&dir);

    let fresh = std::fs::read(&trace_path).expect("regenerated trace exists");
    let reference_path = committed(&format!("{}.jsonl", trace_example::LABEL));
    let reference = std::fs::read(&reference_path).unwrap_or_else(|e| {
        panic!(
            "committed example missing at {}: {e}\n\
             regenerate with `cargo run --release -p dmp-bench --bin trace_example`",
            reference_path.display()
        )
    });
    assert_eq!(
        fresh, reference,
        "regenerated trace differs from the committed example; if the \
         behaviour change is intended, re-run \
         `cargo run --release -p dmp-bench --bin trace_example` and commit"
    );
    let committed_report =
        std::fs::read_to_string(committed(&format!("{}.report.txt", trace_example::LABEL)))
            .expect("committed report exists");
    assert_eq!(report, committed_report, "committed report is stale");

    // The acceptance check: the glitch is correlated with its scripted cause.
    assert!(report.contains("glitch 0"), "no glitch in:\n{report}");
    assert!(
        report.contains("cause: scripted `down` on path 0"),
        "glitch not correlated with the PathDown script in:\n{report}"
    );
    assert!(
        report.contains("RTO expired"),
        "no RTO activity in:\n{report}"
    );

    // Behaviour neutrality: the identical spec with tracing off produces the
    // identical simulation (the full-matrix version of this lives in
    // dmp-sim's scheduler_differential test).
    let mut spec = trace_example::example_spec(None);
    spec.trace = TraceSpec::off();
    let untraced = dmp_sim::experiment::run(&spec);
    assert_eq!(untraced.trace.records(), traced_out.trace.records());
    assert_eq!(
        format!("{:?}", untraced.paths),
        format!("{:?}", traced_out.paths)
    );

    std::fs::remove_dir_all(&dir).ok();
}
