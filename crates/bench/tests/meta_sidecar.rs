//! The `.meta.json` sidecar of a live target must carry the run's evidence:
//! the shaping timeline each emulated path actually applied, and — when the
//! scale's `trace` flag is on — the flight-recorder trace file references.
//! One test function: `execute` drains the process-wide [`obs`] and
//! `dmp_live::telemetry` registries, and the trace directory is selected via
//! the `DMP_TRACE_DIR` environment variable.

use dmp_bench::{target, Scale};
use dmp_runner::{ArtifactWriter, Cache, Json, Runner};

#[test]
fn live_meta_sidecar_lists_applied_timelines_and_trace_files() {
    let base = std::env::temp_dir().join(format!("dmp-meta-sidecar-{}", std::process::id()));
    std::env::set_var("DMP_TRACE_DIR", base.join("traces"));
    let artifacts = ArtifactWriter::new(base.join("artifacts"));
    let runner = Runner::new(2, Cache::disabled()).with_progress(false);
    let mut scale = Scale::quick();
    scale.live_experiments = 1; // two paths
    scale.live_packets = 150;
    scale.live_time_dilation = 8.0;
    scale.model_consumptions = 20_000;
    scale.trace = true;

    let out = target::execute(
        "fig7",
        &runner,
        &artifacts,
        &scale,
        dmp_bench::live_fig::fig7,
    );
    assert_eq!(out.stats.failed, 0, "live jobs must succeed");

    let meta_text =
        std::fs::read_to_string(base.join("artifacts/fig7.meta.json")).expect("sidecar written");
    let meta = dmp_runner::json::parse(&meta_text).expect("sidecar is valid JSON");

    // The per-path shaping timelines the emulators actually applied.
    let Some(Json::Obj(timelines)) = meta.get("live_timelines") else {
        panic!("sidecar lacks live_timelines: {meta_text}");
    };
    assert_eq!(timelines.len(), 2, "one timeline per emulated path");
    for (label, points) in timelines {
        let points = points.as_arr().unwrap();
        assert!(!points.is_empty(), "timeline {label} is empty");
        assert!(points[0].get("rate_bps").is_some());
    }

    // The flight-recorder trace written by the traced live run.
    let files = meta
        .get("trace_files")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("sidecar lacks trace_files: {meta_text}"));
    assert_eq!(files.len(), 1, "one trace per traced experiment");
    assert_eq!(
        files[0].get("label").and_then(Json::as_str),
        Some("fig7_live_exp0")
    );
    let path = files[0].get("path").and_then(Json::as_str).unwrap();
    let events = files[0].get("events").and_then(Json::as_u64).unwrap();
    let trace_text = std::fs::read_to_string(path).expect("trace file exists");
    assert!(events > 0);
    assert_eq!(trace_text.lines().count() as u64, events);

    std::env::remove_var("DMP_TRACE_DIR");
    std::fs::remove_dir_all(&base).ok();
}
