//! The always-on metrics layer is deterministic end to end: snapshots are a
//! pure function of the run, so they must come out byte-identical across the
//! two scheduler engines, across runner thread counts, and whether or not
//! the flight recorder is on — and `bench_diff` over two identical runs must
//! report zero drift while a perturbed metric past threshold exits nonzero.

use dmp_bench::diff::{diff_paths, DiffOptions, Verdict};
use dmp_bench::target::{execute, TargetReport};
use dmp_bench::Scale;
use dmp_core::spec::SchedulerKind;
use dmp_fleet::{run_fleet, FleetOptions, FleetSpec};
use dmp_runner::{ArtifactWriter, Cache, JsonCodec, Runner};
use dmp_sim::{run_summary, setting, ExperimentSpec, TraceSpec};
use netsim::EngineKind;

fn temp_base(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dmp-metrics-det-{tag}-{}", std::process::id()))
}

/// dmp-sim layer: the snapshot inside a run summary is byte-identical across
/// both engines and across trace on/off.
#[test]
fn sim_metrics_identical_across_engines_and_tracing() {
    let base = temp_base("sim");
    let mk = |engine: EngineKind, trace: bool| {
        let s = *setting("2-2").expect("built-in");
        let mut spec = ExperimentSpec::new(s, SchedulerKind::Dynamic, 40.0, 7);
        spec.engine = engine;
        if trace {
            std::env::set_var("DMP_TRACE_DIR", base.join("traces"));
            spec.trace = TraceSpec::on("metrics-det");
        }
        let summary = run_summary(&spec, &[4.0]);
        summary.metrics.to_json().render()
    };
    let calendar = mk(EngineKind::Calendar, false);
    let heap = mk(EngineKind::Heap, false);
    let traced = mk(EngineKind::Calendar, true);
    std::env::remove_var("DMP_TRACE_DIR");
    std::fs::remove_dir_all(&base).ok();
    assert_eq!(calendar, heap, "metrics must not depend on the engine");
    assert_eq!(calendar, traced, "recording must not perturb metrics");
    assert!(calendar.contains("net.rtt_us"), "netsim feed present");
    assert!(calendar.contains("frame.delay_ms"), "frame feed present");
}

/// A small fleet target for the file-level tests: cheap, multi-shard (so
/// thread counts actually interleave jobs), metrics attached like the real
/// fleet targets.
fn tiny_fleet(runner: &Runner, scale: &Scale) -> TargetReport {
    let mut spec = FleetSpec::new("tiny", 6, 2, scale.seed);
    spec.duration_s = 20.0;
    spec.warmup_s = 1.0;
    spec.arrival_rate_per_s = 0.5;
    spec.mean_hold_s = 8.0;
    spec.video = dmp_core::spec::VideoSpec::new(25.0);
    let result = run_fleet(runner, &spec, &FleetOptions::default());
    let mut metrics = result.metrics.clone();
    metrics.set_label("engine", dmp_bench::target::engine_label(spec.engine));
    TargetReport::new("tiny fleet\n", result.artifact(&spec)).with_metrics(metrics)
}

/// Bench layer: `execute` writes `metrics/<name>.json`, the bytes do not
/// depend on the runner's thread count, `bench_diff` on the two identical
/// runs reports zero drift, and a perturbed metric past threshold flips the
/// verdict to drift (nonzero exit).
#[test]
fn metrics_file_thread_invariant_and_diffable() {
    let base = temp_base("threads");
    let mut dirs = Vec::new();
    for threads in [1usize, 8] {
        let dir = base.join(format!("t{threads}"));
        let artifacts = ArtifactWriter::new(&dir);
        let runner = Runner::new(threads, Cache::disabled()).with_progress(false);
        let out = execute(
            "tiny_fleet",
            &runner,
            &artifacts,
            &Scale::quick(),
            tiny_fleet,
        );
        assert_eq!(out.stats.failed, 0);
        dirs.push(dir.join("metrics"));
    }
    let read = |d: &std::path::Path| std::fs::read_to_string(d.join("tiny_fleet.json")).unwrap();
    assert_eq!(
        read(&dirs[0]),
        read(&dirs[1]),
        "metrics file must be byte-identical across 1 and 8 runner threads"
    );

    // bench_diff over the two identical runs: zero drift, exit code 0.
    let report = diff_paths(&dirs[0], &dirs[1], &DiffOptions::default()).unwrap();
    assert_eq!(report.verdict(), Verdict::Ok);
    assert_eq!(report.verdict().exit_code(), 0);
    assert!(report.compared > 0);

    // Perturb one metric past threshold: verdict drift, nonzero exit.
    let doc = read(&dirs[1]);
    let perturbed = doc.replacen(
        "\"fleet.sessions_started\": ",
        "\"fleet.sessions_started\": 9",
        1,
    );
    assert_ne!(doc, perturbed, "perturbation must apply");
    std::fs::write(dirs[1].join("tiny_fleet.json"), perturbed).unwrap();
    let report = diff_paths(&dirs[0], &dirs[1], &DiffOptions::default()).unwrap();
    assert_eq!(report.verdict(), Verdict::Drift);
    assert_ne!(report.verdict().exit_code(), 0);
    assert!(report
        .drifted
        .iter()
        .any(|d| d.path.contains("fleet.sessions_started")));

    std::fs::remove_dir_all(&base).ok();
}

/// Acceptance: `ext_fleet` at quick scale carries per-session lateness and
/// headroom histograms in its `.meta.json` — with tracing off.
#[test]
fn ext_fleet_quick_meta_carries_session_histograms() {
    let base = temp_base("extfleet");
    let artifacts = ArtifactWriter::new(&base);
    let runner = Runner::new(4, Cache::disabled()).with_progress(false);
    let scale = Scale::quick();
    assert!(!scale.trace, "must hold without enabling traces");
    let out = execute(
        "ext_fleet",
        &runner,
        &artifacts,
        &scale,
        dmp_bench::fleet::ext_fleet,
    );
    assert_eq!(out.stats.failed, 0);

    let meta_text = std::fs::read_to_string(base.join("ext_fleet.meta.json")).unwrap();
    let meta = dmp_runner::json::parse(&meta_text).expect("valid sidecar");
    let snap = obs::MetricsSnapshot::from_json(meta.get("metrics").expect("metrics section"))
        .expect("metrics section decodes");
    for h in ["fleet.session_late_ppm", "fleet.session_headroom_milli"] {
        assert!(
            snap.histograms.get(h).is_some_and(|h| h.count() > 0),
            "{h} missing/empty in {meta_text}"
        );
    }
    assert_eq!(
        snap.labels.get("engine").map(String::as_str),
        Some("calendar")
    );
    assert!(base.join("metrics/ext_fleet.json").is_file());

    std::fs::remove_dir_all(&base).ok();
}
