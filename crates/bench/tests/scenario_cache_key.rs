//! The scenario hash must be part of every scenario job's cache key:
//! otherwise a cached steady-state run could be served for a faulted one (or
//! vice versa) and the resilience numbers would be silently wrong.

use dmp_bench::scenarios::{failover_jobs, failover_scenario, flashcrowd_jobs};
use dmp_bench::Scale;

#[test]
fn every_scenario_job_embeds_the_scenario_hash() {
    let scale = Scale::quick();
    let (scn, _) = failover_scenario(scale.sim_duration_s);
    let marker = format!("scenario#{:016x}", scn.stable_hash());
    let jobs = failover_jobs(&scale);
    assert!(!jobs.is_empty());
    for job in &jobs {
        assert!(
            job.config_repr.contains(&marker),
            "{}: cache key lacks the scenario hash: {}",
            job.label,
            job.config_repr
        );
    }
    for job in flashcrowd_jobs(&scale) {
        assert!(
            job.config_repr.contains("scenario#"),
            "{}: cache key lacks a scenario hash: {}",
            job.label,
            job.config_repr
        );
    }
}

#[test]
fn scenario_changes_the_cache_key_and_noop_does_not_collide() {
    // Same spec, different scenarios → different cache keys; and the
    // scenario-free default also hashes differently from a named no-op.
    let scale = Scale::quick();
    let fail: Vec<String> = failover_jobs(&scale)
        .into_iter()
        .map(|j| j.config_repr)
        .collect();
    let crowd: Vec<String> = flashcrowd_jobs(&scale)
        .into_iter()
        .map(|j| j.config_repr)
        .collect();
    for f in &fail {
        assert!(!crowd.contains(f), "failover and flash-crowd keys collide");
    }
}

#[test]
fn cc_and_strategy_pairs_never_collide_in_cache_keys() {
    use dmp_core::spec::{PullStrategy, SchedulerKind};
    use dmp_sim::experiment::{batch_jobs, ExperimentSpec};
    use dmp_sim::setting;

    // Every (cc, strategy) pair of the headroom matrix must map to a unique
    // cache key — a collision would let CUBIC runs be served Reno summaries
    // (or best-path runs round-robin ones) and silently corrupt the matrix.
    let mut keys = Vec::new();
    for kind in cc::CcKind::all() {
        for strategy in PullStrategy::all() {
            let mut spec =
                ExperimentSpec::new(*setting("2-2").unwrap(), SchedulerKind::Dynamic, 60.0, 2007);
            spec.cc = kind;
            spec.strategy = strategy;
            let job = &batch_jobs(&spec, 1, &[4.0])[0];
            assert!(
                job.config_repr.starts_with("dmp-sim/v8/"),
                "cache key is not on the v8 repr: {}",
                job.config_repr
            );
            keys.push(job.config_repr.clone());
        }
    }
    assert_eq!(keys.len(), 15);
    for (i, a) in keys.iter().enumerate() {
        for b in &keys[i + 1..] {
            assert_ne!(a, b, "two (cc, strategy) pairs share a cache key");
        }
    }

    // The saturation probe namespace must stay disjoint from streaming
    // summaries of the identical spec.
    let spec = ExperimentSpec::new(*setting("2-2").unwrap(), SchedulerKind::Dynamic, 60.0, 2007);
    let probe = &dmp_sim::probe::saturation_jobs(&spec, 1)[0];
    assert!(probe.config_repr.starts_with("dmp-sim-sat/v1/"));
    assert!(!keys.contains(&probe.config_repr));
}
