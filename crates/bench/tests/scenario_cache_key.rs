//! The scenario hash must be part of every scenario job's cache key:
//! otherwise a cached steady-state run could be served for a faulted one (or
//! vice versa) and the resilience numbers would be silently wrong.

use dmp_bench::scenarios::{failover_jobs, failover_scenario, flashcrowd_jobs};
use dmp_bench::Scale;

#[test]
fn every_scenario_job_embeds_the_scenario_hash() {
    let scale = Scale::quick();
    let (scn, _) = failover_scenario(scale.sim_duration_s);
    let marker = format!("scenario#{:016x}", scn.stable_hash());
    let jobs = failover_jobs(&scale);
    assert!(!jobs.is_empty());
    for job in &jobs {
        assert!(
            job.config_repr.contains(&marker),
            "{}: cache key lacks the scenario hash: {}",
            job.label,
            job.config_repr
        );
    }
    for job in flashcrowd_jobs(&scale) {
        assert!(
            job.config_repr.contains("scenario#"),
            "{}: cache key lacks a scenario hash: {}",
            job.label,
            job.config_repr
        );
    }
}

#[test]
fn scenario_changes_the_cache_key_and_noop_does_not_collide() {
    // Same spec, different scenarios → different cache keys; and the
    // scenario-free default also hashes differently from a named no-op.
    let scale = Scale::quick();
    let fail: Vec<String> = failover_jobs(&scale)
        .into_iter()
        .map(|j| j.config_repr)
        .collect();
    let crowd: Vec<String> = flashcrowd_jobs(&scale)
        .into_iter()
        .map(|j| j.config_repr)
        .collect();
    for f in &fail {
        assert!(!crowd.contains(f), "failover and flash-crowd keys collide");
    }
}
