//! Regression test for the determinism contract: a sweep executed on one
//! thread and on eight threads must produce byte-identical JSON artifacts.
//! Results come back in submission order no matter which worker finished
//! first, and the artifact data payload contains no volatile telemetry.

use dmp_runner::test_util::TempDir;
use dmp_runner::{ArtifactWriter, Cache, JobSpec, Json, Runner};

/// A seeded pseudo-computation with deliberately uneven run time, so that on
/// a multi-threaded pool completion order differs from submission order.
fn job(i: u64) -> JobSpec<Vec<f64>> {
    JobSpec::new(
        format!("determinism:job{i}"),
        format!("determinism/v1/job{i}"),
        i,
        move || {
            // Heavier work for low indices: later submissions finish first.
            let rounds = 20_000 * (32 - i) + 1;
            let mut x = i as f64 + 1.0;
            for k in 0..rounds {
                x = (x * 1.000_001 + (k % 7) as f64).rem_euclid(1.0e6);
            }
            vec![i as f64, x]
        },
    )
}

fn sweep_artifact(threads: usize, dir: &TempDir) -> Vec<u8> {
    let runner = Runner::new(threads, Cache::disabled()).with_progress(false);
    let cells = runner.run_all((0..32).map(job).collect());
    // Every label must come back in submission order.
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(cell.label, format!("determinism:job{i}"));
    }
    let rows: Vec<Json> = cells
        .iter()
        .map(|c| Json::nums(c.ok().expect("pure job").iter().copied()))
        .collect();
    let writer = ArtifactWriter::new(dir.path().join(format!("t{threads}")));
    let path = writer
        .write("determinism", &Json::obj([("rows", Json::Arr(rows))]))
        .expect("write artifact");
    std::fs::read(path).expect("read artifact back")
}

#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    let tmp = TempDir::new("determinism");
    let serial = sweep_artifact(1, &tmp);
    let parallel = sweep_artifact(8, &tmp);
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "artifact bytes must not depend on the thread count"
    );
}

#[test]
fn cached_rerun_is_byte_identical_too() {
    let tmp = TempDir::new("determinism-cache");
    let cache_dir = tmp.path().join("cache");

    let run = |threads: usize, tag: &str| -> (Vec<u8>, usize) {
        let runner = Runner::new(threads, Cache::new(&cache_dir)).with_progress(false);
        let cells = runner.run_all((0..8).map(job).collect());
        let rows: Vec<Json> = cells
            .iter()
            .map(|c| Json::nums(c.ok().expect("pure job").iter().copied()))
            .collect();
        let hits = cells.iter().filter(|c| c.from_cache).count();
        let writer = ArtifactWriter::new(tmp.path().join(tag));
        let path = writer
            .write("determinism", &Json::obj([("rows", Json::Arr(rows))]))
            .expect("write artifact");
        (std::fs::read(path).expect("read artifact back"), hits)
    };

    let (cold, cold_hits) = run(8, "cold");
    let (warm, warm_hits) = run(1, "warm");
    assert_eq!(cold_hits, 0, "first run must compute everything");
    assert_eq!(warm_hits, 8, "second run must be served from the cache");
    assert_eq!(
        cold, warm,
        "cache-served artifact bytes must match the computed ones"
    );
}
