//! # dmp-runner — parallel experiment orchestration
//!
//! Infrastructure shared by every reproduction target in this workspace:
//!
//! * [`runner::Runner`] executes batches of pure, seeded [`runner::JobSpec`]s
//!   on a work-stealing thread pool ([`pool`]), with deterministic result
//!   ordering regardless of thread count and per-job panic isolation (a
//!   panicking job becomes a [`runner::CellValue::Failed`] cell; the sweep
//!   completes).
//! * [`cache::Cache`] is a content-addressed on-disk result cache keyed by
//!   `hash(config repr, seed, code-version salt)`, so re-running `repro_all`
//!   recomputes only what changed and interrupted sweeps resume where they
//!   stopped. Corrupt or stale entries are misses, never errors.
//! * [`artifact::ArtifactWriter`] emits one structured JSON file per
//!   figure/table under `target/artifacts/`, split into a deterministic data
//!   payload and a volatile `.meta.json` telemetry sidecar.
//! * [`json::Json`] is the dependency-free JSON value used for cache
//!   entries and artifacts, with deterministic rendering.
//!
//! Environment knobs: `DMP_THREADS`, `DMP_CACHE_DIR`, `DMP_CACHE_SALT`,
//! `DMP_NO_CACHE=1`, `DMP_ARTIFACT_DIR`, `DMP_QUIET=1`.

#![warn(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod hash;
pub mod json;
pub mod pool;
pub mod runner;

#[doc(hidden)]
pub mod test_util;

pub use artifact::ArtifactWriter;
pub use cache::Cache;
pub use json::Json;
pub use runner::{Cell, CellValue, JobSpec, JsonCodec, Runner, RunnerStats};
