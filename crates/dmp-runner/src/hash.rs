//! Stable content hashing for cache keys.
//!
//! Cache keys must be identical across runs, platforms, and Rust versions,
//! so we use a fixed FNV-1a construction rather than `std`'s randomized
//! `DefaultHasher`. Two independent 64-bit lanes (different offset bases)
//! give a 128-bit key, which is plenty for a content-addressed cache.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second lane starts from a decorrelated offset (golden-ratio constant).
const LANE2_OFFSET: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// Incremental 128-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct StableHasher {
    lane1: u64,
    lane2: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self {
            lane1: FNV_OFFSET,
            lane2: LANE2_OFFSET,
        }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lane1 = (self.lane1 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.lane2 = (self.lane2 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a string with a length prefix (prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write(&(s.len() as u64).to_le_bytes());
        self.write(s.as_bytes());
    }

    /// Absorb a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Final 128-bit digest as 32 lowercase hex characters.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}{:016x}", self.lane1, self.lane2)
    }

    /// Final 64-bit digest (first lane) — used as a cheap integrity check.
    pub fn finish_u64(&self) -> u64 {
        self.lane1
    }
}

/// One-shot 128-bit hex digest of a byte string.
pub fn hex_digest(bytes: &[u8]) -> String {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable() {
        // Golden values: must never change across refactors, or every cache
        // entry would silently invalidate. Empty input leaves both lanes at
        // their offset bases.
        assert_eq!(
            hex_digest(b""),
            format!("{FNV_OFFSET:016x}{LANE2_OFFSET:016x}")
        );
        // FNV-1a 64 of "a" is a published test vector; lane 1 must match it.
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish_u64(), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn length_prefix_disambiguates() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish_hex(), b.finish_hex());
    }

    #[test]
    fn single_byte_sensitivity() {
        assert_ne!(hex_digest(b"seed=1"), hex_digest(b"seed=2"));
    }
}
