//! Content-addressed on-disk result cache.
//!
//! Key = hash(config representation, seed, code-version salt). Entries live
//! one-per-file under the cache directory as JSON envelopes carrying their
//! own salt, key, and payload checksum; any mismatch or parse failure is a
//! *miss*, never an error — a corrupt or stale cache can only cost time.
//!
//! Layout: `<dir>/<key[0..2]>/<key>.json` (fan-out keeps directories small).
//! Writes are atomic (`.tmp` + rename) so an interrupted sweep never leaves
//! a truncated entry that later reads would trust.

use crate::hash::StableHasher;
use crate::json::{self, Json};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Envelope format version; bump when the on-disk layout changes.
const FORMAT_VERSION: f64 = 1.0;

/// Code-version salt. Bump whenever experiment semantics change in a way
/// that should invalidate previously cached results without a version bump.
pub const CODE_SALT: &str = "dmp-runner-2026-08-a";

/// Handle to a cache directory (cheap to clone; counters are shared).
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    salt: String,
    enabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Cache {
    /// Cache rooted at `dir` with the default code-version salt.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_salt(dir, default_salt())
    }

    /// Cache rooted at `dir` with an explicit salt (tests use this to model
    /// "code changed since this entry was written").
    pub fn with_salt(dir: impl Into<PathBuf>, salt: impl Into<String>) -> Self {
        Self {
            dir: dir.into(),
            salt: salt.into(),
            enabled: true,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Cache configured from the environment:
    /// `DMP_CACHE_DIR` overrides the location (default `target/dmp-cache`),
    /// `DMP_CACHE_SALT` appends to the code-version salt,
    /// `DMP_NO_CACHE=1` disables reads and writes.
    pub fn from_env() -> Self {
        let dir = std::env::var_os("DMP_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(default_dir);
        let mut cache = Self::new(dir);
        if let Ok(extra) = std::env::var("DMP_CACHE_SALT") {
            cache.salt.push('/');
            cache.salt.push_str(&extra);
        }
        if std::env::var("DMP_NO_CACHE").is_ok_and(|v| v == "1") {
            cache.enabled = false;
        }
        cache
    }

    /// A disabled cache: every lookup misses, stores are dropped.
    pub fn disabled() -> Self {
        let mut cache = Self::new(default_dir());
        cache.enabled = false;
        cache
    }

    /// Whether lookups/stores are active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Directory entries are written under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Content key for a job: every byte of `config_repr`, the `seed`, and
    /// the code-version salt participate.
    pub fn key(&self, config_repr: &str, seed: u64) -> String {
        let mut h = StableHasher::new();
        h.write_str(&self.salt);
        h.write_str(config_repr);
        h.write_u64(seed);
        h.finish_hex()
    }

    /// Look up `key`; `Some(payload)` only for a well-formed entry written
    /// under the same salt. Increments the hit/miss counters.
    pub fn load(&self, key: &str) -> Option<Json> {
        let result = self.load_inner(key);
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    fn load_inner(&self, key: &str) -> Option<Json> {
        if !self.enabled {
            return None;
        }
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let envelope = json::parse(&text)?;
        if envelope.get("v")?.as_f64()? != FORMAT_VERSION {
            return None;
        }
        if envelope.get("salt")?.as_str()? != self.salt {
            return None;
        }
        if envelope.get("key")?.as_str()? != key {
            return None;
        }
        let payload = envelope.get("payload")?;
        let crc = envelope.get("crc")?.as_str()?;
        if payload_checksum(payload) != crc {
            return None;
        }
        Some(payload.clone())
    }

    /// Persist `payload` under `key`. I/O errors are swallowed (a read-only
    /// cache directory degrades to a no-op cache, it doesn't fail the sweep).
    pub fn store(&self, key: &str, payload: &Json) {
        if !self.enabled {
            return;
        }
        let path = self.entry_path(key);
        let Some(parent) = path.parent() else {
            return;
        };
        if std::fs::create_dir_all(parent).is_err() {
            return;
        }
        let envelope = Json::obj([
            ("v", Json::Num(FORMAT_VERSION)),
            ("salt", Json::Str(self.salt.clone())),
            ("key", Json::Str(key.to_string())),
            ("crc", Json::Str(payload_checksum(payload))),
            ("payload", payload.clone()),
        ]);
        // Unique tmp name per thread so concurrent stores of different keys
        // (or even the same key) never interleave partial writes.
        let tmp = parent.join(format!(".{}.{:?}.tmp", key, std::thread::current().id()));
        if std::fs::write(&tmp, envelope.render_pretty()).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    /// (hits, misses) observed through this handle.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        let fan = key.get(0..2).unwrap_or("xx");
        self.dir.join(fan).join(format!("{key}.json"))
    }
}

fn payload_checksum(payload: &Json) -> String {
    crate::hash::hex_digest(payload.render().as_bytes())
}

fn default_salt() -> String {
    format!("{}/{}", env!("CARGO_PKG_VERSION"), CODE_SALT)
}

fn default_dir() -> PathBuf {
    if let Some(target) = std::env::var_os("CARGO_TARGET_DIR") {
        return PathBuf::from(target).join("dmp-cache");
    }
    PathBuf::from("target").join("dmp-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;

    fn payload() -> Json {
        Json::obj([("mean", Json::Num(0.25)), ("runs", Json::Num(3.0))])
    }

    #[test]
    fn store_then_load_round_trips() {
        let tmp = TempDir::new("cache-roundtrip");
        let cache = Cache::new(tmp.path());
        let key = cache.key("spec{duration=300}", 42);
        assert!(cache.load(&key).is_none(), "cold cache misses");
        cache.store(&key, &payload());
        assert_eq!(cache.load(&key), Some(payload()));
        assert_eq!(cache.counters(), (1, 1));
    }

    #[test]
    fn key_depends_on_every_input() {
        let tmp = TempDir::new("cache-keys");
        let cache = Cache::new(tmp.path());
        let base = cache.key("spec{duration=300,loss=0.01}", 42);
        // Any config field change produces a different key.
        assert_ne!(base, cache.key("spec{duration=301,loss=0.01}", 42));
        assert_ne!(base, cache.key("spec{duration=300,loss=0.02}", 42));
        // Seed changes produce a different key.
        assert_ne!(base, cache.key("spec{duration=300,loss=0.01}", 43));
        // Salt changes produce a different key.
        let other_salt = Cache::with_salt(tmp.path(), "other");
        assert_ne!(base, other_salt.key("spec{duration=300,loss=0.01}", 42));
    }

    #[test]
    fn stale_salt_entries_are_ignored() {
        let tmp = TempDir::new("cache-salt");
        let old = Cache::with_salt(tmp.path(), "code-v1");
        let new = Cache::with_salt(tmp.path(), "code-v2");
        // Force the same on-disk location despite differing salts, modelling
        // an entry left behind by an older build.
        let key = old.key("spec", 1);
        old.store(&key, &payload());
        assert_eq!(old.load(&key), Some(payload()));
        assert!(
            new.load(&key).is_none(),
            "entry written under a different salt must be a miss"
        );
    }

    #[test]
    fn corrupt_entries_are_misses_not_panics() {
        let tmp = TempDir::new("cache-corrupt");
        let cache = Cache::new(tmp.path());
        let key = cache.key("spec", 7);
        cache.store(&key, &payload());
        let path = tmp.path().join(&key[0..2]).join(format!("{key}.json"));

        for garbage in [
            "",                             // truncated to nothing
            "not json at all",              // unparseable
            "{\"v\": 1}",                   // missing fields
            "{\"v\": 99, \"salt\": \"x\"}", // wrong version
        ] {
            std::fs::write(&path, garbage).unwrap();
            assert!(cache.load(&key).is_none(), "garbage {garbage:?} must miss");
        }

        // Valid envelope whose payload was tampered with: checksum rejects it.
        cache.store(&key, &payload());
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("0.25", "0.75");
        assert_ne!(text, tampered, "tamper target present");
        std::fs::write(&path, tampered).unwrap();
        assert!(cache.load(&key).is_none(), "bad checksum must miss");
    }

    #[test]
    fn disabled_cache_never_hits() {
        let tmp = TempDir::new("cache-disabled");
        let mut cache = Cache::new(tmp.path());
        cache.enabled = false;
        let key = cache.key("spec", 1);
        cache.store(&key, &payload());
        assert!(cache.load(&key).is_none());
    }
}
