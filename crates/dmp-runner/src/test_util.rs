//! Shared test scaffolding (used by unit and integration tests across the
//! workspace; hidden from the public API surface).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Self-deleting unique temporary directory.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `<system-temp>/dmp-<label>-<pid>-<n>`.
    pub fn new(label: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("dmp-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
