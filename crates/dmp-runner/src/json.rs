//! Dependency-free JSON value with deterministic rendering.
//!
//! Artifacts and cache entries must be byte-identical across runs and thread
//! counts, so rendering is fully deterministic: object keys keep insertion
//! order (callers control it), `f64` uses Rust's shortest-roundtrip `Display`,
//! and non-finite floats render as `null` (JSON has no NaN/Inf).

use std::fmt::Write as _;

/// A JSON document. Objects preserve insertion order (no sorting, no maps) so
/// that rendering is deterministic and mirrors construction order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; rendered with shortest-roundtrip formatting.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn arr<I: IntoIterator<Item = Json>>(items: I) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Numeric array from `f64` values.
    pub fn nums<I: IntoIterator<Item = f64>>(items: I) -> Json {
        Json::Arr(items.into_iter().map(Json::Num).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (still deterministic).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                render_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].render_into(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                render_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    escape_into(&pairs[i].0, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.render_into(out, indent, d);
                });
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns `None` on any syntax error (the cache
/// treats unparseable files as misses, never as panics).
pub fn parse(input: &str) -> Option<Json> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(value)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'n' => self.eat_lit("null").map(|_| Json::Null),
            b't' => self.eat_lit("true").map(|_| Json::Bool(true)),
            b'f' => self.eat_lit("false").map(|_| Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        text.parse::<f64>().ok().map(Json::Num)
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4_after_u()?;
                            // Accept lone escapes only for BMP scalars; this
                            // renderer never emits surrogate pairs.
                            out.push(char::from_u32(code as u32)?);
                            continue;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4_after_u(&mut self) -> Option<u16> {
        // self.pos is at 'u'
        self.pos += 1;
        let hex = self.bytes.get(self.pos..self.pos + 4)?;
        let text = std::str::from_utf8(hex).ok()?;
        let code = u16::from_str_radix(text, 16).ok()?;
        self.pos += 4;
        Some(code)
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(pairs));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let doc = Json::obj([
            ("name", Json::Str("fig8 τ-sweep \"quick\"".into())),
            ("ok", Json::Bool(true)),
            ("vals", Json::nums([1.5, -0.25, 3e-7, 42.0])),
            (
                "nested",
                Json::obj([("empty", Json::arr([])), ("null", Json::Null)]),
            ),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(parse(&text).expect("parses"), doc);
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let doc = Json::obj([("a", Json::Num(0.1 + 0.2)), ("b", Json::Num(1e300))]);
        assert_eq!(doc.render(), doc.render());
        // Shortest-roundtrip: parsing the rendering recovers the exact bits.
        let back = parse(&doc.render()).unwrap();
        assert_eq!(back.get("a").unwrap().as_f64(), Some(0.1 + 0.2));
    }

    #[test]
    fn non_finite_renders_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn malformed_inputs_return_none() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{}{}",
        ] {
            assert!(parse(bad).is_none(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"n": 3, "s": "x", "b": false, "a": [1, 2]}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(doc.get("missing").is_none());
    }
}
