//! The job runner: parallel execution + caching + panic isolation.

use crate::cache::Cache;
use crate::json::Json;
use crate::pool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Values that can round-trip through the cache as JSON.
pub trait JsonCodec: Sized {
    /// Serialise for cache storage / artifact emission.
    fn to_json(&self) -> Json;
    /// Deserialise a cached payload; `None` turns the hit into a miss.
    fn from_json(json: &Json) -> Option<Self>;
}

/// One schedulable unit of work: a pure, seeded computation.
pub struct JobSpec<T> {
    /// Human-readable identity, e.g. `"table2/homogeneous/run3"`.
    pub label: String,
    /// Stable, complete textual representation of the job's configuration.
    /// Every field that influences the result must appear here — it is the
    /// cache key (together with `seed` and the code-version salt).
    pub config_repr: String,
    /// RNG seed for this job.
    pub seed: u64,
    /// Whether the result may be cached (false for wall-clock-dependent
    /// work such as real-time-paced live streaming).
    pub cacheable: bool,
    /// The computation. Must be deterministic in (`config_repr`, `seed`) if
    /// `cacheable` is true.
    pub work: Box<dyn FnOnce() -> T + Send>,
}

impl<T> JobSpec<T> {
    /// Convenience constructor for a cacheable job.
    pub fn new(
        label: impl Into<String>,
        config_repr: impl Into<String>,
        seed: u64,
        work: impl FnOnce() -> T + Send + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            config_repr: config_repr.into(),
            seed,
            cacheable: true,
            work: Box::new(work),
        }
    }

    /// Mark the job as not cacheable.
    pub fn uncacheable(mut self) -> Self {
        self.cacheable = false;
        self
    }
}

/// Outcome of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue<T> {
    /// The job completed.
    Ok(T),
    /// The job panicked; the message is preserved, the sweep continued.
    Failed(String),
}

/// A completed sweep cell: outcome plus execution metadata.
#[derive(Debug, Clone)]
pub struct Cell<T> {
    /// Label copied from the job spec.
    pub label: String,
    /// Outcome.
    pub value: CellValue<T>,
    /// True if the value came from the cache rather than execution.
    pub from_cache: bool,
    /// Time spent producing the value (near-zero for cache hits).
    pub wall: Duration,
}

impl<T> Cell<T> {
    /// The value, if the job succeeded.
    pub fn ok(&self) -> Option<&T> {
        match &self.value {
            CellValue::Ok(v) => Some(v),
            CellValue::Failed(_) => None,
        }
    }

    /// The panic message, if the job failed.
    pub fn failure(&self) -> Option<&str> {
        match &self.value {
            CellValue::Ok(_) => None,
            CellValue::Failed(msg) => Some(msg),
        }
    }
}

/// Counters accumulated across every batch a [`Runner`] executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunnerStats {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs answered from the cache.
    pub cache_hits: u64,
    /// Cacheable jobs that had to execute.
    pub cache_misses: u64,
    /// Jobs that panicked.
    pub failed: u64,
    /// Sum of per-job execution time — what a serial run would have cost
    /// (cache hits contribute their small lookup time).
    pub serial_equiv: Duration,
}

/// Parallel, caching job executor.
pub struct Runner {
    threads: usize,
    cache: Cache,
    progress: bool,
    stats: Mutex<RunnerStats>,
}

impl Runner {
    /// Runner with explicit thread count and cache.
    pub fn new(threads: usize, cache: Cache) -> Self {
        Self {
            threads: threads.max(1),
            cache,
            progress: false,
            stats: Mutex::new(RunnerStats::default()),
        }
    }

    /// Runner configured from the environment: `DMP_THREADS` overrides the
    /// worker count (default: available parallelism), cache per
    /// [`Cache::from_env`], `DMP_QUIET=1` suppresses progress lines.
    pub fn from_env() -> Self {
        let threads = std::env::var("DMP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let mut runner = Self::new(threads, Cache::from_env());
        runner.progress = !std::env::var("DMP_QUIET").is_ok_and(|v| v == "1");
        runner
    }

    /// Enable or disable per-job progress lines on stderr.
    pub fn with_progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The cache in use.
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> RunnerStats {
        *self.stats.lock().unwrap()
    }

    /// Execute a batch of cacheable jobs. Results are in submission order
    /// regardless of thread count; panicking jobs become `Failed` cells.
    pub fn run_all<T>(&self, jobs: Vec<JobSpec<T>>) -> Vec<Cell<T>>
    where
        T: JsonCodec + Send + 'static,
    {
        let total = jobs.len();
        let completed = AtomicUsize::new(0);
        let completed = &completed;
        let pool_jobs: Vec<pool::Job<'_, Cell<T>>> = jobs
            .into_iter()
            .map(|spec| {
                let cell_fn = move || {
                    let cell = self.execute(spec);
                    self.report_progress(&cell, completed, total);
                    cell
                };
                Box::new(cell_fn) as pool::Job<'_, Cell<T>>
            })
            .collect();
        let cells = pool::run_ordered(pool_jobs, self.threads);
        self.accumulate(&cells);
        cells
    }

    fn execute<T: JsonCodec>(&self, spec: JobSpec<T>) -> Cell<T> {
        let start = Instant::now();
        if spec.cacheable && self.cache.is_enabled() {
            let key = self.cache.key(&spec.config_repr, spec.seed);
            if let Some(value) = self.cache.load(&key).and_then(|p| T::from_json(&p)) {
                return Cell {
                    label: spec.label,
                    value: CellValue::Ok(value),
                    from_cache: true,
                    wall: start.elapsed(),
                };
            }
            let cell = run_isolated(spec.label, spec.work, start);
            if let CellValue::Ok(value) = &cell.value {
                self.cache.store(&key, &value.to_json());
            }
            return cell;
        }
        run_isolated(spec.label, spec.work, start)
    }

    fn report_progress<T>(&self, cell: &Cell<T>, completed: &AtomicUsize, total: usize) {
        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.progress {
            return;
        }
        let status = match (&cell.value, cell.from_cache) {
            (CellValue::Failed(_), _) => "FAILED",
            (CellValue::Ok(_), true) => "cached",
            (CellValue::Ok(_), false) => "ran",
        };
        eprintln!(
            "[{done}/{total}] {} ({status}, {:.2}s)",
            cell.label,
            cell.wall.as_secs_f64()
        );
    }

    fn accumulate<T>(&self, cells: &[Cell<T>]) {
        let mut stats = self.stats.lock().unwrap();
        for cell in cells {
            stats.jobs += 1;
            stats.serial_equiv += cell.wall;
            if cell.from_cache {
                stats.cache_hits += 1;
            } else if matches!(cell.value, CellValue::Failed(_)) {
                stats.failed += 1;
            } else {
                stats.cache_misses += 1;
            }
        }
    }
}

/// Run one job with panic isolation.
fn run_isolated<T>(label: String, work: Box<dyn FnOnce() -> T + Send>, start: Instant) -> Cell<T> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(work));
    let value = match outcome {
        Ok(v) => CellValue::Ok(v),
        Err(payload) => CellValue::Failed(panic_message(&*payload)),
    };
    Cell {
        label,
        value,
        from_cache: false,
        wall: start.elapsed(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// Blanket-ish codecs for common leaf types used by ports.

impl JsonCodec for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
    fn from_json(json: &Json) -> Option<Self> {
        json.as_f64()
    }
}

impl JsonCodec for Option<f64> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => Json::Num(*v),
            None => Json::Null,
        }
    }
    fn from_json(json: &Json) -> Option<Self> {
        match json {
            Json::Null => Some(None),
            Json::Num(v) => Some(Some(*v)),
            _ => None,
        }
    }
}

impl JsonCodec for u64 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
    fn from_json(json: &Json) -> Option<Self> {
        json.as_u64()
    }
}

/// Generic sequence codec (subsumes the old `Vec<f64>`-only impl, byte-
/// compatible with entries it cached): shard-fanned jobs return one summary
/// per shard, so sequences of codec-able values must round-trip as a unit.
impl<T: JsonCodec> JsonCodec for Vec<T> {
    fn to_json(&self) -> Json {
        Json::arr(self.iter().map(JsonCodec::to_json))
    }
    fn from_json(json: &Json) -> Option<Self> {
        json.as_arr()?.iter().map(T::from_json).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;

    fn runner(threads: usize, tmp: &TempDir) -> Runner {
        Runner::new(threads, Cache::new(tmp.path())).with_progress(false)
    }

    fn job(i: u64) -> JobSpec<f64> {
        JobSpec::new(format!("job{i}"), format!("square i={i}"), i, move || {
            (i * i) as f64
        })
    }

    #[test]
    fn batch_results_in_submission_order() {
        let tmp = TempDir::new("runner-order");
        for threads in [1, 4] {
            let r = runner(threads, &tmp);
            let cells = r.run_all((0..20).map(job).collect());
            let values: Vec<f64> = cells.iter().map(|c| *c.ok().unwrap()).collect();
            assert_eq!(
                values,
                (0..20).map(|i: u64| (i * i) as f64).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn second_run_is_served_from_cache() {
        let tmp = TempDir::new("runner-cache");
        let r = runner(2, &tmp);
        let first = r.run_all((0..6).map(job).collect());
        assert!(first.iter().all(|c| !c.from_cache));
        let second = r.run_all((0..6).map(job).collect());
        assert!(second.iter().all(|c| c.from_cache), "all hits on rerun");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.ok(), b.ok());
        }
        let stats = r.stats();
        assert_eq!(stats.jobs, 12);
        assert_eq!(stats.cache_hits, 6);
        assert_eq!(stats.cache_misses, 6);
    }

    #[test]
    fn panicking_job_becomes_failed_cell_and_sweep_completes() {
        let tmp = TempDir::new("runner-panic");
        let r = runner(4, &tmp);
        let mut jobs: Vec<JobSpec<f64>> = (0..5).map(job).collect();
        jobs.insert(
            2,
            JobSpec::new("boom", "boom config", 9, || -> f64 {
                panic!("simulated divergence at cell 2")
            }),
        );
        let cells = r.run_all(jobs);
        assert_eq!(cells.len(), 6);
        assert_eq!(
            cells[2].failure(),
            Some("simulated divergence at cell 2"),
            "panic message preserved"
        );
        // Every other cell still completed.
        assert_eq!(cells.iter().filter(|c| c.ok().is_some()).count(), 5);
        assert_eq!(r.stats().failed, 1);
        // The failure was not cached: rerunning executes it again.
        let cells2 = r.run_all(vec![JobSpec::new("boom", "boom config", 9, || -> f64 {
            panic!("still failing")
        })]);
        assert_eq!(cells2[0].failure(), Some("still failing"));
    }

    #[test]
    fn uncacheable_jobs_always_execute() {
        let tmp = TempDir::new("runner-uncacheable");
        let r = runner(1, &tmp);
        for _ in 0..2 {
            let cells = r.run_all(vec![
                JobSpec::new("live", "live cfg", 0, || 1.0).uncacheable()
            ]);
            assert!(!cells[0].from_cache);
        }
        assert_eq!(r.stats().cache_hits, 0);
    }
}
