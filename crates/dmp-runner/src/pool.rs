//! Work-stealing thread pool for one-shot job batches.
//!
//! Jobs are indexed at submission; results land in their submission slot, so
//! output order is deterministic regardless of thread count or steal
//! interleaving. Workers drain their own deque from the front and steal from
//! victims' backs (classic Chase–Lev discipline, implemented with simple
//! locked deques — jobs here are seconds-long simulations, so queue overhead
//! is irrelevant).

use std::collections::VecDeque;
use std::sync::Mutex;

/// A boxed job; may borrow from the caller's stack (`run_ordered` joins all
/// workers before returning, via `std::thread::scope`).
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// One worker's deque of `(submission index, job)` pairs.
type WorkQueue<'a, T> = Mutex<VecDeque<(usize, Job<'a, T>)>>;

/// Run `jobs` on `threads` workers; `results[i]` corresponds to `jobs[i]`.
///
/// Jobs must not panic — wrap fallible work in `catch_unwind` first (the
/// runner layer does). A panic here poisons nothing but aborts the batch via
/// unwind into `std::thread::scope`, which propagates it.
pub fn run_ordered<'a, T: Send>(jobs: Vec<Job<'a, T>>, threads: usize) -> Vec<T> {
    let threads = threads.max(1);
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }

    // Submission-order slots the workers write into.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    if threads == 1 || n == 1 {
        for (i, job) in jobs.into_iter().enumerate() {
            *slots[i].lock().unwrap() = Some(job());
        }
        return collect(slots);
    }

    // Round-robin initial distribution across per-worker deques.
    let queues: Vec<WorkQueue<'a, T>> = (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        queues[i % threads].lock().unwrap().push_back((i, job));
    }

    std::thread::scope(|scope| {
        for me in 0..threads {
            let queues = &queues;
            let slots = &slots;
            scope.spawn(move || loop {
                // Own queue first (front), then steal from victims (back).
                // Each lock is a statement-scoped temporary: at most one
                // queue lock is held at a time, so workers cannot deadlock
                // in a circular steal chain.
                let mut next = queues[me].lock().unwrap().pop_front();
                if next.is_none() {
                    next = (1..threads)
                        .find_map(|step| queues[(me + step) % threads].lock().unwrap().pop_back());
                }
                match next {
                    Some((idx, job)) => *slots[idx].lock().unwrap() = Some(job()),
                    // All queues empty: every job is claimed (jobs are taken
                    // while holding the queue lock), so this worker is done.
                    None => break,
                }
            });
        }
    });

    collect(slots)
}

fn collect<T>(slots: Vec<Mutex<Option<T>>>) -> Vec<T> {
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every job slot is filled before the scope exits")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: usize) -> Vec<Job<'static, u64>> {
        (0..n)
            .map(|i| Box::new(move || (i as u64) * (i as u64)) as Job<'static, u64>)
            .collect()
    }

    #[test]
    fn results_keep_submission_order() {
        let expected: Vec<u64> = (0..97).map(|i: u64| i * i).collect();
        for threads in [1, 2, 3, 8, 16] {
            assert_eq!(
                run_ordered(squares(97), threads),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_single_batches() {
        assert!(run_ordered(Vec::<Job<'static, u8>>::new(), 4).is_empty());
        assert_eq!(run_ordered(squares(1), 4), vec![0]);
    }

    #[test]
    fn uneven_jobs_all_complete() {
        // Mix fast and slow jobs so stealing actually happens.
        let jobs: Vec<Job<'static, usize>> = (0..32usize)
            .map(|i| {
                Box::new(move || {
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    i
                }) as Job<'static, usize>
            })
            .collect();
        assert_eq!(run_ordered(jobs, 4), (0..32).collect::<Vec<_>>());
    }
}
