//! Structured artifact emission: one JSON file per figure/table.
//!
//! Each artifact is split in two files so the *data* stays byte-identical
//! across runs, thread counts, and cache states:
//!
//! * `<name>.json` — the deterministic payload (series, per-run values,
//!   confidence intervals). The determinism regression test compares these
//!   byte-for-byte between `--threads 1` and `--threads 8` runs.
//! * `<name>.meta.json` — volatile execution telemetry (wall-clock, cache
//!   hit/miss counts, thread count).

use crate::json::Json;
use crate::runner::RunnerStats;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Writes artifacts into a target directory.
#[derive(Debug, Clone)]
pub struct ArtifactWriter {
    dir: PathBuf,
}

impl ArtifactWriter {
    /// Writer rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// Writer configured from the environment: `DMP_ARTIFACT_DIR` overrides
    /// the location; default `target/artifacts` (respecting
    /// `CARGO_TARGET_DIR`).
    pub fn from_env() -> Self {
        let dir = std::env::var_os("DMP_ARTIFACT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                std::env::var_os("CARGO_TARGET_DIR")
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("target"))
                    .join("artifacts")
            });
        Self::new(dir)
    }

    /// Directory artifacts are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write the deterministic `data` payload as `<name>.json`, returning
    /// its path.
    pub fn write(&self, name: &str, data: &Json) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{name}.json"));
        std::fs::write(&path, data.render_pretty())?;
        Ok(path)
    }

    /// Write a deterministic metrics snapshot as `metrics/<name>.json`,
    /// returning its path. Standalone files (rather than a section of the
    /// main artifact) let `bench_diff` compare two runs' metrics directories
    /// without parsing figure-specific payloads.
    pub fn write_metrics(&self, name: &str, metrics: &Json) -> io::Result<PathBuf> {
        let dir = self.dir.join("metrics");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, metrics.render_pretty())?;
        Ok(path)
    }

    /// Write volatile execution telemetry as `<name>.meta.json`. `extra`
    /// key/value pairs (e.g. simulation-engine counters) are appended after
    /// the standard runner fields.
    pub fn write_meta(
        &self,
        name: &str,
        stats: &RunnerStats,
        threads: usize,
        wall: Duration,
        extra: Vec<(&str, Json)>,
    ) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{name}.meta.json"));
        let mut fields = vec![
            ("target", Json::Str(name.to_string())),
            ("wall_s", Json::Num(wall.as_secs_f64())),
            (
                "serial_equiv_s",
                Json::Num(stats.serial_equiv.as_secs_f64()),
            ),
            ("threads", Json::Num(threads as f64)),
            ("jobs", Json::Num(stats.jobs as f64)),
            ("cache_hits", Json::Num(stats.cache_hits as f64)),
            ("cache_misses", Json::Num(stats.cache_misses as f64)),
            ("failed_jobs", Json::Num(stats.failed as f64)),
        ];
        fields.extend(extra);
        let meta = Json::obj(fields);
        std::fs::write(&path, meta.render_pretty())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;

    #[test]
    fn writes_data_and_meta_side_by_side() {
        let tmp = TempDir::new("artifact");
        let w = ArtifactWriter::new(tmp.path());
        let data = Json::obj([("series", Json::nums([1.0, 2.0]))]);
        let data_path = w.write("fig_test", &data).unwrap();
        let meta_path = w
            .write_meta(
                "fig_test",
                &RunnerStats::default(),
                4,
                Duration::from_millis(1500),
                vec![("engine_events", Json::Num(123.0))],
            )
            .unwrap();
        assert_eq!(data_path, tmp.path().join("fig_test.json"));
        assert_eq!(meta_path, tmp.path().join("fig_test.meta.json"));
        let read_back = crate::json::parse(&std::fs::read_to_string(&data_path).unwrap());
        assert_eq!(read_back, Some(data));
        let meta = crate::json::parse(&std::fs::read_to_string(&meta_path).unwrap()).unwrap();
        assert_eq!(meta.get("threads").unwrap().as_u64(), Some(4));
        assert_eq!(meta.get("engine_events").unwrap().as_u64(), Some(123));
    }

    #[test]
    fn writes_metrics_under_metrics_subdir() {
        let tmp = TempDir::new("artifact_metrics");
        let w = ArtifactWriter::new(tmp.path());
        let metrics = Json::obj([("counters", Json::obj([("x", Json::Num(3.0))]))]);
        let path = w.write_metrics("fig_test", &metrics).unwrap();
        assert_eq!(path, tmp.path().join("metrics").join("fig_test.json"));
        let read_back = crate::json::parse(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(read_back, Some(metrics));
    }
}
