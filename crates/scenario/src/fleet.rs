//! Fleet-wide arrival-rate timelines.
//!
//! A single-session [`crate::Scenario`] scripts what happens *to* one
//! session's paths; a [`FleetTimeline`] scripts how fast *new sessions
//! arrive* across a whole fleet. The timeline is a piecewise-constant
//! multiplier on a base Poisson arrival rate: each [`RateSpike`] multiplies
//! the rate by `factor` for `duration_s` seconds starting at `at_s`
//! (overlapping spikes compose multiplicatively), which is exactly the
//! flash-crowd shape — e.g. a 5× arrival surge when a popular event starts.
//!
//! Because the effective rate λ(t) is piecewise constant and strictly
//! positive, its cumulative Λ(t) = ∫₀ᵗ λ is piecewise linear and strictly
//! increasing, so a Poisson process with rate λ(t) can be sampled by
//! inversion: draw unit-rate exponential increments and map the running sum
//! through [`FleetTimeline::inverse_cumulative`]. That is how `crates/fleet`
//! turns one RNG stream into a churn schedule that is a pure function of the
//! spec seed — independent of thread count, shard chunking, and engine.
//!
//! Like [`crate::Scenario`], a timeline has a canonical text form that
//! round-trips through [`FleetTimeline::parse`] and a stable FNV-1a hash for
//! content-addressed cache keys.

use std::fmt;

/// One arrival-rate spike: the fleet arrival rate is multiplied by `factor`
/// on `[at_s, at_s + duration_s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSpike {
    /// Spike start, seconds after the experiment starts.
    pub at_s: f64,
    /// Multiplier on the base arrival rate (must be > 0; spikes overlap
    /// multiplicatively).
    pub factor: f64,
    /// Spike length, seconds (must be > 0).
    pub duration_s: f64,
}

/// A named, serializable fleet arrival-rate timeline.
///
/// The default timeline is empty (no name, no spikes): the arrival rate is
/// the base rate everywhere.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTimeline {
    /// Timeline name (no whitespace; part of the stable hash).
    pub name: String,
    /// The spikes, in script order.
    pub spikes: Vec<RateSpike>,
}

impl FleetTimeline {
    /// An empty timeline with a name.
    pub fn named(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            !name.is_empty() && !name.chars().any(char::is_whitespace),
            "timeline name must be non-empty and whitespace-free: {name:?}"
        );
        Self {
            name,
            spikes: Vec::new(),
        }
    }

    /// Append a spike (builder style).
    pub fn spike(mut self, at_s: f64, factor: f64, duration_s: f64) -> Self {
        self.spikes.push(RateSpike {
            at_s,
            factor,
            duration_s,
        });
        self
    }

    /// True when the timeline has no spikes (base rate everywhere).
    pub fn is_empty(&self) -> bool {
        self.spikes.is_empty()
    }

    /// Check the script; returns a description of the first invalid spike.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.spikes.iter().enumerate() {
            let fail = |msg: String| Err(format!("spike {i} (at {}s): {msg}", s.at_s));
            if !(s.at_s.is_finite() && s.at_s >= 0.0) {
                return fail(format!("start {} invalid", s.at_s));
            }
            if !(s.factor.is_finite() && s.factor > 0.0) {
                return fail(format!("factor {} must be > 0", s.factor));
            }
            if !(s.duration_s.is_finite() && s.duration_s > 0.0) {
                return fail(format!("duration {} must be > 0", s.duration_s));
            }
        }
        Ok(())
    }

    /// The effective arrival rate at time `t`: `base` times the product of
    /// every spike active at `t`.
    pub fn rate_at(&self, base: f64, t: f64) -> f64 {
        let mut rate = base;
        for s in &self.spikes {
            if t >= s.at_s && t < s.at_s + s.duration_s {
                rate *= s.factor;
            }
        }
        rate
    }

    /// The boundaries of the piecewise-constant rate: every spike start and
    /// end after `0.0`, sorted and deduplicated (exact f64 equality is the
    /// right dedup here — boundaries come from the same arithmetic).
    fn boundaries(&self) -> Vec<f64> {
        let mut b: Vec<f64> = self
            .spikes
            .iter()
            .flat_map(|s| [s.at_s, s.at_s + s.duration_s])
            .filter(|&t| t > 0.0)
            .collect();
        b.sort_by(|a, b| a.partial_cmp(b).expect("validated: finite"));
        b.dedup();
        b
    }

    /// Cumulative arrival intensity Λ(t) = ∫₀ᵗ λ(u) du for base rate `base`.
    pub fn cumulative(&self, base: f64, t: f64) -> f64 {
        let mut acc = 0.0;
        let mut prev = 0.0;
        for b in self.boundaries() {
            if b >= t {
                break;
            }
            acc += self.rate_at(base, prev) * (b - prev);
            prev = b;
        }
        acc + self.rate_at(base, prev) * (t - prev)
    }

    /// Invert the cumulative intensity: the `t` with Λ(t) = `x`. This is the
    /// inversion-sampling map — feed it the running sum of unit-rate
    /// exponential draws and it returns Poisson arrival times under the
    /// timeline's rate profile.
    pub fn inverse_cumulative(&self, base: f64, x: f64) -> f64 {
        assert!(base > 0.0, "base arrival rate must be > 0");
        let mut acc = 0.0;
        let mut prev = 0.0;
        for b in self.boundaries() {
            let rate = self.rate_at(base, prev);
            let seg = rate * (b - prev);
            if acc + seg >= x {
                return prev + (x - acc) / rate;
            }
            acc += seg;
            prev = b;
        }
        prev + (x - acc) / self.rate_at(base, prev)
    }

    /// Canonical text form: one header line, then one line per spike in
    /// script order (`{:?}` floats round-trip exactly, so
    /// [`FleetTimeline::parse`] reproduces the timeline bit-for-bit).
    pub fn canonical(&self) -> String {
        let mut out = format!(
            "fleet-timeline {}\n",
            if self.name.is_empty() {
                "-"
            } else {
                &self.name
            }
        );
        for s in &self.spikes {
            out.push_str(&format!(
                "{:?} spike {:?} {:?}\n",
                s.at_s, s.factor, s.duration_s
            ));
        }
        out
    }

    /// Parse the canonical text form back into a timeline.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or("empty timeline text")?;
        let name = header
            .strip_prefix("fleet-timeline ")
            .ok_or_else(|| format!("bad header: {header:?}"))?
            .trim();
        let mut t = FleetTimeline {
            name: if name == "-" {
                String::new()
            } else {
                name.to_string()
            },
            spikes: Vec::new(),
        };
        for (ln, line) in lines {
            let toks: Vec<&str> = line.split_whitespace().collect();
            let err = |msg: &str| format!("line {}: {msg}: {line:?}", ln + 1);
            if toks.len() != 4 || toks[1] != "spike" {
                return Err(err("expected `<at> spike <factor> <duration>`"));
            }
            let f = |i: usize| -> Result<f64, String> {
                toks[i].parse().map_err(|_| err("bad number"))
            };
            t.spikes.push(RateSpike {
                at_s: f(0)?,
                factor: f(2)?,
                duration_s: f(3)?,
            });
        }
        Ok(t)
    }

    /// Stable 64-bit hash of the canonical form (FNV-1a), embedded in fleet
    /// cache keys so two runs with different arrival profiles can never be
    /// served each other's cached shard results.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl fmt::Display for RateSpike {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spike ×{:?} at {:?}s for {:?}s",
            self.factor, self.at_s, self.duration_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetTimeline {
        FleetTimeline::named("flash")
            .spike(10.0, 5.0, 20.0)
            .spike(25.0, 2.0, 10.0)
    }

    #[test]
    fn canonical_round_trips() {
        let t = sample();
        assert_eq!(FleetTimeline::parse(&t.canonical()).unwrap(), t);
        let d = FleetTimeline::default();
        assert_eq!(FleetTimeline::parse(&d.canonical()).unwrap(), d);
        // Awkward floats survive.
        let t = FleetTimeline::named("f").spike(0.1 + 0.2, 1.0 / 3.0, 7.0);
        assert_eq!(FleetTimeline::parse(&t.canonical()).unwrap(), t);
    }

    #[test]
    fn hash_is_stable_and_discriminating() {
        assert_eq!(sample().stable_hash(), sample().stable_hash());
        let mut other = sample();
        other.spikes[0].factor = 5.000001;
        assert_ne!(sample().stable_hash(), other.stable_hash());
        assert_ne!(
            FleetTimeline::named("a").stable_hash(),
            FleetTimeline::named("b").stable_hash()
        );
    }

    #[test]
    fn validate_catches_bad_spikes() {
        assert!(sample().validate().is_ok());
        assert!(FleetTimeline::named("x")
            .spike(1.0, 0.0, 5.0)
            .validate()
            .is_err());
        assert!(FleetTimeline::named("x")
            .spike(1.0, 2.0, 0.0)
            .validate()
            .is_err());
        assert!(FleetTimeline::named("x")
            .spike(-1.0, 2.0, 5.0)
            .validate()
            .is_err());
    }

    #[test]
    fn rates_compose_multiplicatively() {
        let t = sample();
        assert_eq!(t.rate_at(2.0, 5.0), 2.0);
        assert_eq!(t.rate_at(2.0, 12.0), 10.0); // ×5
        assert_eq!(t.rate_at(2.0, 27.0), 20.0); // ×5 × ×2 overlap
        assert_eq!(t.rate_at(2.0, 32.0), 4.0); // only ×2 left
        assert_eq!(t.rate_at(2.0, 40.0), 2.0);
    }

    #[test]
    fn cumulative_and_inverse_agree() {
        let t = sample();
        let base = 1.5;
        for x in [0.1, 1.0, 7.3, 25.0, 80.0, 200.0] {
            let time = t.inverse_cumulative(base, x);
            let back = t.cumulative(base, time);
            assert!((back - x).abs() < 1e-9, "Λ(Λ⁻¹({x})) = {back}");
        }
        // Monotone.
        let a = t.inverse_cumulative(base, 10.0);
        let b = t.inverse_cumulative(base, 10.5);
        assert!(b > a);
    }

    #[test]
    fn empty_timeline_is_homogeneous_poisson() {
        let t = FleetTimeline::default();
        assert!((t.cumulative(3.0, 10.0) - 30.0).abs() < 1e-12);
        assert!((t.inverse_cumulative(3.0, 30.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn spike_compresses_inter_arrival_times() {
        // Under a 5× spike the same exponential increment maps to a 5×
        // shorter wait — more arrivals land inside the spike window.
        let t = FleetTimeline::named("s").spike(0.0, 5.0, 100.0);
        let plain = FleetTimeline::default();
        assert!(t.inverse_cumulative(1.0, 10.0) * 5.0 - plain.inverse_cumulative(1.0, 10.0) < 1e-9);
    }
}
