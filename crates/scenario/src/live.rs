//! The live backend: compile a [`Scenario`] into per-path piecewise-constant
//! schedules the `dmp-live` path emulator can replay instead of its random
//! rate resampler.
//!
//! The emulator shapes one path as a token-bucket rate plus a fixed delay, so
//! scripted events map onto rate/delay/down steps:
//!
//! * [`Event::RateStep`] / [`Event::RateRamp`] — rate factor steps (ramps are
//!   expanded into their sub-steps exactly as on the netsim backend);
//! * [`Event::DelayStep`] — delay factor step;
//! * [`Event::PathDown`] / [`Event::PathUp`] — the `down` flag (the emulator
//!   stops forwarding while down);
//! * [`Event::LossEpisode`] — the emulator has no per-packet loss process, so
//!   an episode with loss `p` becomes a throughput multiplier
//!   `1 / sqrt(1 + p/0.01)` for its duration, the Mathis-style degradation a
//!   TCP flow would see relative to ~1% baseline loss;
//! * [`Event::FlashCrowd`] — `n` extra TCP-fair competitors become the
//!   multiplier `1 / (1 + n)` for the crowd's stay.

use std::time::Duration;

use crate::timeline::{Event, Scenario};

/// State of one path from `at` until the next step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveStep {
    /// When this state takes effect, relative to video start.
    pub at: Duration,
    /// Multiplier on the path's base shaping rate.
    pub rate_factor: f64,
    /// Multiplier on the path's base one-way delay.
    pub delay_factor: f64,
    /// While true the emulator forwards nothing (path failure).
    pub down: bool,
}

/// A piecewise-constant schedule for one path: `steps[i]` holds from
/// `steps[i].at` until `steps[i+1].at`. Always starts with a step at 0 in the
/// neutral state (factors 1.0, up).
#[derive(Debug, Clone, PartialEq)]
pub struct PathSchedule {
    /// The steps, sorted by `at`, deduplicated per timestamp.
    pub steps: Vec<LiveStep>,
}

impl PathSchedule {
    /// The state in force at `elapsed` since video start.
    pub fn state_at(&self, elapsed: Duration) -> LiveStep {
        let mut cur = self.steps[0];
        for s in &self.steps {
            if s.at <= elapsed {
                cur = *s;
            } else {
                break;
            }
        }
        cur
    }

    /// The time of the first step strictly after `elapsed`, if any. Lets the
    /// emulator sleep exactly until the next scripted change.
    pub fn next_change_after(&self, elapsed: Duration) -> Option<Duration> {
        self.steps.iter().map(|s| s.at).find(|&at| at > elapsed)
    }

    /// True when the schedule never leaves the neutral state.
    pub fn is_neutral(&self) -> bool {
        self.steps
            .iter()
            .all(|s| s.rate_factor == 1.0 && s.delay_factor == 1.0 && !s.down)
    }
}

/// Throughput multiplier a loss episode imposes on a shaped TCP path.
fn loss_rate_factor(loss: f64) -> f64 {
    1.0 / (1.0 + loss / 0.01).sqrt()
}

/// Compile `scenario` into one [`PathSchedule`] per path.
///
/// Panics if the scenario fails [`Scenario::validate`] for `n_paths`.
pub fn compile_live(scenario: &Scenario, n_paths: usize) -> Vec<PathSchedule> {
    scenario
        .validate(n_paths)
        .expect("scenario does not fit the live topology");

    // Per path, collect (at_s, state-delta) changes, then fold into absolute
    // piecewise-constant state.
    #[derive(Debug, Clone, Copy)]
    enum Delta {
        Rate(f64),
        Delay(f64),
        Down(bool),
        /// Multiplicative congestion factor begins (loss episode or crowd).
        MulOn(f64),
        /// ...and ends (same factor, divided back out).
        MulOff(f64),
    }

    let mut changes: Vec<Vec<(f64, Delta)>> = vec![Vec::new(); n_paths];
    let mut rate_factor = vec![1.0_f64; n_paths];
    for e in &scenario.events {
        let ch = &mut changes[e.path];
        match e.event {
            Event::PathDown => ch.push((e.at_s, Delta::Down(true))),
            Event::PathUp => ch.push((e.at_s, Delta::Down(false))),
            Event::RateStep { factor } => {
                rate_factor[e.path] = factor;
                ch.push((e.at_s, Delta::Rate(factor)));
            }
            Event::RateRamp {
                factor,
                over_s,
                steps,
            } => {
                let from = rate_factor[e.path];
                for i in 1..=steps {
                    let frac = f64::from(i) / f64::from(steps);
                    ch.push((
                        e.at_s + over_s * frac,
                        Delta::Rate(from + (factor - from) * frac),
                    ));
                }
                rate_factor[e.path] = factor;
            }
            Event::DelayStep { factor } => ch.push((e.at_s, Delta::Delay(factor))),
            Event::LossEpisode { loss, duration_s } => {
                let f = loss_rate_factor(loss);
                ch.push((e.at_s, Delta::MulOn(f)));
                ch.push((e.at_s + duration_s, Delta::MulOff(f)));
            }
            Event::FlashCrowd {
                n_flows,
                duration_s,
            } => {
                let f = 1.0 / (1.0 + f64::from(n_flows));
                ch.push((e.at_s, Delta::MulOn(f)));
                ch.push((e.at_s + duration_s, Delta::MulOff(f)));
            }
        }
    }

    changes
        .into_iter()
        .map(|mut ch| {
            // Stable by time: simultaneous changes apply in script order and
            // merge into one step.
            ch.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut steps = vec![LiveStep {
                at: Duration::ZERO,
                rate_factor: 1.0,
                delay_factor: 1.0,
                down: false,
            }];
            let mut scripted_rate = 1.0_f64;
            let mut congestion = 1.0_f64;
            let mut delay = 1.0_f64;
            let mut down = false;
            for (at_s, delta) in ch {
                match delta {
                    Delta::Rate(f) => scripted_rate = f,
                    Delta::Delay(f) => delay = f,
                    Delta::Down(d) => down = d,
                    Delta::MulOn(f) => congestion *= f,
                    Delta::MulOff(f) => congestion /= f,
                }
                let step = LiveStep {
                    at: Duration::from_secs_f64(at_s),
                    rate_factor: scripted_rate * congestion,
                    delay_factor: delay,
                    down,
                };
                match steps.last_mut() {
                    Some(last) if last.at == step.at => *last = step,
                    _ => steps.push(step),
                }
            }
            PathSchedule { steps }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sec(s: f64) -> Duration {
        Duration::from_secs_f64(s)
    }

    #[test]
    fn empty_scenario_is_neutral() {
        let scheds = compile_live(&Scenario::default(), 2);
        assert_eq!(scheds.len(), 2);
        assert!(scheds.iter().all(PathSchedule::is_neutral));
        assert_eq!(scheds[0].state_at(sec(1000.0)).rate_factor, 1.0);
        assert_eq!(scheds[0].next_change_after(Duration::ZERO), None);
    }

    #[test]
    fn down_and_up_toggle_the_flag() {
        let s = Scenario::named("f")
            .at(10.0, 0, Event::PathDown)
            .at(25.0, 0, Event::PathUp);
        let sched = &compile_live(&s, 2)[0];
        assert!(!sched.state_at(sec(9.9)).down);
        assert!(sched.state_at(sec(10.0)).down);
        assert!(sched.state_at(sec(24.9)).down);
        assert!(!sched.state_at(sec(25.0)).down);
        assert_eq!(sched.next_change_after(sec(10.0)), Some(sec(25.0)));
        // Path 1 is untouched.
        assert!(compile_live(&s, 2)[1].is_neutral());
    }

    #[test]
    fn loss_and_crowd_compose_multiplicatively_and_restore() {
        let s = Scenario::named("m")
            .at(
                10.0,
                0,
                Event::LossEpisode {
                    loss: 0.03,
                    duration_s: 20.0,
                },
            )
            .at(
                15.0,
                0,
                Event::FlashCrowd {
                    n_flows: 3,
                    duration_s: 10.0,
                },
            );
        let sched = &compile_live(&s, 1)[0];
        let loss_f = 1.0 / (1.0 + 0.03 / 0.01_f64).sqrt();
        let both = loss_f * 0.25;
        assert!((sched.state_at(sec(12.0)).rate_factor - loss_f).abs() < 1e-12);
        assert!((sched.state_at(sec(20.0)).rate_factor - both).abs() < 1e-12);
        assert!((sched.state_at(sec(27.0)).rate_factor - loss_f).abs() < 1e-12);
        assert!((sched.state_at(sec(31.0)).rate_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ramp_expands_to_substeps_scaled_by_congestion() {
        let s = Scenario::named("r")
            .at(0.0, 0, Event::RateStep { factor: 0.5 })
            .at(
                10.0,
                0,
                Event::RateRamp {
                    factor: 1.0,
                    over_s: 4.0,
                    steps: 4,
                },
            );
        let sched = &compile_live(&s, 1)[0];
        assert!((sched.state_at(sec(5.0)).rate_factor - 0.5).abs() < 1e-12);
        assert!((sched.state_at(sec(11.0)).rate_factor - 0.625).abs() < 1e-12);
        assert!((sched.state_at(sec(12.0)).rate_factor - 0.75).abs() < 1e-12);
        assert!((sched.state_at(sec(14.0)).rate_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simultaneous_changes_merge_into_one_step() {
        let s = Scenario::named("m")
            .at(10.0, 0, Event::RateStep { factor: 0.5 })
            .at(10.0, 0, Event::DelayStep { factor: 2.0 });
        let sched = &compile_live(&s, 1)[0];
        assert_eq!(sched.steps.len(), 2);
        let st = sched.state_at(sec(10.0));
        assert_eq!((st.rate_factor, st.delay_factor), (0.5, 2.0));
    }
}
